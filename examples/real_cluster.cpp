// Real-network runtime in one process: three SiteServers on loopback TCP,
// a client session that writes at one site and migrates to another, and the
// per-site metrics afterwards. The same wiring works across machines — give
// each site its real host in the config and run one ccpr_server per box.
//
//   build/examples/real_cluster
#include <cstdio>

#include "client/client.hpp"
#include "server/site_server.hpp"

using namespace ccpr;

int main() {
  // Three sites, nine vars, each var on two sites (partial replication).
  // Port 0 = kernel-assigned; we read the bound ports back before building
  // the config the clients and the *other* servers dial.
  auto cfg = server::ClusterConfig::loopback(3, 9, 2, 0);
  cfg.algorithm = causal::Algorithm::kOptTrack;
  cfg.protocol.fetch_timeout_us = 200000;

  // Bootstrapping with kernel-assigned ports needs two rounds: start each
  // server alone to learn its ports, then rewrite the config. Simpler in
  // real deployments where ports are fixed; here we grab free ports first.
  {
    std::vector<net::Socket> held;
    for (std::uint32_t s = 0; s < 3; ++s) {
      std::uint16_t peer = 0;
      std::uint16_t client = 0;
      held.push_back(net::tcp_listen("127.0.0.1", 0, &peer));
      held.push_back(net::tcp_listen("127.0.0.1", 0, &client));
      cfg.sites[s].peer_port = peer;
      cfg.sites[s].client_port = client;
    }
  }

  std::vector<std::unique_ptr<server::SiteServer>> servers;
  for (causal::SiteId s = 0; s < 3; ++s) {
    servers.push_back(std::make_unique<server::SiteServer>(cfg, s));
    if (!servers.back()->start()) {
      std::fprintf(stderr, "site %u failed to bind\n", s);
      return 1;
    }
    std::printf("site %u up: peer port %u, client port %u\n", s,
                servers[s]->peer_port(), servers[s]->client_port());
  }

  {
    client::Client alice(cfg, 0);
    alice.put_key("key0", "hello from site 0");
    std::printf("[site 0] put key0\n");

    // Move the session: the new site is not used until it has applied
    // everything this session could have observed (coverage handshake).
    alice.migrate(1);
    std::printf("[site 1] after migrate, key0 = \"%s\"\n",
                alice.get_key("key0").c_str());

    client::Client bob(cfg, 2);
    bob.put_key("key5", "written at site 2");
    std::printf("[site 2] put key5\n");
    // key5 lives on sites {5 mod 3, 6 mod 3} = {2, 0}: reading it at site 1
    // goes through RemoteFetch transparently.
    std::printf("[site 1] key5 = \"%s\" (via remote fetch)\n",
                alice.get_key("key5").c_str());
  }

  for (auto& srv : servers) {
    const auto m = srv->metrics();
    std::printf("site %u: writes=%llu reads=%llu msgs=%llu bytes=%llu\n",
                srv->self(), static_cast<unsigned long long>(m.writes),
                static_cast<unsigned long long>(m.reads),
                static_cast<unsigned long long>(m.messages_total()),
                static_cast<unsigned long long>(m.bytes_total()));
    srv->stop();
  }
  return 0;
}
