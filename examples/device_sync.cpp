// Device roaming: one user, two devices, two data centers. The phone
// (attached to the EU site) writes a draft; the laptop (US site) picks the
// session up via Session::migrate, which blocks until the US replicas have
// caught up with everything the phone could have observed — so
// read-your-writes and monotonic reads survive the hop even though the
// two devices talk to different sites.
//
//   build/examples/device_sync
#include <iostream>

#include "causal/replica_map.hpp"
#include "checker/causal_checker.hpp"
#include "store/geo_store.hpp"

using namespace ccpr;

int main() {
  // Sites: 0,1 = EU region; 2,3 = US region. Mailbox keys replicated at
  // one site per region.
  store::KeySpace keys({"user:inbox", "user:drafts", "user:settings"});
  auto placement = causal::ReplicaMap::custom(
      4, {{0, 2}, {1, 3}, {0, 3}});

  store::GeoStore::Options options;
  options.algorithm = causal::Algorithm::kOptTrack;
  options.max_delay_us = 400;  // make the WAN race real
  store::GeoStore store(std::move(keys), std::move(placement), options);

  auto session = store.session(0);  // phone, EU
  session.put("user:drafts", "Dear team, shipping Friday...");
  session.put("user:settings", "theme=dark");
  std::cout << "phone @site0 wrote a draft and a setting\n";

  // The user opens the laptop: same logical session continues in the US.
  session.migrate(3);
  std::cout << "session migrated to site3 (US)\n";
  const std::string draft = session.get("user:drafts");
  const std::string theme = session.get("user:settings");
  std::cout << "laptop sees draft: '" << draft << "'\n"
            << "laptop sees setting: '" << theme << "'\n";

  bool ok = draft == "Dear team, shipping Friday..." && theme == "theme=dark";

  // Edit on the laptop, hop back to the phone.
  session.put("user:drafts", "Dear team, shipping TODAY!");
  session.migrate(0);
  const std::string back = session.get("user:drafts");
  std::cout << "phone (after migrating back) sees: '" << back << "'\n";
  ok = ok && back == "Dear team, shipping TODAY!";

  store.flush();
  const auto result = checker::check_causal_consistency(
      store.history(), store.replica_map());
  std::cout << "causal consistency: " << (result.ok ? "OK" : "VIOLATED")
            << "; session guarantees across devices: "
            << (ok ? "held" : "BROKEN") << "\n";
  return (result.ok && ok) ? 0 : 1;
}
