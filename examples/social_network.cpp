// The paper's §I motivating scenario, end to end: a two-region social
// network where each user's wall lives only in their home region.
//
//   build/examples/social_network [users] [ops_per_site]
//
// Runs the region-pinned social workload on the simulator under a geo
// latency model (2ms intra-region, 50ms cross-region), verifies causal
// consistency of the full history, and reports what partial replication
// saved compared to full replication.
#include <cstdlib>
#include <iostream>

#include "causal/sim_cluster.hpp"
#include "checker/causal_checker.hpp"
#include "util/table.hpp"
#include "workload/social.hpp"

using namespace ccpr;

namespace {

struct Outcome {
  metrics::Metrics m;
  bool causal = false;
};

Outcome run(const workload::SocialWorkload& sw, bool full_replication) {
  causal::SimCluster::Options opts;
  opts.latency =
      sim::GeoLatency::two_tier(sw.region_of_site, 2'000, 50'000, 0.1);
  opts.latency_seed = 11;
  opts.mean_think_us = 2'000;
  opts.record_history = true;

  causal::ReplicaMap rmap =
      full_replication
          ? causal::ReplicaMap::full(sw.rmap.sites(), sw.rmap.vars())
          : sw.rmap;
  causal::SimCluster cluster(causal::Algorithm::kOptTrack, std::move(rmap),
                             std::move(opts));
  cluster.run_program(sw.program);
  Outcome out;
  out.m = cluster.metrics();
  out.causal = checker::check_causal_consistency(cluster.history(),
                                                 cluster.replica_map())
                   .ok;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  workload::SocialSpec spec;
  spec.regions = 2;
  spec.sites_per_region = 3;
  spec.users = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 90;
  spec.replicas_per_user = 2;
  spec.ops_per_site =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 400;
  spec.write_rate = 0.25;
  spec.follow_local_prob = 0.9;
  spec.value_bytes = 256;
  spec.seed = 31337;

  std::cout << "Social network: " << spec.users << " users across "
            << spec.regions << " regions, " << spec.ops_per_site
            << " ops/site, walls pinned to the home region (p="
            << spec.replicas_per_user << ")\n\n";

  const auto sw = make_social_workload(spec);
  const Outcome partial = run(sw, /*full_replication=*/false);
  const Outcome full = run(sw, /*full_replication=*/true);

  util::Table table({"placement", "causal?", "messages", "KB on wire",
                     "remote reads", "read p99 (ms)"});
  auto add = [&](const char* name, const Outcome& o) {
    table.row();
    table.cell(name);
    table.cell(o.causal ? "yes" : "NO");
    table.cell(o.m.messages_total());
    table.cell(static_cast<double>(o.m.bytes_total()) / 1024.0, 0);
    table.cell(o.m.remote_reads);
    table.cell(o.m.read_latency_us.percentile(0.99) / 1000.0, 1);
  };
  add("home-region (p=2)", partial);
  add("full (p=6)", full);
  table.print(std::cout);

  const double msg_saving =
      1.0 - static_cast<double>(partial.m.messages_total()) /
                static_cast<double>(full.m.messages_total());
  const double byte_saving =
      1.0 - static_cast<double>(partial.m.bytes_total()) /
                static_cast<double>(full.m.bytes_total());
  std::cout << "\npartial replication saved "
            << util::format_double(100.0 * msg_saving, 1) << "% messages and "
            << util::format_double(100.0 * byte_saving, 1)
            << "% bytes on this workload.\n";
  return partial.causal && full.causal ? 0 : 1;
}
