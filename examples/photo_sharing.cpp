// Write-intensive multimedia workload (paper §I point 2 and §V): photo
// uploads are large values on a write-heavy mix, where the paper argues
// partial replication pays off most — every write multicast to p replicas
// instead of n, and the causal metadata is dwarfed by the payload.
//
//   build/examples/photo_sharing [photo_kb]
//
// Sweeps the write rate on a 10-site cluster and prints where partial
// replication (p=3) overtakes full replication in bytes shipped, alongside
// the paper's message-count crossover w_rate > 2/(2+n).
#include <cstdlib>
#include <iostream>

#include "causal/sim_cluster.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

using namespace ccpr;

namespace {

metrics::Metrics run(std::uint32_t p, double write_rate,
                     std::uint32_t photo_bytes) {
  const std::uint32_t n = 10, q = 50;
  workload::WorkloadSpec spec;
  spec.ops_per_site = 200;
  spec.write_rate = write_rate;
  spec.dist = workload::WorkloadSpec::KeyDist::kZipf;
  spec.zipf_theta = 0.8;
  spec.value_bytes = photo_bytes;
  spec.seed = 404;
  const auto rmap = causal::ReplicaMap::even(n, q, p);
  const auto program = workload::generate_program(spec, rmap);

  causal::SimCluster::Options opts;
  opts.latency = std::make_unique<sim::UniformLatency>(10'000, 60'000);
  opts.record_history = false;
  causal::SimCluster cluster(causal::Algorithm::kOptTrack,
                             causal::ReplicaMap::even(n, q, p),
                             std::move(opts));
  cluster.run_program(program);
  return cluster.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t photo_kb =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  const std::uint32_t photo_bytes = photo_kb * 1024;

  std::cout << "Photo sharing: 10 sites, " << photo_kb
            << "KB photos, Opt-Track, p=3 vs full replication\n"
            << "paper message-count crossover: w_rate > "
            << util::format_double(workload::crossover_write_rate(10), 3)
            << "\n\n";

  util::Table table({"w_rate", "p=3 msgs", "full msgs", "p=3 MB", "full MB",
                     "p=3 meta%", "winner (bytes)"});
  for (const double w : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    const auto partial = run(3, w, photo_bytes);
    const auto full = run(10, w, photo_bytes);
    const double pmb =
        static_cast<double>(partial.bytes_total()) / (1024.0 * 1024.0);
    const double fmb =
        static_cast<double>(full.bytes_total()) / (1024.0 * 1024.0);
    table.row();
    table.cell(w, 1);
    table.cell(partial.messages_total());
    table.cell(full.messages_total());
    table.cell(pmb, 1);
    table.cell(fmb, 1);
    table.cell(100.0 * static_cast<double>(partial.control_bytes) /
                   static_cast<double>(partial.bytes_total()),
               2);
    table.cell(pmb < fmb ? "partial" : "full");
  }
  table.print(std::cout);
  std::cout
      << "\nWith multi-KB payloads the causal metadata is a fraction of a\n"
         "percent of the traffic (the paper's §I point 4), and partial\n"
         "replication wins on bytes at every write rate because each photo\n"
         "ships to 3 replicas instead of 10.\n";
  return 0;
}
