// Live concurrency demo: the same protocol objects on the threaded runtime,
// with one real client thread per site hammering a shared key space, then a
// full causal-consistency audit and a convergence report.
//
//   build/examples/geo_cluster_threads [clients_ops]
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "checker/causal_checker.hpp"
#include "store/geo_store.hpp"
#include "store/placement.hpp"
#include "util/rng.hpp"

using namespace ccpr;

int main(int argc, char** argv) {
  const int ops =
      argc > 1 ? std::atoi(argv[1]) : 80;

  std::vector<std::string> key_names;
  for (int i = 0; i < 12; ++i) key_names.push_back("k" + std::to_string(i));

  // 4 sites, hash placement with 2 replicas per key.
  store::GeoStore::Options options;
  options.algorithm = causal::Algorithm::kOptTrack;
  options.max_delay_us = 250;  // widen thread interleavings
  store::GeoStore store(store::KeySpace(key_names),
                        store::hash_placement(4, 12, 2, /*seed=*/2024),
                        options);

  std::vector<std::thread> clients;
  for (causal::SiteId s = 0; s < 4; ++s) {
    clients.emplace_back([&store, s, ops] {
      auto session = store.session(s);
      util::Rng rng(9000 + s);
      for (int i = 0; i < ops; ++i) {
        const std::string key = "k" + std::to_string(rng.below(12));
        if (rng.chance(0.35)) {
          session.put(key, "site" + std::to_string(s) + " op" +
                               std::to_string(i));
        } else {
          (void)session.get(key);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  store.flush();

  const auto m = store.metrics();
  std::cout << "ran " << m.writes << " writes / " << m.reads
            << " reads across 4 client threads\n"
            << "traffic: " << m.messages_total() << " messages ("
            << m.update_msgs << " updates, " << m.fetch_req_msgs
            << " remote fetches), " << m.control_bytes
            << " control bytes\n";

  const auto check = checker::check_causal_consistency(
      store.history(), store.replica_map());
  std::cout << "causal consistency: " << (check.ok ? "OK" : "VIOLATED")
            << "\n";
  for (const auto& v : check.violations) std::cout << "  " << v << "\n";

  const auto conv = store.audit_convergence();
  std::cout << "replica convergence: " << conv.divergent_vars << "/"
            << conv.vars_checked
            << " keys divergent (concurrent writes; plain causal memory "
               "does not force agreement — see DESIGN.md §6 causal+)\n";
  return check.ok ? 0 : 1;
}
