// Quickstart: a 3-site geo-replicated causal KV store with partial
// replication, exercised through the public GeoStore API.
//
//   build/examples/quickstart
//
// Alice posts from site 0; Bob reads her wall from site 1 and comments;
// causal consistency guarantees nobody can see Bob's comment without being
// able to see the photo it refers to. The offline checker verifies the
// whole run at the end.
#include <iostream>

#include "causal/replica_map.hpp"
#include "checker/causal_checker.hpp"
#include "store/geo_store.hpp"

using namespace ccpr;

int main() {
  // Three sites (think: Chicago, Oregon, Frankfurt) and three keys, each
  // replicated at two of the three sites.
  store::KeySpace keys({"alice:wall", "bob:wall", "carol:wall"});
  auto placement = causal::ReplicaMap::even(/*sites=*/3, /*vars=*/3,
                                            /*replicas=*/2);

  store::GeoStore::Options options;
  options.algorithm = causal::Algorithm::kOptTrack;  // the paper's headline
  store::GeoStore store(std::move(keys), std::move(placement), options);

  auto alice = store.session(0);
  auto bob = store.session(1);
  auto carol = store.session(2);

  alice.put("alice:wall", "photo: sunset over the lake");
  store.flush();  // wait for replication (demo only; reads never need this)

  const std::string photo = bob.get("alice:wall");
  std::cout << "bob sees: " << photo << "\n";
  bob.put("bob:wall", "re alice: great shot!");
  store.flush();

  // Carol reads Bob's comment, then Alice's wall: causal consistency means
  // the photo must be visible once the comment is.
  const std::string comment = carol.get("bob:wall");
  const std::string wall = carol.get("alice:wall");
  std::cout << "carol sees: '" << comment << "' and '" << wall << "'\n";

  const auto result = checker::check_causal_consistency(
      store.history(), store.replica_map());
  std::cout << "causal consistency check: "
            << (result.ok ? "OK" : "VIOLATED") << " ("
            << result.ops_checked << " ops, " << result.applies_checked
            << " applies)\n";

  const auto m = store.metrics();
  std::cout << "traffic: " << m.messages_total() << " messages, "
            << m.control_bytes << " control bytes, " << m.payload_bytes
            << " payload bytes\n";
  return result.ok ? 0 : 1;
}
