// The framed request/response protocol spoken between the client library
// and a site server's client port. Shared by src/server and src/client so
// the two sides cannot drift.
//
// Every request and response is one length-prefixed frame:
//
//   [u32 length][body]
//
// Request body:  [u8 op][op-specific fields]
// Response body: [u8 status][op-specific fields]
//
//   kPing      -> ok
//   kPut       var:varint value:bytes [opts:u8 [session:varint req:varint]]
//              -> ok writer+1:varint seq:varint lamport:varint
//                 [flags:u8 [tokens]]
//   kGet       var:varint [opts:u8]
//              -> ok value (causal::encode_value) [flags:u8 [tokens]]
//   kSnapshot  count:varint var:varint... [opts:u8]
//              -> ok count:varint value... [flags:u8 [tokens]]
//                                            (all vars must be local)
//
//   The trailing opts byte on kPut/kGet/kSnapshot is optional (old clients
//   omit it; the response then ends after the op-specific fields, exactly
//   as before). opts bit0 (kWantTokens) asks the server to append coverage
//   tokens for every remote site so the client can fail over without a
//   round-trip to a possibly-dead home site. opts bit1 (kHasRequestId) on
//   kPut says session/req follow: the server remembers the last request id
//   per session and replays the stored result instead of re-executing, so
//   a put retried after a lost response stays idempotent. When the request
//   carried an opts byte the response carries a flags byte: bit0 = this
//   put was a dedup replay, bit1 = tokens follow as
//   count:varint {site:varint token:bytes}...
//   kToken     target:varint
//              -> ok token:bytes             (coverage_token for target)
//   kCovered   token:bytes wait_us:varint
//              -> ok covered:u8              (waits up to wait_us first)
//   kStatus    -> ok site:varint alg:u8 writes:varint reads:varint
//                    pending:varint peer_msgs_sent:varint
//                    peer_msgs_recv:varint peer_queued:varint
//                    region:bytes                 (empty = no topology)
//                    regions:varint {name:bytes peers:varint up:varint}...
//                    (per-region peer health; `up` counts peers with an
//                    established outbound connection. The flat-cluster
//                    response is region:"" regions:0.)
//   kMetrics   -> ok text:bytes              (Prometheus exposition text:
//                    merged protocol+transport counters, engine queue
//                    depths, per-peer wire stats)
//   kStoreStat -> ok engine:u8 keys:varint resident_bytes:varint
//                    index_slots:varint lookups:varint probes:varint
//                    spilled_keys:varint spill_segment_bytes:varint
//                    spill_reads:varint spill_writes:varint
//                    compactions:varint (the value-store engine's counter
//                    snapshot, taken on the apply thread)
//   kChaos     action:u8 (0 = clear all rules, 1 = set rule)
//              [peer+1:varint drop_milli:varint delay_us:varint
//               rate_per_s:varint partition:u8]   (set only; peer+1 = 0
//                    installs the rule toward every peer)
//              -> ok                          (admin: net/chaos.hpp fault
//                    injection on this site's transport links)
//
//   kStatus additionally ends with suspected:varint {site:varint}... — the
//   peers this site's failure detector currently believes unreachable
//   (missing on pre-detector servers; decoders treat absence as none).
//
//   kStatus finally ends with the engine-shard extension (missing on
//   pre-sharding servers; decoders treat absence as one unlabeled shard):
//     shards:varint {writes:varint reads:varint pending:varint
//                    qdepth:varint qcap:varint parked_reads:varint
//                    covered_waiters:varint}...
//
//   kEngineStat -> ok shards:varint parked_envelopes:varint
//                     malformed_envelopes:varint
//                     {writes:varint reads:varint pending:varint
//                      depth:varint capacity:varint peak:varint
//                      producer_waits:varint parked_reads:varint
//                      covered_waiters:varint enqueued_total:varint}...
//                  (admin: one row per engine shard plus the cross-shard
//                  envelope-admission gauges)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace ccpr::server {

enum class ClientOp : std::uint8_t {
  kPing = 1,
  kPut = 2,
  kGet = 3,
  kSnapshot = 4,
  kToken = 5,
  kCovered = 6,
  kStatus = 7,
  kMetrics = 8,
  kChaos = 9,
  kStoreStat = 10,
  kEngineStat = 11,
};

enum class ClientStatus : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,
  kNotReplicated = 2,
  kShuttingDown = 3,
  /// Served to reads that would park on a fetch no suspected replica can
  /// answer: every replica of the variable is currently believed down, so
  /// the server fails fast instead of burning the fetch timeout.
  kUnavailable = 4,
};

/// Request-side opts bits (trailing u8 on kPut/kGet/kSnapshot).
inline constexpr std::uint8_t kReqWantTokens = 0x1;
inline constexpr std::uint8_t kReqHasRequestId = 0x2;

/// Response-side flags bits (present iff the request carried opts).
inline constexpr std::uint8_t kRespDupReplay = 0x1;
inline constexpr std::uint8_t kRespHasTokens = 0x2;

/// Write one length-prefixed frame. Returns false on socket error.
inline bool write_client_frame(int fd,
                               const std::vector<std::uint8_t>& body) {
  net::Encoder enc(body.size() + net::kFrameLenBytes);
  enc.u32(static_cast<std::uint32_t>(body.size()));
  enc.raw(body.data(), body.size());
  return net::write_all(fd, enc.buffer().data(), enc.buffer().size());
}

/// Read one length-prefixed frame; nullopt on EOF, socket error, or a
/// length prefix outside (0, max_frame_bytes].
inline std::optional<std::vector<std::uint8_t>> read_client_frame(
    int fd, std::uint32_t max_frame_bytes) {
  std::uint8_t lenbuf[net::kFrameLenBytes];
  if (!net::read_all(fd, lenbuf, sizeof lenbuf)) return std::nullopt;
  const auto size =
      net::decode_frame_size(lenbuf, sizeof lenbuf, max_frame_bytes);
  if (!size) return std::nullopt;
  std::vector<std::uint8_t> body(*size);
  if (!net::read_all(fd, body.data(), body.size())) return std::nullopt;
  return body;
}

}  // namespace ccpr::server
