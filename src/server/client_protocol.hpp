// The framed request/response protocol spoken between the client library
// and a site server's client port. Shared by src/server and src/client so
// the two sides cannot drift.
//
// Every request and response is one length-prefixed frame:
//
//   [u32 length][body]
//
// Request body:  [u8 op][op-specific fields]
// Response body: [u8 status][op-specific fields]
//
//   kPing      -> ok
//   kPut       var:varint value:bytes
//              -> ok writer+1:varint seq:varint lamport:varint
//   kGet       var:varint
//              -> ok value (causal::encode_value)
//   kSnapshot  count:varint var:varint...
//              -> ok count:varint value...   (all vars must be local)
//   kToken     target:varint
//              -> ok token:bytes             (coverage_token for target)
//   kCovered   token:bytes wait_us:varint
//              -> ok covered:u8              (waits up to wait_us first)
//   kStatus    -> ok site:varint alg:u8 writes:varint reads:varint
//                    pending:varint peer_msgs_sent:varint
//                    peer_msgs_recv:varint peer_queued:varint
//                    region:bytes                 (empty = no topology)
//                    regions:varint {name:bytes peers:varint up:varint}...
//                    (per-region peer health; `up` counts peers with an
//                    established outbound connection. The flat-cluster
//                    response is region:"" regions:0.)
//   kMetrics   -> ok text:bytes              (Prometheus exposition text:
//                    merged protocol+transport counters, engine queue
//                    depths, per-peer wire stats)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace ccpr::server {

enum class ClientOp : std::uint8_t {
  kPing = 1,
  kPut = 2,
  kGet = 3,
  kSnapshot = 4,
  kToken = 5,
  kCovered = 6,
  kStatus = 7,
  kMetrics = 8,
};

enum class ClientStatus : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,
  kNotReplicated = 2,
  kShuttingDown = 3,
};

/// Write one length-prefixed frame. Returns false on socket error.
inline bool write_client_frame(int fd,
                               const std::vector<std::uint8_t>& body) {
  net::Encoder enc(body.size() + net::kFrameLenBytes);
  enc.u32(static_cast<std::uint32_t>(body.size()));
  enc.raw(body.data(), body.size());
  return net::write_all(fd, enc.buffer().data(), enc.buffer().size());
}

/// Read one length-prefixed frame; nullopt on EOF, socket error, or a
/// length prefix outside (0, max_frame_bytes].
inline std::optional<std::vector<std::uint8_t>> read_client_frame(
    int fd, std::uint32_t max_frame_bytes) {
  std::uint8_t lenbuf[net::kFrameLenBytes];
  if (!net::read_all(fd, lenbuf, sizeof lenbuf)) return std::nullopt;
  const auto size =
      net::decode_frame_size(lenbuf, sizeof lenbuf, max_frame_bytes);
  if (!size) return std::nullopt;
  std::vector<std::uint8_t> body(*size);
  if (!net::read_all(fd, body.data(), body.size())) return std::nullopt;
  return body;
}

}  // namespace ccpr::server
