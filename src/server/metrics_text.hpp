// Prometheus text exposition (version 0.0.4) for one site server.
//
// One function renders everything a scrape wants: the merged
// protocol+transport metrics::Metrics, the protocol-engine queue stats, and
// the per-peer wire counters. All series carry a `site` label so outputs
// from several sites concatenate into one cluster view; per-peer series add
// a `peer` label, plus a `region` label when the cluster has a geo
// topology (so dashboards can split intra- from cross-region traffic).
// Only the plain-text renderer lives here — the server ships the result
// over the client protocol (kMetrics), it does not speak HTTP.
#pragma once

#include <string>
#include <vector>

#include "causal/types.hpp"
#include "metrics/metrics.hpp"
#include "net/tcp_transport.hpp"
#include "server/durability.hpp"
#include "server/protocol_engine.hpp"

namespace ccpr::server {

/// Per-peer failure-detector view for the scrape, snapshotted by the site
/// server from its heartbeat state.
struct HealthStats {
  struct Peer {
    causal::SiteId site = 0;
    bool suspected = false;
    std::uint64_t rtt_ewma_us = 0;
    std::uint64_t suspect_events = 0;   ///< alive->suspected transitions
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t acks_received = 0;
  };
  std::vector<Peer> peers;
  /// Remote reads failed fast because every replica was suspected.
  std::uint64_t reads_fast_failed = 0;
};

/// `site_regions` maps site id -> region name (empty when the cluster has
/// no topology). When present it adds `region=` labels to every
/// `ccpr_peer_*` series and a `ccpr_site_region` info gauge for this site.
/// `engine_stats` is the value-store engine's counter snapshot, rendered as
/// the ccpr_store_engine_* family (the engine kind becomes a label).
///
/// `engine_shards` holds one QueueStats per engine shard (a single-element
/// vector on an unsharded site). The classic unlabeled ccpr_engine_* series
/// stay and carry shard-aggregated values; when the site runs more than one
/// shard every queue/parked gauge is additionally emitted with a
/// shard="<k>" label, and the cross-shard envelope admission exports
/// `parked_envelopes` / `malformed_envelopes`.
std::string render_metrics_text(
    causal::SiteId site, const metrics::Metrics& merged,
    const std::vector<ProtocolEngine::QueueStats>& engine_shards,
    const std::vector<net::TcpTransport::PeerStats>& peers,
    std::uint64_t pending_updates, const Durability::Stats& durability,
    const std::vector<std::string>& site_regions = {},
    const HealthStats& health = {},
    const store::EngineStats& engine_stats = {},
    std::uint64_t parked_envelopes = 0,
    std::uint64_t malformed_envelopes = 0);

}  // namespace ccpr::server
