// Prometheus text exposition (version 0.0.4) for one site server.
//
// One function renders everything a scrape wants: the merged
// protocol+transport metrics::Metrics, the protocol-engine queue stats, and
// the per-peer wire counters. All series carry a `site` label so outputs
// from several sites concatenate into one cluster view; per-peer series add
// a `peer` label. Only the plain-text renderer lives here — the server ships
// the result over the client protocol (kMetrics), it does not speak HTTP.
#pragma once

#include <string>
#include <vector>

#include "causal/types.hpp"
#include "metrics/metrics.hpp"
#include "net/tcp_transport.hpp"
#include "server/durability.hpp"
#include "server/protocol_engine.hpp"

namespace ccpr::server {

std::string render_metrics_text(
    causal::SiteId site, const metrics::Metrics& merged,
    const ProtocolEngine::QueueStats& engine,
    const std::vector<net::TcpTransport::PeerStats>& peers,
    std::uint64_t pending_updates, const Durability::Stats& durability);

}  // namespace ccpr::server
