// ShardedEngine: N ProtocolEngine shards behind one site-server facade.
//
// The TCP runtime's counterpart to causal::ShardGroup. Each shard is a full
// single-writer ProtocolEngine — its own apply thread, bounded MPSC queue,
// durability layer (WAL under <data-dir>/shard-<k> for k > 0) and value
// store — running an unmodified single-shard protocol over the cluster-wide
// causal::ShardMap partition of the keyspace. With shards == 1 everything
// here is a strict passthrough and the site behaves byte-identically to the
// pre-sharding server.
//
// Cross-shard causal order (shards > 1):
//
//  * Outbound: every protocol message leaves through wrap(): shard k's
//    update / fetch-response gets the *other* local shards' coverage tokens
//    for the destination attached inside a kShardEnvelope. Tokens come from
//    a per-shard cache refreshed by each shard's batch-end hook — published
//    BEFORE that batch's client callbacks fire, so the cache provably
//    covers anything any session has observed (publish-before-fulfill; see
//    protocol_engine.hpp). Reading the cache is a mutex-protected lookup:
//    shard k never blocks on shard j's apply thread.
//
//  * Inbound: deliver() unwraps envelopes into per-(source site, shard)
//    FIFO channels. The head envelope's tokens are posted to the target
//    shards as deadline-less covered-waiters; when the last one reports
//    covered, the head is released into its shard's queue and the next head
//    is armed. Later envelopes wait behind the head, preserving exactly the
//    per-channel order an unsharded site gets from its single queue.
//    Cross-shard waits are acyclic in the happens-before order the senders
//    serialized, so parked envelopes always drain (no timeout needed); the
//    parked count is exported for observability.
//
// Client-visible session state: coverage tokens become the framed
// concatenation of every shard's token (causal::combine_shard_tokens), and
// covered-waits split the token and wait on every shard. Multi-key
// snapshots degrade from "one apply slot" to a sequence of per-shard
// consistent cuts issued in shard order — still a causally consistent read
// sequence, no longer a single atomic cut (documented in RUNTIMES.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "causal/shard_map.hpp"
#include "metrics/metrics.hpp"
#include "server/protocol_engine.hpp"

namespace ccpr::server {

class ShardedEngine {
 public:
  /// Per-shard stats row for status/metrics surfaces.
  struct ShardStat {
    ProtocolEngine::QueueStats queue;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t pending_updates = 0;
  };

  ShardedEngine(std::uint32_t shards, causal::SiteId self,
                std::uint32_t n_sites, ProtocolEngine::Options engine_opts);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::uint32_t shards() const noexcept { return map_.shards(); }
  const causal::ShardMap& shard_map() const noexcept { return map_; }
  /// The shard engines, for per-shard wiring (adopt_protocol,
  /// configure_durability, Services targets). Index < shards().
  ProtocolEngine& shard(std::uint32_t k) { return *engines_[k]; }
  /// The metrics sink shard k's protocol Services must point at.
  metrics::Metrics* shard_metrics(std::uint32_t k) {
    return metrics_[k].get();
  }

  /// Where wrapped outbound traffic goes (the real transport). Must be set
  /// before any shard starts.
  void set_transport_send(std::function<void(net::Message)> send);

  /// Attach shard k's current cross-shard coverage tokens (kUpdate /
  /// kFetchResp only) and wrap in a kShardEnvelope. Identity when
  /// shards == 1. Installed as each shard Durability's wrap_update hook so
  /// stamped updates are wrapped *before* retention and catch-up resends
  /// replay the original-send tokens verbatim — fresh tokens at resend
  /// time could reference writes parked behind the resent update at the
  /// receiver, a cross-shard deadlock.
  net::Message wrap(std::uint32_t shard, net::Message msg);

  /// Shard k's durability transport_send target: wraps fresh protocol
  /// sends via wrap() and forwards to the transport. Already-wrapped
  /// messages (retained catch-up resends) pass through verbatim.
  /// Passthrough when shards == 1. Runs on shard k's apply thread.
  void wrap_and_send(std::uint32_t shard, net::Message msg);

  /// Refresh the token cache from shard k's protocol. Installed as each
  /// shard's batch-end hook; also called synchronously after recovery,
  /// before the apply threads start, so restored state is published first.
  void publish_tokens(std::uint32_t shard, causal::IProtocol& proto);

  /// Arm every shard's batch-end hook (only meaningful when shards > 1;
  /// no-op otherwise so the single-shard hot path stays hook-free). Call
  /// before start_all().
  void install_hooks();

  void start_all();
  void stop_all();

  /// Inbound peer protocol traffic from the site's transport (everything
  /// except heartbeats, which the server answers before this layer).
  void deliver(net::Message msg);

  // ---- client-facing async API (reactor threads / engine callbacks) ----

  void async_write(causal::VarId x, std::string data, bool local_replica,
                   ProtocolEngine::WriteCb cb);
  void async_read(causal::VarId x, ProtocolEngine::ReadCb cb);
  /// Sequential per-shard consistent cuts, assembled back into `xs` order.
  void async_snapshot(std::vector<causal::VarId> xs,
                      ProtocolEngine::SnapshotCb cb);
  /// Combined (all-shards) session token for `target`.
  void async_token(causal::SiteId target, ProtocolEngine::TokenCb cb);
  /// Split `token` and wait for every shard, same deadline; AND of the
  /// verdicts. A token that does not split for this shard count is garbage:
  /// verdict false, like any undecodable token today.
  void async_covered(std::vector<std::uint8_t> token, std::uint64_t wait_us,
                     ProtocolEngine::CoveredCb cb);

  // ---- blocking aggregation API (admin/status threads, tests) ----

  std::optional<ProtocolEngine::StatusSnapshot> status();
  std::optional<std::vector<ShardStat>> per_shard_stats();
  std::optional<metrics::Metrics> protocol_metrics();
  std::optional<store::EngineStats> store_stats();
  std::optional<Durability::Stats> durability_stats();
  std::optional<Durability::CatchupProgress> catchup_progress();
  std::optional<std::vector<std::uint8_t>> coverage_token(
      causal::SiteId target);
  std::optional<bool> wait_covered(std::vector<std::uint8_t> token,
                                   std::uint64_t wait_us);

  std::vector<ProtocolEngine::QueueStats> queue_stats() const;
  /// Envelopes parked on unmet cross-shard tokens right now.
  std::uint64_t parked_envelopes() const noexcept {
    return parked_envelopes_.load(std::memory_order_relaxed);
  }
  std::uint64_t malformed_envelopes() const noexcept {
    return malformed_envelopes_.load(std::memory_order_relaxed);
  }

 private:
  /// One inbound per-(src, shard) FIFO. Invariant: armed_ == !q.empty()
  /// outside adm_mu_ critical sections.
  struct Chan {
    std::deque<causal::ShardEnvelope> q;
    bool armed = false;
  };
  /// Countdown for one armed head's token set.
  struct Gate {
    std::atomic<std::uint32_t> remaining{0};
    std::uint64_t chan_key = 0;
  };

  static std::uint64_t chan_key(causal::SiteId src, std::uint32_t shard) {
    return (static_cast<std::uint64_t>(src) << 32) | shard;
  }
  /// Arm (or immediately drain) the head of `key`'s channel. `bounded`
  /// selects blocking vs non-blocking enqueues for the covered-waiter
  /// posts and the release apply — false whenever the caller may be an
  /// apply thread.
  void arm_or_drain(std::uint64_t key, bool bounded);
  void on_gate_open(std::uint64_t key);

  causal::ShardMap map_;
  causal::SiteId self_;
  std::uint32_t n_sites_;
  std::vector<std::unique_ptr<ProtocolEngine>> engines_;
  std::vector<std::unique_ptr<metrics::Metrics>> metrics_;
  std::function<void(net::Message)> transport_send_;

  /// token_cache_[k][dst] = shard k's last published coverage token for
  /// site dst. Guarded by token_mu_; writers are batch-end hooks, readers
  /// are wrap_and_send calls on other shards' apply threads.
  mutable std::mutex token_mu_;
  std::vector<std::vector<std::vector<std::uint8_t>>> token_cache_;

  mutable std::mutex adm_mu_;
  std::unordered_map<std::uint64_t, Chan> chans_;
  std::atomic<std::uint64_t> parked_envelopes_{0};
  std::atomic<std::uint64_t> malformed_envelopes_{0};
};

}  // namespace ccpr::server
