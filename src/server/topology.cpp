#include "server/topology.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ccpr::server {

std::optional<std::uint32_t> Topology::region_id(
    std::string_view name) const {
  for (std::uint32_t r = 0; r < region_names.size(); ++r) {
    if (region_names[r] == name) return r;
  }
  return std::nullopt;
}

std::uint32_t Topology::region_of(causal::SiteId s) const {
  CCPR_EXPECTS(s < region_of_site.size());
  return region_of_site[s];
}

const std::string& Topology::region_name_of(causal::SiteId s) const {
  return region_names[region_of(s)];
}

std::uint32_t Topology::link_us(std::uint32_t ra, std::uint32_t rb) const {
  CCPR_EXPECTS(ra < region_count() && rb < region_count());
  if (ra == rb) {
    return ra < intra_us.size() ? intra_us[ra] : kDefaultIntraUs;
  }
  for (const Link& l : links) {
    if ((l.a == ra && l.b == rb) || (l.a == rb && l.b == ra)) return l.us;
  }
  return kDefaultInterUs;
}

std::uint32_t Topology::site_distance_us(causal::SiteId a,
                                         causal::SiteId b) const {
  if (a == b) return 0;
  return link_us(region_of(a), region_of(b));
}

std::vector<std::uint32_t> Topology::site_distance_matrix() const {
  const std::uint32_t n = site_count();
  std::vector<std::uint32_t> d(static_cast<std::size_t>(n) * n);
  for (causal::SiteId i = 0; i < n; ++i) {
    for (causal::SiteId j = 0; j < n; ++j) {
      d[static_cast<std::size_t>(i) * n + j] = site_distance_us(i, j);
    }
  }
  return d;
}

std::vector<std::uint32_t> Topology::home_region_of_var(
    std::uint32_t vars) const {
  const std::uint32_t n = site_count();
  CCPR_EXPECTS(n > 0);
  std::vector<std::uint32_t> home(vars);
  for (std::uint32_t x = 0; x < vars; ++x) {
    home[x] = region_of_site[x % n];
  }
  return home;
}

std::vector<sim::SimTime> Topology::latency_matrix() const {
  const std::uint32_t n = site_count();
  std::vector<sim::SimTime> base(static_cast<std::size_t>(n) * n);
  for (causal::SiteId i = 0; i < n; ++i) {
    for (causal::SiteId j = 0; j < n; ++j) {
      // Diagonal models the local loopback: the intra-region class, i.e. a
      // site's messages to itself cost one intra hop, never zero.
      const std::uint32_t us =
          i == j ? link_us(region_of(i), region_of(i)) : site_distance_us(i, j);
      base[static_cast<std::size_t>(i) * n + j] =
          static_cast<sim::SimTime>(us);
    }
  }
  return base;
}

std::unique_ptr<sim::GeoLatency> Topology::make_latency(
    double jitter_sigma) const {
  CCPR_EXPECTS(!empty() && site_count() > 0);
  return std::make_unique<sim::GeoLatency>(site_count(), latency_matrix(),
                                           jitter_sigma);
}

std::vector<causal::SiteId> Topology::sites_in_region(std::uint32_t r) const {
  std::vector<causal::SiteId> out;
  for (causal::SiteId s = 0; s < region_of_site.size(); ++s) {
    if (region_of_site[s] == r) out.push_back(s);
  }
  return out;
}

bool Topology::validate(std::uint32_t sites, std::string* error) const {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (empty()) {
    if (!region_of_site.empty() || !links.empty() || !intra_us.empty()) {
      return fail("topology: region data without 'region' declarations");
    }
    return true;
  }
  for (std::size_t r = 0; r < region_names.size(); ++r) {
    if (region_names[r].empty()) return fail("topology: empty region name");
    for (std::size_t q = 0; q < r; ++q) {
      if (region_names[q] == region_names[r]) {
        return fail("topology: duplicate region '" + region_names[r] + "'");
      }
    }
  }
  if (intra_us.size() != region_names.size()) {
    return fail("topology: intra latency list does not match regions");
  }
  if (region_of_site.size() != sites) {
    return fail("topology: every site needs a region when regions are "
                "declared (" +
                std::to_string(region_of_site.size()) + " of " +
                std::to_string(sites) + " assigned)");
  }
  for (std::size_t s = 0; s < region_of_site.size(); ++s) {
    if (region_of_site[s] >= region_count()) {
      return fail("topology: site " + std::to_string(s) +
                  " names an unknown region");
    }
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    const Link& l = links[i];
    if (l.a >= region_count() || l.b >= region_count()) {
      return fail("topology: link names an unknown region");
    }
    if (l.a == l.b) {
      return fail("topology: link " + region_names[l.a] +
                  "-" + region_names[l.b] +
                  " is intra-region (set it on the 'region' line)");
    }
    for (std::size_t j = 0; j < i; ++j) {
      const Link& m = links[j];
      if ((m.a == l.a && m.b == l.b) || (m.a == l.b && m.b == l.a)) {
        return fail("topology: duplicate link " + region_names[l.a] + "-" +
                    region_names[l.b]);
      }
    }
  }
  return true;
}

}  // namespace ccpr::server
