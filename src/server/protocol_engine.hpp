// ProtocolEngine: the single-writer core of a site server (or of one
// engine shard of a sharded site — see server/sharded_engine.hpp).
//
// One apply thread owns the causal::IProtocol instance exclusively; nothing
// else ever touches it (the protocols assert this — see the Services
// re-entrancy contract in causal/protocol.hpp). Everything that used to
// contend on SiteServer's big mutex is now a *producer*: client-connection
// threads, the transport delivery thread and the timer thread enqueue typed
// commands onto one bounded MPSC queue and either block on a per-command
// completion (legacy blocking API) or hand the engine a callback (async
// API, used by the epoll reactor and the sharded-engine plumbing).
//
// Why this shape scales: protocol work is short and strictly serial anyway
// (causal metadata has no exploitable intra-site parallelism), so the old
// mutex bought no concurrency — it only bought contention, with every
// producer paying wake-up/convoy costs on the protocol's critical path. The
// queue turns that into a hand-off: producers pay one short queue-lock
// critical section, the apply thread drains whole batches per wakeup, and
// the queue bound gives admission control (a slow site pushes back on its
// clients instead of buffering unboundedly).
//
// Callback discipline (async API): callbacks are invoked exactly once —
// with a value on success, with std::nullopt if the engine is stopped or
// stopping. They fire on the apply thread, but *deferred to the end of the
// batch* that produced the result, after the batch-end hook has run. That
// ordering is what makes cross-shard dependency tokens sound: the hook
// publishes this shard's coverage tokens, so by the time any session
// observes a completion, the published tokens already cover everything that
// session saw (see sharded_engine.hpp). Callbacks may call the engine's
// async API freely (those enqueues never block) but must not call the
// blocking API.
//
// Blocking semantics recovered without holding locks across protocol calls:
//   * reads that RemoteFetch complete later — the continuation fires on the
//     apply thread during a subsequent message apply and fulfills the
//     waiting producer's completion;
//   * covered_by waits — waiters are parked engine-side and re-checked
//     after every coverage-changing command, with a deadline (or without
//     one, for the sharded engine's envelope admission).
// On stop() every parked waiter and never-completed read is aborted, and
// producers get std::nullopt (the server maps that to kShuttingDown).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "causal/protocol.hpp"
#include "metrics/metrics.hpp"
#include "net/message.hpp"
#include "server/durability.hpp"

namespace ccpr::server {

class ProtocolEngine {
 public:
  /// Command classes, for queue accounting (and because the mix is what a
  /// metrics scrape wants to see).
  enum class CmdKind : std::uint8_t {
    kWrite = 0,
    kRead,
    kSnapshot,
    kToken,
    kCovered,
    kStatus,
    kApplyUpdate,
    kTimer,
    kCatchup,  ///< anti-entropy control traffic (kCatchupReq/Resp)
    kKindCount  // sentinel
  };
  static constexpr std::size_t kCmdKinds =
      static_cast<std::size_t>(CmdKind::kKindCount);
  static const char* kind_name(CmdKind k) noexcept;

  struct Options {
    /// Commands admitted before producers block (admission control).
    std::size_t queue_capacity = 4096;
  };

  struct QueueStats {
    std::uint64_t depth = 0;        ///< commands waiting right now
    std::uint64_t capacity = 0;
    std::uint64_t peak_depth = 0;
    std::uint64_t producer_waits = 0;  ///< enqueues that hit the bound
    std::uint64_t parked_reads = 0;    ///< RemoteFetch reads in flight
    std::uint64_t covered_waiters = 0; ///< parked covered_by waits
    std::uint64_t enqueued[kCmdKinds] = {};  ///< per-kind admission counts
    std::uint64_t enqueued_total() const noexcept {
      std::uint64_t t = 0;
      for (const auto v : enqueued) t += v;
      return t;
    }
  };

  struct WriteResult {
    causal::WriteId id;
    std::uint64_t lamport = 0;  ///< 0 when the var is not locally replicated
  };

  struct StatusSnapshot {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t pending_updates = 0;
  };

  using WriteCb = std::function<void(std::optional<WriteResult>)>;
  using ReadCb = std::function<void(std::optional<causal::Value>)>;
  using SnapshotCb =
      std::function<void(std::optional<std::vector<causal::Value>>)>;
  using TokenCb =
      std::function<void(std::optional<std::vector<std::uint8_t>>)>;
  using CoveredCb = std::function<void(std::optional<bool>)>;
  /// Batch-end hook: runs on the apply thread after every batch that may
  /// have advanced the applied frontier (writes, peer applies, timers) and
  /// once at loop start (so recovered state is visible), always *before*
  /// that batch's deferred callbacks fire. The sharded engine publishes
  /// this shard's coverage tokens here.
  using BatchEndHook = std::function<void(causal::IProtocol&)>;

  explicit ProtocolEngine(Options opts);
  ~ProtocolEngine();

  ProtocolEngine(const ProtocolEngine&) = delete;
  ProtocolEngine& operator=(const ProtocolEngine&) = delete;

  /// The engine takes exclusive ownership of the protocol; `proto_metrics`
  /// is the sink the protocol's Services points at (read only on the apply
  /// thread from here on). Must be called once, before start(); nobody else
  /// may touch either afterwards.
  void adopt_protocol(std::unique_ptr<causal::IProtocol> proto,
                      metrics::Metrics* proto_metrics);

  /// Attach the durability layer (WAL + durable channels + catch-up).
  /// `transport_send` is where stamped outbound traffic ultimately goes.
  /// Must be called before recover()/start(); at most once.
  void configure_durability(Durability::Options opts,
                            std::function<void(net::Message)> transport_send);
  /// Replay the WAL through the adopted protocol. Runs on the calling
  /// thread; must precede start(). No-op without configure_durability().
  /// Returns false (engine unusable) with `*err` set on failure.
  bool recover(std::string* err);

  /// Install the batch-end hook. Must precede start(); at most once.
  void set_batch_end_hook(BatchEndHook hook);

  /// Launch the apply thread. The protocol must already be adopted.
  void start();
  /// Drain queued commands, abort parked reads/waiters, join the apply
  /// thread. Producers blocked in enqueue or on completions observe
  /// std::nullopt. Idempotent.
  void stop();
  bool running() const noexcept;

  // ---- blocking producer API (client/admin threads; never call from an
  //      apply thread or an engine callback) ----
  // Every call returns std::nullopt iff the engine is (or goes) stopped.

  /// `local_replica` tells the engine whether peek(x) is meaningful here
  /// (the caller owns the replica map; the engine stays protocol-only).
  std::optional<WriteResult> write(causal::VarId x, std::string data,
                                   bool local_replica);
  std::optional<causal::Value> read(causal::VarId x);
  /// Causally consistent multi-key cut; all vars must be locally replicated
  /// (the caller validates — the engine just executes in one apply slot).
  std::optional<std::vector<causal::Value>> snapshot(
      const std::vector<causal::VarId>& xs);
  std::optional<std::vector<std::uint8_t>> coverage_token(
      causal::SiteId target);
  /// Wait until the protocol covers `token`, up to `wait_us`. Returns the
  /// final covered verdict (false on timeout).
  std::optional<bool> wait_covered(std::vector<std::uint8_t> token,
                                   std::uint64_t wait_us);
  std::optional<StatusSnapshot> status();
  /// Copy of the protocol-side metrics (taken on the apply thread, so it is
  /// a consistent snapshot).
  std::optional<metrics::Metrics> protocol_metrics();
  /// Value-store engine counters (same apply-thread snapshot discipline).
  std::optional<store::EngineStats> store_stats();

  // ---- async producer API (reactor threads, sharded-engine plumbing) ----
  // Enqueues never block on the queue bound (backpressure lives at the
  // connection layer); the callback always fires exactly once.

  void async_write(causal::VarId x, std::string data, bool local_replica,
                   WriteCb cb);
  void async_read(causal::VarId x, ReadCb cb);
  void async_snapshot(std::vector<causal::VarId> xs, SnapshotCb cb);
  void async_token(causal::SiteId target, TokenCb cb);
  void async_covered(std::vector<std::uint8_t> token, std::uint64_t wait_us,
                     CoveredCb cb);
  /// Deadline-less covered wait for the sharded engine's envelope
  /// admission: cb(true) once the token is covered, cb(nullopt) if the
  /// engine stops first (cb may fire synchronously in that case).
  /// `bounded=true` blocks on the queue bound — only callable from
  /// delivery/client threads; pass false from apply-thread contexts.
  void post_covered_callback(std::vector<std::uint8_t> token, CoveredCb cb,
                             bool bounded);

  // ---- non-blocking producer API ----

  /// Transport delivery: enqueue a peer message apply. Blocks only on the
  /// queue bound (with `bounded=false` it never blocks — required when the
  /// caller is another shard's apply thread releasing a parked envelope);
  /// drops the message if the engine is stopped (shutdown races only — a
  /// live engine never drops).
  void apply_message(net::Message msg, bool bounded = true);
  /// Timer thread: marshal a Services::schedule callback onto the apply
  /// thread. Dropped if the engine is stopped.
  void post_timer(std::function<void()> fn);
  /// Enqueue one anti-entropy round (watermark announcements, batch-policy
  /// WAL sync, checkpoint-if-due). Dropped if the engine is stopped.
  void post_catchup_tick();

  // ---- apply-thread entry points (Services callbacks) ----

  /// Services::send target: runs *inside* protocol calls on the apply
  /// thread (or the recovering thread during replay) — never enqueues.
  /// Stamps/retains updates and forwards to the transport.
  void protocol_send(net::Message msg);
  /// Services::persist_meta_merge target (same threading contract).
  void persist_meta_merge(causal::VarId x, causal::SiteId responder,
                          const std::uint8_t* data, std::size_t len);

  QueueStats queue_stats() const;
  /// Snapshot of WAL/catch-up counters; defaults when no durability layer.
  std::optional<Durability::Stats> durability_stats();
  /// Catch-up gate view for SiteServer::start (see Durability).
  std::optional<Durability::CatchupProgress> catchup_progress();

 private:
  struct Cmd {
    CmdKind kind;
    std::function<void()> run;  ///< executes on the apply thread
  };

  /// One blocking producer's rendezvous with the apply thread.
  template <class T>
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<T> value;
    bool aborted = false;

    void fulfill(T v) {
      {
        std::lock_guard lk(mu);
        value = std::move(v);
      }
      cv.notify_all();
    }
    void abort() {
      {
        std::lock_guard lk(mu);
        aborted = true;
      }
      cv.notify_all();
    }
    std::optional<T> wait() {
      std::unique_lock lk(mu);
      cv.wait(lk, [&] { return value.has_value() || aborted; });
      return std::move(value);
    }
  };

  /// A read whose RemoteFetch continuation has not fired yet.
  struct ReadState {
    ReadCb cb;
    bool fired = false;  ///< apply-thread-only
  };

  struct CoveredWaiter {
    std::vector<std::uint8_t> token;
    bool has_deadline = true;
    std::chrono::steady_clock::time_point deadline{};
    std::shared_ptr<CoveredCb> cb;
  };

  /// Enqueue; returns false if the engine is stopped (command not queued).
  /// `bounded` enqueues block while the queue is at capacity; unbounded
  /// ones never wait (apply threads and engine callbacks must use those to
  /// stay deadlock-free).
  bool enqueue(CmdKind kind, std::function<void()> run, bool bounded);
  /// Run `fn` now, or — inside a batch — after the batch-end hook.
  void defer(std::function<void()> fn);
  /// True iff the apply thread is gone for good (stopped and joined, or
  /// never started) — direct protocol reads are then race-free.
  bool quiescent() const;
  void loop();
  void recheck_covered_waiters(bool expire_only);
  void abort_parked();

  void submit_write(causal::VarId x, std::string data, bool local_replica,
                    WriteCb cb, bool bounded);
  void submit_read(causal::VarId x, ReadCb cb, bool bounded);
  void submit_snapshot(std::vector<causal::VarId> xs, SnapshotCb cb,
                       bool bounded);
  void submit_token(causal::SiteId target, TokenCb cb, bool bounded);
  void submit_covered(std::vector<std::uint8_t> token, bool has_deadline,
                      std::chrono::steady_clock::time_point deadline,
                      CoveredCb cb, bool bounded);

  Options opts_;
  std::unique_ptr<causal::IProtocol> proto_;
  metrics::Metrics* proto_metrics_ = nullptr;  ///< apply-thread-only reads
  /// Apply-thread-only after recover(); null when the server runs without
  /// persistence or catch-up (e.g. unit-test engines).
  std::unique_ptr<Durability> durability_;
  BatchEndHook batch_end_hook_;  ///< apply-thread-only after start()

  /// Serializes start()/stop() against each other (two concurrent stop()s
  /// must not both reach the join) and against the quiescent-fallback
  /// protocol reads in status()/protocol_metrics(). Lock order:
  /// lifecycle_mu_ before mu_; never taken on the apply thread.
  mutable std::mutex lifecycle_mu_;
  mutable std::mutex mu_;
  std::condition_variable cv_produce_;  ///< queue has room
  std::condition_variable cv_consume_;  ///< queue non-empty / stopping
  std::deque<Cmd> queue_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::uint64_t peak_depth_ = 0;
  std::uint64_t producer_waits_ = 0;
  std::uint64_t enqueued_[kCmdKinds] = {};
  /// Parked-work gauges mirrored out of the apply thread for queue_stats().
  std::atomic<std::uint64_t> parked_reads_gauge_{0};
  std::atomic<std::uint64_t> covered_waiters_gauge_{0};

  std::thread apply_thread_;

  // ---- apply-thread-private state (no locks needed) ----
  std::vector<std::shared_ptr<ReadState>> parked_reads_;
  /// covered_by waiters parked until coverage or deadline.
  std::vector<CoveredWaiter> covered_waiters_;
  /// Callbacks deferred to the end of the current batch (fired after the
  /// batch-end hook; see the callback-discipline comment above).
  std::vector<std::function<void()>> deferred_;
  bool in_batch_ = false;
};

}  // namespace ccpr::server
