// Per-site write-ahead log for the TCP runtime.
//
// Append-only file of CRC32-framed records:
//
//   [u32 len][u32 crc32][u8 type][payload...]
//
// `len` counts the type byte plus the payload; the CRC covers the same
// bytes. Little-endian on the wire, matching net/frame. A record is only
// as durable as the sync policy makes it:
//
//   * kAlways — fsync after every append. Survives power loss.
//   * kBatch  — the write() syscall is still issued per append (so a
//     SIGKILL of the process loses nothing the kernel accepted), but
//     fsync only happens on checkpoints and explicit sync() calls; a
//     whole-machine power cut can lose the un-synced tail.
//
// Recovery scans the current generation file front to back and *truncates
// at the first bad frame* (short header, short body, length out of range,
// CRC mismatch): a torn tail from a crash mid-append is expected damage,
// not corruption, and everything before it is intact by construction.
//
// Checkpoints bound replay: checkpoint(payload) starts a *new generation
// file* whose first record is the checkpoint, flips the CURRENT pointer
// file to it (write-tmp + fsync + rename, so the flip is atomic), and
// deletes older generations. Recovery therefore reads exactly one file:
// an optional leading kEpoch/kCheckpoint record plus the tail to replay.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "causal/types.hpp"

namespace ccpr::server {

class Wal {
 public:
  enum class Sync : std::uint8_t { kAlways, kBatch };

  /// Record types. Values are on-disk format; never renumber.
  enum RecordType : std::uint8_t {
    kCheckpoint = 1,  ///< full engine + protocol state; first record of a gen
    kLocalWrite = 2,  ///< a client write applied at this site
    kPeerUpdate = 3,  ///< a peer kUpdate admitted by the inbound channel
    kMetaMerge = 4,   ///< causal metadata merged from a fetch response
    kEpoch = 5,       ///< this site's channel epoch; first record of gen 0
  };

  struct Record {
    std::uint8_t type = 0;
    std::string payload;
  };

  struct Stats {
    std::uint64_t records_appended = 0;
    std::uint64_t bytes_appended = 0;  ///< frame bytes, headers included
    std::uint64_t fsyncs = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t recovered_records = 0;  ///< records read back at open()
    std::uint64_t truncated_bytes = 0;    ///< torn tail discarded at open()
  };

  struct OpenResult {
    std::vector<Record> records;  ///< current generation, append order
    bool created = false;         ///< no prior WAL existed for this site
  };

  /// Offline summary for `ccpr_client wal-stat`.
  struct InspectResult {
    std::string file;
    std::uint64_t generation = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::uint64_t truncated_bytes = 0;
    std::uint64_t counts_by_type[6] = {};  ///< indexed by RecordType
    std::string checkpoint_payload;        ///< empty when none
    std::uint64_t checkpoint_bytes = 0;
    std::string epoch_payload;                 ///< empty when none
    std::vector<Record> tail_after_checkpoint;  ///< for watermark recomputation
  };

  struct Options {
    std::string dir;
    causal::SiteId site = 0;
    Sync sync = Sync::kAlways;
  };

  /// Open (creating if necessary) the WAL for `opts.site` under `opts.dir`.
  /// Surviving records of the current generation land in `out`; on
  /// unrecoverable I/O errors returns nullptr with a message in `err`.
  static std::unique_ptr<Wal> open(const Options& opts, OpenResult* out,
                                   std::string* err);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one record (fsyncs under Sync::kAlways).
  bool append(RecordType type, std::string_view payload);
  /// Force the file contents to stable storage (batch-policy callers).
  bool sync();
  /// Rotate to a new generation whose first record is `payload`, flip
  /// CURRENT, delete older generations. Always fsyncs.
  bool checkpoint(std::string_view payload);

  const Stats& stats() const noexcept { return stats_; }
  const std::string& path() const noexcept { return path_; }
  /// Current generation number; bumps on every checkpoint() rotation.
  /// Spill segments stamp this into their file names so a store engine can
  /// tell its own generation's segments from stale ones.
  std::uint64_t generation() const noexcept { return generation_; }

  /// Read-only summary of the WAL for one site under `dir` (resolved via
  /// its CURRENT file). No locks are taken: inspecting a live WAL sees
  /// some prefix of it, which is fine for debugging.
  static bool inspect(const std::string& dir, causal::SiteId site,
                      InspectResult* out, std::string* err);

 private:
  Wal() = default;

  bool write_frame(std::uint8_t type, std::string_view payload);
  bool fsync_now();

  std::string dir_;
  causal::SiteId site_ = 0;
  Sync sync_ = Sync::kAlways;
  int fd_ = -1;
  std::uint64_t generation_ = 0;
  std::string path_;
  Stats stats_;
};

/// CRC-32 (IEEE 802.3, reflected) over `data`. Exposed for tests.
std::uint32_t wal_crc32(std::string_view data);

}  // namespace ccpr::server
