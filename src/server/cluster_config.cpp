#include "server/cluster_config.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace ccpr::server {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;  // rest of the line is a comment
    out.push_back(tok);
  }
  return out;
}

bool parse_u32(const std::string& tok, std::uint32_t* out) {
  try {
    const unsigned long v = std::stoul(tok);
    if (v > 0xffffffffUL) return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_u16(const std::string& tok, std::uint16_t* out) {
  std::uint32_t v = 0;
  if (!parse_u32(tok, &v) || v > 0xffff) return false;
  *out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_bool(const std::string& tok, bool* out) {
  if (tok == "true" || tok == "1" || tok == "yes") {
    *out = true;
    return true;
  }
  if (tok == "false" || tok == "0" || tok == "no") {
    *out = false;
    return true;
  }
  return false;
}

/// "0,2,5" -> {0, 2, 5}
bool parse_site_list(const std::string& tok,
                     std::vector<causal::SiteId>* out) {
  std::stringstream ss(tok);
  std::string part;
  while (std::getline(ss, part, ',')) {
    std::uint32_t s = 0;
    if (part.empty() || !parse_u32(part, &s)) return false;
    out->push_back(s);
  }
  return !out->empty();
}

}  // namespace

causal::ReplicaMap ClusterConfig::replica_map() const {
  const std::uint32_t n = site_count();
  CCPR_EXPECTS(n > 0 && vars > 0);
  std::vector<std::vector<causal::SiteId>> replicas(vars);
  const std::uint32_t p = std::min(replicas_per_var, n);
  for (causal::VarId x = 0; x < vars; ++x) {
    for (std::uint32_t k = 0; k < p; ++k) {
      replicas[x].push_back((x + k) % n);
    }
  }
  for (const auto& [x, sites_of_x] : placement_overrides) {
    CCPR_EXPECTS(x < vars);
    replicas[x] = sites_of_x;
  }
  return causal::ReplicaMap::custom(n, std::move(replicas));
}

store::KeySpace ClusterConfig::key_space() const {
  std::vector<std::string> keys;
  keys.reserve(vars);
  for (std::uint32_t i = 0; i < vars; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  for (const auto& [x, name] : key_names) {
    CCPR_EXPECTS(x < vars);
    keys[x] = name;
  }
  return store::KeySpace(std::move(keys));
}

std::optional<ClusterConfig> ClusterConfig::parse(const std::string& text,
                                                  std::string* error) {
  const auto fail = [error](std::string msg) -> std::optional<ClusterConfig> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };

  ClusterConfig cfg;
  std::vector<std::pair<std::uint32_t, SiteAddress>> site_lines;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];
    const auto want = [&](std::size_t n) { return toks.size() == n + 1; };
    const auto where = [&] {
      return "line " + std::to_string(lineno) + ": ";
    };
    if (kw == "algorithm") {
      if (!want(1)) return fail(where() + "algorithm <token>");
      const auto alg = causal::algorithm_from_token(toks[1]);
      if (!alg) return fail(where() + "unknown algorithm '" + toks[1] + "'");
      cfg.algorithm = *alg;
    } else if (kw == "vars") {
      if (!want(1) || !parse_u32(toks[1], &cfg.vars) || cfg.vars == 0) {
        return fail(where() + "vars <positive count>");
      }
    } else if (kw == "replicas") {
      if (!want(1) || !parse_u32(toks[1], &cfg.replicas_per_var) ||
          cfg.replicas_per_var == 0) {
        return fail(where() + "replicas <positive count>");
      }
    } else if (kw == "site") {
      std::uint32_t id = 0;
      SiteAddress addr;
      if (!want(4) || !parse_u32(toks[1], &id) ||
          !parse_u16(toks[3], &addr.peer_port) ||
          !parse_u16(toks[4], &addr.client_port)) {
        return fail(where() + "site <id> <host> <peer-port> <client-port>");
      }
      addr.host = toks[2];
      site_lines.emplace_back(id, std::move(addr));
    } else if (kw == "place") {
      std::uint32_t x = 0;
      std::vector<causal::SiteId> sites_of_x;
      if (!want(2) || !parse_u32(toks[1], &x) ||
          !parse_site_list(toks[2], &sites_of_x)) {
        return fail(where() + "place <var> <site,site,...>");
      }
      cfg.placement_overrides.emplace_back(x, std::move(sites_of_x));
    } else if (kw == "key") {
      std::uint32_t x = 0;
      if (!want(2) || !parse_u32(toks[1], &x)) {
        return fail(where() + "key <var> <name>");
      }
      cfg.key_names.emplace_back(x, toks[2]);
    } else if (kw == "convergent") {
      if (!want(1) || !parse_bool(toks[1], &cfg.protocol.convergent)) {
        return fail(where() + "convergent <bool>");
      }
    } else if (kw == "no-gating") {
      bool no_gating = false;
      if (!want(1) || !parse_bool(toks[1], &no_gating)) {
        return fail(where() + "no-gating <bool>");
      }
      cfg.protocol.fetch_gating = !no_gating;
    } else if (kw == "fetch-timeout-us") {
      std::uint32_t us = 0;
      if (!want(1) || !parse_u32(toks[1], &us)) {
        return fail(where() + "fetch-timeout-us <microseconds>");
      }
      cfg.protocol.fetch_timeout_us = us;
    } else if (kw == "max-frame-bytes") {
      if (!want(1) || !parse_u32(toks[1], &cfg.max_frame_bytes)) {
        return fail(where() + "max-frame-bytes <bytes>");
      }
    } else if (kw == "sender-batch-bytes") {
      if (!want(1) || !parse_u32(toks[1], &cfg.sender_batch_bytes)) {
        return fail(where() + "sender-batch-bytes <bytes>");
      }
    } else if (kw == "peer-queue-cap") {
      if (!want(1) || !parse_u32(toks[1], &cfg.peer_queue_cap)) {
        return fail(where() + "peer-queue-cap <messages>");
      }
    } else if (kw == "engine-queue-cap") {
      if (!want(1) || !parse_u32(toks[1], &cfg.engine_queue_cap)) {
        return fail(where() + "engine-queue-cap <commands>");
      }
    } else {
      return fail(where() + "unknown keyword '" + kw + "'");
    }
  }

  if (site_lines.empty()) return fail("no 'site' lines");
  if (cfg.vars == 0) return fail("missing 'vars'");
  cfg.sites.resize(site_lines.size());
  std::vector<bool> seen(site_lines.size(), false);
  for (auto& [id, addr] : site_lines) {
    if (id >= cfg.sites.size()) {
      return fail("site ids must be dense 0..n-1 (got " +
                  std::to_string(id) + " of " +
                  std::to_string(cfg.sites.size()) + " sites)");
    }
    if (seen[id]) return fail("duplicate site id " + std::to_string(id));
    seen[id] = true;
    cfg.sites[id] = std::move(addr);
  }
  for (const auto& [x, sites_of_x] : cfg.placement_overrides) {
    if (x >= cfg.vars) {
      return fail("place: var " + std::to_string(x) + " out of range");
    }
    for (const causal::SiteId s : sites_of_x) {
      if (s >= cfg.site_count()) {
        return fail("place: site " + std::to_string(s) + " out of range");
      }
    }
  }
  for (const auto& [x, name] : cfg.key_names) {
    if (x >= cfg.vars) {
      return fail("key: var " + std::to_string(x) + " out of range");
    }
    (void)name;
  }
  return cfg;
}

std::optional<ClusterConfig> ClusterConfig::load(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), error);
}

std::string ClusterConfig::to_text() const {
  std::ostringstream out;
  out << "algorithm " << causal::algorithm_token(algorithm) << "\n";
  out << "vars " << vars << "\n";
  out << "replicas " << replicas_per_var << "\n";
  for (std::size_t id = 0; id < sites.size(); ++id) {
    out << "site " << id << ' ' << sites[id].host << ' '
        << sites[id].peer_port << ' ' << sites[id].client_port << "\n";
  }
  for (const auto& [x, sites_of_x] : placement_overrides) {
    out << "place " << x << ' ';
    for (std::size_t i = 0; i < sites_of_x.size(); ++i) {
      if (i > 0) out << ',';
      out << sites_of_x[i];
    }
    out << "\n";
  }
  for (const auto& [x, name] : key_names) {
    out << "key " << x << ' ' << name << "\n";
  }
  if (protocol.convergent) out << "convergent true\n";
  if (!protocol.fetch_gating) out << "no-gating true\n";
  if (protocol.fetch_timeout_us > 0) {
    out << "fetch-timeout-us " << protocol.fetch_timeout_us << "\n";
  }
  if (max_frame_bytes > 0) {
    out << "max-frame-bytes " << max_frame_bytes << "\n";
  }
  if (sender_batch_bytes > 0) {
    out << "sender-batch-bytes " << sender_batch_bytes << "\n";
  }
  if (peer_queue_cap > 0) out << "peer-queue-cap " << peer_queue_cap << "\n";
  if (engine_queue_cap > 0) {
    out << "engine-queue-cap " << engine_queue_cap << "\n";
  }
  return out.str();
}

ClusterConfig ClusterConfig::loopback(std::uint32_t n, std::uint32_t q,
                                      std::uint32_t p,
                                      std::uint16_t base_port) {
  CCPR_EXPECTS(n > 0 && q > 0 && p > 0);
  ClusterConfig cfg;
  cfg.vars = q;
  cfg.replicas_per_var = p;
  cfg.sites.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    cfg.sites[s].host = "127.0.0.1";
    cfg.sites[s].peer_port =
        base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + s);
    cfg.sites[s].client_port =
        base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + n + s);
  }
  return cfg;
}

}  // namespace ccpr::server
