#include "server/cluster_config.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "store/placement.hpp"
#include "util/assert.hpp"

namespace ccpr::server {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;  // rest of the line is a comment
    out.push_back(tok);
  }
  return out;
}

// Strict full-token parse: unlike std::stoul, trailing garbage ("80x80"),
// a leading sign, whitespace and empty tokens are all rejected, and
// overflow reports failure instead of throwing.
bool parse_u32(const std::string& tok, std::uint32_t* out) {
  std::uint32_t v = 0;
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, 10);
  if (ec != std::errc() || ptr != last || first == last) return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& tok, std::uint64_t* out) {
  std::uint64_t v = 0;
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, 10);
  if (ec != std::errc() || ptr != last || first == last) return false;
  *out = v;
  return true;
}

bool parse_u16(const std::string& tok, std::uint16_t* out) {
  std::uint32_t v = 0;
  if (!parse_u32(tok, &v) || v > 0xffff) return false;
  *out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_bool(const std::string& tok, bool* out) {
  if (tok == "true" || tok == "1" || tok == "yes") {
    *out = true;
    return true;
  }
  if (tok == "false" || tok == "0" || tok == "no") {
    *out = false;
    return true;
  }
  return false;
}

/// Latency class token: a number with a mandatory unit — "80ms", "500us",
/// "1s" — parsed to one-way microseconds. Unit-less numbers are rejected so
/// a config cannot silently mean the wrong scale.
bool parse_duration_us(const std::string& tok, std::uint32_t* out) {
  std::size_t unit = tok.size();
  while (unit > 0 && !(tok[unit - 1] >= '0' && tok[unit - 1] <= '9')) {
    --unit;
  }
  const std::string digits = tok.substr(0, unit);
  const std::string suffix = tok.substr(unit);
  std::uint32_t v = 0;
  if (!parse_u32(digits, &v)) return false;
  std::uint64_t us = 0;
  if (suffix == "us") {
    us = v;
  } else if (suffix == "ms") {
    us = static_cast<std::uint64_t>(v) * 1'000;
  } else if (suffix == "s") {
    us = static_cast<std::uint64_t>(v) * 1'000'000;
  } else {
    return false;
  }
  if (us > 0xffffffffULL) return false;
  *out = static_cast<std::uint32_t>(us);
  return true;
}

/// Render microseconds in the largest exact unit, the inverse of
/// parse_duration_us (to_text round-trips through it).
std::string format_duration_us(std::uint32_t us) {
  if (us >= 1'000'000 && us % 1'000'000 == 0) {
    return std::to_string(us / 1'000'000) + "s";
  }
  if (us >= 1'000 && us % 1'000 == 0) {
    return std::to_string(us / 1'000) + "ms";
  }
  return std::to_string(us) + "us";
}

/// "0,2,5" -> {0, 2, 5}. Duplicate ids are rejected: a replica set is a
/// set, and a doubled site would silently skew the placement quorum.
bool parse_site_list(const std::string& tok,
                     std::vector<causal::SiteId>* out) {
  std::stringstream ss(tok);
  std::string part;
  while (std::getline(ss, part, ',')) {
    std::uint32_t s = 0;
    if (part.empty() || !parse_u32(part, &s)) return false;
    for (const causal::SiteId prev : *out) {
      if (prev == s) return false;
    }
    out->push_back(s);
  }
  return !out->empty();
}

}  // namespace

const char* placement_token(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRing: return "ring";
    case PlacementPolicy::kHash: return "hash";
    case PlacementPolicy::kRegion: return "region";
  }
  return "ring";
}

causal::ReplicaMap ClusterConfig::replica_map() const {
  const std::uint32_t n = site_count();
  CCPR_EXPECTS(n > 0 && vars > 0);
  const std::uint32_t p = std::min(replicas_per_var, n);
  std::vector<std::vector<causal::SiteId>> replicas(vars);
  switch (placement) {
    case PlacementPolicy::kRing:
      for (causal::VarId x = 0; x < vars; ++x) {
        for (std::uint32_t k = 0; k < p; ++k) {
          replicas[x].push_back((x + k) % n);
        }
      }
      break;
    case PlacementPolicy::kHash: {
      const auto base = store::hash_placement(n, vars, p, placement_seed);
      for (causal::VarId x = 0; x < vars; ++x) {
        const auto reps = base.replicas(x);
        replicas[x].assign(reps.begin(), reps.end());
      }
      break;
    }
    case PlacementPolicy::kRegion: {
      CCPR_EXPECTS(!topology.empty());
      const auto base = store::region_placement(
          topology.region_of_site, topology.home_region_of_var(vars), p);
      for (causal::VarId x = 0; x < vars; ++x) {
        const auto reps = base.replicas(x);
        replicas[x].assign(reps.begin(), reps.end());
      }
      break;
    }
  }
  for (const auto& [x, sites_of_x] : placement_overrides) {
    CCPR_EXPECTS(x < vars);
    replicas[x] = sites_of_x;
  }
  auto rmap = causal::ReplicaMap::custom(n, std::move(replicas));
  if (!topology.empty()) {
    rmap.set_site_distances(topology.site_distance_matrix());
  }
  return rmap;
}

store::KeySpace ClusterConfig::key_space() const {
  std::vector<std::string> keys;
  keys.reserve(vars);
  for (std::uint32_t i = 0; i < vars; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  for (const auto& [x, name] : key_names) {
    CCPR_EXPECTS(x < vars);
    keys[x] = name;
  }
  return store::KeySpace(std::move(keys));
}

std::optional<ClusterConfig> ClusterConfig::parse(const std::string& text,
                                                  std::string* error) {
  const auto fail = [error](std::string msg) -> std::optional<ClusterConfig> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };

  ClusterConfig cfg;
  std::vector<std::pair<std::uint32_t, SiteAddress>> site_lines;
  // Region names on site/link lines resolve after the whole file is read,
  // so declaration order does not matter.
  std::vector<std::pair<std::size_t, std::string>> site_regions;  // by line
  struct LinkLine {
    std::size_t lineno;
    std::string a, b;
    std::uint32_t us;
  };
  std::vector<LinkLine> link_lines;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];
    const auto want = [&](std::size_t n) { return toks.size() == n + 1; };
    const auto where = [&] {
      return "line " + std::to_string(lineno) + ": ";
    };
    if (kw == "algorithm") {
      if (!want(1)) return fail(where() + "algorithm <token>");
      const auto alg = causal::algorithm_from_token(toks[1]);
      if (!alg) return fail(where() + "unknown algorithm '" + toks[1] + "'");
      cfg.algorithm = *alg;
    } else if (kw == "vars") {
      if (!want(1) || !parse_u32(toks[1], &cfg.vars) || cfg.vars == 0) {
        return fail(where() + "vars <positive count>");
      }
    } else if (kw == "replicas") {
      if (!want(1) || !parse_u32(toks[1], &cfg.replicas_per_var) ||
          cfg.replicas_per_var == 0) {
        return fail(where() + "replicas <positive count>");
      }
    } else if (kw == "site") {
      std::uint32_t id = 0;
      SiteAddress addr;
      if ((!want(4) && !want(5)) || !parse_u32(toks[1], &id) ||
          !parse_u16(toks[3], &addr.peer_port) ||
          !parse_u16(toks[4], &addr.client_port)) {
        return fail(where() +
                    "site <id> <host> <peer-port> <client-port> [region]");
      }
      addr.host = toks[2];
      if (want(5)) {
        site_regions.emplace_back(site_lines.size(), toks[5]);
      }
      site_lines.emplace_back(id, std::move(addr));
    } else if (kw == "region") {
      std::uint32_t intra = Topology::kDefaultIntraUs;
      if ((!want(1) && !want(2)) ||
          (want(2) && !parse_duration_us(toks[2], &intra))) {
        return fail(where() + "region <name> [intra-latency, e.g. 2ms]");
      }
      if (cfg.topology.region_id(toks[1]).has_value()) {
        return fail(where() + "duplicate region '" + toks[1] + "'");
      }
      cfg.topology.region_names.push_back(toks[1]);
      cfg.topology.intra_us.push_back(intra);
    } else if (kw == "link") {
      std::uint32_t us = 0;
      if (!want(3) || !parse_duration_us(toks[3], &us)) {
        return fail(where() + "link <region> <region> <latency, e.g. 80ms>");
      }
      link_lines.push_back(LinkLine{lineno, toks[1], toks[2], us});
    } else if (kw == "placement") {
      if (!want(1) && !want(2)) {
        return fail(where() + "placement ring|hash|region [hash-seed]");
      }
      if (toks[1] == "ring") {
        cfg.placement = PlacementPolicy::kRing;
      } else if (toks[1] == "hash") {
        cfg.placement = PlacementPolicy::kHash;
      } else if (toks[1] == "region") {
        cfg.placement = PlacementPolicy::kRegion;
      } else {
        return fail(where() + "unknown placement '" + toks[1] + "'");
      }
      if (want(2)) {
        if (cfg.placement != PlacementPolicy::kHash ||
            !parse_u32(toks[2], &cfg.placement_seed)) {
          return fail(where() + "placement seed is for 'hash' only");
        }
      }
    } else if (kw == "place") {
      std::uint32_t x = 0;
      std::vector<causal::SiteId> sites_of_x;
      if (!want(2) || !parse_u32(toks[1], &x) ||
          !parse_site_list(toks[2], &sites_of_x)) {
        return fail(where() + "place <var> <site,site,...>");
      }
      cfg.placement_overrides.emplace_back(x, std::move(sites_of_x));
    } else if (kw == "key") {
      std::uint32_t x = 0;
      if (!want(2) || !parse_u32(toks[1], &x)) {
        return fail(where() + "key <var> <name>");
      }
      cfg.key_names.emplace_back(x, toks[2]);
    } else if (kw == "convergent") {
      if (!want(1) || !parse_bool(toks[1], &cfg.protocol.convergent)) {
        return fail(where() + "convergent <bool>");
      }
    } else if (kw == "no-gating") {
      bool no_gating = false;
      if (!want(1) || !parse_bool(toks[1], &no_gating)) {
        return fail(where() + "no-gating <bool>");
      }
      cfg.protocol.fetch_gating = !no_gating;
    } else if (kw == "fetch-timeout-us") {
      std::uint32_t us = 0;
      if (!want(1) || !parse_u32(toks[1], &us)) {
        return fail(where() + "fetch-timeout-us <microseconds>");
      }
      cfg.protocol.fetch_timeout_us = us;
    } else if (kw == "max-frame-bytes") {
      if (!want(1) || !parse_u32(toks[1], &cfg.max_frame_bytes)) {
        return fail(where() + "max-frame-bytes <bytes>");
      }
    } else if (kw == "sender-batch-bytes") {
      if (!want(1) || !parse_u32(toks[1], &cfg.sender_batch_bytes)) {
        return fail(where() + "sender-batch-bytes <bytes>");
      }
    } else if (kw == "peer-queue-cap") {
      if (!want(1) || !parse_u32(toks[1], &cfg.peer_queue_cap)) {
        return fail(where() + "peer-queue-cap <messages>");
      }
    } else if (kw == "engine-queue-cap") {
      if (!want(1) || !parse_u32(toks[1], &cfg.engine_queue_cap)) {
        return fail(where() + "engine-queue-cap <commands>");
      }
    } else if (kw == "engine-shards") {
      if (!want(1) || !parse_u32(toks[1], &cfg.protocol.engine_shards) ||
          cfg.protocol.engine_shards == 0 ||
          cfg.protocol.engine_shards > 256) {
        return fail(where() + "engine-shards <count, 1..256>");
      }
    } else if (kw == "client-io-threads") {
      if (!want(1) || !parse_u32(toks[1], &cfg.client_io_threads) ||
          cfg.client_io_threads == 0 || cfg.client_io_threads > 64) {
        return fail(where() + "client-io-threads <count, 1..64>");
      }
    } else if (kw == "catchup-retain") {
      if (!want(1) || !parse_u32(toks[1], &cfg.catchup_retain)) {
        return fail(where() + "catchup-retain <messages>");
      }
    } else if (kw == "catchup-interval-ms") {
      if (!want(1) || !parse_u32(toks[1], &cfg.catchup_interval_ms)) {
        return fail(where() + "catchup-interval-ms <milliseconds>");
      }
    } else if (kw == "catchup-timeout-ms") {
      if (!want(1) || !parse_u32(toks[1], &cfg.catchup_timeout_ms)) {
        return fail(where() + "catchup-timeout-ms <milliseconds>");
      }
    } else if (kw == "checkpoint-every") {
      if (!want(1) || !parse_u32(toks[1], &cfg.checkpoint_every)) {
        return fail(where() + "checkpoint-every <records>");
      }
    } else if (kw == "store-engine") {
      if (!want(1) ||
          !store::parse_engine_kind(toks[1], &cfg.protocol.store_engine.kind)) {
        return fail(where() + "store-engine map|compact");
      }
    } else if (kw == "store-shards") {
      if (!want(1) ||
          !parse_u32(toks[1], &cfg.protocol.store_engine.shards) ||
          cfg.protocol.store_engine.shards == 0) {
        return fail(where() + "store-shards <count>");
      }
    } else if (kw == "store-inline-max") {
      if (!want(1) ||
          !parse_u32(toks[1], &cfg.protocol.store_engine.inline_max)) {
        return fail(where() + "store-inline-max <bytes>");
      }
    } else if (kw == "store-spill-budget-bytes") {
      if (!want(1) ||
          !parse_u64(toks[1],
                     &cfg.protocol.store_engine.spill_budget_bytes)) {
        return fail(where() + "store-spill-budget-bytes <bytes>");
      }
    } else if (kw == "heartbeat-interval") {
      if (!want(1) || !parse_duration_us(toks[1], &cfg.heartbeat_interval_us) ||
          cfg.heartbeat_interval_us == 0) {
        return fail(where() + "heartbeat-interval <duration, e.g. 250ms>");
      }
    } else if (kw == "suspect-after") {
      if (!want(1) || !parse_duration_us(toks[1], &cfg.suspect_after_us) ||
          cfg.suspect_after_us == 0) {
        return fail(where() + "suspect-after <duration, e.g. 1s>");
      }
    } else {
      return fail(where() + "unknown keyword '" + kw + "'");
    }
  }

  if (site_lines.empty()) return fail("no 'site' lines");
  cfg.sites.resize(site_lines.size());
  std::vector<bool> seen(site_lines.size(), false);
  std::vector<std::string> region_by_id(site_lines.size());
  for (std::size_t i = 0; i < site_lines.size(); ++i) {
    auto& [id, addr] = site_lines[i];
    if (id >= cfg.sites.size()) {
      return fail("site ids must be dense 0..n-1 (got " +
                  std::to_string(id) + " of " +
                  std::to_string(cfg.sites.size()) + " sites)");
    }
    if (seen[id]) return fail("duplicate site id " + std::to_string(id));
    seen[id] = true;
    cfg.sites[id] = std::move(addr);
    for (const auto& [line_index, name] : site_regions) {
      if (line_index == i) region_by_id[id] = name;
    }
  }
  if (!cfg.topology.empty() || !site_regions.empty()) {
    cfg.topology.region_of_site.resize(cfg.sites.size());
    for (std::size_t id = 0; id < cfg.sites.size(); ++id) {
      if (region_by_id[id].empty()) {
        return fail("site " + std::to_string(id) +
                    ": missing region (regions are declared)");
      }
      const auto r = cfg.topology.region_id(region_by_id[id]);
      if (!r) {
        return fail("site " + std::to_string(id) + ": unknown region '" +
                    region_by_id[id] + "'");
      }
      cfg.topology.region_of_site[id] = *r;
    }
  }
  for (const auto& ll : link_lines) {
    const auto a = cfg.topology.region_id(ll.a);
    const auto b = cfg.topology.region_id(ll.b);
    if (!a || !b) {
      return fail("line " + std::to_string(ll.lineno) +
                  ": link names an unknown region");
    }
    cfg.topology.links.push_back(Topology::Link{*a, *b, ll.us});
  }
  std::string verr;
  if (!cfg.validate(&verr)) return fail(std::move(verr));
  return cfg;
}

bool ClusterConfig::validate(std::string* error) const {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (sites.empty()) return fail("no sites");
  if (vars == 0) return fail("missing 'vars'");
  if (replicas_per_var == 0) return fail("replicas must be positive");
  for (const auto& [x, sites_of_x] : placement_overrides) {
    if (x >= vars) {
      return fail("place: var " + std::to_string(x) + " out of range");
    }
    if (sites_of_x.empty()) {
      return fail("place: var " + std::to_string(x) + " has no sites");
    }
    for (std::size_t i = 0; i < sites_of_x.size(); ++i) {
      if (sites_of_x[i] >= site_count()) {
        return fail("place: site " + std::to_string(sites_of_x[i]) +
                    " out of range");
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (sites_of_x[j] == sites_of_x[i]) {
          return fail("place: var " + std::to_string(x) +
                      " lists site " + std::to_string(sites_of_x[i]) +
                      " twice");
        }
      }
    }
  }
  for (const auto& [x, name] : key_names) {
    if (x >= vars) {
      return fail("key: var " + std::to_string(x) + " out of range");
    }
    (void)name;
  }
  if (placement == PlacementPolicy::kRegion && topology.empty()) {
    return fail("placement region requires declared regions");
  }
  if (protocol.engine_shards == 0 || protocol.engine_shards > 256) {
    return fail("engine-shards must be in 1..256");
  }
  if (client_io_threads > 64) {
    return fail("client-io-threads must be in 1..64");
  }
  if (placement_seed != 0 && placement != PlacementPolicy::kHash) {
    return fail("placement seed is for 'hash' only");
  }
  std::string terr;
  if (!topology.validate(site_count(), &terr)) return fail(std::move(terr));
  return true;
}

std::optional<ClusterConfig> ClusterConfig::load(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), error);
}

std::string ClusterConfig::to_text() const {
  std::ostringstream out;
  out << "algorithm " << causal::algorithm_token(algorithm) << "\n";
  out << "vars " << vars << "\n";
  out << "replicas " << replicas_per_var << "\n";
  if (placement != PlacementPolicy::kRing || placement_seed != 0) {
    out << "placement " << placement_token(placement);
    if (placement_seed != 0) out << ' ' << placement_seed;
    out << "\n";
  }
  for (std::size_t r = 0; r < topology.region_names.size(); ++r) {
    out << "region " << topology.region_names[r] << ' '
        << format_duration_us(topology.intra_us[r]) << "\n";
  }
  for (const auto& link : topology.links) {
    out << "link " << topology.region_names[link.a] << ' '
        << topology.region_names[link.b] << ' '
        << format_duration_us(link.us) << "\n";
  }
  for (std::size_t id = 0; id < sites.size(); ++id) {
    out << "site " << id << ' ' << sites[id].host << ' '
        << sites[id].peer_port << ' ' << sites[id].client_port;
    if (id < topology.region_of_site.size()) {
      out << ' ' << topology.region_names[topology.region_of_site[id]];
    }
    out << "\n";
  }
  for (const auto& [x, sites_of_x] : placement_overrides) {
    out << "place " << x << ' ';
    for (std::size_t i = 0; i < sites_of_x.size(); ++i) {
      if (i > 0) out << ',';
      out << sites_of_x[i];
    }
    out << "\n";
  }
  for (const auto& [x, name] : key_names) {
    out << "key " << x << ' ' << name << "\n";
  }
  if (protocol.convergent) out << "convergent true\n";
  if (!protocol.fetch_gating) out << "no-gating true\n";
  if (protocol.fetch_timeout_us > 0) {
    out << "fetch-timeout-us " << protocol.fetch_timeout_us << "\n";
  }
  if (max_frame_bytes > 0) {
    out << "max-frame-bytes " << max_frame_bytes << "\n";
  }
  if (sender_batch_bytes > 0) {
    out << "sender-batch-bytes " << sender_batch_bytes << "\n";
  }
  if (peer_queue_cap > 0) out << "peer-queue-cap " << peer_queue_cap << "\n";
  if (engine_queue_cap > 0) {
    out << "engine-queue-cap " << engine_queue_cap << "\n";
  }
  if (protocol.engine_shards > 1) {
    out << "engine-shards " << protocol.engine_shards << "\n";
  }
  if (client_io_threads > 0) {
    out << "client-io-threads " << client_io_threads << "\n";
  }
  if (catchup_retain > 0) out << "catchup-retain " << catchup_retain << "\n";
  if (catchup_interval_ms > 0) {
    out << "catchup-interval-ms " << catchup_interval_ms << "\n";
  }
  if (catchup_timeout_ms > 0) {
    out << "catchup-timeout-ms " << catchup_timeout_ms << "\n";
  }
  if (checkpoint_every > 0) {
    out << "checkpoint-every " << checkpoint_every << "\n";
  }
  if (protocol.store_engine.kind != store::EngineKind::kMap) {
    out << "store-engine "
        << store::engine_kind_token(protocol.store_engine.kind) << "\n";
  }
  if (protocol.store_engine.shards != store::EngineOptions{}.shards) {
    out << "store-shards " << protocol.store_engine.shards << "\n";
  }
  if (protocol.store_engine.inline_max != store::EngineOptions{}.inline_max) {
    out << "store-inline-max " << protocol.store_engine.inline_max << "\n";
  }
  if (protocol.store_engine.spill_budget_bytes > 0) {
    out << "store-spill-budget-bytes "
        << protocol.store_engine.spill_budget_bytes << "\n";
  }
  if (heartbeat_interval_us > 0) {
    out << "heartbeat-interval " << format_duration_us(heartbeat_interval_us)
        << "\n";
  }
  if (suspect_after_us > 0) {
    out << "suspect-after " << format_duration_us(suspect_after_us) << "\n";
  }
  return out.str();
}

bool parse_duration_token(const std::string& tok, std::uint32_t* out) {
  return parse_duration_us(tok, out);
}

ClusterConfig ClusterConfig::loopback(std::uint32_t n, std::uint32_t q,
                                      std::uint32_t p,
                                      std::uint16_t base_port) {
  CCPR_EXPECTS(n > 0 && q > 0 && p > 0);
  ClusterConfig cfg;
  cfg.vars = q;
  cfg.replicas_per_var = p;
  cfg.sites.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    cfg.sites[s].host = "127.0.0.1";
    cfg.sites[s].peer_port =
        base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + s);
    cfg.sites[s].client_port =
        base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + n + s);
  }
  return cfg;
}

}  // namespace ccpr::server
