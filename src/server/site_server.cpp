#include "server/site_server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "causal/value_codec.hpp"
#include "server/client_protocol.hpp"
#include "server/metrics_text.hpp"
#include "util/assert.hpp"

namespace ccpr::server {

namespace {

sim::SimTime wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SiteServer::SiteServer(ClusterConfig config, causal::SiteId self)
    : SiteServer(std::move(config), self, Options{}) {}

SiteServer::SiteServer(ClusterConfig config, causal::SiteId self, Options opts)
    : config_(std::move(config)),
      self_(self),
      opts_(std::move(opts)),
      rmap_(config_.replica_map()),
      max_frame_bytes_(config_.max_frame_bytes > 0
                           ? config_.max_frame_bytes
                           : net::kDefaultMaxFrameBytes) {
  CCPR_EXPECTS(self_ < config_.site_count());
  net::TcpTransport::Options topts;
  topts.self = self_;
  topts.listen_host = config_.sites[self_].host;
  topts.listen_port = config_.sites[self_].peer_port;
  topts.max_frame_bytes = max_frame_bytes_;
  topts.jitter_seed = 0xcc9e0000u + self_;
  if (config_.sender_batch_bytes > 0) {
    topts.max_batch_bytes = config_.sender_batch_bytes;
  }
  if (config_.peer_queue_cap > 0) {
    topts.max_queue_msgs = config_.peer_queue_cap;
  }
  for (causal::SiteId s = 0; s < config_.site_count(); ++s) {
    if (s == self_) continue;
    topts.peers.push_back(net::TcpTransport::Peer{
        s, config_.sites[s].host, config_.sites[s].peer_port});
  }
  transport_ =
      std::make_unique<net::TcpTransport>(std::move(topts), transport_metrics_);
  transport_->connect(self_, this);

  ProtocolEngine::Options eopts;
  if (config_.engine_queue_cap > 0) {
    eopts.queue_capacity = config_.engine_queue_cap;
  }
  engine_ = std::make_unique<ProtocolEngine>(eopts);

  Durability::Options dopts;
  dopts.data_dir = opts_.data_dir;
  dopts.wal_sync = opts_.wal_sync;
  dopts.self = self_;
  dopts.sites = config_.site_count();
  if (config_.catchup_retain > 0) dopts.catchup_retain = config_.catchup_retain;
  if (config_.checkpoint_every > 0) {
    dopts.checkpoint_every = config_.checkpoint_every;
  }
  // Resend chunks must fit under the per-peer outbound queue cap, or the
  // queue's drop-oldest overflow policy discards the front of every chunk.
  if (config_.peer_queue_cap > 0) {
    dopts.catchup_burst = std::min<std::uint32_t>(
        dopts.catchup_burst, std::max<std::uint32_t>(config_.peer_queue_cap / 2, 1));
  }
  engine_->configure_durability(
      dopts, [this](net::Message m) { transport_->send(std::move(m)); });

  causal::Services svc;
  // send runs on the engine's apply thread (from inside protocol calls);
  // schedule callbacks are marshalled back onto it as timer commands —
  // both sides of the Services re-entrancy contract are discharged by the
  // engine's single apply thread. Sends route through the durability layer
  // so outbound updates get their durable channel stamps.
  svc.send = [this](net::Message m) { engine_->protocol_send(std::move(m)); };
  svc.persist_meta_merge = [this](causal::VarId x, causal::SiteId responder,
                                  const std::uint8_t* data, std::size_t len) {
    engine_->persist_meta_merge(x, responder, data, len);
  };
  svc.now = [] { return wall_now_us(); };
  svc.schedule = [this](sim::SimTime delay, std::function<void()> fn) {
    timers_.schedule_after(
        delay, [this, fn = std::move(fn)] { engine_->post_timer(fn); });
  };
  svc.metrics = &proto_metrics_;
  engine_->adopt_protocol(
      causal::make_protocol(config_.algorithm, self_, rmap_, std::move(svc),
                            config_.protocol),
      &proto_metrics_);
}

SiteServer::~SiteServer() { stop(); }

bool SiteServer::start() {
  CCPR_EXPECTS(!started_);
  stopping_.store(false, std::memory_order_relaxed);
  // Recovery replays the WAL on this thread before anything concurrent
  // exists; a failure here means the durable state is unusable and the
  // operator must intervene (delete the WAL to restart empty).
  std::string err;
  if (!engine_->recover(&err)) {
    std::fprintf(stderr, "ccpr_server: site %u recovery failed: %s\n", self_,
                 err.c_str());
    return false;
  }
  // The engine must accept commands before the transport can deliver.
  engine_->start();
  if (!transport_->start()) {
    engine_->stop();
    return false;
  }
  timers_.start();
  engine_->post_catchup_tick();  // announce watermarks immediately
  schedule_catchup_tick();
  // Catch-up gate: a site restarting from a WAL answers clients only after
  // every peer has streamed the updates it missed (bounded by the timeout —
  // a dead peer must not wedge the restart forever).
  const auto progress = engine_->catchup_progress();
  if (progress && progress->recovered) {
    const std::uint32_t timeout_ms = config_.catchup_timeout_ms > 0
                                         ? config_.catchup_timeout_ms
                                         : 2000;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto p = engine_->catchup_progress();
      if (!p || p->complete) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  client_listen_ = net::tcp_listen(config_.sites[self_].host,
                                   config_.sites[self_].client_port,
                                   &client_port_);
  if (!client_listen_.valid()) {
    timers_.stop();
    transport_->stop();
    engine_->stop();
    return false;
  }
  client_accept_thread_ = std::thread([this] { accept_clients(); });
  started_ = true;
  return true;
}

void SiteServer::schedule_catchup_tick() {
  const std::uint32_t interval_ms =
      config_.catchup_interval_ms > 0 ? config_.catchup_interval_ms : 500;
  timers_.schedule_after(
      static_cast<std::int64_t>(interval_ms) * 1000, [this] {
        if (stopping_.load(std::memory_order_relaxed)) return;
        engine_->post_catchup_tick();
        schedule_catchup_tick();
      });
}

void SiteServer::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Stop taking new clients: shut the listener down and join the accept
  // thread *before* sweeping conns_, so no connection accepted at the last
  // moment can be inserted after the sweep (accept_clients holds conns_mu_
  // only for the insert) and then sit in a socket read forever.
  client_listen_.shutdown_both();
  if (client_accept_thread_.joinable()) client_accept_thread_.join();
  // Unblock every client thread parked in a socket read.
  {
    std::lock_guard lk(conns_mu_);
    for (auto& conn : conns_) conn->sock.shutdown_both();
  }
  // Drain queued commands and abort parked reads / covered waits, so every
  // client thread blocked on a completion observes kShuttingDown.
  engine_->stop();
  {
    std::lock_guard lk(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  client_listen_.close();
  timers_.stop();
  // Best effort: let queued protocol traffic reach live peers before the
  // sockets close. A dead peer's queue is dropped (it would be stale for
  // the peer's fresh state anyway).
  transport_->flush(std::chrono::milliseconds(250));
  transport_->stop();
  started_ = false;
}

void SiteServer::deliver(net::Message msg) {
  // Pure producer: the delivery thread never touches the protocol. It may
  // block on the engine's queue bound (the transport's inbound queue is
  // unbounded precisely so this backpressure cannot deadlock peers).
  engine_->apply_message(std::move(msg));
}

void SiteServer::accept_clients() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(client_listen_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      // A persistent errno (e.g. EMFILE) must not become a busy spin.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    auto conn = std::make_unique<ClientConn>();
    conn->sock = net::Socket(fd);
    ClientConn* raw = conn.get();
    std::lock_guard lk(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    conn->thread = std::thread([this, raw] { serve_client(raw); });
    conns_.push_back(std::move(conn));
  }
}

void SiteServer::serve_client(ClientConn* conn) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const auto req = read_client_frame(conn->sock.fd(), max_frame_bytes_);
    if (!req) break;
    net::Decoder dec(req->data(), req->size());
    net::Encoder resp;
    handle_request(dec, resp);
    if (!write_client_frame(conn->sock.fd(), resp.buffer())) break;
  }
  // Shut the connection down but do not close() here: releasing the fd
  // number from this thread would race stop()'s shutdown_both() over a
  // concurrently reused fd. The fd is closed by ~ClientConn once the reaper
  // in accept_clients() (or stop()) has joined this thread.
  conn->sock.shutdown_both();
  conn->done.store(true, std::memory_order_release);
}

void SiteServer::handle_request(net::Decoder& req, net::Encoder& resp) {
  const auto status = [&resp](ClientStatus st) {
    resp.u8(static_cast<std::uint8_t>(st));
  };
  const std::uint8_t op = req.u8();
  if (!req.ok()) {
    status(ClientStatus::kBadRequest);
    return;
  }
  switch (static_cast<ClientOp>(op)) {
    case ClientOp::kPing: {
      status(ClientStatus::kOk);
      return;
    }
    case ClientOp::kPut: {
      const auto x = static_cast<causal::VarId>(req.varint());
      std::string data = req.bytes();
      if (!req.ok() || x >= rmap_.vars()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      const auto r = engine_->write(x, std::move(data),
                                    rmap_.replicated_at(x, self_));
      if (!r) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.varint(r->id.writer + 1);
      resp.varint(r->id.seq);
      resp.varint(r->lamport);
      return;
    }
    case ClientOp::kGet: {
      const auto x = static_cast<causal::VarId>(req.varint());
      if (!req.ok() || x >= rmap_.vars()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      const auto v = engine_->read(x);
      if (!v) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      causal::encode_value(resp, *v);
      return;
    }
    case ClientOp::kSnapshot: {
      const std::uint64_t count = req.varint();
      std::vector<causal::VarId> vars;
      for (std::uint64_t i = 0; i < count && req.ok(); ++i) {
        vars.push_back(static_cast<causal::VarId>(req.varint()));
      }
      if (!req.ok() || count == 0 || count > rmap_.vars()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      for (const causal::VarId x : vars) {
        if (x >= rmap_.vars() || !rmap_.replicated_at(x, self_)) {
          status(ClientStatus::kNotReplicated);
          return;
        }
      }
      // One engine command: the values form a causally consistent cut
      // exactly as in ThreadedCluster::read_many.
      const auto values = engine_->snapshot(vars);
      if (!values) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.varint(values->size());
      for (const causal::Value& v : *values) causal::encode_value(resp, v);
      return;
    }
    case ClientOp::kToken: {
      const auto target = static_cast<causal::SiteId>(req.varint());
      if (!req.ok() || target >= rmap_.sites()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      const auto token = engine_->coverage_token(target);
      if (!token) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.varint(token->size());
      resp.raw(token->data(), token->size());
      return;
    }
    case ClientOp::kCovered: {
      const std::string token_str = req.bytes();
      // Clamp so a garbage wait cannot park the connection for hours (the
      // client polls in bounded rounds anyway).
      const std::uint64_t wait_us =
          std::min<std::uint64_t>(req.varint(), 10'000'000);
      if (!req.ok()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      std::vector<std::uint8_t> token(token_str.begin(), token_str.end());
      const auto covered = engine_->wait_covered(std::move(token), wait_us);
      if (!covered) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.u8(*covered ? 1 : 0);
      return;
    }
    case ClientOp::kStatus: {
      const auto s = engine_->status();
      if (!s) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      const auto stats = transport_->peer_stats();
      std::uint64_t sent = 0;
      std::uint64_t recv = 0;
      std::uint64_t queued = 0;
      for (const auto& ps : stats) {
        sent += ps.msgs_sent;
        recv += ps.msgs_recv;
        queued += ps.queued;
      }
      status(ClientStatus::kOk);
      resp.varint(self_);
      resp.u8(static_cast<std::uint8_t>(config_.algorithm));
      resp.varint(s->writes);
      resp.varint(s->reads);
      resp.varint(s->pending_updates);
      resp.varint(sent);
      resp.varint(recv);
      resp.varint(queued);
      // Geo extension: this site's region plus per-region peer health
      // (flat clusters answer region:"" regions:0).
      const auto& topo = config_.topology;
      if (topo.empty()) {
        resp.bytes(std::string{});
        resp.varint(0);
      } else {
        resp.bytes(topo.region_name_of(self_));
        resp.varint(topo.region_count());
        for (std::uint32_t reg = 0; reg < topo.region_count(); ++reg) {
          resp.bytes(topo.region_names[reg]);
          std::uint64_t total = 0;
          std::uint64_t up = 0;
          for (const auto& ps : stats) {
            if (topo.region_of(ps.site) != reg) continue;
            ++total;
            if (ps.connected) ++up;
          }
          resp.varint(total);
          resp.varint(up);
        }
      }
      return;
    }
    case ClientOp::kMetrics: {
      status(ClientStatus::kOk);
      resp.bytes(metrics_text());
      return;
    }
  }
  status(ClientStatus::kBadRequest);
}

metrics::Metrics SiteServer::metrics() const {
  metrics::Metrics merged = transport_->metrics_snapshot();
  if (const auto proto = engine_->protocol_metrics()) merged.merge(*proto);
  return merged;
}

std::size_t SiteServer::pending_updates() const {
  const auto s = engine_->status();
  return s ? static_cast<std::size_t>(s->pending_updates) : 0;
}

std::string SiteServer::metrics_text() const {
  const auto s = engine_->status();
  const auto d = engine_->durability_stats();
  std::vector<std::string> site_regions;
  if (!config_.topology.empty()) {
    site_regions.reserve(config_.sites.size());
    for (causal::SiteId peer = 0; peer < config_.site_count(); ++peer) {
      site_regions.push_back(config_.topology.region_name_of(peer));
    }
  }
  return render_metrics_text(self_, metrics(), engine_->queue_stats(),
                             transport_->peer_stats(),
                             s ? s->pending_updates : 0,
                             d ? *d : Durability::Stats{}, site_regions);
}

}  // namespace ccpr::server
