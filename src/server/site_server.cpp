#include "server/site_server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "causal/value_codec.hpp"
#include "server/client_protocol.hpp"
#include "server/metrics_text.hpp"
#include "util/assert.hpp"

namespace ccpr::server {

namespace {

sim::SimTime wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SiteServer::SiteServer(ClusterConfig config, causal::SiteId self)
    : SiteServer(std::move(config), self, Options{}) {}

SiteServer::SiteServer(ClusterConfig config, causal::SiteId self, Options opts)
    : config_(std::move(config)),
      self_(self),
      opts_(std::move(opts)),
      rmap_(config_.replica_map()),
      max_frame_bytes_(config_.max_frame_bytes > 0
                           ? config_.max_frame_bytes
                           : net::kDefaultMaxFrameBytes) {
  CCPR_EXPECTS(self_ < config_.site_count());
  net::TcpTransport::Options topts;
  topts.self = self_;
  topts.listen_host = config_.sites[self_].host;
  topts.listen_port = config_.sites[self_].peer_port;
  topts.max_frame_bytes = max_frame_bytes_;
  topts.jitter_seed = 0xcc9e0000u + self_;
  if (config_.sender_batch_bytes > 0) {
    topts.max_batch_bytes = config_.sender_batch_bytes;
  }
  if (config_.peer_queue_cap > 0) {
    topts.max_queue_msgs = config_.peer_queue_cap;
  }
  for (causal::SiteId s = 0; s < config_.site_count(); ++s) {
    if (s == self_) continue;
    topts.peers.push_back(net::TcpTransport::Peer{
        s, config_.sites[s].host, config_.sites[s].peer_port});
  }
  transport_ =
      std::make_unique<net::TcpTransport>(std::move(topts), transport_metrics_);
  transport_->connect(self_, this);

  ProtocolEngine::Options eopts;
  if (config_.engine_queue_cap > 0) {
    eopts.queue_capacity = config_.engine_queue_cap;
  }
  engine_ = std::make_unique<ProtocolEngine>(eopts);

  Durability::Options dopts;
  dopts.data_dir = opts_.data_dir;
  dopts.wal_sync = opts_.wal_sync;
  dopts.self = self_;
  dopts.sites = config_.site_count();
  if (config_.catchup_retain > 0) dopts.catchup_retain = config_.catchup_retain;
  if (config_.checkpoint_every > 0) {
    dopts.checkpoint_every = config_.checkpoint_every;
  }
  // Resend chunks must fit under the per-peer outbound queue cap, or the
  // queue's drop-oldest overflow policy discards the front of every chunk.
  if (config_.peer_queue_cap > 0) {
    dopts.catchup_burst = std::min<std::uint32_t>(
        dopts.catchup_burst, std::max<std::uint32_t>(config_.peer_queue_cap / 2, 1));
  }
  engine_->configure_durability(
      dopts, [this](net::Message m) { transport_->send(std::move(m)); });

  causal::Services svc;
  // send runs on the engine's apply thread (from inside protocol calls);
  // schedule callbacks are marshalled back onto it as timer commands —
  // both sides of the Services re-entrancy contract are discharged by the
  // engine's single apply thread. Sends route through the durability layer
  // so outbound updates get their durable channel stamps.
  svc.send = [this](net::Message m) { engine_->protocol_send(std::move(m)); };
  svc.persist_meta_merge = [this](causal::VarId x, causal::SiteId responder,
                                  const std::uint8_t* data, std::size_t len) {
    engine_->persist_meta_merge(x, responder, data, len);
  };
  svc.now = [] { return wall_now_us(); };
  svc.schedule = [this](sim::SimTime delay, std::function<void()> fn) {
    timers_.schedule_after(
        delay, [this, fn = std::move(fn)] { engine_->post_timer(fn); });
  };
  svc.metrics = &proto_metrics_;
  // Lock-free atomic read; safe from the apply thread at any point in the
  // server's lifetime (health_ is sized once, below).
  svc.peer_suspected = [this](causal::SiteId s) { return peer_suspected(s); };
  causal::ProtocolOptions popts = config_.protocol;
  if (opts_.store_engine.has_value()) {
    popts.store_engine.kind = *opts_.store_engine;
  }
  // The spill segment lives next to this site's WAL; without a data dir
  // there is nowhere durable to put it, so the budget degrades to
  // "never spill" rather than scribbling on the CWD.
  if (!opts_.data_dir.empty()) {
    popts.store_engine.spill_dir =
        opts_.data_dir + "/spill-site-" + std::to_string(self_);
  } else {
    popts.store_engine.spill_budget_bytes = 0;
  }
  engine_->adopt_protocol(
      causal::make_protocol(config_.algorithm, self_, rmap_, std::move(svc),
                            popts),
      &proto_metrics_);

  health_ = std::vector<PeerHealth>(config_.site_count());
  hb_interval_us_ = config_.heartbeat_interval_us > 0
                        ? config_.heartbeat_interval_us
                        : 250'000;
  suspect_floor_us_ =
      config_.suspect_after_us > 0 ? config_.suspect_after_us : 1'000'000;
}

SiteServer::~SiteServer() { stop(); }

bool SiteServer::start() {
  CCPR_EXPECTS(!started_);
  stopping_.store(false, std::memory_order_relaxed);
  // Recovery replays the WAL on this thread before anything concurrent
  // exists; a failure here means the durable state is unusable and the
  // operator must intervene (delete the WAL to restart empty).
  std::string err;
  if (!engine_->recover(&err)) {
    std::fprintf(stderr, "ccpr_server: site %u recovery failed: %s\n", self_,
                 err.c_str());
    return false;
  }
  // The engine must accept commands before the transport can deliver.
  engine_->start();
  if (!transport_->start()) {
    engine_->stop();
    return false;
  }
  timers_.start();
  engine_->post_catchup_tick();  // announce watermarks immediately
  schedule_catchup_tick();
  // Arm the failure detector with a clean slate: no peer is suspected
  // until it has been silent for the full window from *this* start.
  hb_epoch_us_.store(static_cast<std::uint64_t>(wall_now_us()),
                     std::memory_order_relaxed);
  for (auto& h : health_) {
    h.last_ack_us.store(0, std::memory_order_relaxed);
    h.suspected.store(false, std::memory_order_relaxed);
  }
  schedule_heartbeat_tick();
  // Catch-up gate: a site restarting from a WAL answers clients only after
  // every peer has streamed the updates it missed (bounded by the timeout —
  // a dead peer must not wedge the restart forever).
  const auto progress = engine_->catchup_progress();
  if (progress && progress->recovered) {
    const std::uint32_t timeout_ms = config_.catchup_timeout_ms > 0
                                         ? config_.catchup_timeout_ms
                                         : 2000;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto p = engine_->catchup_progress();
      if (!p || p->complete) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  client_listen_ = net::tcp_listen(config_.sites[self_].host,
                                   config_.sites[self_].client_port,
                                   &client_port_);
  if (!client_listen_.valid()) {
    timers_.stop();
    transport_->stop();
    engine_->stop();
    return false;
  }
  client_accept_thread_ = std::thread([this] { accept_clients(); });
  started_ = true;
  return true;
}

void SiteServer::schedule_catchup_tick() {
  const std::uint32_t interval_ms =
      config_.catchup_interval_ms > 0 ? config_.catchup_interval_ms : 500;
  timers_.schedule_after(
      static_cast<std::int64_t>(interval_ms) * 1000, [this] {
        if (stopping_.load(std::memory_order_relaxed)) return;
        engine_->post_catchup_tick();
        schedule_catchup_tick();
      });
}

void SiteServer::schedule_heartbeat_tick() {
  timers_.schedule_after(static_cast<std::int64_t>(hb_interval_us_), [this] {
    if (stopping_.load(std::memory_order_relaxed)) return;
    heartbeat_tick();
    schedule_heartbeat_tick();
  });
}

void SiteServer::heartbeat_tick() {
  // Runs on the timer thread. Sends go straight to the transport (enqueue
  // only, never blocking); suspicion flips here, recovery flips in
  // deliver() the moment an ack arrives.
  const auto now = static_cast<std::uint64_t>(wall_now_us());
  for (causal::SiteId s = 0; s < config_.site_count(); ++s) {
    if (s == self_) continue;
    PeerHealth& h = health_[s];
    net::Message ping;
    ping.kind = net::MsgKind::kHeartbeat;
    ping.src = self_;
    ping.dst = s;
    net::Encoder enc;
    enc.varint(now);
    ping.body = enc.take();
    transport_->send(std::move(ping));
    h.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);

    const std::uint64_t last = h.last_ack_us.load(std::memory_order_relaxed);
    const std::uint64_t base =
        last != 0 ? last : hb_epoch_us_.load(std::memory_order_relaxed);
    // The silence budget scales with the observed RTT so a slow WAN link
    // is not flapped into suspicion, with the configured floor as the
    // minimum (suspect-after).
    const std::uint64_t rtt = h.rtt_ewma_us.load(std::memory_order_relaxed);
    const std::uint64_t window =
        std::max<std::uint64_t>(suspect_floor_us_, 4 * rtt + 2 * hb_interval_us_);
    if (now > base + window &&
        !h.suspected.exchange(true, std::memory_order_relaxed)) {
      h.suspect_events.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SiteServer::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Stop taking new clients: shut the listener down and join the accept
  // thread *before* sweeping conns_, so no connection accepted at the last
  // moment can be inserted after the sweep (accept_clients holds conns_mu_
  // only for the insert) and then sit in a socket read forever.
  client_listen_.shutdown_both();
  if (client_accept_thread_.joinable()) client_accept_thread_.join();
  // Unblock every client thread parked in a socket read.
  {
    std::lock_guard lk(conns_mu_);
    for (auto& conn : conns_) conn->sock.shutdown_both();
  }
  // Drain queued commands and abort parked reads / covered waits, so every
  // client thread blocked on a completion observes kShuttingDown.
  engine_->stop();
  {
    std::lock_guard lk(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  client_listen_.close();
  timers_.stop();
  // Best effort: let queued protocol traffic reach live peers before the
  // sockets close. A dead peer's queue is dropped (it would be stale for
  // the peer's fresh state anyway).
  transport_->flush(std::chrono::milliseconds(250));
  transport_->stop();
  started_ = false;
}

void SiteServer::deliver(net::Message msg) {
  // Failure-detector traffic is handled right here on the delivery thread —
  // it must not queue behind protocol commands, or a backlogged engine
  // would read as a dead peer.
  if (msg.kind == net::MsgKind::kHeartbeat) {
    if (!stopping_.load(std::memory_order_relaxed)) {
      net::Message ack;
      ack.kind = net::MsgKind::kHeartbeatAck;
      ack.src = self_;
      ack.dst = msg.src;
      ack.body = std::move(msg.body);  // echo the sender's timestamp
      transport_->send(std::move(ack));
    }
    return;
  }
  if (msg.kind == net::MsgKind::kHeartbeatAck) {
    if (msg.src >= health_.size()) return;
    PeerHealth& h = health_[msg.src];
    const auto now = static_cast<std::uint64_t>(wall_now_us());
    net::Decoder dec(msg.body.data(), msg.body.size());
    const std::uint64_t echoed = dec.varint();
    if (dec.ok() && now >= echoed) {
      const std::uint64_t rtt = now - echoed;
      // An ack proves the peer is reachable *now* regardless of the
      // echoed timestamp's age, but a stale echo (a ping that sat in a
      // healed partition's queue) is not an RTT sample.
      if (rtt <= 4 * suspect_floor_us_ + 4 * hb_interval_us_) {
        const std::uint64_t prev =
            h.rtt_ewma_us.load(std::memory_order_relaxed);
        h.rtt_ewma_us.store(prev == 0 ? rtt : (prev * 7 + rtt) / 8,
                            std::memory_order_relaxed);
      }
    }
    h.last_ack_us.store(now, std::memory_order_relaxed);
    h.acks_received.fetch_add(1, std::memory_order_relaxed);
    h.suspected.store(false, std::memory_order_relaxed);
    return;
  }
  // Pure producer: the delivery thread never touches the protocol. It may
  // block on the engine's queue bound (the transport's inbound queue is
  // unbounded precisely so this backpressure cannot deadlock peers).
  engine_->apply_message(std::move(msg));
}

void SiteServer::accept_clients() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(client_listen_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      // A persistent errno (e.g. EMFILE) must not become a busy spin.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    auto conn = std::make_unique<ClientConn>();
    conn->sock = net::Socket(fd);
    ClientConn* raw = conn.get();
    std::lock_guard lk(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    conn->thread = std::thread([this, raw] { serve_client(raw); });
    conns_.push_back(std::move(conn));
  }
}

void SiteServer::serve_client(ClientConn* conn) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const auto req = read_client_frame(conn->sock.fd(), max_frame_bytes_);
    if (!req) break;
    net::Decoder dec(req->data(), req->size());
    net::Encoder resp;
    handle_request(dec, resp);
    if (!write_client_frame(conn->sock.fd(), resp.buffer())) break;
  }
  // Shut the connection down but do not close() here: releasing the fd
  // number from this thread would race stop()'s shutdown_both() over a
  // concurrently reused fd. The fd is closed by ~ClientConn once the reaper
  // in accept_clients() (or stop()) has joined this thread.
  conn->sock.shutdown_both();
  conn->done.store(true, std::memory_order_release);
}

void SiteServer::handle_request(net::Decoder& req, net::Encoder& resp) {
  const auto status = [&resp](ClientStatus st) {
    resp.u8(static_cast<std::uint8_t>(st));
  };
  const std::uint8_t op = req.u8();
  if (!req.ok()) {
    status(ClientStatus::kBadRequest);
    return;
  }
  switch (static_cast<ClientOp>(op)) {
    case ClientOp::kPing: {
      status(ClientStatus::kOk);
      return;
    }
    case ClientOp::kPut: {
      const auto x = static_cast<causal::VarId>(req.varint());
      std::string data = req.bytes();
      if (!req.ok() || x >= rmap_.vars()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      // Trailing opts (absent from old clients): retry metadata.
      std::uint8_t opts = 0;
      std::uint64_t session = 0;
      std::uint64_t req_id = 0;
      const bool has_opts = req.remaining() > 0;
      if (has_opts) {
        opts = req.u8();
        if ((opts & kReqHasRequestId) != 0) {
          session = req.varint();
          req_id = req.varint();
        }
        if (!req.ok()) {
          status(ClientStatus::kBadRequest);
          return;
        }
      }
      const bool dedup = (opts & kReqHasRequestId) != 0 && session != 0;
      std::optional<ProtocolEngine::WriteResult> r;
      bool replayed = false;
      if (dedup) {
        std::lock_guard lk(dedup_mu_);
        const auto it = put_dedup_.find(session);
        if (it != put_dedup_.end() && it->second.req_id == req_id) {
          r = it->second.result;
          replayed = true;
        }
      }
      if (!replayed) {
        r = engine_->write(x, std::move(data), rmap_.replicated_at(x, self_));
        if (r && dedup) {
          std::lock_guard lk(dedup_mu_);
          if (put_dedup_.size() >= kDedupSessionCap &&
              put_dedup_.count(session) == 0) {
            put_dedup_.erase(put_dedup_.begin());
          }
          put_dedup_[session] = PutDedup{req_id, *r};
        }
      }
      if (!r) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.varint(r->id.writer + 1);
      resp.varint(r->id.seq);
      resp.varint(r->lamport);
      if (has_opts) {
        append_response_flags(resp, (opts & kReqWantTokens) != 0, replayed);
      }
      return;
    }
    case ClientOp::kGet: {
      const auto x = static_cast<causal::VarId>(req.varint());
      if (!req.ok() || x >= rmap_.vars()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      const bool has_opts = req.remaining() > 0;
      const std::uint8_t opts = has_opts ? req.u8() : 0;
      if (!rmap_.replicated_at(x, self_)) {
        // The read would park on a RemoteFetch; if the failure detector
        // believes every replica of x is down, fail fast with a typed
        // status instead of burning the whole fetch timeout.
        bool any_alive = false;
        for (const causal::SiteId s : rmap_.replicas(x)) {
          if (!peer_suspected(s)) {
            any_alive = true;
            break;
          }
        }
        if (!any_alive) {
          reads_fast_failed_.fetch_add(1, std::memory_order_relaxed);
          status(ClientStatus::kUnavailable);
          return;
        }
      }
      const auto v = engine_->read(x);
      if (!v) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      causal::encode_value(resp, *v);
      if (has_opts) {
        append_response_flags(resp, (opts & kReqWantTokens) != 0, false);
      }
      return;
    }
    case ClientOp::kSnapshot: {
      const std::uint64_t count = req.varint();
      std::vector<causal::VarId> vars;
      for (std::uint64_t i = 0; i < count && req.ok(); ++i) {
        vars.push_back(static_cast<causal::VarId>(req.varint()));
      }
      if (!req.ok() || count == 0 || count > rmap_.vars()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      for (const causal::VarId x : vars) {
        if (x >= rmap_.vars() || !rmap_.replicated_at(x, self_)) {
          status(ClientStatus::kNotReplicated);
          return;
        }
      }
      const bool has_opts = req.remaining() > 0;
      const std::uint8_t sopts = has_opts ? req.u8() : 0;
      // One engine command: the values form a causally consistent cut
      // exactly as in ThreadedCluster::read_many.
      const auto values = engine_->snapshot(vars);
      if (!values) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.varint(values->size());
      for (const causal::Value& v : *values) causal::encode_value(resp, v);
      if (has_opts) {
        append_response_flags(resp, (sopts & kReqWantTokens) != 0, false);
      }
      return;
    }
    case ClientOp::kToken: {
      const auto target = static_cast<causal::SiteId>(req.varint());
      if (!req.ok() || target >= rmap_.sites()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      const auto token = engine_->coverage_token(target);
      if (!token) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.varint(token->size());
      resp.raw(token->data(), token->size());
      return;
    }
    case ClientOp::kCovered: {
      const std::string token_str = req.bytes();
      // Clamp so a garbage wait cannot park the connection for hours (the
      // client polls in bounded rounds anyway).
      const std::uint64_t wait_us =
          std::min<std::uint64_t>(req.varint(), 10'000'000);
      if (!req.ok()) {
        status(ClientStatus::kBadRequest);
        return;
      }
      std::vector<std::uint8_t> token(token_str.begin(), token_str.end());
      const auto covered = engine_->wait_covered(std::move(token), wait_us);
      if (!covered) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.u8(*covered ? 1 : 0);
      return;
    }
    case ClientOp::kStatus: {
      const auto s = engine_->status();
      if (!s) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      const auto stats = transport_->peer_stats();
      std::uint64_t sent = 0;
      std::uint64_t recv = 0;
      std::uint64_t queued = 0;
      for (const auto& ps : stats) {
        sent += ps.msgs_sent;
        recv += ps.msgs_recv;
        queued += ps.queued;
      }
      status(ClientStatus::kOk);
      resp.varint(self_);
      resp.u8(static_cast<std::uint8_t>(config_.algorithm));
      resp.varint(s->writes);
      resp.varint(s->reads);
      resp.varint(s->pending_updates);
      resp.varint(sent);
      resp.varint(recv);
      resp.varint(queued);
      // Geo extension: this site's region plus per-region peer health
      // (flat clusters answer region:"" regions:0).
      const auto& topo = config_.topology;
      if (topo.empty()) {
        resp.bytes(std::string{});
        resp.varint(0);
      } else {
        resp.bytes(topo.region_name_of(self_));
        resp.varint(topo.region_count());
        for (std::uint32_t reg = 0; reg < topo.region_count(); ++reg) {
          resp.bytes(topo.region_names[reg]);
          std::uint64_t total = 0;
          std::uint64_t up = 0;
          for (const auto& ps : stats) {
            if (topo.region_of(ps.site) != reg) continue;
            ++total;
            if (ps.connected) ++up;
          }
          resp.varint(total);
          resp.varint(up);
        }
      }
      // Failure-detector extension: the peers this site currently
      // suspects unreachable.
      std::vector<causal::SiteId> suspected;
      for (causal::SiteId peer = 0; peer < config_.site_count(); ++peer) {
        if (peer != self_ && peer_suspected(peer)) suspected.push_back(peer);
      }
      resp.varint(suspected.size());
      for (const causal::SiteId peer : suspected) resp.varint(peer);
      return;
    }
    case ClientOp::kMetrics: {
      status(ClientStatus::kOk);
      resp.bytes(metrics_text());
      return;
    }
    case ClientOp::kStoreStat: {
      const auto stats = engine_->store_stats();
      if (!stats) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.u8(static_cast<std::uint8_t>(stats->kind));
      resp.varint(stats->keys);
      resp.varint(stats->resident_bytes);
      resp.varint(stats->index_slots);
      resp.varint(stats->lookups);
      resp.varint(stats->probes);
      resp.varint(stats->spilled_keys);
      resp.varint(stats->spill_segment_bytes);
      resp.varint(stats->spill_reads);
      resp.varint(stats->spill_writes);
      resp.varint(stats->compactions);
      return;
    }
    case ClientOp::kChaos: {
      const std::uint8_t action = req.u8();
      if (!req.ok() || action > 1) {
        status(ClientStatus::kBadRequest);
        return;
      }
      if (action == 0) {
        transport_->clear_chaos();
        status(ClientStatus::kOk);
        return;
      }
      const std::uint64_t peer_plus1 = req.varint();
      net::ChaosRule rule;
      rule.drop_milli = static_cast<std::uint32_t>(req.varint());
      rule.delay_us = static_cast<std::uint32_t>(req.varint());
      rule.rate_per_s = static_cast<std::uint32_t>(req.varint());
      rule.partition = req.u8() != 0;
      if (!req.ok() || rule.drop_milli > 1000 ||
          peer_plus1 > config_.site_count() ||
          (peer_plus1 != 0 && peer_plus1 - 1 == self_)) {
        status(ClientStatus::kBadRequest);
        return;
      }
      for (causal::SiteId peer = 0; peer < config_.site_count(); ++peer) {
        if (peer == self_) continue;
        if (peer_plus1 != 0 && peer != peer_plus1 - 1) continue;
        transport_->set_chaos(peer, rule);
      }
      status(ClientStatus::kOk);
      return;
    }
  }
  status(ClientStatus::kBadRequest);
}

void SiteServer::append_response_flags(net::Encoder& resp, bool want_tokens,
                                       bool dup_replay) {
  std::uint8_t flags = dup_replay ? kRespDupReplay : 0;
  std::vector<std::pair<causal::SiteId, std::vector<std::uint8_t>>> tokens;
  if (want_tokens) {
    // Coverage tokens for every other site, computed after the op: the
    // token covers at least the session's causal past (tokens are
    // target-specific and monotone in this site's state), so presenting it
    // at the target preserves the session guarantees across a failover —
    // even one this site never hears about.
    for (causal::SiteId target = 0; target < config_.site_count(); ++target) {
      if (target == self_) continue;
      auto token = engine_->coverage_token(target);
      if (token) tokens.emplace_back(target, std::move(*token));
    }
    if (!tokens.empty()) flags |= kRespHasTokens;
  }
  resp.u8(flags);
  if ((flags & kRespHasTokens) != 0) {
    resp.varint(tokens.size());
    for (const auto& [target, token] : tokens) {
      resp.varint(target);
      resp.varint(token.size());
      resp.raw(token.data(), token.size());
    }
  }
}

HealthStats SiteServer::health_stats() const {
  HealthStats out;
  out.reads_fast_failed = reads_fast_failed_.load(std::memory_order_relaxed);
  for (causal::SiteId peer = 0; peer < health_.size(); ++peer) {
    if (peer == self_) continue;
    const PeerHealth& h = health_[peer];
    HealthStats::Peer p;
    p.site = peer;
    p.suspected = h.suspected.load(std::memory_order_relaxed);
    p.rtt_ewma_us = h.rtt_ewma_us.load(std::memory_order_relaxed);
    p.suspect_events = h.suspect_events.load(std::memory_order_relaxed);
    p.heartbeats_sent = h.heartbeats_sent.load(std::memory_order_relaxed);
    p.acks_received = h.acks_received.load(std::memory_order_relaxed);
    out.peers.push_back(p);
  }
  return out;
}

metrics::Metrics SiteServer::metrics() const {
  metrics::Metrics merged = transport_->metrics_snapshot();
  if (const auto proto = engine_->protocol_metrics()) merged.merge(*proto);
  return merged;
}

std::size_t SiteServer::pending_updates() const {
  const auto s = engine_->status();
  return s ? static_cast<std::size_t>(s->pending_updates) : 0;
}

std::string SiteServer::metrics_text() const {
  const auto s = engine_->status();
  const auto d = engine_->durability_stats();
  std::vector<std::string> site_regions;
  if (!config_.topology.empty()) {
    site_regions.reserve(config_.sites.size());
    for (causal::SiteId peer = 0; peer < config_.site_count(); ++peer) {
      site_regions.push_back(config_.topology.region_name_of(peer));
    }
  }
  const auto eng = engine_->store_stats();
  return render_metrics_text(self_, metrics(), engine_->queue_stats(),
                             transport_->peer_stats(),
                             s ? s->pending_updates : 0,
                             d ? *d : Durability::Stats{}, site_regions,
                             health_stats(),
                             eng ? *eng : store::EngineStats{});
}

}  // namespace ccpr::server
