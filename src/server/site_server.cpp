#include "server/site_server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "causal/value_codec.hpp"
#include "server/metrics_text.hpp"
#include "util/assert.hpp"

namespace ccpr::server {

namespace {

sim::SimTime wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SiteServer::SiteServer(ClusterConfig config, causal::SiteId self)
    : SiteServer(std::move(config), self, Options{}) {}

SiteServer::SiteServer(ClusterConfig config, causal::SiteId self, Options opts)
    : config_(std::move(config)),
      self_(self),
      opts_(std::move(opts)),
      rmap_(config_.replica_map()),
      max_frame_bytes_(config_.max_frame_bytes > 0
                           ? config_.max_frame_bytes
                           : net::kDefaultMaxFrameBytes) {
  CCPR_EXPECTS(self_ < config_.site_count());
  if (opts_.engine_shards.has_value()) {
    config_.protocol.engine_shards = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(*opts_.engine_shards, 256));
  }
  const std::uint32_t shards =
      std::max<std::uint32_t>(1, config_.protocol.engine_shards);

  net::TcpTransport::Options topts;
  topts.self = self_;
  topts.listen_host = config_.sites[self_].host;
  topts.listen_port = config_.sites[self_].peer_port;
  topts.max_frame_bytes = max_frame_bytes_;
  topts.jitter_seed = 0xcc9e0000u + self_;
  if (config_.sender_batch_bytes > 0) {
    topts.max_batch_bytes = config_.sender_batch_bytes;
  }
  if (config_.peer_queue_cap > 0) {
    topts.max_queue_msgs = config_.peer_queue_cap;
  }
  for (causal::SiteId s = 0; s < config_.site_count(); ++s) {
    if (s == self_) continue;
    topts.peers.push_back(net::TcpTransport::Peer{
        s, config_.sites[s].host, config_.sites[s].peer_port});
  }
  transport_ =
      std::make_unique<net::TcpTransport>(std::move(topts), transport_metrics_);
  transport_->connect(self_, this);

  ProtocolEngine::Options eopts;
  if (config_.engine_queue_cap > 0) {
    eopts.queue_capacity = config_.engine_queue_cap;
  }
  engine_ = std::make_unique<ShardedEngine>(shards, self_,
                                            config_.site_count(), eopts);
  engine_->set_transport_send(
      [this](net::Message m) { transport_->send(std::move(m)); });

  shard_protos_.resize(shards, nullptr);
  for (std::uint32_t k = 0; k < shards; ++k) {
    ProtocolEngine& eng = engine_->shard(k);

    Durability::Options dopts;
    // Shard 0 keeps the historic layout so an existing single-shard WAL
    // restarts in place; extra shards log in per-shard subdirectories.
    if (!opts_.data_dir.empty()) {
      dopts.data_dir = k == 0
                           ? opts_.data_dir
                           : opts_.data_dir + "/shard-" + std::to_string(k);
    }
    dopts.wal_sync = opts_.wal_sync;
    dopts.self = self_;
    dopts.sites = config_.site_count();
    if (config_.catchup_retain > 0) {
      dopts.catchup_retain = config_.catchup_retain;
    }
    if (config_.checkpoint_every > 0) {
      dopts.checkpoint_every = config_.checkpoint_every;
    }
    // Resend chunks must fit under the per-peer outbound queue cap, or the
    // queue's drop-oldest overflow policy discards the front of every chunk.
    if (config_.peer_queue_cap > 0) {
      dopts.catchup_burst = std::min<std::uint32_t>(
          dopts.catchup_burst,
          std::max<std::uint32_t>(config_.peer_queue_cap / 2, 1));
    }
    // Stamped updates are wrapped with cross-shard coverage tokens *before*
    // retention, so catch-up resends replay the original-send envelope
    // verbatim. Re-wrapping at resend time with current tokens could demand
    // coverage of writes parked behind the resent update at the receiver —
    // a cross-shard deadlock (see Durability::Options::wrap_update).
    dopts.wrap_update = [this, k](net::Message m) {
      return engine_->wrap(k, std::move(m));
    };
    // Durability forwards through the sharded wrapper: fresh sends get
    // wrapped here, already-wrapped retained resends pass through verbatim.
    eng.configure_durability(dopts, [this, k](net::Message m) {
      engine_->wrap_and_send(k, std::move(m));
    });

    causal::Services svc;
    // send runs on shard k's apply thread (from inside protocol calls);
    // schedule callbacks are marshalled back onto it as timer commands —
    // both sides of the Services re-entrancy contract are discharged by
    // that one apply thread. Sends route through the durability layer so
    // outbound updates get their durable channel stamps.
    svc.send = [this, k](net::Message m) {
      engine_->shard(k).protocol_send(std::move(m));
    };
    svc.persist_meta_merge = [this, k](causal::VarId x,
                                       causal::SiteId responder,
                                       const std::uint8_t* data,
                                       std::size_t len) {
      engine_->shard(k).persist_meta_merge(x, responder, data, len);
    };
    svc.now = [] { return wall_now_us(); };
    svc.schedule = [this, k](sim::SimTime delay, std::function<void()> fn) {
      timers_.schedule_after(delay, [this, k, fn = std::move(fn)] {
        engine_->shard(k).post_timer(fn);
      });
    };
    svc.metrics = engine_->shard_metrics(k);
    // Lock-free atomic read; safe from any apply thread at any point in
    // the server's lifetime (health_ is sized once, below).
    svc.peer_suspected = [this](causal::SiteId s) { return peer_suspected(s); };

    causal::ProtocolOptions popts = config_.protocol;
    // The ShardedEngine owns the sharding here; each inner protocol is a
    // plain single-shard instance (a nested ShardGroup would double-wrap),
    // but issues WriteIds from shard k's slice of the seq space so the
    // site's shards never collide on (writer, seq).
    popts.engine_shards = 1;
    popts.write_seq_offset = k;
    popts.write_seq_stride = shards;
    if (opts_.store_engine.has_value()) {
      popts.store_engine.kind = *opts_.store_engine;
    }
    // The spill segment lives next to this site's WAL; without a data dir
    // there is nowhere durable to put it, so the budget degrades to
    // "never spill" rather than scribbling on the CWD.
    if (!opts_.data_dir.empty()) {
      popts.store_engine.spill_dir =
          opts_.data_dir + "/spill-site-" + std::to_string(self_);
      if (k > 0) {
        popts.store_engine.spill_dir += "/shard-" + std::to_string(k);
      }
    } else {
      popts.store_engine.spill_budget_bytes = 0;
    }
    auto proto = causal::make_protocol(config_.algorithm, self_, rmap_,
                                       std::move(svc), popts);
    shard_protos_[k] = proto.get();
    eng.adopt_protocol(std::move(proto), engine_->shard_metrics(k));
  }
  engine_->install_hooks();

  health_ = std::vector<PeerHealth>(config_.site_count());
  hb_interval_us_ = config_.heartbeat_interval_us > 0
                        ? config_.heartbeat_interval_us
                        : 250'000;
  suspect_floor_us_ =
      config_.suspect_after_us > 0 ? config_.suspect_after_us : 1'000'000;
}

SiteServer::~SiteServer() { stop(); }

bool SiteServer::start() {
  CCPR_EXPECTS(!started_);
  stopping_.store(false, std::memory_order_relaxed);
  // Recovery replays each shard's WAL on this thread before anything
  // concurrent exists; a failure means the durable state is unusable and
  // the operator must intervene (delete the WAL to restart empty). Shard 0
  // goes first: its WAL directory is the parent of the others.
  for (std::uint32_t k = 0; k < engine_->shards(); ++k) {
    std::string err;
    if (!engine_->shard(k).recover(&err)) {
      std::fprintf(stderr,
                   "ccpr_server: site %u shard %u recovery failed: %s\n",
                   self_, k, err.c_str());
      return false;
    }
  }
  // Publish every shard's post-recovery coverage tokens before any apply
  // thread (or peer delivery) exists: the first wrapped send must carry
  // tokens covering the recovered state, not an empty fresh-boot cache.
  for (std::uint32_t k = 0; k < engine_->shards(); ++k) {
    engine_->publish_tokens(k, *shard_protos_[k]);
  }
  // The engines must accept commands before the transport can deliver.
  engine_->start_all();
  if (!transport_->start()) {
    engine_->stop_all();
    return false;
  }
  timers_.start();
  for (std::uint32_t k = 0; k < engine_->shards(); ++k) {
    engine_->shard(k).post_catchup_tick();  // announce watermarks now
  }
  schedule_catchup_tick();
  // Arm the failure detector with a clean slate: no peer is suspected
  // until it has been silent for the full window from *this* start.
  hb_epoch_us_.store(static_cast<std::uint64_t>(wall_now_us()),
                     std::memory_order_relaxed);
  for (auto& h : health_) {
    h.last_ack_us.store(0, std::memory_order_relaxed);
    h.suspected.store(false, std::memory_order_relaxed);
  }
  schedule_heartbeat_tick();
  // Catch-up gate: a site restarting from a WAL answers clients only after
  // every peer has streamed the updates every shard missed (bounded by the
  // timeout — a dead peer must not wedge the restart forever).
  const auto progress = engine_->catchup_progress();
  if (progress && progress->recovered) {
    const std::uint32_t timeout_ms = config_.catchup_timeout_ms > 0
                                         ? config_.catchup_timeout_ms
                                         : 2000;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto p = engine_->catchup_progress();
      if (!p || p->complete) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  // Admin executor before the reactor: the first frame may be a kStatus.
  {
    std::lock_guard lk(admin_mu_);
    admin_stop_ = false;
  }
  admin_thread_ = std::thread([this] { admin_loop(); });

  net::Socket listener = net::tcp_listen(config_.sites[self_].host,
                                         config_.sites[self_].client_port,
                                         &client_port_);
  if (!listener.valid()) {
    stop_admin_and_core();
    return false;
  }
  net::Reactor::Options ropts;
  ropts.io_threads =
      config_.client_io_threads > 0 ? config_.client_io_threads : 2;
  ropts.max_frame_bytes = max_frame_bytes_;
  reactor_ = std::make_unique<net::Reactor>(
      std::move(listener), ropts,
      [this](const net::Reactor::ConnRef& ref,
             std::vector<std::uint8_t> body) {
        handle_client_frame(ref, std::move(body));
      });
  if (!reactor_->start()) {
    reactor_.reset();
    stop_admin_and_core();
    return false;
  }
  started_ = true;
  return true;
}

void SiteServer::stop_admin_and_core() {
  {
    std::lock_guard lk(admin_mu_);
    admin_stop_ = true;
  }
  admin_cv_.notify_all();
  if (admin_thread_.joinable()) admin_thread_.join();
  timers_.stop();
  transport_->stop();
  engine_->stop_all();
}

void SiteServer::schedule_catchup_tick() {
  const std::uint32_t interval_ms =
      config_.catchup_interval_ms > 0 ? config_.catchup_interval_ms : 500;
  timers_.schedule_after(
      static_cast<std::int64_t>(interval_ms) * 1000, [this] {
        if (stopping_.load(std::memory_order_relaxed)) return;
        for (std::uint32_t k = 0; k < engine_->shards(); ++k) {
          engine_->shard(k).post_catchup_tick();
        }
        schedule_catchup_tick();
      });
}

void SiteServer::schedule_heartbeat_tick() {
  timers_.schedule_after(static_cast<std::int64_t>(hb_interval_us_), [this] {
    if (stopping_.load(std::memory_order_relaxed)) return;
    heartbeat_tick();
    schedule_heartbeat_tick();
  });
}

void SiteServer::heartbeat_tick() {
  // Runs on the timer thread. Sends go straight to the transport (enqueue
  // only, never blocking); suspicion flips here, recovery flips in
  // deliver() the moment an ack arrives.
  const auto now = static_cast<std::uint64_t>(wall_now_us());
  for (causal::SiteId s = 0; s < config_.site_count(); ++s) {
    if (s == self_) continue;
    PeerHealth& h = health_[s];
    net::Message ping;
    ping.kind = net::MsgKind::kHeartbeat;
    ping.src = self_;
    ping.dst = s;
    net::Encoder enc;
    enc.varint(now);
    ping.body = enc.take();
    transport_->send(std::move(ping));
    h.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);

    const std::uint64_t last = h.last_ack_us.load(std::memory_order_relaxed);
    const std::uint64_t base =
        last != 0 ? last : hb_epoch_us_.load(std::memory_order_relaxed);
    // The silence budget scales with the observed RTT so a slow WAN link
    // is not flapped into suspicion, with the configured floor as the
    // minimum (suspect-after).
    const std::uint64_t rtt = h.rtt_ewma_us.load(std::memory_order_relaxed);
    const std::uint64_t window = std::max<std::uint64_t>(
        suspect_floor_us_, 4 * rtt + 2 * hb_interval_us_);
    if (now > base + window &&
        !h.suspected.exchange(true, std::memory_order_relaxed)) {
      h.suspect_events.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SiteServer::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Stop client I/O first: the reactor closes every connection and joins
  // its loops; engine callbacks still in flight then hit send_response's
  // late-response drop instead of a dead socket.
  if (reactor_) {
    reactor_->stop();
    reactor_.reset();
  }
  // Drain the admin executor (its jobs use the blocking engine API, so it
  // must go before the engines do).
  {
    std::lock_guard lk(admin_mu_);
    admin_stop_ = true;
  }
  admin_cv_.notify_all();
  if (admin_thread_.joinable()) admin_thread_.join();
  // Abort parked reads / covered waits and stop the apply threads; any
  // remaining async callbacks observe nullopt and drop their responses.
  engine_->stop_all();
  timers_.stop();
  // Best effort: let queued protocol traffic reach live peers before the
  // sockets close. A dead peer's queue is dropped (it would be stale for
  // the peer's fresh state anyway).
  transport_->flush(std::chrono::milliseconds(250));
  transport_->stop();
  started_ = false;
}

void SiteServer::deliver(net::Message msg) {
  // Failure-detector traffic is handled right here on the delivery thread —
  // it must not queue behind protocol commands, or a backlogged engine
  // would read as a dead peer.
  if (msg.kind == net::MsgKind::kHeartbeat) {
    if (!stopping_.load(std::memory_order_relaxed)) {
      net::Message ack;
      ack.kind = net::MsgKind::kHeartbeatAck;
      ack.src = self_;
      ack.dst = msg.src;
      ack.body = std::move(msg.body);  // echo the sender's timestamp
      transport_->send(std::move(ack));
    }
    return;
  }
  if (msg.kind == net::MsgKind::kHeartbeatAck) {
    if (msg.src >= health_.size()) return;
    PeerHealth& h = health_[msg.src];
    const auto now = static_cast<std::uint64_t>(wall_now_us());
    net::Decoder dec(msg.body.data(), msg.body.size());
    const std::uint64_t echoed = dec.varint();
    if (dec.ok() && now >= echoed) {
      const std::uint64_t rtt = now - echoed;
      // An ack proves the peer is reachable *now* regardless of the
      // echoed timestamp's age, but a stale echo (a ping that sat in a
      // healed partition's queue) is not an RTT sample.
      if (rtt <= 4 * suspect_floor_us_ + 4 * hb_interval_us_) {
        const std::uint64_t prev =
            h.rtt_ewma_us.load(std::memory_order_relaxed);
        h.rtt_ewma_us.store(prev == 0 ? rtt : (prev * 7 + rtt) / 8,
                            std::memory_order_relaxed);
      }
    }
    h.last_ack_us.store(now, std::memory_order_relaxed);
    h.acks_received.fetch_add(1, std::memory_order_relaxed);
    h.suspected.store(false, std::memory_order_relaxed);
    return;
  }
  // Pure producer: the delivery thread never touches a protocol. Envelope
  // admission (sharded) or the single engine's queue bound provide the
  // backpressure; the transport's inbound queue is unbounded precisely so
  // this cannot deadlock peers.
  engine_->deliver(std::move(msg));
}

// ---- client protocol -------------------------------------------------

void SiteServer::send_status(const net::Reactor::ConnRef& ref,
                             ClientStatus st) {
  net::Encoder resp;
  resp.u8(static_cast<std::uint8_t>(st));
  reactor_->send_response(ref, resp.take());
}

void SiteServer::finish_with_tokens(net::Reactor::ConnRef ref,
                                    std::vector<std::uint8_t> partial,
                                    bool want_tokens, bool dup_replay) {
  if (!want_tokens || config_.site_count() <= 1) {
    net::Encoder resp(partial.size() + 1);
    resp.raw(partial.data(), partial.size());
    resp.u8(dup_replay ? kRespDupReplay : 0);
    reactor_->send_response(ref, resp.take());
    return;
  }
  // Coverage tokens for every other site, computed after the op: the token
  // covers at least the session's causal past (tokens are target-specific
  // and monotone in this site's state), so presenting it at the target
  // preserves the session guarantees across a failover — even one this
  // site never hears about. Gathered via an async chain so no event loop
  // or apply thread ever blocks; a target whose token gather loses to a
  // shutdown race is simply omitted, as before.
  struct Gather {
    net::Reactor::ConnRef ref;
    std::vector<std::uint8_t> partial;
    bool dup_replay = false;
    causal::SiteId next = 0;
    std::vector<std::pair<causal::SiteId, std::vector<std::uint8_t>>> tokens;
  };
  auto st = std::make_shared<Gather>();
  st->ref = ref;
  st->partial = std::move(partial);
  st->dup_replay = dup_replay;
  struct Runner {
    static void step(SiteServer* srv, std::shared_ptr<Gather> s) {
      while (s->next == srv->self_) ++s->next;
      if (s->next >= srv->config_.site_count()) {
        net::Encoder resp(s->partial.size() + 16);
        resp.raw(s->partial.data(), s->partial.size());
        std::uint8_t flags = s->dup_replay ? kRespDupReplay : 0;
        if (!s->tokens.empty()) flags |= kRespHasTokens;
        resp.u8(flags);
        if ((flags & kRespHasTokens) != 0) {
          resp.varint(s->tokens.size());
          for (const auto& [target, token] : s->tokens) {
            resp.varint(target);
            resp.varint(token.size());
            resp.raw(token.data(), token.size());
          }
        }
        srv->reactor_->send_response(s->ref, resp.take());
        return;
      }
      const causal::SiteId target = s->next++;
      srv->engine_->async_token(
          target,
          [srv, target, s](std::optional<std::vector<std::uint8_t>> token) {
            if (token) s->tokens.emplace_back(target, std::move(*token));
            step(srv, s);
          });
    }
  };
  Runner::step(this, st);
}

void SiteServer::handle_client_frame(const net::Reactor::ConnRef& ref,
                                     std::vector<std::uint8_t> body) {
  net::Decoder req(body.data(), body.size());
  const std::uint8_t op = req.u8();
  if (!req.ok()) {
    send_status(ref, ClientStatus::kBadRequest);
    return;
  }
  switch (static_cast<ClientOp>(op)) {
    case ClientOp::kPing: {
      send_status(ref, ClientStatus::kOk);
      return;
    }
    case ClientOp::kPut: {
      const auto x = static_cast<causal::VarId>(req.varint());
      std::string data = req.bytes();
      if (!req.ok() || x >= rmap_.vars()) {
        send_status(ref, ClientStatus::kBadRequest);
        return;
      }
      // Trailing opts (absent from old clients): retry metadata.
      std::uint8_t popts = 0;
      std::uint64_t session = 0;
      std::uint64_t req_id = 0;
      const bool has_opts = req.remaining() > 0;
      if (has_opts) {
        popts = req.u8();
        if ((popts & kReqHasRequestId) != 0) {
          session = req.varint();
          req_id = req.varint();
        }
        if (!req.ok()) {
          send_status(ref, ClientStatus::kBadRequest);
          return;
        }
      }
      const bool dedup = (popts & kReqHasRequestId) != 0 && session != 0;
      if (dedup) {
        std::optional<ProtocolEngine::WriteResult> replay;
        {
          std::lock_guard lk(dedup_mu_);
          const auto it = put_dedup_.find(session);
          if (it != put_dedup_.end() && it->second.req_id == req_id) {
            replay = it->second.result;
          }
        }
        if (replay) {
          net::Encoder resp;
          resp.u8(static_cast<std::uint8_t>(ClientStatus::kOk));
          resp.varint(replay->id.writer + 1);
          resp.varint(replay->id.seq);
          resp.varint(replay->lamport);
          if (has_opts) {
            finish_with_tokens(ref, resp.take(),
                               (popts & kReqWantTokens) != 0,
                               /*dup_replay=*/true);
          } else {
            reactor_->send_response(ref, resp.take());
          }
          return;
        }
      }
      const bool local = rmap_.replicated_at(x, self_);
      engine_->async_write(
          x, std::move(data), local,
          [this, ref, has_opts, popts, dedup, session,
           req_id](std::optional<ProtocolEngine::WriteResult> r) {
            if (!r) {
              send_status(ref, ClientStatus::kShuttingDown);
              return;
            }
            if (dedup) {
              std::lock_guard lk(dedup_mu_);
              if (put_dedup_.size() >= kDedupSessionCap &&
                  put_dedup_.count(session) == 0) {
                put_dedup_.erase(put_dedup_.begin());
              }
              put_dedup_[session] = PutDedup{req_id, *r};
            }
            net::Encoder resp;
            resp.u8(static_cast<std::uint8_t>(ClientStatus::kOk));
            resp.varint(r->id.writer + 1);
            resp.varint(r->id.seq);
            resp.varint(r->lamport);
            if (has_opts) {
              finish_with_tokens(ref, resp.take(),
                                 (popts & kReqWantTokens) != 0,
                                 /*dup_replay=*/false);
            } else {
              reactor_->send_response(ref, resp.take());
            }
          });
      return;
    }
    case ClientOp::kGet: {
      const auto x = static_cast<causal::VarId>(req.varint());
      if (!req.ok() || x >= rmap_.vars()) {
        send_status(ref, ClientStatus::kBadRequest);
        return;
      }
      const bool has_opts = req.remaining() > 0;
      const std::uint8_t gopts = has_opts ? req.u8() : 0;
      if (!rmap_.replicated_at(x, self_)) {
        // The read would park on a RemoteFetch; if the failure detector
        // believes every replica of x is down, fail fast with a typed
        // status instead of burning the whole fetch timeout.
        bool any_alive = false;
        for (const causal::SiteId s : rmap_.replicas(x)) {
          if (!peer_suspected(s)) {
            any_alive = true;
            break;
          }
        }
        if (!any_alive) {
          reads_fast_failed_.fetch_add(1, std::memory_order_relaxed);
          send_status(ref, ClientStatus::kUnavailable);
          return;
        }
      }
      engine_->async_read(
          x, [this, ref, has_opts, gopts](std::optional<causal::Value> v) {
            if (!v) {
              send_status(ref, ClientStatus::kShuttingDown);
              return;
            }
            net::Encoder resp;
            resp.u8(static_cast<std::uint8_t>(ClientStatus::kOk));
            causal::encode_value(resp, *v);
            if (has_opts) {
              finish_with_tokens(ref, resp.take(),
                                 (gopts & kReqWantTokens) != 0, false);
            } else {
              reactor_->send_response(ref, resp.take());
            }
          });
      return;
    }
    case ClientOp::kSnapshot: {
      const std::uint64_t count = req.varint();
      std::vector<causal::VarId> vars;
      for (std::uint64_t i = 0; i < count && req.ok(); ++i) {
        vars.push_back(static_cast<causal::VarId>(req.varint()));
      }
      if (!req.ok() || count == 0 || count > rmap_.vars()) {
        send_status(ref, ClientStatus::kBadRequest);
        return;
      }
      for (const causal::VarId x : vars) {
        if (x >= rmap_.vars() || !rmap_.replicated_at(x, self_)) {
          send_status(ref, ClientStatus::kNotReplicated);
          return;
        }
      }
      const bool has_opts = req.remaining() > 0;
      const std::uint8_t sopts = has_opts ? req.u8() : 0;
      // Single shard: one engine command, the same atomic cut as
      // ThreadedCluster::read_many. Sharded: a sequence of per-shard cuts
      // (see sharded_engine.hpp).
      engine_->async_snapshot(
          std::move(vars),
          [this, ref, has_opts,
           sopts](std::optional<std::vector<causal::Value>> values) {
            if (!values) {
              send_status(ref, ClientStatus::kShuttingDown);
              return;
            }
            net::Encoder resp;
            resp.u8(static_cast<std::uint8_t>(ClientStatus::kOk));
            resp.varint(values->size());
            for (const causal::Value& v : *values) {
              causal::encode_value(resp, v);
            }
            if (has_opts) {
              finish_with_tokens(ref, resp.take(),
                                 (sopts & kReqWantTokens) != 0, false);
            } else {
              reactor_->send_response(ref, resp.take());
            }
          });
      return;
    }
    case ClientOp::kToken: {
      const auto target = static_cast<causal::SiteId>(req.varint());
      if (!req.ok() || target >= rmap_.sites()) {
        send_status(ref, ClientStatus::kBadRequest);
        return;
      }
      engine_->async_token(
          target,
          [this, ref](std::optional<std::vector<std::uint8_t>> token) {
            if (!token) {
              send_status(ref, ClientStatus::kShuttingDown);
              return;
            }
            net::Encoder resp;
            resp.u8(static_cast<std::uint8_t>(ClientStatus::kOk));
            resp.varint(token->size());
            resp.raw(token->data(), token->size());
            reactor_->send_response(ref, resp.take());
          });
      return;
    }
    case ClientOp::kCovered: {
      const std::string token_str = req.bytes();
      // Clamp so a garbage wait cannot park the request for hours (the
      // client polls in bounded rounds anyway).
      const std::uint64_t wait_us =
          std::min<std::uint64_t>(req.varint(), 10'000'000);
      if (!req.ok()) {
        send_status(ref, ClientStatus::kBadRequest);
        return;
      }
      std::vector<std::uint8_t> token(token_str.begin(), token_str.end());
      engine_->async_covered(
          std::move(token), wait_us, [this, ref](std::optional<bool> covered) {
            if (!covered) {
              send_status(ref, ClientStatus::kShuttingDown);
              return;
            }
            net::Encoder resp;
            resp.u8(static_cast<std::uint8_t>(ClientStatus::kOk));
            resp.u8(*covered ? 1 : 0);
            reactor_->send_response(ref, resp.take());
          });
      return;
    }
    case ClientOp::kChaos: {
      // Touches only the transport (thread-safe); handled inline.
      const std::uint8_t action = req.u8();
      if (!req.ok() || action > 1) {
        send_status(ref, ClientStatus::kBadRequest);
        return;
      }
      if (action == 0) {
        transport_->clear_chaos();
        send_status(ref, ClientStatus::kOk);
        return;
      }
      const std::uint64_t peer_plus1 = req.varint();
      net::ChaosRule rule;
      rule.drop_milli = static_cast<std::uint32_t>(req.varint());
      rule.delay_us = static_cast<std::uint32_t>(req.varint());
      rule.rate_per_s = static_cast<std::uint32_t>(req.varint());
      rule.partition = req.u8() != 0;
      if (!req.ok() || rule.drop_milli > 1000 ||
          peer_plus1 > config_.site_count() ||
          (peer_plus1 != 0 && peer_plus1 - 1 == self_)) {
        send_status(ref, ClientStatus::kBadRequest);
        return;
      }
      for (causal::SiteId peer = 0; peer < config_.site_count(); ++peer) {
        if (peer == self_) continue;
        if (peer_plus1 != 0 && peer != peer_plus1 - 1) continue;
        transport_->set_chaos(peer, rule);
      }
      send_status(ref, ClientStatus::kOk);
      return;
    }
    case ClientOp::kStatus:
    case ClientOp::kMetrics:
    case ClientOp::kStoreStat:
    case ClientOp::kEngineStat: {
      // Blocking engine aggregations: run on the admin executor so the
      // event loop stays free.
      admin_post([this, ref, op, body = std::move(body)] {
        net::Decoder areq(body.data(), body.size());
        areq.u8();  // re-skip the op byte
        net::Encoder resp;
        handle_admin_request(op, areq, resp);
        reactor_->send_response(ref, resp.take());
      });
      return;
    }
  }
  send_status(ref, ClientStatus::kBadRequest);
}

void SiteServer::admin_post(std::function<void()> job) {
  {
    std::lock_guard lk(admin_mu_);
    if (admin_stop_) return;  // request dies with the connection
    admin_q_.push_back(std::move(job));
  }
  admin_cv_.notify_one();
}

void SiteServer::admin_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(admin_mu_);
      admin_cv_.wait(lk, [this] { return admin_stop_ || !admin_q_.empty(); });
      if (admin_stop_) return;
      job = std::move(admin_q_.front());
      admin_q_.pop_front();
    }
    job();
  }
}

void SiteServer::handle_admin_request(std::uint8_t op, net::Decoder& req,
                                      net::Encoder& resp) {
  const auto status = [&resp](ClientStatus st) {
    resp.u8(static_cast<std::uint8_t>(st));
  };
  switch (static_cast<ClientOp>(op)) {
    case ClientOp::kStatus: {
      const auto s = engine_->status();
      const auto per_shard = engine_->per_shard_stats();
      if (!s || !per_shard) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      const auto stats = transport_->peer_stats();
      std::uint64_t sent = 0;
      std::uint64_t recv = 0;
      std::uint64_t queued = 0;
      for (const auto& ps : stats) {
        sent += ps.msgs_sent;
        recv += ps.msgs_recv;
        queued += ps.queued;
      }
      status(ClientStatus::kOk);
      resp.varint(self_);
      resp.u8(static_cast<std::uint8_t>(config_.algorithm));
      resp.varint(s->writes);
      resp.varint(s->reads);
      resp.varint(s->pending_updates);
      resp.varint(sent);
      resp.varint(recv);
      resp.varint(queued);
      // Geo extension: this site's region plus per-region peer health
      // (flat clusters answer region:"" regions:0).
      const auto& topo = config_.topology;
      if (topo.empty()) {
        resp.bytes(std::string{});
        resp.varint(0);
      } else {
        resp.bytes(topo.region_name_of(self_));
        resp.varint(topo.region_count());
        for (std::uint32_t reg = 0; reg < topo.region_count(); ++reg) {
          resp.bytes(topo.region_names[reg]);
          std::uint64_t total = 0;
          std::uint64_t up = 0;
          for (const auto& ps : stats) {
            if (topo.region_of(ps.site) != reg) continue;
            ++total;
            if (ps.connected) ++up;
          }
          resp.varint(total);
          resp.varint(up);
        }
      }
      // Failure-detector extension: the peers this site currently
      // suspects unreachable.
      std::vector<causal::SiteId> suspected;
      for (causal::SiteId peer = 0; peer < config_.site_count(); ++peer) {
        if (peer != self_ && peer_suspected(peer)) suspected.push_back(peer);
      }
      resp.varint(suspected.size());
      for (const causal::SiteId peer : suspected) resp.varint(peer);
      // Engine-shard extension: one row per shard.
      resp.varint(per_shard->size());
      for (const auto& row : *per_shard) {
        resp.varint(row.writes);
        resp.varint(row.reads);
        resp.varint(row.pending_updates);
        resp.varint(row.queue.depth);
        resp.varint(row.queue.capacity);
        resp.varint(row.queue.parked_reads);
        resp.varint(row.queue.covered_waiters);
      }
      return;
    }
    case ClientOp::kMetrics: {
      status(ClientStatus::kOk);
      resp.bytes(metrics_text());
      return;
    }
    case ClientOp::kStoreStat: {
      const auto stats = engine_->store_stats();
      if (!stats) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.u8(static_cast<std::uint8_t>(stats->kind));
      resp.varint(stats->keys);
      resp.varint(stats->resident_bytes);
      resp.varint(stats->index_slots);
      resp.varint(stats->lookups);
      resp.varint(stats->probes);
      resp.varint(stats->spilled_keys);
      resp.varint(stats->spill_segment_bytes);
      resp.varint(stats->spill_reads);
      resp.varint(stats->spill_writes);
      resp.varint(stats->compactions);
      return;
    }
    case ClientOp::kEngineStat: {
      const auto per_shard = engine_->per_shard_stats();
      if (!per_shard) {
        status(ClientStatus::kShuttingDown);
        return;
      }
      status(ClientStatus::kOk);
      resp.varint(per_shard->size());
      resp.varint(engine_->parked_envelopes());
      resp.varint(engine_->malformed_envelopes());
      for (const auto& row : *per_shard) {
        resp.varint(row.writes);
        resp.varint(row.reads);
        resp.varint(row.pending_updates);
        resp.varint(row.queue.depth);
        resp.varint(row.queue.capacity);
        resp.varint(row.queue.peak_depth);
        resp.varint(row.queue.producer_waits);
        resp.varint(row.queue.parked_reads);
        resp.varint(row.queue.covered_waiters);
        resp.varint(row.queue.enqueued_total());
      }
      return;
    }
    default:
      status(ClientStatus::kBadRequest);
      (void)req;
      return;
  }
}

HealthStats SiteServer::health_stats() const {
  HealthStats out;
  out.reads_fast_failed = reads_fast_failed_.load(std::memory_order_relaxed);
  for (causal::SiteId peer = 0; peer < health_.size(); ++peer) {
    if (peer == self_) continue;
    const PeerHealth& h = health_[peer];
    HealthStats::Peer p;
    p.site = peer;
    p.suspected = h.suspected.load(std::memory_order_relaxed);
    p.rtt_ewma_us = h.rtt_ewma_us.load(std::memory_order_relaxed);
    p.suspect_events = h.suspect_events.load(std::memory_order_relaxed);
    p.heartbeats_sent = h.heartbeats_sent.load(std::memory_order_relaxed);
    p.acks_received = h.acks_received.load(std::memory_order_relaxed);
    out.peers.push_back(p);
  }
  return out;
}

metrics::Metrics SiteServer::metrics() const {
  metrics::Metrics merged = transport_->metrics_snapshot();
  if (const auto proto = engine_->protocol_metrics()) merged.merge(*proto);
  return merged;
}

std::size_t SiteServer::pending_updates() const {
  const auto s = engine_->status();
  return s ? static_cast<std::size_t>(s->pending_updates) : 0;
}

ProtocolEngine::QueueStats SiteServer::engine_stats() const {
  ProtocolEngine::QueueStats sum;
  for (const auto& s : engine_->queue_stats()) {
    sum.depth += s.depth;
    sum.capacity += s.capacity;
    sum.peak_depth += s.peak_depth;
    sum.producer_waits += s.producer_waits;
    sum.parked_reads += s.parked_reads;
    sum.covered_waiters += s.covered_waiters;
    for (std::size_t k = 0; k < ProtocolEngine::kCmdKinds; ++k) {
      sum.enqueued[k] += s.enqueued[k];
    }
  }
  return sum;
}

net::Reactor::Stats SiteServer::reactor_stats() const {
  return reactor_ ? reactor_->stats() : net::Reactor::Stats{};
}

std::string SiteServer::metrics_text() const {
  const auto s = engine_->status();
  const auto d = engine_->durability_stats();
  std::vector<std::string> site_regions;
  if (!config_.topology.empty()) {
    site_regions.reserve(config_.sites.size());
    for (causal::SiteId peer = 0; peer < config_.site_count(); ++peer) {
      site_regions.push_back(config_.topology.region_name_of(peer));
    }
  }
  const auto eng = engine_->store_stats();
  return render_metrics_text(
      self_, metrics(), engine_->queue_stats(), transport_->peer_stats(),
      s ? s->pending_updates : 0, d ? *d : Durability::Stats{}, site_regions,
      health_stats(), eng ? *eng : store::EngineStats{},
      engine_->parked_envelopes(), engine_->malformed_envelopes());
}

}  // namespace ccpr::server
