// Durability: crash recovery and anti-entropy catch-up for one site.
//
// Owned by the ProtocolEngine and — after recover() returns — touched only
// on its apply thread, so none of this state needs a lock. It wraps three
// cooperating mechanisms:
//
//  1. A write-ahead log (server/wal.hpp). Every state transition that the
//     protocol cannot re-derive is appended *before* it is applied: local
//     writes (kLocalWrite), admitted peer updates (kPeerUpdate) and causal
//     metadata merged from fetch responses (kMetaMerge). Periodic
//     checkpoints (serialized engine channel state + the protocol's own
//     serialize_state) bound replay to the tail of one generation file.
//
//  2. Durable update channels. Every outbound kUpdate is stamped with this
//     site's channel epoch (a random nonzero nonce persisted in the WAL, so
//     it survives restarts — unlike the transport incarnation) and a dense
//     per-destination chan_seq. Receivers track (epoch, applied) per source:
//     duplicates are dropped, in-order updates are logged + applied, and a
//     gap — updates the sender produced while we were down or that overflowed
//     a dead peer's bounded outbound queue — triggers a kCatchupReq.
//
//  3. Anti-entropy catch-up. Senders retain a bounded window of stamped
//     kUpdate copies per destination. A kCatchupReq announces the
//     requester's durable watermark; the responder trims its retention,
//     answers with kCatchupResp {epoch, first_retained, latest, chunk_end}
//     and re-sends retained updates above the watermark *with their
//     original bodies and stamps* (regenerated metadata would violate the
//     protocols' FIFO-slot activation predicates). Re-sends are chunked
//     (catchup_burst per request): a full-backlog burst would overflow the
//     bounded per-peer transport queue, whose drop-oldest policy discards
//     exactly the next-in-FIFO-order messages and turns recovery into a
//     retransmit storm. Instead the requester pulls — when it applies
//     chunk_end and is still short of the target it immediately requests
//     the next chunk, so a backlog streams at queue-safe granularity. If
//     the watermark predates the retention window, the requester
//     fast-forwards past the un-retained prefix — the design trades
//     completeness for bounded memory and reports the skip.
//
// Recovery replays the WAL tail through the protocol's normal entry points
// with sends captured into the retention window instead of transmitted.
// Because fetch-response merges performed by reads are only partially
// logged (merge_on_local_read merges are not), replay calls the protocol's
// merge_all_local_meta() conservative seal before every replayed local
// write: superset causal metadata can only delay remote activation, never
// reorder it, so the seal is safe where a precise reconstruction would not
// be (see causal/protocol.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "causal/protocol.hpp"
#include "net/message.hpp"
#include "server/wal.hpp"

namespace ccpr::server {

class Durability {
 public:
  struct Options {
    /// Empty => no WAL: channels and catch-up still run (they also heal
    /// bounded-queue overflow drops), but nothing survives a restart.
    std::string data_dir;
    Wal::Sync wal_sync = Wal::Sync::kAlways;
    causal::SiteId self = 0;
    std::uint32_t sites = 0;
    /// Retained stamped kUpdate copies per destination (catch-up window).
    std::size_t catchup_retain = 8192;
    /// Appended records between checkpoints.
    std::uint64_t checkpoint_every = 4096;
    /// Max retained updates re-sent per kCatchupReq. Must stay below the
    /// per-peer outbound queue cap or resend bursts overflow it (dropping
    /// the oldest = next-needed messages). The requester streams a large
    /// backlog by re-requesting as each chunk completes.
    std::uint32_t catchup_burst = 64;
    /// Applied to every stamped kUpdate after channel stamping and before
    /// retention (sharded sites wrap it in a cross-shard coverage envelope
    /// here). Wrapping must happen at this point, not in `send`: catch-up
    /// re-sends replay the retained copy verbatim, and a re-send that
    /// re-wrapped with *current* tokens could demand coverage of writes
    /// that are themselves still parked behind this one at the receiver —
    /// a cross-shard deadlock. Original-send tokens only ever reference
    /// writes sent earlier, so the dependency order stays acyclic.
    /// Null = identity.
    std::function<net::Message(net::Message)> wrap_update;
  };

  struct Stats {
    bool wal_enabled = false;
    Wal::Stats wal;
    std::uint64_t catchup_updates = 0;  ///< applies covered by a catch-up target
    std::uint64_t catchup_resent = 0;   ///< retained updates re-sent to peers
    std::uint64_t catchup_reqs_sent = 0;
    std::uint64_t catchup_reqs_recv = 0;
    std::uint64_t dup_drops = 0;      ///< channel duplicates dropped
    std::uint64_t gap_drops = 0;      ///< out-of-order updates dropped
    std::uint64_t skipped = 0;        ///< fast-forwarded past un-retained seqs
    std::uint64_t retained_msgs = 0;  ///< current retention gauge
  };

  /// Startup-gate view: after a restart the server delays client service
  /// until every peer has answered a kCatchupReq and its announced latest
  /// seq has been applied (or a timeout elapses).
  struct CatchupProgress {
    bool recovered = false;  ///< prior WAL state existed at recover()
    bool complete = true;    ///< all peers' announced targets reached
  };

  /// `send` forwards to the transport; stored, called on the apply thread.
  Durability(Options opts, std::function<void(net::Message)> send);

  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  /// Open the WAL (when data_dir is set) and replay it through `proto`.
  /// Must run before the engine starts, on the starting thread, with the
  /// protocol otherwise untouched. Returns false with `*err` set on I/O or
  /// decode failure.
  bool recover(causal::IProtocol* proto, std::string* err);

  // ---- apply-thread hooks (called from ProtocolEngine) ----

  /// Log a client write (write-ahead: runs just before proto->write).
  void on_local_write(causal::VarId x, const std::string& data);
  /// Stamp/retain/forward an outbound protocol send. During recovery the
  /// transport forward is suppressed (sends are replay re-derivations).
  void on_protocol_send(net::Message msg);
  /// Full inbound dispatch: channel admission + WAL for kUpdate, catch-up
  /// control for kCatchupReq/Resp, pass-through for fetch traffic.
  void on_inbound(causal::IProtocol* proto, net::Message msg);
  /// Log a fetch-response metadata merge (Services::persist_meta_merge).
  void on_meta_merge(causal::VarId x, causal::SiteId responder,
                     const std::uint8_t* data, std::size_t len);
  /// Periodic anti-entropy: announce watermarks to every peer, sync the
  /// WAL under the batch policy, checkpoint if due.
  void tick(causal::IProtocol* proto);
  /// Checkpoint if the record budget since the last one is spent. Only
  /// call at protocol-consistent points (never mid-protocol-call).
  void maybe_checkpoint(causal::IProtocol* proto);

  Stats stats() const;
  CatchupProgress progress() const;

  /// Human-readable offline WAL summary for `ccpr_client wal-stat`:
  /// record counts, checkpoint position and the per-peer durable
  /// watermarks recomputed from checkpoint + tail. Standalone (no server).
  static bool describe_wal(const std::string& dir, causal::SiteId site,
                           std::string* out, std::string* err);

 private:
  struct ChannelOut {
    std::uint64_t next_seq = 0;        ///< last stamped chan_seq
    std::uint64_t first_retained = 1;  ///< chan_seq of retained_.front()
    std::deque<net::Message> retained;
  };

  struct ChannelIn {
    std::uint64_t epoch = 0;      ///< sender's channel epoch last seen
    std::uint64_t applied = 0;    ///< last contiguously admitted chan_seq
    std::uint64_t target = 0;     ///< latest announced by kCatchupResp
    std::uint64_t chunk_end = 0;  ///< last seq of the announced resend chunk
    bool have_target = false;
    bool req_inflight = false;  ///< throttles gap-triggered requests
  };

  void append(Wal::RecordType type, const net::Encoder& enc);
  void send_catchup_req(causal::SiteId peer);
  void handle_update(causal::IProtocol* proto, net::Message&& msg);
  void handle_catchup_req(const net::Message& msg);
  void handle_catchup_resp(const net::Message& msg);
  std::string encode_checkpoint(causal::IProtocol* proto) const;
  bool restore_checkpoint(causal::IProtocol* proto, const std::string& payload,
                          std::string* err);
  bool replay_tail(causal::IProtocol* proto,
                   const std::vector<Wal::Record>& records, std::size_t begin,
                   std::string* err);

  Options opts_;
  std::function<void(net::Message)> send_;
  std::unique_ptr<Wal> wal_;
  std::uint64_t epoch_ = 0;  ///< this site's channel epoch (nonzero)
  std::vector<ChannelOut> out_;
  std::vector<ChannelIn> in_;
  std::uint64_t records_since_checkpoint_ = 0;
  bool replaying_ = false;
  bool recovered_ = false;
  Stats stats_;
};

}  // namespace ccpr::server
