// SiteServer: the daemon hosting one site of a real-network cluster.
//
// It wires together the third runtime: a TcpTransport toward the peer
// sites, `engine-shards` protocol state machines behind a ShardedEngine
// facade, a timer thread for RemoteFetch failover, and an epoll Reactor
// serving the framed request/response protocol of client_protocol.hpp.
//
// Threading model (docs/RUNTIMES.md has the full picture): each protocol
// instance is owned exclusively by its shard's apply thread. Reactor loop
// threads, the transport delivery thread and the timer thread never touch
// a protocol — they enqueue commands on the shard engines' queues. Hot
// client ops (put/get/snapshot/token/covered) run fully asynchronously: the
// reactor hands the decoded frame to handle_client_frame on a loop thread,
// the engine callback builds the response on an apply thread and posts it
// back to the owning loop. Admin ops (status/metrics/store-stat/
// engine-stat) use the blocking engine API on a single admin-executor
// thread so they cannot stall the event loops. There is no mutex around any
// protocol anywhere in this file.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "causal/factory.hpp"
#include "metrics/metrics.hpp"
#include "net/chaos.hpp"
#include "net/reactor.hpp"
#include "net/tcp_transport.hpp"
#include "server/client_protocol.hpp"
#include "server/cluster_config.hpp"
#include "server/metrics_text.hpp"
#include "server/sharded_engine.hpp"
#include "util/timer_thread.hpp"

namespace ccpr::server {

class SiteServer : net::IMessageSink {
 public:
  /// Per-process (not cluster-wide) durability knobs, set from the command
  /// line. The catch-up machinery itself is always on; an empty data_dir
  /// just means nothing survives a restart of *this* process.
  struct Options {
    /// Directory for this site's write-ahead log; empty = no persistence.
    /// Shard 0 logs here directly, shard k > 0 under <data_dir>/shard-<k>.
    /// Also hosts the compact engine's spill segment (in a per-site
    /// subdirectory); with no data dir the spill budget is forced to 0.
    std::string data_dir;
    Wal::Sync wal_sync = Wal::Sync::kAlways;
    /// Command-line override of the cluster config's `store-engine` line
    /// (--store-engine); unset = use the config.
    std::optional<store::EngineKind> store_engine;
    /// Command-line override of the config's `engine-shards`; unset = use
    /// the config. Every site must agree (the map is cluster-wide).
    std::optional<std::uint32_t> engine_shards;
  };

  SiteServer(ClusterConfig config, causal::SiteId self);
  SiteServer(ClusterConfig config, causal::SiteId self, Options opts);
  ~SiteServer() override;

  SiteServer(const SiteServer&) = delete;
  SiteServer& operator=(const SiteServer&) = delete;

  /// Bind both listen ports and start serving. Returns false (with the
  /// server stopped) if either port cannot be bound.
  bool start();
  /// Graceful shutdown: stop accepting, abort in-flight client requests,
  /// flush outbound peer queues briefly, tear the transport down.
  void stop();

  causal::SiteId self() const noexcept { return self_; }
  /// Actual bound ports (useful when the config used port 0).
  std::uint16_t peer_port() const noexcept { return transport_->listen_port(); }
  std::uint16_t client_port() const noexcept { return client_port_; }

  const ClusterConfig& config() const noexcept { return config_; }
  const causal::ReplicaMap& replica_map() const noexcept { return rmap_; }
  std::uint32_t engine_shards() const noexcept { return engine_->shards(); }

  /// Site metrics: protocol counters merged with the transport counters.
  metrics::Metrics metrics() const;
  std::size_t pending_updates() const;
  /// Shard-aggregated queue stats (historic single-engine shape).
  ProtocolEngine::QueueStats engine_stats() const;
  /// One QueueStats per shard.
  std::vector<ProtocolEngine::QueueStats> engine_shard_stats() const {
    return engine_->queue_stats();
  }
  std::vector<net::TcpTransport::PeerStats> peer_stats() const {
    return transport_->peer_stats();
  }
  net::Reactor::Stats reactor_stats() const;
  /// The Prometheus exposition the kMetrics client op serves.
  std::string metrics_text() const;

  /// Chaos injection on this site's transport links (also reachable over
  /// the wire via the kChaos admin op).
  void set_chaos(causal::SiteId peer, const net::ChaosRule& rule) {
    transport_->set_chaos(peer, rule);
  }
  void clear_chaos() { transport_->clear_chaos(); }

  /// Failure-detector verdict for one peer (lock-free; also fed to the
  /// protocol's fetch-target ranking via Services::peer_suspected).
  bool peer_suspected(causal::SiteId peer) const {
    return peer < health_.size() &&
           health_[peer].suspected.load(std::memory_order_relaxed);
  }
  /// Snapshot of the per-peer heartbeat state for metrics/status.
  HealthStats health_stats() const;

 private:
  /// Per-peer failure-detector state. All fields are atomics so the tick
  /// (timer thread), ack handling (delivery thread), suspicion queries
  /// (apply thread via Services::peer_suspected) and scrapes (client
  /// threads) need no lock.
  struct PeerHealth {
    std::atomic<std::uint64_t> last_ack_us{0};  ///< steady us; 0 = never
    std::atomic<std::uint64_t> rtt_ewma_us{0};
    std::atomic<bool> suspected{false};
    std::atomic<std::uint64_t> suspect_events{0};
    std::atomic<std::uint64_t> heartbeats_sent{0};
    std::atomic<std::uint64_t> acks_received{0};
  };

  void deliver(net::Message msg) override;
  /// start() failure path once the admin/engine/transport layers are up:
  /// tear them back down in reverse order.
  void stop_admin_and_core();
  /// Self-rescheduling periodic anti-entropy round on the timer thread.
  void schedule_catchup_tick();
  /// Self-rescheduling heartbeat round: ping every peer, re-evaluate
  /// suspicion from ack ages. Runs on the timer thread.
  void schedule_heartbeat_tick();
  void heartbeat_tick();

  /// Reactor request handler (loop thread): decode the op, kick off the
  /// async engine work or hand the frame to the admin executor.
  void handle_client_frame(const net::Reactor::ConnRef& ref,
                           std::vector<std::uint8_t> body);
  /// Admin executor: blocking engine ops off the event loops.
  void admin_post(std::function<void()> job);
  void admin_loop();
  /// Blocking handler for the admin-side ops (status/metrics/store-stat/
  /// engine-stat); runs on the admin thread.
  void handle_admin_request(std::uint8_t op, net::Decoder& req,
                            net::Encoder& resp);
  void send_status(const net::Reactor::ConnRef& ref, ClientStatus st);
  /// Append the response flags byte and, when requested, per-target
  /// coverage tokens (gathered asynchronously), then send. Takes ownership
  /// of the partially built response body.
  void finish_with_tokens(net::Reactor::ConnRef ref,
                          std::vector<std::uint8_t> partial, bool want_tokens,
                          bool dup_replay);

  ClusterConfig config_;
  causal::SiteId self_;
  Options opts_;
  causal::ReplicaMap rmap_;
  std::uint32_t max_frame_bytes_;

  metrics::Metrics transport_metrics_;
  std::unique_ptr<net::TcpTransport> transport_;
  util::TimerThread timers_;

  /// Exclusive owner of the shard protocols and their metrics sinks.
  std::unique_ptr<ShardedEngine> engine_;
  /// Raw observers of the adopted protocols, used only in the
  /// single-threaded recovery phase of start() (post-recover token
  /// publish). Never dereferenced while apply threads run.
  std::vector<causal::IProtocol*> shard_protos_;

  std::uint16_t client_port_ = 0;
  std::unique_ptr<net::Reactor> reactor_;

  // ---- admin executor ----
  std::thread admin_thread_;
  std::mutex admin_mu_;
  std::condition_variable admin_cv_;
  std::deque<std::function<void()>> admin_q_;
  bool admin_stop_ = false;

  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // ---- failure detector ----
  std::vector<PeerHealth> health_;  // indexed by site id; self unused
  std::uint64_t hb_interval_us_ = 0;
  std::uint64_t suspect_floor_us_ = 0;
  std::atomic<std::uint64_t> hb_epoch_us_{0};  ///< detector start time
  std::atomic<std::uint64_t> reads_fast_failed_{0};

  // ---- idempotent put dedup ----
  // Last request id and result per client session, so a put retried after
  // a lost response replays the stored result instead of re-executing.
  // Bounded: at the cap an arbitrary idle session is evicted (a client
  // retries within seconds; eviction only risks re-execution for sessions
  // that went silent long ago). Touched from reactor loop threads (lookup)
  // and apply threads (store), hence the mutex.
  struct PutDedup {
    std::uint64_t req_id = 0;
    ProtocolEngine::WriteResult result;
  };
  std::mutex dedup_mu_;
  std::unordered_map<std::uint64_t, PutDedup> put_dedup_;
  static constexpr std::size_t kDedupSessionCap = 4096;
};

}  // namespace ccpr::server
