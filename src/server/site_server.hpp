// SiteServer: the daemon hosting one site of a real-network cluster.
//
// It wires together the third runtime: a TcpTransport toward the peer
// sites, one protocol state machine built by the existing factory, a timer
// thread for RemoteFetch failover, and a client listener serving the framed
// request/response protocol of client_protocol.hpp.
//
// Threading model (docs/RUNTIMES.md has the full picture): the protocol
// instance is owned exclusively by the ProtocolEngine's apply thread.
// Client-connection threads, the transport delivery thread and the timer
// thread never touch it — they enqueue commands on the engine's bounded
// queue and (for request/response work) block on per-command completions.
// There is no mutex around the protocol anywhere in this file.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "causal/factory.hpp"
#include "metrics/metrics.hpp"
#include "net/tcp_transport.hpp"
#include "server/cluster_config.hpp"
#include "server/protocol_engine.hpp"
#include "util/timer_thread.hpp"

namespace ccpr::server {

class SiteServer : net::IMessageSink {
 public:
  /// Per-process (not cluster-wide) durability knobs, set from the command
  /// line. The catch-up machinery itself is always on; an empty data_dir
  /// just means nothing survives a restart of *this* process.
  struct Options {
    /// Directory for this site's write-ahead log; empty = no persistence.
    std::string data_dir;
    Wal::Sync wal_sync = Wal::Sync::kAlways;
  };

  SiteServer(ClusterConfig config, causal::SiteId self);
  SiteServer(ClusterConfig config, causal::SiteId self, Options opts);
  ~SiteServer() override;

  SiteServer(const SiteServer&) = delete;
  SiteServer& operator=(const SiteServer&) = delete;

  /// Bind both listen ports and start serving. Returns false (with the
  /// server stopped) if either port cannot be bound.
  bool start();
  /// Graceful shutdown: stop accepting, abort in-flight client requests,
  /// flush outbound peer queues briefly, tear the transport down.
  void stop();

  causal::SiteId self() const noexcept { return self_; }
  /// Actual bound ports (useful when the config used port 0).
  std::uint16_t peer_port() const noexcept { return transport_->listen_port(); }
  std::uint16_t client_port() const noexcept { return client_port_; }

  const ClusterConfig& config() const noexcept { return config_; }
  const causal::ReplicaMap& replica_map() const noexcept { return rmap_; }

  /// Site metrics: protocol counters merged with the transport counters.
  metrics::Metrics metrics() const;
  std::size_t pending_updates() const;
  ProtocolEngine::QueueStats engine_stats() const {
    return engine_->queue_stats();
  }
  std::vector<net::TcpTransport::PeerStats> peer_stats() const {
    return transport_->peer_stats();
  }
  /// The Prometheus exposition the kMetrics client op serves.
  std::string metrics_text() const;

 private:
  struct ClientConn {
    net::Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void deliver(net::Message msg) override;
  /// Self-rescheduling periodic anti-entropy round on the timer thread.
  void schedule_catchup_tick();
  void accept_clients();
  void serve_client(ClientConn* conn);
  /// Execute one decoded request, appending the response body to `resp`.
  void handle_request(net::Decoder& req, net::Encoder& resp);

  ClusterConfig config_;
  causal::SiteId self_;
  Options opts_;
  causal::ReplicaMap rmap_;
  std::uint32_t max_frame_bytes_;

  metrics::Metrics transport_metrics_;
  std::unique_ptr<net::TcpTransport> transport_;
  util::TimerThread timers_;

  /// Exclusive owner of the protocol and its metrics sink. The sink object
  /// itself lives here so its address is stable across engine restarts.
  std::unique_ptr<ProtocolEngine> engine_;
  metrics::Metrics proto_metrics_;

  net::Socket client_listen_;
  std::uint16_t client_port_ = 0;
  std::thread client_accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<ClientConn>> conns_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace ccpr::server
