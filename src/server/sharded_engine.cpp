#include "server/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/assert.hpp"

namespace ccpr::server {

ShardedEngine::ShardedEngine(std::uint32_t shards, causal::SiteId self,
                             std::uint32_t n_sites,
                             ProtocolEngine::Options engine_opts)
    : map_(shards), self_(self), n_sites_(n_sites) {
  engines_.reserve(map_.shards());
  metrics_.reserve(map_.shards());
  for (std::uint32_t k = 0; k < map_.shards(); ++k) {
    engines_.push_back(std::make_unique<ProtocolEngine>(engine_opts));
    metrics_.push_back(std::make_unique<metrics::Metrics>());
  }
  token_cache_.assign(map_.shards(),
                      std::vector<std::vector<std::uint8_t>>(n_sites_));
}

ShardedEngine::~ShardedEngine() { stop_all(); }

void ShardedEngine::set_transport_send(
    std::function<void(net::Message)> send) {
  transport_send_ = std::move(send);
}

net::Message ShardedEngine::wrap(std::uint32_t shard, net::Message msg) {
  if (map_.shards() == 1) return msg;
  std::vector<causal::ShardToken> tokens;
  if (msg.kind == net::MsgKind::kUpdate ||
      msg.kind == net::MsgKind::kFetchResp) {
    std::lock_guard lk(token_mu_);
    tokens.reserve(map_.shards() - 1);
    for (std::uint32_t j = 0; j < map_.shards(); ++j) {
      if (j == shard) continue;
      const auto& tok = token_cache_[j][msg.dst];
      // Empty = never published, which only happens on a fresh boot before
      // shard j's first batch — its token would be trivially covered, so
      // carrying nothing is equivalent (recovery publishes before start).
      if (!tok.empty()) tokens.push_back(causal::ShardToken{j, tok});
    }
  }
  return causal::wrap_shard_envelope(shard, tokens, std::move(msg));
}

void ShardedEngine::wrap_and_send(std::uint32_t shard, net::Message msg) {
  CCPR_EXPECTS(transport_send_ != nullptr);
  // Already an envelope: a catch-up re-send of a retained wrapped update
  // (Durability wraps stamped updates before retention, so re-sends keep
  // their original-send tokens). Forward verbatim — re-wrapping would nest
  // envelopes, and fresh tokens could deadlock the receiver.
  if (msg.kind == net::MsgKind::kShardEnvelope) {
    transport_send_(std::move(msg));
    return;
  }
  transport_send_(wrap(shard, std::move(msg)));
}

void ShardedEngine::publish_tokens(std::uint32_t shard,
                                   causal::IProtocol& proto) {
  if (map_.shards() == 1) return;
  std::lock_guard lk(token_mu_);
  for (std::uint32_t dst = 0; dst < n_sites_; ++dst) {
    if (dst == self_) continue;
    token_cache_[shard][dst] = proto.coverage_token(dst);
  }
}

void ShardedEngine::install_hooks() {
  if (map_.shards() == 1) return;
  for (std::uint32_t k = 0; k < map_.shards(); ++k) {
    engines_[k]->set_batch_end_hook(
        [this, k](causal::IProtocol& p) { publish_tokens(k, p); });
  }
}

void ShardedEngine::start_all() {
  for (auto& e : engines_) e->start();
}

void ShardedEngine::stop_all() {
  for (auto& e : engines_) e->stop();
}

void ShardedEngine::deliver(net::Message msg) {
  if (map_.shards() == 1) {
    engines_[0]->apply_message(std::move(msg));
    return;
  }
  if (msg.kind != net::MsgKind::kShardEnvelope) {
    // Sharded peers only exchange envelopes; anything else is a config
    // mismatch (peer running a different shard count) — drop and count.
    malformed_envelopes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::optional<causal::ShardEnvelope> env = causal::unwrap_shard_envelope(msg);
  if (!env || env->shard >= map_.shards()) {
    malformed_envelopes_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t key = chan_key(msg.src, env->shard);
  bool arm = false;
  {
    std::lock_guard lk(adm_mu_);
    Chan& c = chans_[key];
    c.q.push_back(std::move(*env));
    parked_envelopes_.fetch_add(1, std::memory_order_relaxed);
    if (!c.armed) {
      c.armed = true;
      arm = true;
    }
  }
  if (arm) arm_or_drain(key, /*bounded=*/true);
}

void ShardedEngine::arm_or_drain(std::uint64_t key, bool bounded) {
  for (;;) {
    std::vector<causal::ShardToken> tokens;
    {
      std::lock_guard lk(adm_mu_);
      auto it = chans_.find(key);
      if (it == chans_.end() || it->second.q.empty()) {
        if (it != chans_.end()) chans_.erase(it);
        return;
      }
      for (const causal::ShardToken& t : it->second.q.front().tokens) {
        if (t.shard < map_.shards() && t.shard != it->second.q.front().shard &&
            !t.token.empty()) {
          tokens.push_back(t);
        }
      }
    }
    if (tokens.empty()) {
      // Head carries no checkable dependencies (fetch/catch-up requests, or
      // trivially covered): release it here and look at the next head.
      causal::ShardEnvelope env;
      {
        std::lock_guard lk(adm_mu_);
        auto it = chans_.find(key);
        if (it == chans_.end() || it->second.q.empty()) return;
        env = std::move(it->second.q.front());
        it->second.q.pop_front();
        parked_envelopes_.fetch_sub(1, std::memory_order_relaxed);
      }
      engines_[env.shard]->apply_message(std::move(env.inner), bounded);
      continue;
    }
    auto gate = std::make_shared<Gate>();
    gate->remaining.store(static_cast<std::uint32_t>(tokens.size()),
                          std::memory_order_relaxed);
    gate->chan_key = key;
    for (causal::ShardToken& t : tokens) {
      // Verdict value is irrelevant: covered -> proceed; nullopt (engine
      // stopping) -> proceed too, the release enqueue is then a no-op drop,
      // exactly what an unsharded stopping site does with late deliveries.
      engines_[t.shard]->post_covered_callback(
          std::move(t.token),
          [this, gate](std::optional<bool>) {
            if (gate->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
              on_gate_open(gate->chan_key);
            }
          },
          bounded);
    }
    return;
  }
}

void ShardedEngine::on_gate_open(std::uint64_t key) {
  causal::ShardEnvelope env;
  {
    std::lock_guard lk(adm_mu_);
    auto it = chans_.find(key);
    if (it == chans_.end() || it->second.q.empty()) return;
    env = std::move(it->second.q.front());
    it->second.q.pop_front();
    parked_envelopes_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Runs on whichever shard's apply thread reported the last verdict (or on
  // the poster's thread when an engine is stopping): everything below must
  // stay non-blocking, hence unbounded enqueues.
  engines_[env.shard]->apply_message(std::move(env.inner), /*bounded=*/false);
  arm_or_drain(key, /*bounded=*/false);
}

// ---- client-facing async API ----

void ShardedEngine::async_write(causal::VarId x, std::string data,
                                bool local_replica,
                                ProtocolEngine::WriteCb cb) {
  engines_[map_.shard_of(x)]->async_write(x, std::move(data), local_replica,
                                          std::move(cb));
}

void ShardedEngine::async_read(causal::VarId x, ProtocolEngine::ReadCb cb) {
  engines_[map_.shard_of(x)]->async_read(x, std::move(cb));
}

namespace {

struct SnapState {
  std::vector<causal::Value> out;
  // groups[g] = (shard, indices into the request in shard-local order)
  std::vector<std::pair<std::uint32_t, std::vector<std::size_t>>> groups;
  std::vector<std::vector<causal::VarId>> group_vars;
  std::size_t gi = 0;
  ProtocolEngine::SnapshotCb cb;
};

}  // namespace

void ShardedEngine::async_snapshot(std::vector<causal::VarId> xs,
                                   ProtocolEngine::SnapshotCb cb) {
  if (map_.shards() == 1) {
    engines_[0]->async_snapshot(std::move(xs), std::move(cb));
    return;
  }
  auto st = std::make_shared<SnapState>();
  st->out.resize(xs.size());
  st->cb = std::move(cb);
  std::vector<std::int64_t> group_of(map_.shards(), -1);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::uint32_t k = map_.shard_of(xs[i]);
    if (group_of[k] < 0) {
      group_of[k] = static_cast<std::int64_t>(st->groups.size());
      st->groups.emplace_back(k, std::vector<std::size_t>{});
      st->group_vars.emplace_back();
    }
    st->groups[static_cast<std::size_t>(group_of[k])].second.push_back(i);
    st->group_vars[static_cast<std::size_t>(group_of[k])].push_back(xs[i]);
  }
  // Sequential per-shard cuts: each sub-snapshot is issued only after the
  // previous one completed, so the values form a causally consistent read
  // sequence (weaker than the single-shard atomic cut; see RUNTIMES.md).
  struct Runner {
    static void step(ShardedEngine* eng, std::shared_ptr<SnapState> s) {
      const auto g = s->gi;
      eng->engines_[s->groups[g].first]->async_snapshot(
          s->group_vars[g],
          [eng, s](std::optional<std::vector<causal::Value>> vals) {
            if (!vals) {
              s->cb(std::nullopt);
              return;
            }
            const auto& idxs = s->groups[s->gi].second;
            for (std::size_t j = 0; j < idxs.size(); ++j) {
              s->out[idxs[j]] = std::move((*vals)[j]);
            }
            if (++s->gi == s->groups.size()) {
              s->cb(std::move(s->out));
            } else {
              step(eng, s);
            }
          });
    }
  };
  if (st->groups.empty()) {
    st->cb(std::vector<causal::Value>{});
    return;
  }
  Runner::step(this, st);
}

namespace {

struct TokenChain {
  std::vector<std::vector<std::uint8_t>> per_shard;
  ProtocolEngine::TokenCb cb;
};

}  // namespace

void ShardedEngine::async_token(causal::SiteId target,
                                ProtocolEngine::TokenCb cb) {
  if (map_.shards() == 1) {
    engines_[0]->async_token(target, std::move(cb));
    return;
  }
  auto st = std::make_shared<TokenChain>();
  st->cb = std::move(cb);
  struct Runner {
    static void step(ShardedEngine* eng, causal::SiteId target,
                     std::shared_ptr<TokenChain> s) {
      const std::uint32_t k = static_cast<std::uint32_t>(s->per_shard.size());
      eng->engines_[k]->async_token(
          target,
          [eng, target, s](std::optional<std::vector<std::uint8_t>> tok) {
            if (!tok) {
              s->cb(std::nullopt);
              return;
            }
            s->per_shard.push_back(std::move(*tok));
            if (s->per_shard.size() == eng->map_.shards()) {
              s->cb(causal::combine_shard_tokens(s->per_shard));
            } else {
              step(eng, target, s);
            }
          });
    }
  };
  Runner::step(this, target, st);
}

void ShardedEngine::async_covered(std::vector<std::uint8_t> token,
                                  std::uint64_t wait_us,
                                  ProtocolEngine::CoveredCb cb) {
  if (map_.shards() == 1) {
    engines_[0]->async_covered(std::move(token), wait_us, std::move(cb));
    return;
  }
  const auto split = causal::split_shard_tokens(token, map_.shards());
  if (!split) {
    cb(false);  // undecodable session token: same verdict as today
    return;
  }
  struct CovState {
    std::atomic<std::uint32_t> remaining{0};
    std::atomic<bool> ok{true};
    std::atomic<bool> aborted{false};
    ProtocolEngine::CoveredCb cb;
  };
  auto st = std::make_shared<CovState>();
  st->remaining.store(map_.shards(), std::memory_order_relaxed);
  st->cb = std::move(cb);
  for (std::uint32_t k = 0; k < map_.shards(); ++k) {
    engines_[k]->async_covered(
        (*split)[k], wait_us, [st](std::optional<bool> v) {
          if (!v) {
            st->aborted.store(true, std::memory_order_relaxed);
          } else if (!*v) {
            st->ok.store(false, std::memory_order_relaxed);
          }
          if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            if (st->aborted.load(std::memory_order_relaxed)) {
              st->cb(std::nullopt);
            } else {
              st->cb(st->ok.load(std::memory_order_relaxed));
            }
          }
        });
  }
}

// ---- blocking aggregation API ----

std::optional<ProtocolEngine::StatusSnapshot> ShardedEngine::status() {
  ProtocolEngine::StatusSnapshot sum;
  for (auto& e : engines_) {
    const auto s = e->status();
    if (!s) return std::nullopt;
    sum.writes += s->writes;
    sum.reads += s->reads;
    sum.pending_updates += s->pending_updates;
  }
  sum.pending_updates += parked_envelopes();
  return sum;
}

std::optional<std::vector<ShardedEngine::ShardStat>>
ShardedEngine::per_shard_stats() {
  std::vector<ShardStat> out;
  out.reserve(engines_.size());
  for (auto& e : engines_) {
    const auto s = e->status();
    if (!s) return std::nullopt;
    ShardStat row;
    row.queue = e->queue_stats();
    row.writes = s->writes;
    row.reads = s->reads;
    row.pending_updates = s->pending_updates;
    out.push_back(std::move(row));
  }
  return out;
}

std::optional<metrics::Metrics> ShardedEngine::protocol_metrics() {
  std::optional<metrics::Metrics> merged;
  for (auto& e : engines_) {
    auto m = e->protocol_metrics();
    if (!m) return std::nullopt;
    if (!merged) {
      merged = std::move(m);
    } else {
      merged->merge(*m);
    }
  }
  return merged;
}

std::optional<store::EngineStats> ShardedEngine::store_stats() {
  std::optional<store::EngineStats> sum;
  for (auto& e : engines_) {
    const auto s = e->store_stats();
    if (!s) return std::nullopt;
    if (!sum) {
      sum = *s;
      continue;
    }
    sum->keys += s->keys;
    sum->resident_bytes += s->resident_bytes;
    sum->index_slots += s->index_slots;
    sum->lookups += s->lookups;
    sum->probes += s->probes;
    sum->spilled_keys += s->spilled_keys;
    sum->spill_segment_bytes += s->spill_segment_bytes;
    sum->spill_reads += s->spill_reads;
    sum->spill_writes += s->spill_writes;
    sum->compactions += s->compactions;
  }
  return sum;
}

std::optional<Durability::Stats> ShardedEngine::durability_stats() {
  std::optional<Durability::Stats> sum;
  for (auto& e : engines_) {
    const auto s = e->durability_stats();
    if (!s) return std::nullopt;
    if (!sum) {
      sum = *s;
      continue;
    }
    sum->wal_enabled = sum->wal_enabled || s->wal_enabled;
    sum->wal.records_appended += s->wal.records_appended;
    sum->wal.bytes_appended += s->wal.bytes_appended;
    sum->wal.fsyncs += s->wal.fsyncs;
    sum->wal.checkpoints += s->wal.checkpoints;
    sum->wal.recovered_records += s->wal.recovered_records;
    sum->wal.truncated_bytes += s->wal.truncated_bytes;
    sum->catchup_updates += s->catchup_updates;
    sum->catchup_resent += s->catchup_resent;
    sum->catchup_reqs_sent += s->catchup_reqs_sent;
    sum->catchup_reqs_recv += s->catchup_reqs_recv;
    sum->dup_drops += s->dup_drops;
    sum->gap_drops += s->gap_drops;
    sum->skipped += s->skipped;
    sum->retained_msgs += s->retained_msgs;
  }
  return sum;
}

std::optional<Durability::CatchupProgress> ShardedEngine::catchup_progress() {
  Durability::CatchupProgress all;
  for (auto& e : engines_) {
    const auto p = e->catchup_progress();
    if (!p) return std::nullopt;
    all.recovered = all.recovered || p->recovered;
    all.complete = all.complete && p->complete;
  }
  return all;
}

std::optional<std::vector<std::uint8_t>> ShardedEngine::coverage_token(
    causal::SiteId target) {
  std::vector<std::vector<std::uint8_t>> per;
  per.reserve(engines_.size());
  for (auto& e : engines_) {
    auto t = e->coverage_token(target);
    if (!t) return std::nullopt;
    per.push_back(std::move(*t));
  }
  return causal::combine_shard_tokens(per);
}

std::optional<bool> ShardedEngine::wait_covered(
    std::vector<std::uint8_t> token, std::uint64_t wait_us) {
  if (map_.shards() == 1) {
    return engines_[0]->wait_covered(std::move(token), wait_us);
  }
  const auto split = causal::split_shard_tokens(token, map_.shards());
  if (!split) return false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(wait_us);
  bool all = true;
  for (std::uint32_t k = 0; k < map_.shards(); ++k) {
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t remaining =
        deadline > now
            ? static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      deadline - now)
                      .count())
            : 0;
    const auto v = engines_[k]->wait_covered((*split)[k], remaining);
    if (!v) return std::nullopt;
    all = all && *v;
  }
  return all;
}

std::vector<ProtocolEngine::QueueStats> ShardedEngine::queue_stats() const {
  std::vector<ProtocolEngine::QueueStats> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.push_back(e->queue_stats());
  return out;
}

}  // namespace ccpr::server
