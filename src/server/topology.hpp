// First-class geo topology for a cluster: named regions, the site->region
// assignment, and one-way latency classes per region pair.
//
// One Topology, parsed from the same cluster config file every daemon and
// client loads, drives all four layers that care about geography:
//   * placement  — store::region_placement via ClusterConfig::replica_map()
//   * routing    — ReplicaMap site distances, so RemoteFetch prefers
//                  intra-region replicas before spilling over the WAN
//   * clients    — client::Client::nearest_site proximity selection
//   * simulation — sim::GeoLatency built from the same link classes, so the
//                  discrete-event sim and the TCP cluster model the same
//                  deployment (apples-to-apples comparisons)
//
// An empty Topology (no `region` lines in the config) means the classic
// flat cluster: uniform distances, ring-nearest routing, no region labels.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "causal/types.hpp"
#include "sim/latency.hpp"

namespace ccpr::server {

struct Topology {
  /// Latency classes when a config declares regions but no explicit values:
  /// 1ms within a region, 50ms across regions (one-way).
  static constexpr std::uint32_t kDefaultIntraUs = 1'000;
  static constexpr std::uint32_t kDefaultInterUs = 50'000;

  /// An explicit inter-region link class (`link eu us 80ms`). Stored
  /// sparsely and symmetrically; unlisted pairs use kDefaultInterUs.
  struct Link {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t us = kDefaultInterUs;  ///< one-way latency
    bool operator==(const Link&) const = default;
  };

  /// Region id == declaration order in the config file.
  std::vector<std::string> region_names;
  /// Intra-region one-way latency per region (`region eu 2ms`).
  std::vector<std::uint32_t> intra_us;
  /// Region of each site; same length as the cluster's site list (empty in
  /// a flat topology).
  std::vector<std::uint32_t> region_of_site;
  std::vector<Link> links;

  bool operator==(const Topology&) const = default;

  /// True for the classic flat cluster (no `region` lines).
  bool empty() const noexcept { return region_names.empty(); }
  std::uint32_t region_count() const noexcept {
    return static_cast<std::uint32_t>(region_names.size());
  }
  std::uint32_t site_count() const noexcept {
    return static_cast<std::uint32_t>(region_of_site.size());
  }

  std::optional<std::uint32_t> region_id(std::string_view name) const;
  std::uint32_t region_of(causal::SiteId s) const;
  const std::string& region_name_of(causal::SiteId s) const;

  /// One-way latency between two regions: intra class on the diagonal, the
  /// declared link class (either order) or kDefaultInterUs off it.
  std::uint32_t link_us(std::uint32_t ra, std::uint32_t rb) const;

  /// One-way latency between two sites; 0 for a site and itself.
  std::uint32_t site_distance_us(causal::SiteId a, causal::SiteId b) const;

  /// n*n row-major matrix of site_distance_us — the pluggable distance
  /// ReplicaMap::set_site_distances consumes for proximity fetch routing.
  std::vector<std::uint32_t> site_distance_matrix() const;

  /// Home region per variable for region placement: var x is anchored at
  /// the region of site (x mod n), mirroring the ring policy's anchor, so
  /// variables spread across regions in proportion to their site counts.
  std::vector<std::uint32_t> home_region_of_var(std::uint32_t vars) const;

  /// n*n one-way delay matrix (microseconds) for the simulated runtime.
  std::vector<sim::SimTime> latency_matrix() const;
  /// Sim latency model from the same link classes that describe the real
  /// deployment; jitter_sigma as in sim::GeoLatency.
  std::unique_ptr<sim::GeoLatency> make_latency(double jitter_sigma) const;

  /// Sites in region r, ascending.
  std::vector<causal::SiteId> sites_in_region(std::uint32_t r) const;

  /// Structural checks: region ids in range, every site assigned when any
  /// is, intra/link vectors consistent, no duplicate names or link pairs.
  /// `site_count` is the cluster's site list length.
  bool validate(std::uint32_t sites, std::string* error) const;
};

}  // namespace ccpr::server
