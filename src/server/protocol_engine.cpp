#include "server/protocol_engine.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace ccpr::server {

const char* ProtocolEngine::kind_name(CmdKind k) noexcept {
  switch (k) {
    case CmdKind::kWrite: return "write";
    case CmdKind::kRead: return "read";
    case CmdKind::kSnapshot: return "snapshot";
    case CmdKind::kToken: return "token";
    case CmdKind::kCovered: return "covered";
    case CmdKind::kStatus: return "status";
    case CmdKind::kApplyUpdate: return "apply_update";
    case CmdKind::kTimer: return "timer";
    case CmdKind::kCatchup: return "catchup";
    case CmdKind::kKindCount: break;
  }
  return "unknown";
}

ProtocolEngine::ProtocolEngine(Options opts) : opts_(opts) {
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
}

ProtocolEngine::~ProtocolEngine() { stop(); }

void ProtocolEngine::adopt_protocol(std::unique_ptr<causal::IProtocol> proto,
                                    metrics::Metrics* proto_metrics) {
  CCPR_EXPECTS(proto_ == nullptr && proto != nullptr);
  CCPR_EXPECTS(proto_metrics != nullptr);
  proto_ = std::move(proto);
  proto_metrics_ = proto_metrics;
}

void ProtocolEngine::configure_durability(
    Durability::Options opts, std::function<void(net::Message)> transport_send) {
  CCPR_EXPECTS(durability_ == nullptr);
  std::lock_guard lk(mu_);
  CCPR_EXPECTS(!running_);
  durability_ =
      std::make_unique<Durability>(std::move(opts), std::move(transport_send));
}

bool ProtocolEngine::recover(std::string* err) {
  std::lock_guard lifecycle(lifecycle_mu_);
  CCPR_EXPECTS(proto_ != nullptr);
  {
    std::lock_guard lk(mu_);
    CCPR_EXPECTS(!running_);
  }
  if (!durability_) return true;
  return durability_->recover(proto_.get(), err);
}

void ProtocolEngine::set_batch_end_hook(BatchEndHook hook) {
  CCPR_EXPECTS(!batch_end_hook_);
  std::lock_guard lk(mu_);
  CCPR_EXPECTS(!running_);
  batch_end_hook_ = std::move(hook);
}

void ProtocolEngine::start() {
  std::lock_guard lifecycle(lifecycle_mu_);
  CCPR_EXPECTS(proto_ != nullptr);
  std::lock_guard lk(mu_);
  CCPR_EXPECTS(!running_);
  stop_requested_ = false;
  running_ = true;
  apply_thread_ = std::thread([this] { loop(); });
}

void ProtocolEngine::stop() {
  // lifecycle_mu_ serializes concurrent stop() calls: without it both could
  // pass the joinable() check and join the same thread twice. The apply
  // thread never takes it, so holding it across the join cannot deadlock.
  std::lock_guard lifecycle(lifecycle_mu_);
  {
    std::lock_guard lk(mu_);
    if (!running_ && !stop_requested_) return;
    stop_requested_ = true;
  }
  cv_consume_.notify_all();
  cv_produce_.notify_all();
  if (apply_thread_.joinable()) apply_thread_.join();
  std::lock_guard lk(mu_);
  running_ = false;
}

bool ProtocolEngine::running() const noexcept {
  std::lock_guard lk(mu_);
  return running_ && !stop_requested_;
}

bool ProtocolEngine::enqueue(CmdKind kind, std::function<void()> run,
                             bool bounded) {
  std::unique_lock lk(mu_);
  if (bounded && queue_.size() >= opts_.queue_capacity && !stop_requested_) {
    ++producer_waits_;
    cv_produce_.wait(lk, [&] {
      return queue_.size() < opts_.queue_capacity || stop_requested_;
    });
  }
  if (stop_requested_ || !running_) return false;
  queue_.push_back(Cmd{kind, std::move(run)});
  ++enqueued_[static_cast<std::size_t>(kind)];
  if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
  lk.unlock();
  cv_consume_.notify_one();
  return true;
}

void ProtocolEngine::defer(std::function<void()> fn) {
  // Apply-thread-only (command lambdas, read continuations, the hook's
  // aftermath); outside a batch — e.g. abort paths — run immediately.
  if (in_batch_) {
    deferred_.push_back(std::move(fn));
  } else {
    fn();
  }
}

// ---- command builders (shared by the blocking and async front doors) ----

void ProtocolEngine::submit_write(causal::VarId x, std::string data,
                                  bool local_replica, WriteCb cb,
                                  bool bounded) {
  auto cbp = std::make_shared<WriteCb>(std::move(cb));
  const bool ok = enqueue(
      CmdKind::kWrite,
      [this, cbp, x, data = std::move(data), local_replica]() mutable {
        // Write-ahead: the WAL record lands before the protocol mutates, so
        // a crash between the two replays the write instead of losing it
        // (the client may not have been acked — that is allowed).
        if (durability_) durability_->on_local_write(x, data);
        proto_->write(x, std::move(data));
        WriteResult r;
        r.id = proto_->last_write_id();
        if (local_replica) r.lamport = proto_->peek(x).lamport;
        defer([cbp, r] { (*cbp)(r); });
        if (durability_) durability_->maybe_checkpoint(proto_.get());
      },
      bounded);
  if (!ok) (*cbp)(std::nullopt);
}

void ProtocolEngine::submit_read(causal::VarId x, ReadCb cb, bool bounded) {
  auto st = std::make_shared<ReadState>();
  st->cb = std::move(cb);
  const bool ok = enqueue(
      CmdKind::kRead,
      [this, st, x] {
        proto_->read(x, [this, st](const causal::Value& v) {
          st->fired = true;
          defer([st, v] { st->cb(v); });
        });
        // A RemoteFetch in flight leaves the continuation pending; park the
        // state so stop() can abort it if the response never arrives.
        if (!st->fired) parked_reads_.push_back(st);
      },
      bounded);
  if (!ok) st->cb(std::nullopt);
}

void ProtocolEngine::submit_snapshot(std::vector<causal::VarId> xs,
                                     SnapshotCb cb, bool bounded) {
  auto cbp = std::make_shared<SnapshotCb>(std::move(cb));
  const bool ok = enqueue(
      CmdKind::kSnapshot,
      [this, cbp, xs = std::move(xs)] {
        // One apply slot => the values form a causally consistent cut. All
        // vars are locally replicated (caller-validated), so every
        // continuation runs synchronously.
        std::vector<causal::Value> out;
        out.reserve(xs.size());
        for (const causal::VarId x : xs) {
          proto_->read(x, [&out](const causal::Value& v) { out.push_back(v); });
        }
        CCPR_ASSERT(out.size() == xs.size());
        defer([cbp, out = std::move(out)]() mutable {
          (*cbp)(std::move(out));
        });
      },
      bounded);
  if (!ok) (*cbp)(std::nullopt);
}

void ProtocolEngine::submit_token(causal::SiteId target, TokenCb cb,
                                  bool bounded) {
  auto cbp = std::make_shared<TokenCb>(std::move(cb));
  const bool ok = enqueue(
      CmdKind::kToken,
      [this, cbp, target] {
        auto token = proto_->coverage_token(target);
        defer([cbp, token = std::move(token)]() mutable {
          (*cbp)(std::move(token));
        });
      },
      bounded);
  if (!ok) (*cbp)(std::nullopt);
}

void ProtocolEngine::submit_covered(
    std::vector<std::uint8_t> token, bool has_deadline,
    std::chrono::steady_clock::time_point deadline, CoveredCb cb,
    bool bounded) {
  auto cbp = std::make_shared<CoveredCb>(std::move(cb));
  const bool ok = enqueue(
      CmdKind::kCovered,
      [this, cbp, token = std::move(token), has_deadline,
       deadline]() mutable {
        if (proto_->covered_by(token)) {
          defer([cbp] { (*cbp)(true); });
          return;
        }
        if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
          defer([cbp] { (*cbp)(false); });
          return;
        }
        covered_waiters_.push_back(
            CoveredWaiter{std::move(token), has_deadline, deadline, cbp});
      },
      bounded);
  if (!ok) (*cbp)(std::nullopt);
}

// ---- blocking producer API ----

namespace {
template <class T, class Comp>
std::function<void(std::optional<T>)> completion_cb(std::shared_ptr<Comp> c) {
  return [c](std::optional<T> v) {
    if (v.has_value()) {
      c->fulfill(std::move(*v));
    } else {
      c->abort();
    }
  };
}
}  // namespace

std::optional<ProtocolEngine::WriteResult> ProtocolEngine::write(
    causal::VarId x, std::string data, bool local_replica) {
  auto comp = std::make_shared<Completion<WriteResult>>();
  submit_write(x, std::move(data), local_replica,
               completion_cb<WriteResult>(comp), /*bounded=*/true);
  return comp->wait();
}

std::optional<causal::Value> ProtocolEngine::read(causal::VarId x) {
  auto comp = std::make_shared<Completion<causal::Value>>();
  submit_read(x, completion_cb<causal::Value>(comp), /*bounded=*/true);
  return comp->wait();
}

std::optional<std::vector<causal::Value>> ProtocolEngine::snapshot(
    const std::vector<causal::VarId>& xs) {
  auto comp = std::make_shared<Completion<std::vector<causal::Value>>>();
  submit_snapshot(xs, completion_cb<std::vector<causal::Value>>(comp),
                  /*bounded=*/true);
  return comp->wait();
}

std::optional<std::vector<std::uint8_t>> ProtocolEngine::coverage_token(
    causal::SiteId target) {
  auto comp = std::make_shared<Completion<std::vector<std::uint8_t>>>();
  submit_token(target, completion_cb<std::vector<std::uint8_t>>(comp),
               /*bounded=*/true);
  return comp->wait();
}

std::optional<bool> ProtocolEngine::wait_covered(
    std::vector<std::uint8_t> token, std::uint64_t wait_us) {
  auto comp = std::make_shared<Completion<bool>>();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(wait_us);
  submit_covered(std::move(token), /*has_deadline=*/true, deadline,
                 completion_cb<bool>(comp), /*bounded=*/true);
  return comp->wait();
}

// ---- async producer API ----

void ProtocolEngine::async_write(causal::VarId x, std::string data,
                                 bool local_replica, WriteCb cb) {
  submit_write(x, std::move(data), local_replica, std::move(cb),
               /*bounded=*/false);
}

void ProtocolEngine::async_read(causal::VarId x, ReadCb cb) {
  submit_read(x, std::move(cb), /*bounded=*/false);
}

void ProtocolEngine::async_snapshot(std::vector<causal::VarId> xs,
                                    SnapshotCb cb) {
  submit_snapshot(std::move(xs), std::move(cb), /*bounded=*/false);
}

void ProtocolEngine::async_token(causal::SiteId target, TokenCb cb) {
  submit_token(target, std::move(cb), /*bounded=*/false);
}

void ProtocolEngine::async_covered(std::vector<std::uint8_t> token,
                                   std::uint64_t wait_us, CoveredCb cb) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(wait_us);
  submit_covered(std::move(token), /*has_deadline=*/true, deadline,
                 std::move(cb), /*bounded=*/false);
}

void ProtocolEngine::post_covered_callback(std::vector<std::uint8_t> token,
                                           CoveredCb cb, bool bounded) {
  submit_covered(std::move(token), /*has_deadline=*/false, {}, std::move(cb),
                 bounded);
}

// ---- status / metrics ----

std::optional<ProtocolEngine::StatusSnapshot> ProtocolEngine::status() {
  auto comp = std::make_shared<Completion<StatusSnapshot>>();
  const bool ok = enqueue(
      CmdKind::kStatus,
      [this, comp] {
        StatusSnapshot s;
        s.writes = proto_metrics_->writes;
        s.reads = proto_metrics_->reads;
        s.pending_updates = proto_->pending_update_count();
        comp->fulfill(s);
      },
      /*bounded=*/true);
  if (!ok) {
    // Stopped-and-joined engines are quiescent; tests read post-mortem
    // state this way. A stop() still in flight reports nullopt instead.
    // lifecycle_mu_ keeps the protocol quiescent for the whole read — a
    // concurrent start() would otherwise revive the apply thread between
    // the check and the reads.
    std::lock_guard lifecycle(lifecycle_mu_);
    if (!quiescent()) return std::nullopt;
    StatusSnapshot s;
    s.writes = proto_metrics_->writes;
    s.reads = proto_metrics_->reads;
    s.pending_updates = proto_->pending_update_count();
    return s;
  }
  return comp->wait();
}

std::optional<metrics::Metrics> ProtocolEngine::protocol_metrics() {
  auto comp = std::make_shared<Completion<metrics::Metrics>>();
  const bool ok = enqueue(
      CmdKind::kStatus,
      [this, comp] {
        metrics::Metrics m = *proto_metrics_;
        m.log_entries.set(proto_->log_entry_count());
        m.meta_state_bytes.set(proto_->meta_state_bytes());
        comp->fulfill(std::move(m));
      },
      /*bounded=*/true);
  if (!ok) {
    std::lock_guard lifecycle(lifecycle_mu_);
    if (!quiescent()) return std::nullopt;
    metrics::Metrics m = *proto_metrics_;
    m.log_entries.set(proto_->log_entry_count());
    m.meta_state_bytes.set(proto_->meta_state_bytes());
    return m;
  }
  return comp->wait();
}

std::optional<store::EngineStats> ProtocolEngine::store_stats() {
  auto comp = std::make_shared<Completion<store::EngineStats>>();
  const bool ok = enqueue(
      CmdKind::kStatus, [this, comp] { comp->fulfill(proto_->store_stats()); },
      /*bounded=*/true);
  if (!ok) {
    std::lock_guard lifecycle(lifecycle_mu_);
    if (!quiescent()) return std::nullopt;
    return proto_->store_stats();
  }
  return comp->wait();
}

bool ProtocolEngine::quiescent() const {
  std::lock_guard lk(mu_);
  return proto_ != nullptr && !running_;
}

void ProtocolEngine::apply_message(net::Message msg, bool bounded) {
  const CmdKind kind = (msg.kind == net::MsgKind::kCatchupReq ||
                        msg.kind == net::MsgKind::kCatchupResp)
                           ? CmdKind::kCatchup
                           : CmdKind::kApplyUpdate;
  enqueue(
      kind,
      [this, msg = std::move(msg)]() mutable {
        if (durability_) {
          durability_->on_inbound(proto_.get(), std::move(msg));
        } else {
          proto_->on_message(msg);
        }
      },
      bounded);
}

void ProtocolEngine::post_timer(std::function<void()> fn) {
  enqueue(CmdKind::kTimer, std::move(fn), /*bounded=*/true);
}

void ProtocolEngine::post_catchup_tick() {
  if (!durability_) return;
  enqueue(
      CmdKind::kCatchup, [this] { durability_->tick(proto_.get()); },
      /*bounded=*/true);
}

void ProtocolEngine::protocol_send(net::Message msg) {
  CCPR_EXPECTS(durability_ != nullptr);
  durability_->on_protocol_send(std::move(msg));
}

void ProtocolEngine::persist_meta_merge(causal::VarId x,
                                        causal::SiteId responder,
                                        const std::uint8_t* data,
                                        std::size_t len) {
  if (durability_) durability_->on_meta_merge(x, responder, data, len);
}

std::optional<Durability::Stats> ProtocolEngine::durability_stats() {
  if (!durability_) return Durability::Stats{};
  auto comp = std::make_shared<Completion<Durability::Stats>>();
  const bool ok = enqueue(
      CmdKind::kStatus, [this, comp] { comp->fulfill(durability_->stats()); },
      /*bounded=*/true);
  if (!ok) {
    std::lock_guard lifecycle(lifecycle_mu_);
    if (!quiescent()) return std::nullopt;
    return durability_->stats();
  }
  return comp->wait();
}

std::optional<Durability::CatchupProgress> ProtocolEngine::catchup_progress() {
  if (!durability_) return Durability::CatchupProgress{};
  auto comp = std::make_shared<Completion<Durability::CatchupProgress>>();
  const bool ok = enqueue(
      CmdKind::kStatus, [this, comp] { comp->fulfill(durability_->progress()); },
      /*bounded=*/true);
  if (!ok) {
    std::lock_guard lifecycle(lifecycle_mu_);
    if (!quiescent()) return std::nullopt;
    return durability_->progress();
  }
  return comp->wait();
}

ProtocolEngine::QueueStats ProtocolEngine::queue_stats() const {
  std::lock_guard lk(mu_);
  QueueStats s;
  s.depth = queue_.size();
  s.capacity = opts_.queue_capacity;
  s.peak_depth = peak_depth_;
  s.producer_waits = producer_waits_;
  s.parked_reads = parked_reads_gauge_.load(std::memory_order_relaxed);
  s.covered_waiters = covered_waiters_gauge_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kCmdKinds; ++i) s.enqueued[i] = enqueued_[i];
  return s;
}

void ProtocolEngine::loop() {
  // Publish recovered/initial state before serving anything: with a
  // batch-end hook installed (sharded site), peers must be able to learn
  // this shard's post-recovery coverage from the very first wrapped send.
  if (batch_end_hook_) batch_end_hook_(*proto_);
  std::deque<Cmd> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock lk(mu_);
      const auto ready = [&] { return !queue_.empty() || stop_requested_; };
      if (!ready()) {
        bool have_deadline = false;
        auto deadline = std::chrono::steady_clock::time_point::max();
        for (const CoveredWaiter& w : covered_waiters_) {
          if (!w.has_deadline) continue;
          have_deadline = true;
          deadline = std::min(deadline, w.deadline);
        }
        if (have_deadline) {
          cv_consume_.wait_until(lk, deadline, ready);
        } else {
          cv_consume_.wait(lk, ready);
        }
      }
      if (queue_.empty() && stop_requested_) break;
      batch.swap(queue_);
      cv_produce_.notify_all();
    }

    in_batch_ = true;
    bool coverage_dirty = false;
    for (Cmd& cmd : batch) {
      cmd.run();
      // Local writes, peer applies and timer callbacks can all advance the
      // applied frontier that covered_by inspects.
      coverage_dirty = coverage_dirty || cmd.kind == CmdKind::kWrite ||
                       cmd.kind == CmdKind::kApplyUpdate ||
                       cmd.kind == CmdKind::kTimer;
    }
    // Publish-before-fulfill: the hook runs while every callback this batch
    // produced is still deferred, so anything a session learns from those
    // callbacks is already reflected in the published coverage tokens.
    if (coverage_dirty && batch_end_hook_) batch_end_hook_(*proto_);
    if (!parked_reads_.empty()) {
      parked_reads_.erase(
          std::remove_if(parked_reads_.begin(), parked_reads_.end(),
                         [](const auto& st) { return st->fired; }),
          parked_reads_.end());
    }
    if (!covered_waiters_.empty()) recheck_covered_waiters(!coverage_dirty);
    in_batch_ = false;
    if (!deferred_.empty()) {
      std::vector<std::function<void()>> fire;
      fire.swap(deferred_);
      for (auto& fn : fire) fn();
    }
    parked_reads_gauge_.store(parked_reads_.size(), std::memory_order_relaxed);
    covered_waiters_gauge_.store(covered_waiters_.size(),
                                 std::memory_order_relaxed);
  }
  abort_parked();
}

void ProtocolEngine::recheck_covered_waiters(bool expire_only) {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = covered_waiters_.begin(); it != covered_waiters_.end();) {
    const bool expired = it->has_deadline && now >= it->deadline;
    if (expired || !expire_only) {
      if (proto_->covered_by(it->token)) {
        auto cb = it->cb;
        defer([cb] { (*cb)(true); });
        it = covered_waiters_.erase(it);
        continue;
      }
      if (expired) {
        auto cb = it->cb;
        defer([cb] { (*cb)(false); });
        it = covered_waiters_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

void ProtocolEngine::abort_parked() {
  for (const auto& st : parked_reads_) {
    if (!st->fired) st->cb(std::nullopt);
  }
  parked_reads_.clear();
  for (const CoveredWaiter& w : covered_waiters_) (*w.cb)(std::nullopt);
  covered_waiters_.clear();
  parked_reads_gauge_.store(0, std::memory_order_relaxed);
  covered_waiters_gauge_.store(0, std::memory_order_relaxed);
}

}  // namespace ccpr::server
