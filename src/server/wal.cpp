#include "server/wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/assert.hpp"

namespace ccpr::server {

namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc32
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

std::string site_prefix(causal::SiteId site) {
  return "site-" + std::to_string(site) + ".";
}

std::string wal_name(causal::SiteId site, std::uint64_t gen) {
  return site_prefix(site) + std::to_string(gen) + ".wal";
}

std::string current_name(causal::SiteId site) {
  return site_prefix(site) + "CURRENT";
}

std::string join(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_file(const std::string& path, std::string* out, std::string* err) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (err) *err = path + ": " + std::strerror(errno);
    return false;
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err) *err = path + ": " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Atomically replace `path` with `contents` (tmp + fsync + rename).
bool write_file_atomic(const std::string& dir, const std::string& name,
                       std::string_view contents, std::string* err) {
  const std::string tmp = join(dir, name + ".tmp");
  const std::string path = join(dir, name);
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (err) *err = tmp + ": " + std::strerror(errno);
    return false;
  }
  if (!write_all(fd, contents.data(), contents.size()) || ::fsync(fd) != 0) {
    if (err) *err = tmp + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err) *err = path + ": " + std::strerror(errno);
    return false;
  }
  fsync_dir(dir);
  return true;
}

/// Parse the generation out of "site-<id>.<gen>.wal"; false on mismatch.
bool parse_generation(const std::string& name, causal::SiteId site,
                      std::uint64_t* gen) {
  const std::string prefix = site_prefix(site);
  const std::string suffix = ".wal";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string mid =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (mid.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : mid) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *gen = v;
  return true;
}

/// Scan `data` front to back; append whole valid frames to `out` and return
/// the byte offset of the first bad frame (== data.size() if none).
std::size_t scan_records(std::string_view data, std::vector<Wal::Record>* out) {
  std::size_t off = 0;
  while (off + kFrameHeader <= data.size()) {
    const std::uint32_t len = get_u32(data.data() + off);
    const std::uint32_t crc = get_u32(data.data() + off + 4);
    if (len < 1 || len > kMaxRecordBytes) break;
    if (off + kFrameHeader + len > data.size()) break;
    const std::string_view body(data.data() + off + kFrameHeader, len);
    if (wal_crc32(body) != crc) break;
    Wal::Record r;
    r.type = static_cast<std::uint8_t>(body[0]);
    r.payload.assign(body.substr(1));
    out->push_back(std::move(r));
    off += kFrameHeader + len;
  }
  return off;
}

/// Delete tmp files and WAL generations other than `keep` for this site.
void remove_stale(const std::string& dir, causal::SiteId site,
                  const std::string& keep) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  const std::string prefix = site_prefix(site);
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name == keep || name == current_name(site)) continue;
    std::uint64_t gen = 0;
    const bool is_wal = parse_generation(name, site, &gen);
    const bool is_tmp =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (is_wal || is_tmp) ::unlink(join(dir, name).c_str());
  }
  ::closedir(d);
}

}  // namespace

std::uint32_t wal_crc32(std::string_view data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::unique_ptr<Wal> Wal::open(const Options& opts, OpenResult* out,
                               std::string* err) {
  CCPR_EXPECTS(out != nullptr);
  out->records.clear();
  out->created = false;
  if (::mkdir(opts.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (err) *err = opts.dir + ": " + std::strerror(errno);
    return nullptr;
  }

  auto wal = std::unique_ptr<Wal>(new Wal());
  wal->dir_ = opts.dir;
  wal->site_ = opts.site;
  wal->sync_ = opts.sync;

  const std::string cur_path = join(opts.dir, current_name(opts.site));
  std::string cur;
  const bool have_current = read_file(cur_path, &cur, nullptr);
  if (have_current) {
    // Strip a trailing newline so a hand-edited CURRENT still resolves.
    while (!cur.empty() && (cur.back() == '\n' || cur.back() == '\r')) {
      cur.pop_back();
    }
    if (!parse_generation(cur, opts.site, &wal->generation_)) {
      if (err) *err = cur_path + ": unparseable contents '" + cur + "'";
      return nullptr;
    }
    wal->path_ = join(opts.dir, cur);
    wal->fd_ = ::open(wal->path_.c_str(), O_RDWR | O_CLOEXEC);
    if (wal->fd_ < 0) {
      if (err) *err = wal->path_ + ": " + std::strerror(errno);
      return nullptr;
    }
    std::string data;
    if (!read_file(wal->path_, &data, err)) return nullptr;
    const std::size_t valid = scan_records(data, &out->records);
    if (valid < data.size()) {
      wal->stats_.truncated_bytes = data.size() - valid;
      if (::ftruncate(wal->fd_, static_cast<off_t>(valid)) != 0 ||
          ::fsync(wal->fd_) != 0) {
        if (err) *err = wal->path_ + ": truncate: " + std::strerror(errno);
        return nullptr;
      }
    }
    if (::lseek(wal->fd_, 0, SEEK_END) < 0) {
      if (err) *err = wal->path_ + ": " + std::strerror(errno);
      return nullptr;
    }
    wal->stats_.recovered_records = out->records.size();
    // A crash between writing a new generation and flipping CURRENT can
    // leave a stale newer file; anything not pointed at is dead.
    remove_stale(opts.dir, opts.site, cur);
  } else {
    out->created = true;
    wal->generation_ = 0;
    const std::string name = wal_name(opts.site, 0);
    wal->path_ = join(opts.dir, name);
    wal->fd_ = ::open(wal->path_.c_str(),
                      O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (wal->fd_ < 0) {
      if (err) *err = wal->path_ + ": " + std::strerror(errno);
      return nullptr;
    }
    if (!write_file_atomic(opts.dir, current_name(opts.site), name, err)) {
      return nullptr;
    }
    remove_stale(opts.dir, opts.site, name);
  }
  return wal;
}

Wal::~Wal() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

bool Wal::write_frame(std::uint8_t type, std::string_view payload) {
  CCPR_EXPECTS(payload.size() + 1 <= kMaxRecordBytes);
  std::string frame;
  frame.reserve(kFrameHeader + 1 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(1 + payload.size()));
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  put_u32(frame, wal_crc32(body));
  frame.append(body);
  if (!write_all(fd_, frame.data(), frame.size())) return false;
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();
  return true;
}

bool Wal::fsync_now() {
  if (::fsync(fd_) != 0) return false;
  ++stats_.fsyncs;
  return true;
}

bool Wal::append(RecordType type, std::string_view payload) {
  if (fd_ < 0) return false;
  if (!write_frame(type, payload)) return false;
  if (sync_ == Sync::kAlways) return fsync_now();
  return true;
}

bool Wal::sync() {
  if (fd_ < 0) return false;
  return fsync_now();
}

bool Wal::checkpoint(std::string_view payload) {
  if (fd_ < 0) return false;
  const std::uint64_t next_gen = generation_ + 1;
  const std::string name = wal_name(site_, next_gen);
  const std::string tmp = join(dir_, name + ".tmp");
  const std::string path = join(dir_, name);
  const int fd =
      ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;

  // Write the checkpoint into the new generation through a temporary fd so
  // a crash at any point leaves either the old generation current or the
  // new one fully formed.
  const int old_fd = fd_;
  fd_ = fd;
  const bool wrote = write_frame(kCheckpoint, payload) && fsync_now();
  if (!wrote) {
    ::close(fd);
    fd_ = old_fd;
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0 || !fsync_dir(dir_)) {
    ::close(fd);
    fd_ = old_fd;
    ::unlink(tmp.c_str());
    return false;
  }
  if (!write_file_atomic(dir_, current_name(site_), name, nullptr)) {
    // CURRENT still points at the old generation; keep using it.
    ::close(fd);
    fd_ = old_fd;
    ::unlink(path.c_str());
    return false;
  }
  const std::string old_path = path_;
  ::close(old_fd);
  ::unlink(old_path.c_str());
  generation_ = next_gen;
  path_ = path;
  ++stats_.checkpoints;
  return true;
}

bool Wal::inspect(const std::string& dir, causal::SiteId site,
                  InspectResult* out, std::string* err) {
  CCPR_EXPECTS(out != nullptr);
  *out = InspectResult{};
  const std::string cur_path = join(dir, current_name(site));
  std::string cur;
  if (!read_file(cur_path, &cur, err)) return false;
  while (!cur.empty() && (cur.back() == '\n' || cur.back() == '\r')) {
    cur.pop_back();
  }
  if (!parse_generation(cur, site, &out->generation)) {
    if (err) *err = cur_path + ": unparseable contents '" + cur + "'";
    return false;
  }
  out->file = join(dir, cur);
  std::string data;
  if (!read_file(out->file, &data, err)) return false;
  out->bytes = data.size();
  std::vector<Record> records;
  const std::size_t valid = scan_records(data, &records);
  out->truncated_bytes = data.size() - valid;
  out->records = records.size();
  for (Record& r : records) {
    if (r.type < sizeof(out->counts_by_type) / sizeof(out->counts_by_type[0])) {
      ++out->counts_by_type[r.type];
    }
    if (r.type == kCheckpoint) {
      out->checkpoint_bytes = r.payload.size();
      out->checkpoint_payload = r.payload;
      out->tail_after_checkpoint.clear();
    } else if (r.type == kEpoch) {
      out->epoch_payload = r.payload;
    } else {
      out->tail_after_checkpoint.push_back(std::move(r));
    }
  }
  return true;
}

}  // namespace ccpr::server
