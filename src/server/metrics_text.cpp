#include "server/metrics_text.hpp"

#include <sstream>

namespace ccpr::server {

namespace {

/// One "# HELP/# TYPE" preamble plus a sample line with a site label.
class Renderer {
 public:
  explicit Renderer(causal::SiteId site) : site_(site) {}

  void counter(const char* name, const char* help, std::uint64_t v) {
    preamble(name, help, "counter");
    sample(name, "", static_cast<double>(v));
  }
  void gauge(const char* name, const char* help, double v) {
    preamble(name, help, "gauge");
    sample(name, "", v);
  }
  /// Prometheus summary without a _sum timeline: we expose the quantiles
  /// the bench cares about plus _count/_sum from the histogram.
  void summary(const char* name, const char* help,
               const util::Histogram& h) {
    preamble(name, help, "summary");
    sample(name, R"(quantile="0.5")", h.percentile(0.5));
    sample(name, R"(quantile="0.9")", h.percentile(0.9));
    sample(name, R"(quantile="0.99")", h.percentile(0.99));
    sample((std::string(name) + "_sum").c_str(), "",
           h.mean() * static_cast<double>(h.count()));
    sample((std::string(name) + "_count").c_str(), "",
           static_cast<double>(h.count()));
  }
  void labeled(const char* name, const std::string& labels, double v) {
    sample(name, labels, v);
  }
  void preamble(const char* name, const char* help, const char* type) {
    out_ << "# HELP " << name << ' ' << help << "\n# TYPE " << name << ' '
         << type << '\n';
  }

  std::string str() const { return out_.str(); }

 private:
  void sample(const char* name, const std::string& extra_labels, double v) {
    out_ << name << "{site=\"" << site_ << '"';
    if (!extra_labels.empty()) out_ << ',' << extra_labels;
    out_ << "} ";
    // Integral values print without a fraction; Prometheus accepts both.
    if (v == static_cast<double>(static_cast<std::uint64_t>(v >= 0 ? v : 0)) &&
        v >= 0) {
      out_ << static_cast<std::uint64_t>(v);
    } else {
      out_ << v;
    }
    out_ << '\n';
  }

  causal::SiteId site_;
  std::ostringstream out_;
};

}  // namespace

std::string render_metrics_text(
    causal::SiteId site, const metrics::Metrics& merged,
    const std::vector<ProtocolEngine::QueueStats>& engine_shards,
    const std::vector<net::TcpTransport::PeerStats>& peers,
    std::uint64_t pending_updates, const Durability::Stats& durability,
    const std::vector<std::string>& site_regions, const HealthStats& health,
    const store::EngineStats& engine_stats, std::uint64_t parked_envelopes,
    std::uint64_t malformed_envelopes) {
  // Shard-aggregated view feeds the classic unlabeled series so existing
  // dashboards keep working whatever the shard count is.
  ProtocolEngine::QueueStats engine;
  for (const auto& s : engine_shards) {
    engine.depth += s.depth;
    engine.capacity += s.capacity;
    engine.peak_depth += s.peak_depth;
    engine.producer_waits += s.producer_waits;
    engine.parked_reads += s.parked_reads;
    engine.covered_waiters += s.covered_waiters;
    for (std::size_t k = 0; k < ProtocolEngine::kCmdKinds; ++k) {
      engine.enqueued[k] += s.enqueued[k];
    }
  }
  Renderer r(site);
  // peer="<id>" plus region="<peer's region>" when the cluster is geo.
  const auto peer_label = [&site_regions](causal::SiteId peer) {
    std::string l = "peer=\"" + std::to_string(peer) + '"';
    if (peer < site_regions.size()) {
      l += ",region=\"" + site_regions[peer] + '"';
    }
    return l;
  };
  if (site < site_regions.size()) {
    r.preamble("ccpr_site_region",
               "Constant 1; the region label names this site's region",
               "gauge");
    r.labeled("ccpr_site_region", "region=\"" + site_regions[site] + '"',
              1.0);
  }

  // ---- protocol + transport counters (the paper's Table I metrics) ----
  r.counter("ccpr_update_msgs_total", "Write-propagation messages",
            merged.update_msgs);
  r.counter("ccpr_fetch_req_msgs_total", "RemoteFetch requests",
            merged.fetch_req_msgs);
  r.counter("ccpr_fetch_resp_msgs_total", "RemoteFetch responses",
            merged.fetch_resp_msgs);
  r.counter("ccpr_control_bytes_total", "Causal-metadata bytes on the wire",
            merged.control_bytes);
  r.counter("ccpr_payload_bytes_total", "Replicated value bytes on the wire",
            merged.payload_bytes);
  r.counter("ccpr_writes_total", "Store-level write operations",
            merged.writes);
  r.counter("ccpr_reads_total", "Store-level read operations", merged.reads);
  r.counter("ccpr_remote_reads_total", "Reads served via RemoteFetch",
            merged.remote_reads);
  r.counter("ccpr_fetch_retries_total", "RemoteFetch failovers",
            merged.fetch_retries);
  r.counter("ccpr_fetch_suspect_skips_total",
            "Suspected replicas demoted in fetch-target ranking",
            merged.fetch_suspect_skips);
  r.counter("ccpr_reads_fast_failed_total",
            "Remote reads failed fast: every replica suspected",
            health.reads_fast_failed);
  r.gauge("ccpr_pending_updates", "Updates buffered awaiting activation",
          static_cast<double>(pending_updates));
  r.gauge("ccpr_log_entries", "Entries in the local causal log",
          static_cast<double>(merged.log_entries.current()));
  r.gauge("ccpr_meta_state_bytes", "Serialized causal-metadata footprint",
          static_cast<double>(merged.meta_state_bytes.current()));
  r.summary("ccpr_read_latency_us", "Read issue to value returned (us)",
            merged.read_latency_us);
  r.summary("ccpr_apply_delay_us", "Update receipt to activation (us)",
            merged.apply_delay_us);

  // ---- protocol-engine queue ----
  r.gauge("ccpr_engine_queue_depth", "Commands waiting for the apply thread",
          static_cast<double>(engine.depth));
  r.gauge("ccpr_engine_queue_capacity", "Engine command-queue bound",
          static_cast<double>(engine.capacity));
  r.gauge("ccpr_engine_queue_peak_depth", "Deepest the command queue has been",
          static_cast<double>(engine.peak_depth));
  r.counter("ccpr_engine_producer_waits_total",
            "Enqueues that blocked on the queue bound", engine.producer_waits);
  r.gauge("ccpr_engine_parked_reads",
          "Reads parked on an in-flight RemoteFetch",
          static_cast<double>(engine.parked_reads));
  r.gauge("ccpr_engine_covered_waiters",
          "covered_by waits parked for coverage or deadline",
          static_cast<double>(engine.covered_waiters));
  r.preamble("ccpr_engine_commands_total",
             "Commands admitted to the apply thread, by kind", "counter");
  for (std::size_t k = 0; k < ProtocolEngine::kCmdKinds; ++k) {
    r.labeled("ccpr_engine_commands_total",
              std::string("kind=\"") +
                  ProtocolEngine::kind_name(
                      static_cast<ProtocolEngine::CmdKind>(k)) +
                  '"',
              static_cast<double>(engine.enqueued[k]));
  }

  // ---- per-shard engine view (sharded sites only) ----
  r.gauge("ccpr_engine_shards", "Engine shards on this site",
          static_cast<double>(engine_shards.size()));
  if (engine_shards.size() > 1) {
    const auto shard_label = [](std::size_t k) {
      return "shard=\"" + std::to_string(k) + '"';
    };
    r.preamble("ccpr_engine_shard_queue_depth",
               "Commands waiting for one shard's apply thread", "gauge");
    for (std::size_t k = 0; k < engine_shards.size(); ++k) {
      r.labeled("ccpr_engine_shard_queue_depth", shard_label(k),
                static_cast<double>(engine_shards[k].depth));
    }
    r.preamble("ccpr_engine_shard_commands_total",
               "Commands admitted to one shard's apply thread", "counter");
    for (std::size_t k = 0; k < engine_shards.size(); ++k) {
      r.labeled("ccpr_engine_shard_commands_total", shard_label(k),
                static_cast<double>(engine_shards[k].enqueued_total()));
    }
    r.preamble("ccpr_engine_shard_producer_waits_total",
               "Enqueues that blocked on one shard's queue bound", "counter");
    for (std::size_t k = 0; k < engine_shards.size(); ++k) {
      r.labeled("ccpr_engine_shard_producer_waits_total", shard_label(k),
                static_cast<double>(engine_shards[k].producer_waits));
    }
    r.preamble("ccpr_engine_shard_parked_reads",
               "Reads parked on an in-flight RemoteFetch, per shard",
               "gauge");
    for (std::size_t k = 0; k < engine_shards.size(); ++k) {
      r.labeled("ccpr_engine_shard_parked_reads", shard_label(k),
                static_cast<double>(engine_shards[k].parked_reads));
    }
    r.preamble("ccpr_engine_shard_covered_waiters",
               "Parked covered_by waits, per shard", "gauge");
    for (std::size_t k = 0; k < engine_shards.size(); ++k) {
      r.labeled("ccpr_engine_shard_covered_waiters", shard_label(k),
                static_cast<double>(engine_shards[k].covered_waiters));
    }
    r.gauge("ccpr_shard_parked_envelopes",
            "Peer envelopes parked on unmet cross-shard tokens",
            static_cast<double>(parked_envelopes));
    r.counter("ccpr_shard_malformed_envelopes_total",
              "Peer messages dropped by envelope admission",
              malformed_envelopes);
  }

  // ---- durability: WAL + anti-entropy catch-up ----
  r.gauge("ccpr_wal_enabled", "1 when this site runs with a write-ahead log",
          durability.wal_enabled ? 1.0 : 0.0);
  r.counter("ccpr_wal_records_total", "Records appended to the WAL",
            durability.wal.records_appended);
  r.counter("ccpr_wal_bytes_total", "Bytes appended to the WAL (framed)",
            durability.wal.bytes_appended);
  r.counter("ccpr_wal_fsyncs_total", "fsync calls issued by the WAL",
            durability.wal.fsyncs);
  r.counter("ccpr_wal_checkpoints_total", "WAL generation rotations",
            durability.wal.checkpoints);
  r.counter("ccpr_wal_recovered_records",
            "Records replayed from the WAL at the last startup",
            durability.wal.recovered_records);
  r.counter("ccpr_wal_truncated_bytes",
            "Torn-tail bytes discarded at the last startup",
            durability.wal.truncated_bytes);
  r.counter("ccpr_catchup_updates_total",
            "Updates applied under an announced catch-up target",
            durability.catchup_updates);
  r.counter("ccpr_catchup_resent_total",
            "Retained updates re-sent to a catching-up peer",
            durability.catchup_resent);
  r.counter("ccpr_catchup_requests_sent_total",
            "Watermark announcements sent", durability.catchup_reqs_sent);
  r.counter("ccpr_catchup_requests_recv_total",
            "Watermark announcements received", durability.catchup_reqs_recv);
  r.counter("ccpr_catchup_skipped_updates_total",
            "Updates fast-forwarded past because retention aged them out",
            durability.skipped);
  r.counter("ccpr_chan_dup_drops_total",
            "Channel duplicates dropped at the inbound watermark",
            durability.dup_drops);
  r.counter("ccpr_chan_gap_drops_total",
            "Out-of-order updates dropped pending catch-up",
            durability.gap_drops);
  r.gauge("ccpr_catchup_retained_msgs",
          "Stamped updates retained for catch-up across all peers",
          static_cast<double>(durability.retained_msgs));

  // ---- value-store engine ----
  r.preamble("ccpr_store_engine_info",
             "Constant 1; the engine label names the value-store engine",
             "gauge");
  r.labeled("ccpr_store_engine_info",
            std::string("engine=\"") +
                store::engine_kind_token(engine_stats.kind) + '"',
            1.0);
  r.gauge("ccpr_store_keys", "Keys resident in the value store",
          static_cast<double>(engine_stats.keys));
  r.gauge("ccpr_store_resident_bytes",
          "Estimated RAM attributable to the value store",
          static_cast<double>(engine_stats.resident_bytes));
  r.gauge("ccpr_store_index_slots", "Allocated index slots across shards",
          static_cast<double>(engine_stats.index_slots));
  r.counter("ccpr_store_lookups_total", "Index lookups (gets and puts)",
            engine_stats.lookups);
  r.counter("ccpr_store_probes_total",
            "Index slots inspected across all lookups", engine_stats.probes);
  r.gauge("ccpr_store_mean_probe_length",
          "Lifetime mean probes per lookup", engine_stats.mean_probe_length());
  r.gauge("ccpr_store_spilled_keys", "Keys currently spilled to disk",
          static_cast<double>(engine_stats.spilled_keys));
  r.gauge("ccpr_store_spill_segment_bytes",
          "Size of the on-disk spill segment",
          static_cast<double>(engine_stats.spill_segment_bytes));
  r.counter("ccpr_store_spill_reads_total",
            "Values promoted back from the spill segment",
            engine_stats.spill_reads);
  r.counter("ccpr_store_spill_writes_total",
            "Values demoted to the spill segment", engine_stats.spill_writes);
  r.counter("ccpr_store_compactions_total",
            "Arena/segment compaction passes", engine_stats.compactions);

  // ---- per-peer wire stats ----
  r.preamble("ccpr_peer_msgs_sent_total", "Messages sent to a peer",
             "counter");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_msgs_sent_total", peer_label(p.site),
              static_cast<double>(p.msgs_sent));
  }
  r.preamble("ccpr_peer_msgs_recv_total", "Messages received from a peer",
             "counter");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_msgs_recv_total", peer_label(p.site),
              static_cast<double>(p.msgs_recv));
  }
  r.preamble("ccpr_peer_batches_sent_total", "writev flushes toward a peer",
             "counter");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_batches_sent_total", peer_label(p.site),
              static_cast<double>(p.batches_sent));
  }
  r.preamble("ccpr_peer_overflow_drops_total",
             "Oldest queued messages dropped at the per-peer queue cap",
             "counter");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_overflow_drops_total", peer_label(p.site),
              static_cast<double>(p.overflow_drops));
  }
  r.preamble("ccpr_peer_queue_depth", "Messages queued toward a peer",
             "gauge");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_queue_depth", peer_label(p.site),
              static_cast<double>(p.queued));
  }
  r.preamble("ccpr_peer_connected",
             "1 when the outbound connection to a peer is established",
             "gauge");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_connected", peer_label(p.site),
              p.connected ? 1.0 : 0.0);
  }

  // ---- chaos injection (zero everywhere unless rules are installed) ----
  r.preamble("ccpr_peer_chaos_active",
             "1 when a chaos rule is installed toward a peer "
             "(2 when it is a partition)",
             "gauge");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_chaos_active", peer_label(p.site),
              p.chaos_partitioned ? 2.0 : (p.chaos_active ? 1.0 : 0.0));
  }
  r.preamble("ccpr_peer_chaos_drops_total",
             "Outbound messages dropped by chaos injection", "counter");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_chaos_drops_total", peer_label(p.site),
              static_cast<double>(p.chaos_drops));
  }
  r.preamble("ccpr_peer_chaos_rx_drops_total",
             "Inbound frames discarded while chaos-partitioned", "counter");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_chaos_rx_drops_total", peer_label(p.site),
              static_cast<double>(p.chaos_rx_drops));
  }
  r.preamble("ccpr_peer_chaos_delayed_total",
             "Outbound messages held past their natural send time",
             "counter");
  for (const auto& p : peers) {
    r.labeled("ccpr_peer_chaos_delayed_total", peer_label(p.site),
              static_cast<double>(p.chaos_delayed));
  }

  // ---- failure detector ----
  r.preamble("ccpr_peer_suspected",
             "1 while the failure detector believes a peer unreachable",
             "gauge");
  for (const auto& p : health.peers) {
    r.labeled("ccpr_peer_suspected", peer_label(p.site),
              p.suspected ? 1.0 : 0.0);
  }
  r.preamble("ccpr_peer_rtt_ewma_us",
             "Exponentially-weighted heartbeat round-trip time", "gauge");
  for (const auto& p : health.peers) {
    r.labeled("ccpr_peer_rtt_ewma_us", peer_label(p.site),
              static_cast<double>(p.rtt_ewma_us));
  }
  r.preamble("ccpr_peer_suspect_events_total",
             "Alive-to-suspected transitions observed for a peer", "counter");
  for (const auto& p : health.peers) {
    r.labeled("ccpr_peer_suspect_events_total", peer_label(p.site),
              static_cast<double>(p.suspect_events));
  }
  r.preamble("ccpr_peer_heartbeats_sent_total",
             "Failure-detector pings sent to a peer", "counter");
  for (const auto& p : health.peers) {
    r.labeled("ccpr_peer_heartbeats_sent_total", peer_label(p.site),
              static_cast<double>(p.heartbeats_sent));
  }
  r.preamble("ccpr_peer_heartbeat_acks_total",
             "Failure-detector acks received from a peer", "counter");
  for (const auto& p : health.peers) {
    r.labeled("ccpr_peer_heartbeat_acks_total", peer_label(p.site),
              static_cast<double>(p.acks_received));
  }

  return r.str();
}

}  // namespace ccpr::server
