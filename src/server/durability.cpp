#include "server/durability.hpp"

#include <chrono>
#include <random>
#include <sstream>
#include <utility>

#include "net/wire.hpp"
#include "util/assert.hpp"

namespace ccpr::server {

namespace {

// A channel epoch must be unique per process *lifetime that created it* and
// nonzero (0 marks unstamped traffic). random_device plus a clock mix guards
// against platforms where random_device is deterministic.
std::uint64_t random_epoch() {
  std::random_device rd;
  std::uint64_t e = (static_cast<std::uint64_t>(rd()) << 32) | rd();
  e ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  if (e == 0) e = 1;
  return e;
}

std::string_view enc_view(const net::Encoder& enc) {
  return {reinterpret_cast<const char*>(enc.buffer().data()),
          enc.buffer().size()};
}

constexpr std::uint8_t kCheckpointVersion = 1;

}  // namespace

Durability::Durability(Options opts, std::function<void(net::Message)> send)
    : opts_(std::move(opts)), send_(std::move(send)) {
  CCPR_EXPECTS(opts_.sites > 0 && opts_.self < opts_.sites);
  CCPR_EXPECTS(send_ != nullptr);
  if (opts_.catchup_retain == 0) opts_.catchup_retain = 1;
  if (opts_.checkpoint_every == 0) opts_.checkpoint_every = 1;
  if (opts_.catchup_burst == 0) opts_.catchup_burst = 1;
  out_.resize(opts_.sites);
  in_.resize(opts_.sites);
}

bool Durability::recover(causal::IProtocol* proto, std::string* err) {
  CCPR_EXPECTS(proto != nullptr);
  if (opts_.data_dir.empty()) {
    epoch_ = random_epoch();
    return true;
  }

  Wal::Options wopts;
  wopts.dir = opts_.data_dir;
  wopts.site = opts_.self;
  wopts.sync = opts_.wal_sync;
  Wal::OpenResult opened;
  wal_ = Wal::open(wopts, &opened, err);
  if (!wal_) return false;
  stats_.wal_enabled = true;

  if (opened.created || opened.records.empty()) {
    // Fresh site: mint an epoch and make it the WAL's first record so the
    // next incarnation reuses it (receivers then treat the restarted site
    // as the same channel and can detect gaps instead of resetting).
    epoch_ = random_epoch();
    net::Encoder enc;
    enc.varint(epoch_);
    if (!wal_->append(Wal::kEpoch, enc_view(enc))) {
      if (err) *err = "wal: failed to append epoch record";
      return false;
    }
    return true;
  }

  recovered_ = true;
  const Wal::Record& head = opened.records.front();
  if (head.type == Wal::kEpoch) {
    net::Decoder dec(reinterpret_cast<const std::uint8_t*>(head.payload.data()),
                     head.payload.size());
    epoch_ = dec.varint();
    if (!dec.ok() || epoch_ == 0) {
      if (err) *err = "wal: malformed epoch record";
      return false;
    }
  } else if (head.type == Wal::kCheckpoint) {
    if (!restore_checkpoint(proto, head.payload, err)) return false;
  } else {
    if (err) *err = "wal: generation does not start with epoch or checkpoint";
    return false;
  }

  replaying_ = true;
  const bool ok = replay_tail(proto, opened.records, 1, err);
  replaying_ = false;
  if (!ok) return false;
  // Conservative seal: local reads may have merged fetch-response metadata
  // into per-variable last-write records in ways the WAL does not capture
  // update-by-update; fold everything local into the write context once so
  // post-recovery writes carry a superset of the pre-crash dependencies.
  proto->merge_all_local_meta();
  maybe_checkpoint(proto);
  return true;
}

std::string Durability::encode_checkpoint(causal::IProtocol* proto) const {
  net::Encoder enc;
  enc.u8(kCheckpointVersion);
  enc.varint(epoch_);
  enc.varint(opts_.sites);
  for (const ChannelIn& ch : in_) {
    enc.varint(ch.epoch);
    enc.varint(ch.applied);
  }
  for (const ChannelOut& o : out_) enc.varint(o.next_seq);
  proto->serialize_state(enc);
  return std::string(enc_view(enc));
}

bool Durability::restore_checkpoint(causal::IProtocol* proto,
                                    const std::string& payload,
                                    std::string* err) {
  net::Decoder dec(reinterpret_cast<const std::uint8_t*>(payload.data()),
                   payload.size());
  if (dec.u8() != kCheckpointVersion) {
    if (err) *err = "wal: unsupported checkpoint version";
    return false;
  }
  epoch_ = dec.varint();
  const std::uint64_t n = dec.varint();
  if (!dec.ok() || epoch_ == 0 || n != opts_.sites) {
    if (err) *err = "wal: checkpoint header mismatch (site count or epoch)";
    return false;
  }
  for (ChannelIn& ch : in_) {
    ch.epoch = dec.varint();
    ch.applied = dec.varint();
  }
  for (ChannelOut& o : out_) {
    o.next_seq = dec.varint();
    // Retention before the checkpoint is not persisted; peers asking for
    // older seqs will be fast-forwarded (and the skip reported).
    o.first_retained = o.next_seq + 1;
  }
  if (!dec.ok() || !proto->restore_state(dec)) {
    if (err) *err = "wal: checkpoint state failed to decode";
    return false;
  }
  return true;
}

bool Durability::replay_tail(causal::IProtocol* proto,
                             const std::vector<Wal::Record>& records,
                             std::size_t begin, std::string* err) {
  for (std::size_t i = begin; i < records.size(); ++i) {
    const Wal::Record& rec = records[i];
    net::Decoder dec(reinterpret_cast<const std::uint8_t*>(rec.payload.data()),
                     rec.payload.size());
    switch (rec.type) {
      case Wal::kLocalWrite: {
        const auto x = static_cast<causal::VarId>(dec.varint());
        std::string data = dec.bytes();
        if (!dec.ok()) break;
        // Seal before each replayed write, not just once at the end: the
        // original write's metadata may have depended on a fetch-response
        // merge the WAL records only partially. The superset is safe; a
        // subset could activate out of causal order at remote sites.
        proto->merge_all_local_meta();
        proto->write(x, std::move(data));
        continue;
      }
      case Wal::kPeerUpdate: {
        net::Message msg;
        msg.kind = net::MsgKind::kUpdate;
        msg.src = static_cast<causal::SiteId>(dec.varint());
        msg.dst = opts_.self;
        msg.chan_epoch = dec.varint();
        msg.chan_seq = dec.varint();
        msg.payload_bytes = static_cast<std::uint32_t>(dec.varint());
        const std::string body = dec.bytes();
        if (!dec.ok() || msg.src >= opts_.sites) break;
        msg.body.assign(body.begin(), body.end());
        if (msg.chan_epoch != 0) {
          ChannelIn& ch = in_[msg.src];
          if (msg.chan_epoch != ch.epoch) {
            ch.epoch = msg.chan_epoch;
            ch.applied = 0;
          }
          if (msg.chan_seq <= ch.applied) continue;  // pre-checkpoint dup
          ch.applied = msg.chan_seq;
        }
        proto->on_message(msg);
        continue;
      }
      case Wal::kMetaMerge: {
        const auto x = static_cast<causal::VarId>(dec.varint());
        const auto responder = static_cast<causal::SiteId>(dec.varint());
        const std::string meta = dec.bytes();
        if (!dec.ok()) break;
        proto->replay_meta_merge(
            x, responder, reinterpret_cast<const std::uint8_t*>(meta.data()),
            meta.size());
        continue;
      }
      case Wal::kEpoch: {
        // Only legal as the head record, which replay starts after.
        break;
      }
      case Wal::kCheckpoint: {
        // Checkpoints start a fresh generation; one mid-file means the
        // rotation logic failed.
        break;
      }
      default:
        break;
    }
    if (err) {
      *err = "wal: malformed record type " + std::to_string(rec.type) +
             " at index " + std::to_string(i);
    }
    return false;
  }
  return true;
}

void Durability::append(Wal::RecordType type, const net::Encoder& enc) {
  if (!wal_ || replaying_) return;
  wal_->append(type, enc_view(enc));
  ++records_since_checkpoint_;
}

void Durability::on_local_write(causal::VarId x, const std::string& data) {
  if (!wal_ || replaying_) return;
  net::Encoder enc(data.size() + 16);
  enc.varint(x);
  enc.bytes(data);
  append(Wal::kLocalWrite, enc);
}

void Durability::on_protocol_send(net::Message msg) {
  if (msg.kind == net::MsgKind::kUpdate) {
    CCPR_ASSERT(msg.dst < opts_.sites);
    ChannelOut& o = out_[msg.dst];
    msg.chan_epoch = epoch_;
    msg.chan_seq = ++o.next_seq;
    // Wrap before retention so re-sends carry the original-send envelope
    // (see Options::wrap_update). During replay the shard token caches are
    // empty, so replay-retained envelopes carry no cross-shard demands —
    // deliberately: replay-time frontiers could reference writes retained
    // *after* this one and deadlock the receiver.
    if (opts_.wrap_update) msg = opts_.wrap_update(std::move(msg));
    o.retained.push_back(msg);
    if (o.retained.size() > opts_.catchup_retain) {
      o.retained.pop_front();
      o.first_retained = o.next_seq - o.retained.size() + 1;
    }
    if (replaying_) return;  // replay re-derivation; peers already have it
    send_(std::move(msg));
    return;
  }
  // Fetch traffic is request/response state that replay re-creates from
  // scratch; re-sending stale fetches during recovery would only confuse
  // peers (and the original requester is gone).
  if (replaying_) return;
  send_(std::move(msg));
}

void Durability::on_inbound(causal::IProtocol* proto, net::Message msg) {
  switch (msg.kind) {
    case net::MsgKind::kUpdate:
      handle_update(proto, std::move(msg));
      return;
    case net::MsgKind::kCatchupReq:
      handle_catchup_req(msg);
      return;
    case net::MsgKind::kCatchupResp:
      handle_catchup_resp(msg);
      return;
    default:
      proto->on_message(msg);
      return;
  }
}

void Durability::handle_update(causal::IProtocol* proto, net::Message&& msg) {
  if (msg.src >= opts_.sites) return;
  const auto log_and_apply = [&] {
    net::Encoder enc(msg.body.size() + 24);
    enc.varint(msg.src);
    enc.varint(msg.chan_epoch);
    enc.varint(msg.chan_seq);
    enc.varint(msg.payload_bytes);
    enc.bytes({reinterpret_cast<const char*>(msg.body.data()),
               msg.body.size()});
    append(Wal::kPeerUpdate, enc);
    proto->on_message(msg);
    maybe_checkpoint(proto);
  };
  if (msg.chan_epoch == 0) {
    // Unstamped sender (no durability layer on its side): no channel to
    // track, admit unconditionally.
    log_and_apply();
    return;
  }
  ChannelIn& ch = in_[msg.src];
  if (msg.chan_epoch != ch.epoch) {
    // New sender incarnation that lost its WAL (a persistent restart keeps
    // its epoch): its seq space restarted, so ours must too.
    ch = ChannelIn{};
    ch.epoch = msg.chan_epoch;
  }
  if (msg.chan_seq <= ch.applied) {
    ++stats_.dup_drops;
    return;
  }
  if (msg.chan_seq != ch.applied + 1) {
    // Gap: updates were produced while this site was down (or overflowed
    // the sender's bounded outbound queue while unreachable). Drop and ask
    // for the range; the resend arrives in FIFO order with original stamps.
    ++stats_.gap_drops;
    if (!ch.req_inflight) {
      ch.req_inflight = true;
      send_catchup_req(msg.src);
    }
    return;
  }
  ch.applied = msg.chan_seq;
  if (ch.have_target && msg.chan_seq <= ch.target) ++stats_.catchup_updates;
  log_and_apply();
  // Streaming pull: the responder re-sends in bounded chunks; finishing a
  // chunk while still short of the announced target means the rest of the
  // backlog is waiting at the sender, not in flight — ask for the next
  // chunk now instead of idling until the anti-entropy tick.
  ChannelIn& after = in_[msg.src];
  if (after.have_target && after.applied < after.target &&
      after.applied >= after.chunk_end && !after.req_inflight) {
    after.req_inflight = true;
    send_catchup_req(msg.src);
  }
}

void Durability::send_catchup_req(causal::SiteId peer) {
  net::Message m;
  m.kind = net::MsgKind::kCatchupReq;
  m.src = opts_.self;
  m.dst = peer;
  net::Encoder enc;
  enc.varint(in_[peer].epoch);
  enc.varint(in_[peer].applied);
  m.body = enc.buffer();
  ++stats_.catchup_reqs_sent;
  send_(std::move(m));
}

void Durability::handle_catchup_req(const net::Message& msg) {
  if (msg.src >= opts_.sites) return;
  net::Decoder dec(msg.body);
  const std::uint64_t known_epoch = dec.varint();
  std::uint64_t watermark = dec.varint();
  if (!dec.ok()) return;
  ++stats_.catchup_reqs_recv;
  ChannelOut& o = out_[msg.src];
  // A requester that has never seen our current epoch knows nothing about
  // this seq space: everything retained is news to it. Clamp a bogus
  // watermark so trimming cannot push first_retained past next_seq + 1.
  if (known_epoch != epoch_) watermark = 0;
  if (watermark > o.next_seq) watermark = o.next_seq;
  while (!o.retained.empty() && o.first_retained <= watermark) {
    o.retained.pop_front();
    ++o.first_retained;
  }
  // Re-send a bounded chunk, not the whole backlog: a burst larger than
  // the per-peer outbound queue cap would be cut down by its drop-oldest
  // policy — and the dropped prefix is exactly what the requester needs
  // next in FIFO order. The requester pulls the following chunk as soon
  // as it applies chunk_end (see handle_update).
  const std::size_t chunk =
      std::min<std::size_t>(o.retained.size(), opts_.catchup_burst);
  const std::uint64_t chunk_end =
      chunk == 0 ? o.first_retained - 1 : o.first_retained + chunk - 1;
  net::Message resp;
  resp.kind = net::MsgKind::kCatchupResp;
  resp.src = opts_.self;
  resp.dst = msg.src;
  net::Encoder enc;
  enc.varint(epoch_);
  enc.varint(o.first_retained);
  enc.varint(o.next_seq);
  enc.varint(chunk_end);
  resp.body = enc.buffer();
  // Response first, resends after: per-channel FIFO means the requester
  // fast-forwards (if needed) before the retained updates land.
  send_(std::move(resp));
  for (std::size_t i = 0; i < chunk; ++i) {
    ++stats_.catchup_resent;
    send_(o.retained[i]);
  }
}

void Durability::handle_catchup_resp(const net::Message& msg) {
  if (msg.src >= opts_.sites) return;
  net::Decoder dec(msg.body);
  const std::uint64_t epoch = dec.varint();
  const std::uint64_t first_retained = dec.varint();
  const std::uint64_t latest = dec.varint();
  const std::uint64_t chunk_end = dec.varint();
  if (!dec.ok() || epoch == 0) return;
  ChannelIn& ch = in_[msg.src];
  if (epoch != ch.epoch) {
    ch = ChannelIn{};
    ch.epoch = epoch;
  }
  if (ch.applied + 1 < first_retained) {
    // The responder no longer retains the range we are missing. Skip it:
    // convergence for those writes now depends on other replicas, and the
    // metric records that the guarantee was degraded.
    stats_.skipped += first_retained - 1 - ch.applied;
    ch.applied = first_retained - 1;
  }
  ch.target = latest;
  ch.chunk_end = chunk_end;
  ch.have_target = true;
  ch.req_inflight = false;
  // Overlapping requests can deliver a response whose chunk was already
  // consumed by an earlier resend; without updates in flight nothing
  // would trigger the next pull until the tick. A fresh response always
  // announces a chunk past the watermark it was asked with, so this
  // cannot ping-pong.
  if (ch.applied < ch.target && ch.applied >= ch.chunk_end) {
    ch.req_inflight = true;
    send_catchup_req(msg.src);
  }
}

void Durability::on_meta_merge(causal::VarId x, causal::SiteId responder,
                               const std::uint8_t* data, std::size_t len) {
  if (!wal_ || replaying_) return;
  net::Encoder enc(len + 16);
  enc.varint(x);
  enc.varint(responder);
  enc.bytes({reinterpret_cast<const char*>(data), len});
  append(Wal::kMetaMerge, enc);
}

void Durability::tick(causal::IProtocol* proto) {
  for (causal::SiteId s = 0; s < opts_.sites; ++s) {
    if (s == opts_.self) continue;
    send_catchup_req(s);
  }
  if (wal_ && opts_.wal_sync == Wal::Sync::kBatch) wal_->sync();
  maybe_checkpoint(proto);
}

void Durability::maybe_checkpoint(causal::IProtocol* proto) {
  if (!wal_ || replaying_) return;
  if (records_since_checkpoint_ < opts_.checkpoint_every) return;
  if (wal_->checkpoint(encode_checkpoint(proto))) {
    records_since_checkpoint_ = 0;
    // The WAL just rotated to a new generation; let the value store rotate
    // its spill segment in step so every on-disk artifact belongs to the
    // generation that can recover it.
    proto->on_durable_checkpoint(wal_->generation());
  }
}

Durability::Stats Durability::stats() const {
  Stats s = stats_;
  if (wal_) s.wal = wal_->stats();
  s.retained_msgs = 0;
  for (const ChannelOut& o : out_) s.retained_msgs += o.retained.size();
  return s;
}

Durability::CatchupProgress Durability::progress() const {
  CatchupProgress p;
  p.recovered = recovered_;
  for (causal::SiteId s = 0; s < opts_.sites; ++s) {
    if (s == opts_.self) continue;
    const ChannelIn& ch = in_[s];
    if (!ch.have_target || ch.applied < ch.target) {
      p.complete = false;
      break;
    }
  }
  return p;
}

bool Durability::describe_wal(const std::string& dir, causal::SiteId site,
                              std::string* out, std::string* err) {
  Wal::InspectResult info;
  if (!Wal::inspect(dir, site, &info, err)) return false;

  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> in_epoch;
  std::vector<std::uint64_t> in_applied;
  std::vector<std::uint64_t> out_next;
  bool have_checkpoint = false;
  if (!info.checkpoint_payload.empty()) {
    net::Decoder dec(
        reinterpret_cast<const std::uint8_t*>(info.checkpoint_payload.data()),
        info.checkpoint_payload.size());
    if (dec.u8() == kCheckpointVersion) {
      epoch = dec.varint();
      const std::uint64_t n = dec.varint();
      if (dec.ok() && n > 0 && n < 4096) {
        in_epoch.resize(n);
        in_applied.resize(n);
        out_next.resize(n);
        for (std::uint64_t s = 0; s < n; ++s) {
          in_epoch[s] = dec.varint();
          in_applied[s] = dec.varint();
        }
        for (std::uint64_t s = 0; s < n; ++s) out_next[s] = dec.varint();
        have_checkpoint = dec.ok();
      }
    }
    if (!have_checkpoint) {
      if (err) *err = "wal-stat: checkpoint payload failed to decode";
      return false;
    }
  } else if (!info.epoch_payload.empty()) {
    net::Decoder dec(
        reinterpret_cast<const std::uint8_t*>(info.epoch_payload.data()),
        info.epoch_payload.size());
    epoch = dec.varint();
  }

  // Roll the tail forward over the checkpoint watermarks so the report
  // shows the *durable* per-peer frontier, not the stale checkpoint one.
  std::uint64_t tail_local_writes = 0;
  std::uint64_t tail_meta_merges = 0;
  for (const Wal::Record& rec : info.tail_after_checkpoint) {
    net::Decoder dec(reinterpret_cast<const std::uint8_t*>(rec.payload.data()),
                     rec.payload.size());
    switch (rec.type) {
      case Wal::kLocalWrite:
        ++tail_local_writes;
        break;
      case Wal::kMetaMerge:
        ++tail_meta_merges;
        break;
      case Wal::kPeerUpdate: {
        const auto src = static_cast<std::size_t>(dec.varint());
        const std::uint64_t e = dec.varint();
        const std::uint64_t q = dec.varint();
        if (!dec.ok()) break;
        if (src >= in_applied.size()) {
          in_epoch.resize(src + 1, 0);
          in_applied.resize(src + 1, 0);
        }
        if (e != in_epoch[src]) {
          in_epoch[src] = e;
          in_applied[src] = 0;
        }
        if (q > in_applied[src]) in_applied[src] = q;
        break;
      }
      default:
        break;
    }
  }

  std::ostringstream os;
  os << "wal file: " << info.file << "\n";
  os << "generation: " << info.generation << "\n";
  os << "records: " << info.records << " (" << info.bytes << " bytes";
  if (info.truncated_bytes > 0) {
    os << ", " << info.truncated_bytes << " torn-tail bytes truncated on read";
  }
  os << ")\n";
  os << "  checkpoint: " << info.counts_by_type[Wal::kCheckpoint]
     << "  local-write: " << info.counts_by_type[Wal::kLocalWrite]
     << "  peer-update: " << info.counts_by_type[Wal::kPeerUpdate]
     << "  meta-merge: " << info.counts_by_type[Wal::kMetaMerge]
     << "  epoch: " << info.counts_by_type[Wal::kEpoch] << "\n";
  os << "channel epoch: " << epoch << "\n";
  if (have_checkpoint) {
    os << "checkpoint: " << info.checkpoint_bytes << " payload bytes, "
       << info.tail_after_checkpoint.size() << " tail records to replay\n";
  } else {
    os << "checkpoint: none (full-history generation, "
       << info.tail_after_checkpoint.size() << " records to replay)\n";
  }
  os << "tail: " << tail_local_writes << " local writes, " << tail_meta_merges
     << " meta merges\n";
  os << "durable inbound watermarks (applied per peer):\n";
  for (std::size_t s = 0; s < in_applied.size(); ++s) {
    if (s == site) continue;
    os << "  site " << s << ": applied " << in_applied[s] << " (epoch "
       << in_epoch[s] << ")\n";
  }
  if (have_checkpoint) {
    os << "outbound chan_seq at checkpoint (per peer):\n";
    for (std::size_t s = 0; s < out_next.size(); ++s) {
      if (s == site) continue;
      os << "  site " << s << ": " << out_next[s] << "\n";
    }
  }
  *out = os.str();
  return true;
}

}  // namespace ccpr::server
