// Cluster configuration for the real-network runtime: which sites exist,
// where they listen, how variables are placed on them, which algorithm
// runs, and the protocol options. One file describes the whole cluster;
// every server and client loads the same file.
//
// Text format (line-oriented, '#' comments, whitespace-separated tokens):
//
//   algorithm opt-track          # full-track|opt-track|opt-track-crp|...
//   vars 12                      # number of variables (keys)
//   replicas 2                   # replicas per variable (p)
//   placement region             # ring|hash|region (hash takes a seed:
//                                #   "placement hash 42"); default ring
//   region eu 2ms                # geo topology: declare a region; optional
//   region us 2ms                #   intra-region one-way latency (1ms)
//   link eu us 80ms              # inter-region one-way latency (50ms when
//                                #   unlisted); symmetric
//   site 0 127.0.0.1 7100 7200 eu  # id host peer-port client-port [region]
//   site 1 127.0.0.1 7101 7201 eu
//   site 2 127.0.0.1 7102 7202 us
//   place 4 0,2                  # optional per-var placement override
//   key 0 alice:wall             # optional key naming (default key<i>)
//   convergent true              # optional ProtocolOptions overrides
//   fetch-timeout-us 250000
//   no-gating true
//   max-frame-bytes 16777216
//   sender-batch-bytes 262144    # writev coalescing limit (1 = no batching)
//   peer-queue-cap 65536         # outbound msgs/peer before send() blocks
//   engine-queue-cap 4096        # protocol commands before producers block
//   engine-shards 4              # independent engine shards per site
//                                #   (cluster-wide; 1 = classic single
//                                #   engine, byte-identical wire format)
//   client-io-threads 2          # epoll event-loop threads for the TCP
//                                #   runtime's client port
//   catchup-retain 8192          # stamped updates retained per peer
//   catchup-interval-ms 500      # anti-entropy round period
//   catchup-timeout-ms 2000      # restart waits this long for catch-up
//   checkpoint-every 4096        # WAL records between checkpoints
//   store-engine compact         # value-store engine: map (default)|compact
//   store-shards 8               # compact engine: index shard count
//   store-inline-max 256         # compact engine: max arena-inlined value
//   store-spill-budget-bytes 67108864
//                                # compact engine: resident value budget;
//                                #   cold values spill to disk under
//                                #   --data-dir (0 = never spill)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "causal/factory.hpp"
#include "causal/replica_map.hpp"
#include "server/topology.hpp"
#include "store/key_space.hpp"

namespace ccpr::server {

struct SiteAddress {
  std::string host = "127.0.0.1";
  std::uint16_t peer_port = 0;    ///< site-to-site protocol traffic
  std::uint16_t client_port = 0;  ///< client request/response traffic
};

/// Which base placement policy maps variables onto sites (per-var `place`
/// overrides always win on top).
enum class PlacementPolicy : std::uint8_t {
  kRing = 0,    ///< x..x+p-1 (mod n), the paper's even placement
  kHash = 1,    ///< seeded pseudo-random p-subset (store::hash_placement)
  kRegion = 2,  ///< home-region round-robin (store::region_placement);
                ///< requires a topology
};

const char* placement_token(PlacementPolicy policy);

/// The config grammar's duration token — a number with a mandatory unit
/// ("80ms", "500us", "1s") parsed to microseconds — exposed for CLI flags
/// that share the grammar (e.g. `ccpr_client chaos --delay=50ms`).
bool parse_duration_token(const std::string& tok, std::uint32_t* out);

struct ClusterConfig {
  causal::Algorithm algorithm = causal::Algorithm::kOptTrack;
  std::uint32_t vars = 0;
  /// Replicas per variable (p); per-var `place` overrides win.
  std::uint32_t replicas_per_var = 1;
  PlacementPolicy placement = PlacementPolicy::kRing;
  std::uint32_t placement_seed = 0;  ///< hash placement only
  std::vector<SiteAddress> sites;
  /// Geo topology (regions, site assignment, link classes). Empty = the
  /// classic flat cluster.
  Topology topology;
  std::vector<std::pair<causal::VarId, std::vector<causal::SiteId>>>
      placement_overrides;
  std::vector<std::pair<causal::VarId, std::string>> key_names;
  causal::ProtocolOptions protocol{};
  std::uint32_t max_frame_bytes = 0;  ///< 0 = transport default
  /// I/O-path tuning; 0 means "use the runtime default" for each.
  std::uint32_t sender_batch_bytes = 0;  ///< writev coalescing limit
  std::uint32_t peer_queue_cap = 0;      ///< outbound per-peer queue cap
  std::uint32_t engine_queue_cap = 0;    ///< protocol-engine command cap
  /// Client-port epoll loops (TCP runtime); 0 = runtime default (2). The
  /// engine shard count itself lives in protocol.engine_shards so the sim
  /// and threaded runtimes shard identically.
  std::uint32_t client_io_threads = 0;
  /// Durability / anti-entropy tuning; 0 = runtime default for each.
  std::uint32_t catchup_retain = 0;       ///< retained updates per peer
  std::uint32_t catchup_interval_ms = 0;  ///< anti-entropy round period
  std::uint32_t catchup_timeout_ms = 0;   ///< restart catch-up gate bound
  std::uint32_t checkpoint_every = 0;     ///< WAL records per checkpoint
  /// Failure detector (TCP runtime); 0 = runtime default for each.
  /// `heartbeat-interval <duration>`: ping period per peer.
  /// `suspect-after <duration>`: floor on silence before a peer is
  /// suspected (the effective timeout also scales with the RTT EWMA).
  std::uint32_t heartbeat_interval_us = 0;
  std::uint32_t suspect_after_us = 0;

  std::uint32_t site_count() const noexcept {
    return static_cast<std::uint32_t>(sites.size());
  }

  /// Materialize the placement: the configured policy, then per-var
  /// overrides. With a topology the map also carries the site-distance
  /// matrix, so fetch routing prefers intra-region replicas.
  causal::ReplicaMap replica_map() const;
  /// Key naming: explicit `key` lines, "key<i>" for the rest.
  store::KeySpace key_space() const;

  /// Parse from config text; nullopt + *error on malformed input.
  static std::optional<ClusterConfig> parse(const std::string& text,
                                            std::string* error);
  static std::optional<ClusterConfig> load(const std::string& path,
                                           std::string* error);
  /// Serialize back to the text format (round-trips through parse()).
  std::string to_text() const;

  /// Semantic checks shared by parse() and programmatically built configs:
  /// non-empty site list, positive vars/replicas, placement overrides in
  /// range with no duplicate sites, key names in range. parse() additionally
  /// enforces dense site ids (the vector representation makes that
  /// structural here).
  bool validate(std::string* error) const;

  /// An n-site loopback cluster on consecutive ports starting at
  /// `base_port` (peer ports) and `base_port + n` (client ports); handy for
  /// tests and examples. Pass base_port 0 only if the caller fills ports in.
  static ClusterConfig loopback(std::uint32_t n, std::uint32_t q,
                                std::uint32_t p, std::uint16_t base_port);
};

}  // namespace ccpr::server
