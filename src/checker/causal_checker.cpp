#include "checker/causal_checker.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace ccpr::checker {

using causal::SiteId;
using causal::VarId;
using causal::WriteId;

void CheckResult::fail(std::string msg) {
  ok = false;
  violations.push_back(std::move(msg));
}

namespace {

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

/// One op with its position in its process history (1-based) and its vector
/// timestamp under ->co.
struct TimedOp {
  OpRecord rec;
  std::uint32_t pos = 0;
  std::vector<std::uint64_t> vc;
};

struct WriteInfo {
  SiteId writer = causal::kNoSite;
  std::uint32_t pos = 0;      ///< position in writer's history
  VarId var = 0;
  std::size_t op_index = 0;   ///< index into the TimedOp array
  bool exists = false;
};

}  // namespace

CheckResult check_causal_consistency(const HistoryRecorder& history,
                                     const causal::ReplicaMap& rmap,
                                     const CheckOptions& opts) {
  CheckResult result;
  const std::vector<OpRecord> ops = history.ops();
  const std::vector<ApplyRecord> applies = history.applies();
  const std::uint32_t n = rmap.sites();

  auto fail = [&](std::string msg) {
    if (result.violations.size() < opts.max_violations) {
      result.fail(std::move(msg));
    } else {
      result.ok = false;
    }
  };

  // ---- index writes by identity ----
  std::unordered_map<std::uint64_t, WriteInfo> writes;  // key: writer<<40|seq
  const auto key = [](WriteId id) {
    return (static_cast<std::uint64_t>(id.writer) << 40) | id.seq;
  };

  std::vector<TimedOp> timed(ops.size());
  std::vector<std::uint32_t> op_count(n, 0);

  // Variables touched by a kWriteMaybe: a put whose response was lost may
  // have executed without ever being confirmed to the client, so a read (or
  // apply) naming an unknown write id on these variables is indeterminate,
  // not a violation.
  std::unordered_set<VarId> maybe_vars;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpRecord& rec = ops[i];
    CCPR_ASSERT(rec.process < n);
    timed[i].rec = rec;
    timed[i].pos = ++op_count[rec.process];
    if (rec.kind == OpRecord::Kind::kWriteMaybe) {
      maybe_vars.insert(rec.var);
      ++result.indeterminate_writes;
    }
    if (rec.kind == OpRecord::Kind::kWrite) {
      WriteInfo info{rec.process, timed[i].pos, rec.var, i, true};
      const auto [it, inserted] = writes.emplace(key(rec.write), info);
      if (!inserted) {
        fail(fmt("duplicate WriteId (writer=%u seq=%llu)", rec.write.writer,
                 static_cast<unsigned long long>(rec.write.seq)));
      }
      if (rec.write.writer != rec.process) {
        fail(fmt("write recorded at process %u but WriteId names writer %u",
                 rec.process, rec.write.writer));
      }
    }
  }

  // ---- vector timestamps under ->co (po ∪ ro, transitively closed) ----
  // The global log interleaves per-process histories in *recording* order.
  // With per-process recorders behind one cluster mutex that order is
  // already consistent with read-from, but a real-time recorder (e.g. the
  // TCP client library, one recorder shared by concurrent sessions) can log
  // a read before the cross-process write it returned. So walk per-process
  // cursors and only process a read once its source write has a timestamp —
  // a topological order of po ∪ ro, which is acyclic for any honest
  // recording (a write cannot read-from-follow an op that program-order
  // precedes it).
  std::vector<std::vector<std::size_t>> by_proc(n);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    by_proc[ops[i].process].push_back(i);
  }
  std::vector<std::size_t> cursor(n, 0);
  std::vector<char> timestamped(ops.size(), 0);

  const auto assign_vc = [&](std::size_t i, bool with_ro) {
    TimedOp& op = timed[i];
    op.vc.assign(n, 0);
    const std::size_t at = cursor[op.rec.process];
    if (at > 0) op.vc = timed[by_proc[op.rec.process][at - 1]].vc;
    if (op.rec.kind == OpRecord::Kind::kRead && !op.rec.write.is_initial()) {
      const auto it = writes.find(key(op.rec.write));
      if (it == writes.end()) {
        if (maybe_vars.count(op.rec.var) != 0) {
          // Plausibly the value of an indeterminate put; no ro edge to
          // merge (the phantom write's causal past is unknowable), which
          // only weakens — never falsifies — the downstream checks.
          ++result.indeterminate_reads;
        } else {
          fail(fmt(
              "read integrity: process %u read var %u from unknown write "
              "(writer=%u seq=%llu)",
              op.rec.process, op.rec.var, op.rec.write.writer,
              static_cast<unsigned long long>(op.rec.write.seq)));
        }
      } else {
        if (it->second.var != op.rec.var) {
          fail(fmt("read integrity: process %u read var %u but write "
                   "(writer=%u seq=%llu) wrote var %u",
                   op.rec.process, op.rec.var, op.rec.write.writer,
                   static_cast<unsigned long long>(op.rec.write.seq),
                   it->second.var));
        }
        if (with_ro) {
          const std::vector<std::uint64_t>& wvc =
              timed[it->second.op_index].vc;
          for (std::uint32_t k = 0; k < n; ++k) {
            op.vc[k] = std::max(op.vc[k], wvc[k]);
          }
        }
      }
    }
    op.vc[op.rec.process] = op.pos;
    timestamped[i] = 1;
  };

  /// True when `rec`'s read-from source (if any) already has a timestamp.
  const auto ro_ready = [&](const OpRecord& rec) {
    if (rec.kind != OpRecord::Kind::kRead || rec.write.is_initial()) {
      return true;
    }
    const auto it = writes.find(key(rec.write));
    return it == writes.end() || timestamped[it->second.op_index] != 0;
  };

  std::size_t timed_count = 0;
  while (timed_count < ops.size()) {
    bool progress = false;
    for (SiteId p = 0; p < n; ++p) {
      while (cursor[p] < by_proc[p].size()) {
        const std::size_t i = by_proc[p][cursor[p]];
        if (!ro_ready(timed[i].rec)) break;
        assign_vc(i, /*with_ro=*/true);
        ++cursor[p];
        ++timed_count;
        progress = true;
      }
    }
    if (!progress) {
      // Only a corrupt history reaches here (a read-from edge pointing into
      // some process's program-order future). Report it, then finish the
      // timestamps without the offending edges so later checks stay in
      // bounds.
      fail("corrupt history: read-from cycle with program order "
           "(a read returned a write recorded later in its own process)");
      for (SiteId p = 0; p < n; ++p) {
        while (cursor[p] < by_proc[p].size()) {
          const std::size_t i = by_proc[p][cursor[p]];
          assign_vc(i, ro_ready(timed[i].rec));
          ++cursor[p];
          ++timed_count;
        }
      }
      break;
    }
  }
  result.ops_checked = ops.size();

  // w ->co o ?  (w a write by process p at position pos)
  const auto co_before = [&](const WriteInfo& w, const TimedOp& o) {
    const auto o_index =
        static_cast<std::size_t>(&o - timed.data());
    return o.vc[w.writer] >= w.pos && w.op_index != o_index;
  };

  // ---- (2) read legality ----
  // Group writes per variable for the causal-past scan.
  std::unordered_map<VarId, std::vector<const WriteInfo*>> writes_on;
  for (const auto& [k, info] : writes) {
    writes_on[info.var].push_back(&info);
  }

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const TimedOp& op = timed[i];
    if (op.rec.kind != OpRecord::Kind::kRead) continue;
    const WriteInfo* w0 = nullptr;
    if (!op.rec.write.is_initial()) {
      const auto it = writes.find(key(op.rec.write));
      if (it == writes.end()) continue;  // reported above
      w0 = &it->second;
    }
    const auto it = writes_on.find(op.rec.var);
    if (it == writes_on.end()) continue;
    for (const WriteInfo* wx : it->second) {
      if (w0 != nullptr && wx == w0) continue;
      if (!co_before(*wx, op)) continue;
      // wx is a write on this var in the read's causal past.
      if (w0 == nullptr) {
        fail(fmt("stale read: process %u read initial value of var %u but "
                 "write (writer=%u pos=%u) is in its causal past",
                 op.rec.process, op.rec.var, wx->writer, wx->pos));
        break;
      }
      // Violation iff the returned write was overwritten by wx in the causal
      // past: w0 ->co wx.
      const TimedOp& wx_op = timed[wx->op_index];
      if (wx_op.vc[w0->writer] >= w0->pos && wx->op_index != w0->op_index) {
        fail(fmt("stale read: process %u read var %u from (writer=%u "
                 "seq=%llu) but causally later write (writer=%u pos=%u) "
                 "precedes the read",
                 op.rec.process, op.rec.var, op.rec.write.writer,
                 static_cast<unsigned long long>(op.rec.write.seq),
                 wx->writer, wx->pos));
        break;
      }
    }
  }

  // ---- (1) per-site apply order ----
  // destined[p][s]: positions (in p's history) of p's writes destined to s,
  // ascending (program order).
  std::vector<std::vector<std::vector<std::uint32_t>>> destined(
      n, std::vector<std::vector<std::uint32_t>>(n));
  {
    // Collect in op order so the position lists are already sorted.
    for (const TimedOp& op : timed) {
      if (op.rec.kind != OpRecord::Kind::kWrite) continue;
      for (const SiteId s : rmap.replicas(op.rec.var)) {
        destined[op.rec.process][s].push_back(op.pos);
      }
    }
  }

  std::vector<std::vector<std::uint64_t>> applied_count(
      n, std::vector<std::uint64_t>(n, 0));

  for (const ApplyRecord& ar : applies) {
    ++result.applies_checked;
    CCPR_ASSERT(ar.site < n);
    const auto it = writes.find(key(ar.write));
    if (it == writes.end()) {
      if (maybe_vars.count(ar.var) != 0) {
        ++result.indeterminate_applies;
      } else {
        fail(fmt("apply of unknown write (writer=%u seq=%llu) at site %u",
                 ar.write.writer,
                 static_cast<unsigned long long>(ar.write.seq), ar.site));
      }
      continue;
    }
    const WriteInfo& w = it->second;
    if (w.var != ar.var) {
      fail(fmt("apply at site %u names var %u but the write wrote var %u",
               ar.site, ar.var, w.var));
    }
    if (!rmap.replicated_at(w.var, ar.site)) {
      fail(fmt("write to var %u applied at non-replica site %u", w.var,
               ar.site));
      continue;
    }
    const auto& expected = destined[w.writer][ar.site];
    auto& done = applied_count[w.writer][ar.site];
    if (done >= expected.size() || expected[done] != w.pos) {
      fail(fmt("per-writer apply order broken at site %u: write by %u at "
               "position %u applied out of FIFO order (slot %llu)",
               ar.site, w.writer, w.pos,
               static_cast<unsigned long long>(done)));
      continue;
    }
    // Causal obligation: every write destined to this site in the causal
    // past of w must already be applied here.
    const TimedOp& wop = timed[w.op_index];
    for (std::uint32_t p = 0; p < n; ++p) {
      const auto& list = destined[p][ar.site];
      auto needed = static_cast<std::uint64_t>(
          std::upper_bound(list.begin(), list.end(), wop.vc[p]) -
          list.begin());
      if (p == w.writer) --needed;  // w itself
      if (applied_count[p][ar.site] < needed) {
        fail(fmt("causal apply violation at site %u: write (writer=%u "
                 "pos=%u) applied before %llu/%llu causally preceding "
                 "writes from process %u",
                 ar.site, w.writer, w.pos,
                 static_cast<unsigned long long>(applied_count[p][ar.site]),
                 static_cast<unsigned long long>(needed), p));
        break;
      }
    }
    ++done;
  }

  if (opts.require_complete_delivery) {
    for (std::uint32_t p = 0; p < n && result.violations.size() <
                                           opts.max_violations;
         ++p) {
      for (std::uint32_t s = 0; s < n; ++s) {
        if (applied_count[p][s] != destined[p][s].size()) {
          fail(fmt("lost update: site %u applied %llu of %llu writes from "
                   "process %u",
                   s,
                   static_cast<unsigned long long>(applied_count[p][s]),
                   static_cast<unsigned long long>(destined[p][s].size()),
                   p));
        }
      }
    }
  }

  return result;
}

}  // namespace ccpr::checker
