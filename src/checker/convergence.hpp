// Convergence auditing for causal+ consistency (paper §V).
//
// Plain causal consistency does not force replicas of a variable to agree
// once updates cease: concurrent writes may be applied in different orders
// at different sites. The paper sketches causal+ as a post-quiescence step
// (termination detection, then agree on a final value set). We implement the
// measurable property: after the cluster drains, audit per-variable replica
// agreement, and provide the deterministic last-writer-wins rule a store can
// apply to converge (largest (seq, writer) pair — a total order consistent
// with per-writer program order).
#pragma once

#include <functional>

#include "causal/replica_map.hpp"
#include "causal/types.hpp"

namespace ccpr::checker {

struct ConvergenceReport {
  std::size_t vars_checked = 0;
  std::size_t divergent_vars = 0;

  bool converged() const noexcept { return divergent_vars == 0; }
};

/// `peek(site, var)` must return the value currently stored at a replica.
ConvergenceReport audit_convergence(
    const causal::ReplicaMap& rmap,
    const std::function<causal::Value(causal::SiteId, causal::VarId)>& peek);

/// Deterministic winner among two candidate final values (LWW over
/// (lamport, writer) — the Lamport component makes the rule consistent
/// with causality; initial values lose to any write).
const causal::Value& lww_winner(const causal::Value& a,
                                const causal::Value& b) noexcept;

}  // namespace ccpr::checker
