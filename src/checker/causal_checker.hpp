// Offline causal-memory checker.
//
// Rebuilds the causality order ->co of the recorded history exactly as the
// paper defines it — the transitive closure of program order and the
// read-from order — by assigning every operation a vector timestamp, then
// verifies the two obligations of causal memory:
//
//   (1) WRITE ORDER: at every site, writes are applied in an order that
//       extends ->co restricted to the writes destined to that site, with
//       per-writer FIFO and no duplicate/missing/foreign applies;
//   (2) READ LEGALITY: no read returns a value that some write in the
//       read's causal past had already overwritten (reading the initial
//       value is legal only while no write to the variable is in the causal
//       past), and every returned value was actually written to that
//       variable (read integrity).
//
// The checker is deliberately independent of the protocol implementations:
// it consumes only the recorded history and the replica map.
#pragma once

#include <string>
#include <vector>

#include "causal/replica_map.hpp"
#include "checker/recorder.hpp"

namespace ccpr::checker {

struct CheckResult {
  bool ok = true;
  /// Human-readable violation descriptions (capped).
  std::vector<std::string> violations;
  /// Totals for reporting.
  std::size_t ops_checked = 0;
  std::size_t applies_checked = 0;
  /// Indeterminate-fate writes in the history (OpRecord::Kind::kWriteMaybe:
  /// a client put whose response was lost). Reads and applies naming a
  /// write id no confirmed write produced are tolerated on those variables
  /// instead of failing read/apply integrity, and counted here.
  std::size_t indeterminate_writes = 0;
  std::size_t indeterminate_reads = 0;
  std::size_t indeterminate_applies = 0;

  void fail(std::string msg);
};

struct CheckOptions {
  /// Require every update to have been applied at every replica (liveness /
  /// no lost updates). Disable for runs cut short deliberately.
  bool require_complete_delivery = true;
  std::size_t max_violations = 16;
};

CheckResult check_causal_consistency(const HistoryRecorder& history,
                                     const causal::ReplicaMap& rmap,
                                     const CheckOptions& opts = {});

}  // namespace ccpr::checker
