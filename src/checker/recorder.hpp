// Records the global history H (per-process operation sequences) and the
// per-site apply sequences while a cluster runs. The offline CausalChecker
// consumes this to machine-verify causal-memory semantics after every test
// run. Thread-safe so the threaded runtime can record too.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "causal/types.hpp"

namespace ccpr::checker {

/// One operation in a process's local history h_i.
struct OpRecord {
  enum class Kind : std::uint8_t {
    kWrite,
    kRead,
    /// A write whose fate is unknown to the issuing client: the request
    /// may have executed server-side but the response was lost (timeout,
    /// crash mid-call) and the retry's outcome does not disambiguate.
    /// Recorded so the checker can tolerate — rather than flag — reads
    /// that return a write id no confirmed write produced. `write` is
    /// empty; only `var` is meaningful.
    kWriteMaybe,
  };
  Kind kind;
  causal::SiteId process;   ///< ap_i that performed the op
  causal::VarId var;
  /// For writes: this write's identity. For reads: the identity of the write
  /// whose value was returned (seq 0 = initial value).
  causal::WriteId write;
};

/// One apply event at a site.
struct ApplyRecord {
  causal::SiteId site;
  causal::VarId var;
  causal::WriteId write;
};

class HistoryRecorder {
 public:
  void on_write(causal::SiteId process, causal::WriteId id, causal::VarId x) {
    std::lock_guard lk(mu_);
    ops_.push_back({OpRecord::Kind::kWrite, process, x, id});
  }

  void on_read(causal::SiteId process, causal::VarId x, causal::WriteId from) {
    std::lock_guard lk(mu_);
    ops_.push_back({OpRecord::Kind::kRead, process, x, from});
  }

  /// A put whose execution is indeterminate (see OpRecord::Kind::kWriteMaybe).
  void on_write_maybe(causal::SiteId process, causal::VarId x) {
    std::lock_guard lk(mu_);
    ops_.push_back({OpRecord::Kind::kWriteMaybe, process, x, {}});
  }

  void on_apply(causal::SiteId site, causal::WriteId id, causal::VarId x) {
    std::lock_guard lk(mu_);
    applies_.push_back({site, x, id});
  }

  /// Global op log in recording order. Per-process subsequences are the
  /// local histories h_i (recording order == program order per process
  /// because each application process is sequential).
  std::vector<OpRecord> ops() const {
    std::lock_guard lk(mu_);
    return ops_;
  }

  std::vector<ApplyRecord> applies() const {
    std::lock_guard lk(mu_);
    return applies_;
  }

  void clear() {
    std::lock_guard lk(mu_);
    ops_.clear();
    applies_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<OpRecord> ops_;
  std::vector<ApplyRecord> applies_;
};

}  // namespace ccpr::checker
