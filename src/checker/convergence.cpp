#include "checker/convergence.hpp"

namespace ccpr::checker {

ConvergenceReport audit_convergence(
    const causal::ReplicaMap& rmap,
    const std::function<causal::Value(causal::SiteId, causal::VarId)>& peek) {
  ConvergenceReport report;
  for (causal::VarId x = 0; x < rmap.vars(); ++x) {
    ++report.vars_checked;
    const auto reps = rmap.replicas(x);
    const causal::Value first = peek(reps.front(), x);
    for (std::size_t i = 1; i < reps.size(); ++i) {
      if (!(peek(reps[i], x).id == first.id)) {
        ++report.divergent_vars;
        break;
      }
    }
  }
  return report;
}

const causal::Value& lww_winner(const causal::Value& a,
                                const causal::Value& b) noexcept {
  if (a.lamport != b.lamport) return a.lamport > b.lamport ? a : b;
  return a.id.writer >= b.id.writer ? a : b;
}

}  // namespace ccpr::checker
