// GeoStore: the user-facing geo-replicated causal KV store.
//
// This is the "cloud storage" product layer of the paper: string keys,
// blob values, sessions pinned to a site (data center), causal consistency
// across sessions, and pluggable replication (partial or full) underneath.
// Runs on the threaded runtime — every session call is a real blocking
// operation against live protocol instances.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "causal/threaded_cluster.hpp"
#include "checker/convergence.hpp"
#include "store/key_space.hpp"

namespace ccpr::store {

class GeoStore {
 public:
  struct Options {
    causal::Algorithm algorithm = causal::Algorithm::kOptTrack;
    causal::ProtocolOptions protocol{};
    /// Extra random delivery delay (interleaving stress), microseconds.
    std::uint32_t max_delay_us = 100;
    bool record_history = true;
  };

  GeoStore(KeySpace keys, causal::ReplicaMap rmap);
  GeoStore(KeySpace keys, causal::ReplicaMap rmap, Options opts);

  /// A client connection pinned to one site. Cheap to copy.
  class Session {
   public:
    /// Store `value` under `key`; causally ordered after everything this
    /// session has read or written.
    void put(std::string_view key, std::string value);
    /// Fetch the current value (empty string if never written).
    std::string get(std::string_view key);
    causal::SiteId site() const noexcept { return site_; }

    /// Move this session to another site (device roaming, failover).
    /// Blocks until the new site has caught up with everything this
    /// session could have observed at the old one, preserving
    /// read-your-writes and monotonic reads across the move.
    void migrate(causal::SiteId new_site);

    /// Causally consistent multi-key snapshot: all keys must be replicated
    /// at this session's site. The values form a causally closed cut — no
    /// returned value can depend on a newer version of another returned
    /// key (plain sequential gets do NOT guarantee this).
    std::vector<std::string> snapshot_get(
        const std::vector<std::string>& keys_to_read);

   private:
    friend class GeoStore;
    Session(GeoStore* store, causal::SiteId site)
        : store_(store), site_(site) {}
    GeoStore* store_;
    causal::SiteId site_;
  };

  Session session(causal::SiteId site);

  /// Wait for all replication traffic to be processed.
  void flush();

  /// Post-quiescence replica agreement audit (causal+ discussion, §V).
  checker::ConvergenceReport audit_convergence();

  const KeySpace& keys() const noexcept { return keys_; }
  const causal::ThreadedCluster& cluster() const noexcept { return cluster_; }
  metrics::Metrics metrics() const { return cluster_.metrics(); }
  const checker::HistoryRecorder& history() const {
    return cluster_.history();
  }
  const causal::ReplicaMap& replica_map() const {
    return cluster_.replica_map();
  }

 private:
  KeySpace keys_;
  causal::ThreadedCluster cluster_;
};

}  // namespace ccpr::store
