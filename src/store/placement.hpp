// Replica placement policies for the KV layer.
#pragma once

#include <cstdint>
#include <vector>

#include "causal/replica_map.hpp"

namespace ccpr::store {

/// Pseudo-random placement: p distinct sites per variable, chosen by a
/// seeded hash — the usual consistent-hashing style layout.
causal::ReplicaMap hash_placement(std::uint32_t n, std::uint32_t q,
                                  std::uint32_t p, std::uint64_t seed);

/// Locality-aware placement: each variable has a home region and its p
/// replicas are chosen round-robin among that region's sites. If the region
/// has fewer than p sites the placement spills into the next region(s);
/// regions with zero sites are skipped. p > total sites clamps to full
/// replication, and every variable gets exactly min(p, sites) replicas.
causal::ReplicaMap region_placement(
    const std::vector<std::uint32_t>& region_of_site,
    const std::vector<std::uint32_t>& home_region_of_var, std::uint32_t p);

}  // namespace ccpr::store
