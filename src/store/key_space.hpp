// String-keyed view over the variable space. Placement is static for a run
// (the paper's model), so the key set is registered up front and interned to
// dense VarIds.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "causal/replica_map.hpp"

namespace ccpr::store {

class KeySpace {
 public:
  explicit KeySpace(std::vector<std::string> keys);

  /// q synthetic keys "key0".."key<q-1>" — the default naming used by the
  /// cluster config when no explicit key list is given.
  static KeySpace numbered(std::uint32_t q);

  causal::VarId intern(std::string_view key) const;
  bool contains(std::string_view key) const;
  const std::string& name(causal::VarId x) const;
  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(keys_.size());
  }

 private:
  std::vector<std::string> keys_;
  std::unordered_map<std::string_view, causal::VarId> index_;
};

}  // namespace ccpr::store
