#include "store/placement.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ccpr::store {

causal::ReplicaMap hash_placement(std::uint32_t n, std::uint32_t q,
                                  std::uint32_t p, std::uint64_t seed) {
  CCPR_EXPECTS(p >= 1 && p <= n);
  std::vector<std::vector<causal::SiteId>> replicas(q);
  std::vector<causal::SiteId> all(n);
  for (std::uint32_t s = 0; s < n; ++s) all[s] = s;
  for (causal::VarId x = 0; x < q; ++x) {
    // Partial Fisher-Yates with a per-variable seeded generator: the first p
    // entries of a random permutation of the sites.
    util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (x + 1)));
    std::vector<causal::SiteId> pool = all;
    for (std::uint32_t k = 0; k < p; ++k) {
      const auto pick =
          k + static_cast<std::uint32_t>(rng.below(n - k));
      std::swap(pool[k], pool[pick]);
      replicas[x].push_back(pool[k]);
    }
  }
  return causal::ReplicaMap::custom(n, std::move(replicas));
}

causal::ReplicaMap region_placement(
    const std::vector<std::uint32_t>& region_of_site,
    const std::vector<std::uint32_t>& home_region_of_var, std::uint32_t p) {
  const auto n = static_cast<std::uint32_t>(region_of_site.size());
  CCPR_EXPECTS(n > 0);
  CCPR_EXPECTS(p >= 1);
  // A p beyond the cluster degrades to full replication instead of
  // aborting, matching ClusterConfig::replica_map's ring policy.
  const std::uint32_t want = std::min(p, n);

  std::uint32_t regions = 0;
  for (const std::uint32_t r : region_of_site) {
    regions = std::max(regions, r + 1);
  }
  std::vector<std::vector<causal::SiteId>> sites_in(regions);
  for (std::uint32_t s = 0; s < n; ++s) {
    sites_in[region_of_site[s]].push_back(s);
  }

  std::vector<std::vector<causal::SiteId>> replicas(
      home_region_of_var.size());
  for (causal::VarId x = 0; x < home_region_of_var.size(); ++x) {
    const std::uint32_t home = home_region_of_var[x];
    CCPR_EXPECTS(home < regions);
    auto& reps = replicas[x];
    // Walk regions starting at home; round-robin within each by var id.
    // Regions with zero sites (every id below the max must exist but may be
    // empty) contribute nothing and the walk spills past them. Visiting all
    // `regions` hops visits every site once, so `want` is always reached.
    for (std::uint32_t hop = 0; hop < regions && reps.size() < want; ++hop) {
      const auto& sites = sites_in[(home + hop) % regions];
      for (std::uint32_t k = 0; k < sites.size() && reps.size() < want;
           ++k) {
        reps.push_back(sites[(x + k) % sites.size()]);
      }
    }
    CCPR_ENSURES(reps.size() == want);
  }
  return causal::ReplicaMap::custom(n, std::move(replicas));
}

}  // namespace ccpr::store
