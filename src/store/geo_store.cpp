#include "store/geo_store.hpp"

#include "util/assert.hpp"

namespace ccpr::store {

GeoStore::GeoStore(KeySpace keys, causal::ReplicaMap rmap)
    : GeoStore(std::move(keys), std::move(rmap), Options{}) {}

GeoStore::GeoStore(KeySpace keys, causal::ReplicaMap rmap, Options opts)
    : keys_(std::move(keys)),
      cluster_(opts.algorithm, std::move(rmap),
               causal::ThreadedCluster::Options{
                   .protocol = opts.protocol,
                   .max_delay_us = opts.max_delay_us,
                   .record_history = opts.record_history}) {
  CCPR_EXPECTS(keys_.size() == cluster_.replica_map().vars());
}

GeoStore::Session GeoStore::session(causal::SiteId site) {
  CCPR_EXPECTS(site < cluster_.replica_map().sites());
  return Session(this, site);
}

void GeoStore::Session::put(std::string_view key, std::string value) {
  store_->cluster_.write(site_, store_->keys_.intern(key), std::move(value));
}

std::string GeoStore::Session::get(std::string_view key) {
  auto v = store_->cluster_.read(site_, store_->keys_.intern(key));
  return std::move(v.data);
}

void GeoStore::Session::migrate(causal::SiteId new_site) {
  CCPR_EXPECTS(new_site < store_->cluster_.replica_map().sites());
  if (new_site == site_) return;
  store_->cluster_.await_coverage(site_, new_site);
  site_ = new_site;
}

std::vector<std::string> GeoStore::Session::snapshot_get(
    const std::vector<std::string>& keys_to_read) {
  std::vector<causal::VarId> vars;
  vars.reserve(keys_to_read.size());
  for (const auto& key : keys_to_read) {
    vars.push_back(store_->keys_.intern(key));
  }
  std::vector<std::string> out;
  out.reserve(vars.size());
  for (auto& v : store_->cluster_.read_many(site_, vars)) {
    out.push_back(std::move(v.data));
  }
  return out;
}

void GeoStore::flush() { cluster_.drain(); }

checker::ConvergenceReport GeoStore::audit_convergence() {
  flush();
  return checker::audit_convergence(
      cluster_.replica_map(),
      [this](causal::SiteId s, causal::VarId x) {
        return cluster_.peek(s, x);
      });
}

}  // namespace ccpr::store
