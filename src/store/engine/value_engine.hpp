#pragma once

// Pluggable value-store engines for the protocol layer.
//
// Every causal protocol in this repo ultimately lands writes in a map
// VarId -> Value. For small experiments a std::unordered_map is fine, but
// the q-sweep regime the paper cares about (q up to 10^6 and beyond) makes
// the container itself the dominant memory cost: ~120-160 bytes/key for
// 16-byte values once node, bucket, and heap-string overheads are counted.
//
// ValueEngine abstracts that container so ProtocolBase can run on either:
//
//   * MapEngine     — the original unordered_map, kept as the reference
//                     oracle for differential tests.
//   * CompactEngine — sharded open-addressing index (12-byte slots) over
//                     arena-backed records that inline small values, keep
//                     large blobs out-of-line, and optionally spill cold
//                     values to a disk segment file.
//
// Threading contract: engines are NOT thread-safe. They inherit the
// protocol's single-caller discipline (see util/single_caller.hpp) — the
// sim loop, the per-node mutex of ThreadedCluster, or the TCP runtime's
// single apply thread serializes every call. `find()` may mutate internal
// state (scratch buffers, probe counters, clock bits) despite being a
// read, so even concurrent finds are illegal.
//
// Reference stability: the pointer returned by find() remains valid until
// the next call that mutates the engine (put/clear/restore/maintain) and
// at most until the next `kScratchSlots` finds. ProtocolBase borrows it
// only within one protocol entry and runs maintain() strictly at the
// outermost entry, so protocol re-entrancy (read continuations issuing
// writes) never invalidates a live borrow.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "causal/types.hpp"

namespace ccpr::store {

enum class EngineKind : std::uint8_t {
  kMap = 0,
  kCompact = 1,
};

const char* engine_kind_token(EngineKind k);
bool parse_engine_kind(const std::string& text, EngineKind* out);

struct EngineOptions {
  EngineKind kind = EngineKind::kMap;
  // CompactEngine tuning. Shard count is rounded up to a power of two.
  std::uint32_t shards = 8;
  // Values with data.size() <= inline_max live in the arena; larger blobs
  // are stored out-of-line on the heap (stable address, zero-copy reads).
  std::uint32_t inline_max = 256;
  // When > 0, maintain() spills cold values to `spill_dir` until resident
  // value bytes fit the budget. 0 disables spill entirely.
  std::uint64_t spill_budget_bytes = 0;
  // Directory for spill segment files. Required when spill_budget_bytes
  // is set and filled in by the server runtime from --data-dir; engines
  // own the directory and delete stale segments from prior incarnations.
  std::string spill_dir;
};

struct EngineStats {
  EngineKind kind = EngineKind::kMap;
  std::uint64_t keys = 0;
  // Bytes resident in RAM attributable to the engine: index + arena
  // blocks + out-of-line blobs + container overhead estimates.
  std::uint64_t resident_bytes = 0;
  std::uint64_t index_slots = 0;
  // Lifetime probe statistics for the open-addressing index (MapEngine
  // reports lookups with 1 probe each so dashboards stay comparable).
  std::uint64_t lookups = 0;
  std::uint64_t probes = 0;
  std::uint64_t spilled_keys = 0;
  std::uint64_t spill_segment_bytes = 0;
  std::uint64_t spill_reads = 0;
  std::uint64_t spill_writes = 0;
  std::uint64_t compactions = 0;

  double mean_probe_length() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(probes) /
                              static_cast<double>(lookups);
  }
};

class ValueEngine {
 public:
  virtual ~ValueEngine() = default;

  // Insert or overwrite. No LWW filtering here — convergence policy stays
  // in the protocol layer; the engine is a dumb container.
  virtual void put(causal::VarId x, causal::Value v) = 0;

  // Borrow the stored value, or nullptr when absent. See the reference
  // stability contract above. Non-const: may touch scratch/clock state.
  virtual const causal::Value* find(causal::VarId x) = 0;

  virtual std::uint64_t size() const = 0;

  // Visit every key once, in unspecified order. The Value& argument is
  // only valid for the duration of the callback.
  virtual void for_each(
      const std::function<void(causal::VarId, const causal::Value&)>& fn) = 0;

  // Drop everything (checkpoint restore starts from an empty store).
  virtual void clear() = 0;

  // Housekeeping hook: compaction, index growth hygiene, cold-value
  // spill. Called by ProtocolBase at outermost protocol entries only, so
  // no find() borrow can be live. Must be cheap when there is nothing to
  // do.
  virtual void maintain() = 0;

  // The durability layer completed a WAL checkpoint for generation `gen`.
  // Engines use this to rotate/compact spill segments so on-disk state
  // tracks checkpoint generations; a no-op for purely resident engines.
  virtual void on_checkpoint(std::uint64_t gen) = 0;

  virtual EngineStats stats() const = 0;
  virtual EngineKind kind() const = 0;
};

std::unique_ptr<ValueEngine> make_engine(const EngineOptions& opts);

}  // namespace ccpr::store
