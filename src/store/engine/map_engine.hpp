#pragma once

#include <unordered_map>

#include "store/engine/value_engine.hpp"

namespace ccpr::store {

// The original ProtocolBase container, extracted verbatim: a plain
// unordered_map. Simple, reference-stable across rehash, and the oracle
// the differential tests hold CompactEngine against. Its stats() report
// an honest estimate of what that simplicity costs per key.
class MapEngine final : public ValueEngine {
 public:
  void put(causal::VarId x, causal::Value v) override {
    ++lookups_;  // keep probe stats comparable with CompactEngine's
    store_[x] = std::move(v);
  }

  const causal::Value* find(causal::VarId x) override {
    ++lookups_;
    const auto it = store_.find(x);
    return it == store_.end() ? nullptr : &it->second;
  }

  std::uint64_t size() const override { return store_.size(); }

  void for_each(const std::function<void(causal::VarId, const causal::Value&)>&
                    fn) override {
    for (const auto& [x, v] : store_) fn(x, v);
  }

  void clear() override { store_.clear(); }

  void maintain() override {}
  void on_checkpoint(std::uint64_t) override {}

  EngineStats stats() const override;
  EngineKind kind() const override { return EngineKind::kMap; }

 private:
  std::unordered_map<causal::VarId, causal::Value> store_;
  std::uint64_t lookups_ = 0;
};

}  // namespace ccpr::store
