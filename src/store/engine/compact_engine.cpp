#include "store/engine/compact_engine.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/assert.hpp"

namespace ccpr::store {

namespace fs = std::filesystem;

namespace {

// Arena records and block-tail sentinels share one byte space: a record
// starts with varint(var + 1), so its first byte is never 0x00.
constexpr std::uint8_t kPadSentinel = 0;

// Fixed spill record header: var, raw writer, seq, lamport, payload len.
constexpr std::uint64_t kSpillHeaderBytes = 4 + 4 + 8 + 8 + 4;

std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::size_t put_varint(std::uint8_t* p, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    p[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  p[n++] = static_cast<std::uint8_t>(v);
  return n;
}

const std::uint8_t* get_varint(const std::uint8_t* p, std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*p & 0x80) {
    v |= static_cast<std::uint64_t>(*p++ & 0x7f) << shift;
    shift += 7;
  }
  v |= static_cast<std::uint64_t>(*p++) << shift;
  *out = v;
  return p;
}

void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Heap bytes a std::string holds beyond the object itself. A default-
// constructed string's capacity is the implementation's SSO limit.
std::uint64_t string_heap_bytes(const std::string& s) {
  static const std::uint64_t sso_capacity = std::string().capacity();
  return s.capacity() > sso_capacity ? s.capacity() + 1 : 0;
}

std::uint64_t extern_value_bytes(const causal::Value& v) {
  return sizeof(causal::Value) + string_heap_bytes(v.data);
}

struct ParsedRecord {
  causal::VarId var;
  causal::Value value;      // filled only when `decode` is set
  std::uint64_t total = 0;  // header + payload bytes
};

// Parse the arena record at `p`. When decode is false only var/total are
// computed (the overwrite and compaction paths need sizes, not payloads).
void parse_record(const std::uint8_t* p, bool decode, ParsedRecord* out) {
  const std::uint8_t* start = p;
  std::uint64_t var1, writer1, seq, lamport, len;
  p = get_varint(p, &var1);
  p = get_varint(p, &writer1);
  p = get_varint(p, &seq);
  p = get_varint(p, &lamport);
  p = get_varint(p, &len);
  out->var = static_cast<causal::VarId>(var1 - 1);
  out->total = static_cast<std::uint64_t>(p - start) + len;
  if (decode) {
    out->value.id.writer = writer1 == 0
                               ? causal::kNoSite
                               : static_cast<causal::SiteId>(writer1 - 1);
    out->value.id.seq = seq;
    out->value.lamport = lamport;
    out->value.data.assign(reinterpret_cast<const char*>(p), len);
  }
}

}  // namespace

CompactEngine::CompactEngine(EngineOptions opts) : opts_(std::move(opts)) {
  shard_count_ = round_up_pow2(opts_.shards == 0 ? 1 : opts_.shards);
  shards_.resize(shard_count_);
  for (auto& sh : shards_) sh.slots.resize(kInitialSlots);
  // inline_max above one block would let a single record overflow a block;
  // clamp well below that.
  if (opts_.inline_max > kBlockBytes / 4) {
    opts_.inline_max = static_cast<std::uint32_t>(kBlockBytes / 4);
  }
  spill_enabled_ = opts_.spill_budget_bytes > 0 && !opts_.spill_dir.empty();
  if (spill_enabled_) {
    std::error_code ec;
    fs::create_directories(opts_.spill_dir, ec);
    // Spill segments never outlive their incarnation: recovery rebuilds
    // the full store from the WAL checkpoint + tail, so anything left on
    // disk is stale cache from a previous process.
    for (const auto& entry : fs::directory_iterator(opts_.spill_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("spill-", 0) == 0 &&
          name.size() > 4 && name.substr(name.size() - 4) == ".seg") {
        fs::remove(entry.path(), ec);
      }
    }
  }
}

CompactEngine::~CompactEngine() {
  close_spill_file();
  if (spill_enabled_ && !spill_path_.empty()) {
    std::error_code ec;
    fs::remove(spill_path_, ec);
  }
}

causal::Value& CompactEngine::next_scratch() {
  causal::Value& v = scratch_[scratch_next_];
  scratch_next_ = (scratch_next_ + 1) % kScratchSlots;
  return v;
}

CompactEngine::Shard& CompactEngine::shard_for(causal::VarId x,
                                               std::uint64_t* hash_out) {
  const std::uint64_t h = mix64(x);
  *hash_out = h;
  return shards_[(h >> 32) & (shard_count_ - 1)];
}

std::uint32_t CompactEngine::probe(Shard& sh, causal::VarId x,
                                   std::uint64_t h) {
  const std::uint32_t mask =
      static_cast<std::uint32_t>(sh.slots.size()) - 1;
  std::uint32_t i = static_cast<std::uint32_t>(h) & mask;
  std::uint64_t steps = 1;
  while (sh.slots[i].key != kEmptyKey && sh.slots[i].key != x) {
    i = (i + 1) & mask;
    ++steps;
  }
  probes_ += steps;
  return i;
}

void CompactEngine::grow(Shard& sh) {
  std::vector<Slot> old;
  old.swap(sh.slots);
  sh.slots.resize(old.size() * 2);
  const std::uint32_t mask =
      static_cast<std::uint32_t>(sh.slots.size()) - 1;
  for (const Slot& s : old) {
    if (s.key == kEmptyKey) continue;
    std::uint32_t i = static_cast<std::uint32_t>(mix64(s.key)) & mask;
    while (sh.slots[i].key != kEmptyKey) i = (i + 1) & mask;
    sh.slots[i] = s;
  }
}

std::uint64_t CompactEngine::arena_append(Shard& sh, causal::VarId x,
                                          const causal::Value& v) {
  std::uint8_t hdr[40];
  std::size_t n = put_varint(hdr, static_cast<std::uint64_t>(x) + 1);
  n += put_varint(hdr + n,
                  v.id.writer == causal::kNoSite
                      ? 0
                      : static_cast<std::uint64_t>(v.id.writer) + 1);
  n += put_varint(hdr + n, v.id.seq);
  n += put_varint(hdr + n, v.lamport);
  n += put_varint(hdr + n, v.data.size());
  const std::uint64_t need = n + v.data.size();
  CCPR_ASSERT(need <= kBlockBytes);
  std::uint64_t within = sh.arena_tail & (kBlockBytes - 1);
  if (sh.arena_tail >= sh.blocks.size() * kBlockBytes ||
      within + need > kBlockBytes) {
    if (!sh.blocks.empty() && within != 0) {
      // Unusable tail: sentinel the first byte so walkers skip the block
      // remainder, and account it dead so compaction can reclaim it.
      sh.blocks.back()[within] = kPadSentinel;
      sh.dead_bytes += kBlockBytes - within;
      sh.arena_tail += kBlockBytes - within;
    }
    sh.blocks.push_back(std::make_unique<std::uint8_t[]>(kBlockBytes));
    within = 0;
  }
  const std::uint64_t off = sh.arena_tail;
  std::uint8_t* dst = sh.blocks[off >> kBlockShift].get() + within;
  std::memcpy(dst, hdr, n);
  std::memcpy(dst + n, v.data.data(), v.data.size());
  sh.arena_tail += need;
  sh.live_bytes += need;
  return off;
}

const causal::Value* CompactEngine::decode_arena(const Shard& sh,
                                                 std::uint64_t off) {
  const std::uint8_t* p =
      sh.blocks[off >> kBlockShift].get() + (off & (kBlockBytes - 1));
  ParsedRecord rec;
  causal::Value& out = next_scratch();
  rec.value = std::move(out);  // reuse the scratch string's capacity
  parse_record(p, /*decode=*/true, &rec);
  out = std::move(rec.value);
  return &out;
}

void CompactEngine::release_location(Shard& sh, Slot& s) {
  switch (s.tag) {
    case kArena: {
      const std::uint8_t* p = sh.blocks[s.loc() >> kBlockShift].get() +
                              (s.loc() & (kBlockBytes - 1));
      ParsedRecord rec;
      parse_record(p, /*decode=*/false, &rec);
      sh.live_bytes -= rec.total;
      sh.dead_bytes += rec.total;
      return;
    }
    case kExtern: {
      const std::uint32_t idx = s.lo;
      sh.extern_bytes -= extern_value_bytes(*sh.extern_vals[idx]);
      // A borrow from a prior find() may still point here; defer the free
      // to maintain(), which runs only when no borrow can be live.
      retired_.push_back(std::move(sh.extern_vals[idx]));
      sh.extern_free.push_back(idx);
      return;
    }
    case kSpilled: {
      std::uint8_t hdr[kSpillHeaderBytes];
      if (::pread(spill_fd_, hdr, sizeof hdr,
                  static_cast<off_t>(s.loc())) ==
          static_cast<ssize_t>(sizeof hdr)) {
        const std::uint64_t total = kSpillHeaderBytes + get_u32(hdr + 24);
        spill_live_bytes_ -= total;
        spill_dead_bytes_ += total;
      }
      --spilled_keys_;
      return;
    }
  }
  CCPR_UNREACHABLE("bad slot tag");
}

void CompactEngine::place_resident(Shard& sh, Slot& s, causal::Value v) {
  if (v.data.size() <= opts_.inline_max) {
    s.tag = kArena;
    s.set_loc(arena_append(sh, s.key, v));
    return;
  }
  std::uint32_t idx;
  if (!sh.extern_free.empty()) {
    idx = sh.extern_free.back();
    sh.extern_free.pop_back();
    sh.extern_vals[idx] =
        std::make_unique<causal::Value>(std::move(v));
  } else {
    idx = static_cast<std::uint32_t>(sh.extern_vals.size());
    sh.extern_vals.push_back(
        std::make_unique<causal::Value>(std::move(v)));
  }
  sh.extern_bytes += extern_value_bytes(*sh.extern_vals[idx]);
  s.tag = kExtern;
  s.set_loc(idx);
}

void CompactEngine::put(causal::VarId x, causal::Value v) {
  CCPR_EXPECTS(x != kEmptyKey);
  ++lookups_;  // a put probes the index exactly like a find
  std::uint64_t h;
  Shard& sh = shard_for(x, &h);
  if ((sh.used + 1) * 10 > sh.slots.size() * 7) grow(sh);
  const std::uint32_t i = probe(sh, x, h);
  Slot& s = sh.slots[i];
  if (s.key == kEmptyKey) {
    s.key = x;
    ++sh.used;
    ++keys_;
  } else {
    release_location(sh, s);
  }
  place_resident(sh, s, std::move(v));
  s.flags |= kReferenced;
}

const causal::Value* CompactEngine::find(causal::VarId x) {
  ++lookups_;
  std::uint64_t h;
  Shard& sh = shard_for(x, &h);
  const std::uint32_t i = probe(sh, x, h);
  Slot& s = sh.slots[i];
  if (s.key == kEmptyKey) return nullptr;
  s.flags |= kReferenced;
  switch (s.tag) {
    case kExtern:
      return sh.extern_vals[s.lo].get();
    case kArena:
      return decode_arena(sh, s.loc());
    case kSpilled: {
      // Promote on read: spilled keys proved warm again become resident;
      // the file bytes turn dead and compact away at the next rotation.
      causal::Value v;
      const bool ok = read_spill(s.loc(), x, &v);
      CCPR_ASSERT(ok && "spill segment corrupt or truncated");
      const std::uint64_t total = kSpillHeaderBytes + v.data.size();
      spill_live_bytes_ -= total;
      spill_dead_bytes_ += total;
      --spilled_keys_;
      place_resident(sh, s, std::move(v));
      return s.tag == kExtern ? sh.extern_vals[s.lo].get()
                              : decode_arena(sh, s.loc());
    }
  }
  CCPR_UNREACHABLE("bad slot tag");
}

void CompactEngine::for_each(
    const std::function<void(causal::VarId, const causal::Value&)>& fn) {
  causal::Value tmp;
  for (Shard& sh : shards_) {
    for (Slot& s : sh.slots) {
      if (s.key == kEmptyKey) continue;
      switch (s.tag) {
        case kExtern:
          fn(s.key, *sh.extern_vals[s.lo]);
          break;
        case kArena: {
          const std::uint8_t* p =
              sh.blocks[s.loc() >> kBlockShift].get() +
              (s.loc() & (kBlockBytes - 1));
          ParsedRecord rec;
          rec.value = std::move(tmp);
          parse_record(p, /*decode=*/true, &rec);
          tmp = std::move(rec.value);
          fn(s.key, tmp);
          break;
        }
        case kSpilled: {
          const bool ok = read_spill(s.loc(), s.key, &tmp);
          CCPR_ASSERT(ok && "spill segment corrupt or truncated");
          fn(s.key, tmp);
          break;
        }
        default:
          CCPR_UNREACHABLE("bad slot tag");
      }
    }
  }
}

void CompactEngine::clear() {
  for (Shard& sh : shards_) {
    sh.slots.assign(kInitialSlots, Slot{});
    sh.used = 0;
    sh.blocks.clear();
    sh.arena_tail = 0;
    sh.live_bytes = 0;
    sh.dead_bytes = 0;
    sh.extern_vals.clear();
    sh.extern_free.clear();
    sh.extern_bytes = 0;
  }
  keys_ = 0;
  retired_.clear();
  clock_shard_ = 0;
  clock_slot_ = 0;
  spilled_keys_ = 0;
  spill_live_bytes_ = 0;
  spill_dead_bytes_ = 0;
  if (spill_fd_ >= 0) {
    if (::ftruncate(spill_fd_, 0) != 0) {
      close_spill_file();
    }
    spill_tail_ = 0;
  }
}

std::uint64_t CompactEngine::resident_value_bytes() const {
  std::uint64_t total = 0;
  for (const Shard& sh : shards_) {
    total += sh.blocks.size() * kBlockBytes + sh.extern_bytes;
  }
  return total;
}

void CompactEngine::maintain() {
  retired_.clear();
  if (spill_enabled_ &&
      resident_value_bytes() > opts_.spill_budget_bytes) {
    clock_spill();
  }
  for (Shard& sh : shards_) {
    // Rewrite once garbage dominates; the floor keeps tiny shards from
    // compacting on every overwrite.
    if (sh.dead_bytes > kBlockBytes && sh.dead_bytes > sh.live_bytes) {
      compact_shard(sh);
    }
  }
  if (spill_dead_bytes_ > (1u << 20) &&
      spill_dead_bytes_ > spill_live_bytes_) {
    compact_spill();
  }
}

void CompactEngine::clock_spill() {
  // Two full revolutions bound the sweep: the first clears referenced
  // bits, the second is then guaranteed to find victims.
  std::uint64_t budget_slots = 0;
  for (const Shard& sh : shards_) budget_slots += sh.slots.size();
  budget_slots *= 2;
  while (budget_slots-- > 0 &&
         resident_value_bytes() > opts_.spill_budget_bytes) {
    Shard& sh = shards_[clock_shard_];
    if (clock_slot_ >= sh.slots.size()) {
      clock_slot_ = 0;
      clock_shard_ = (clock_shard_ + 1) % shard_count_;
      continue;
    }
    Slot& s = sh.slots[clock_slot_++];
    if (s.key == kEmptyKey || s.tag == kSpilled) continue;
    if (s.flags & kReferenced) {
      s.flags &= static_cast<std::uint8_t>(~kReferenced);
      continue;
    }
    spill_slot(sh, s);
  }
  // Spilling only marks arena bytes dead; compaction releases the blocks.
  for (Shard& sh : shards_) {
    if (sh.dead_bytes > 0 && sh.dead_bytes >= sh.live_bytes / 2) {
      compact_shard(sh);
    }
  }
}

bool CompactEngine::spill_slot(Shard& sh, Slot& s) {
  ensure_spill_file();
  if (spill_fd_ < 0) return false;
  causal::Value v;
  std::uint64_t extern_est = 0;
  if (s.tag == kArena) {
    const std::uint8_t* p = sh.blocks[s.loc() >> kBlockShift].get() +
                            (s.loc() & (kBlockBytes - 1));
    ParsedRecord rec;
    parse_record(p, /*decode=*/true, &rec);
    v = std::move(rec.value);
  } else {
    extern_est = extern_value_bytes(*sh.extern_vals[s.lo]);
    v = std::move(*sh.extern_vals[s.lo]);
  }
  std::string buf;
  buf.resize(kSpillHeaderBytes + v.data.size());
  auto* b = reinterpret_cast<std::uint8_t*>(buf.data());
  put_u32(b, s.key);
  put_u32(b + 4, v.id.writer);
  put_u64(b + 8, v.id.seq);
  put_u64(b + 16, v.lamport);
  put_u32(b + 24, static_cast<std::uint32_t>(v.data.size()));
  std::memcpy(b + kSpillHeaderBytes, v.data.data(), v.data.size());
  if (::pwrite(spill_fd_, buf.data(), buf.size(),
               static_cast<off_t>(spill_tail_)) !=
      static_cast<ssize_t>(buf.size())) {
    // Disk refused (full, IO error): keep the value resident rather than
    // lose it; the caller's budget simply won't be met.
    if (s.tag == kExtern) *sh.extern_vals[s.lo] = std::move(v);
    return false;
  }
  if (s.tag == kArena) {
    ParsedRecord rec;
    parse_record(sh.blocks[s.loc() >> kBlockShift].get() +
                     (s.loc() & (kBlockBytes - 1)),
                 /*decode=*/false, &rec);
    sh.live_bytes -= rec.total;
    sh.dead_bytes += rec.total;
  } else {
    // Runs only from maintain(), so no borrow can reference the extern
    // value — free it directly instead of parking it in retired_.
    sh.extern_bytes -= extern_est;
    sh.extern_vals[s.lo].reset();
    sh.extern_free.push_back(s.lo);
  }
  ++spilled_keys_;
  s.tag = kSpilled;
  s.set_loc(spill_tail_);
  spill_tail_ += buf.size();
  spill_live_bytes_ += buf.size();
  ++spill_writes_;
  return true;
}

bool CompactEngine::read_spill(std::uint64_t off, causal::VarId expect,
                               causal::Value* out) {
  std::uint8_t hdr[kSpillHeaderBytes];
  if (::pread(spill_fd_, hdr, sizeof hdr, static_cast<off_t>(off)) !=
      static_cast<ssize_t>(sizeof hdr)) {
    return false;
  }
  if (get_u32(hdr) != expect) return false;
  out->id.writer = get_u32(hdr + 4);
  out->id.seq = get_u64(hdr + 8);
  out->lamport = get_u64(hdr + 16);
  const std::uint32_t len = get_u32(hdr + 24);
  out->data.resize(len);
  if (len > 0 &&
      ::pread(spill_fd_, out->data.data(), len,
              static_cast<off_t>(off + kSpillHeaderBytes)) !=
          static_cast<ssize_t>(len)) {
    return false;
  }
  ++spill_reads_;
  return true;
}

void CompactEngine::compact_shard(Shard& sh) {
  std::vector<std::unique_ptr<std::uint8_t[]>> old_blocks;
  old_blocks.swap(sh.blocks);
  const std::uint64_t old_tail = sh.arena_tail;
  sh.arena_tail = 0;
  sh.live_bytes = 0;
  sh.dead_bytes = 0;
  const std::uint32_t mask =
      static_cast<std::uint32_t>(sh.slots.size()) - 1;
  std::uint64_t off = 0;
  ParsedRecord rec;
  while (off < old_tail) {
    const std::uint64_t within = off & (kBlockBytes - 1);
    const std::uint8_t* p =
        old_blocks[off >> kBlockShift].get() + within;
    if (*p == kPadSentinel) {
      off = (off & ~(kBlockBytes - 1)) + kBlockBytes;  // skip block tail
      continue;
    }
    parse_record(p, /*decode=*/true, &rec);
    // Live iff the index still points at this exact record.
    std::uint32_t i = static_cast<std::uint32_t>(mix64(rec.var)) & mask;
    while (sh.slots[i].key != kEmptyKey && sh.slots[i].key != rec.var) {
      i = (i + 1) & mask;
    }
    Slot& s = sh.slots[i];
    if (s.key == rec.var && s.tag == kArena && s.loc() == off) {
      s.set_loc(arena_append(sh, rec.var, rec.value));
    }
    off += rec.total;
  }
  ++compactions_;
}

void CompactEngine::compact_spill() {
  if (spill_fd_ < 0 || spilled_keys_ == 0) {
    // Nothing live on disk: drop the segment entirely.
    if (spill_fd_ >= 0) {
      close_spill_file();
      std::error_code ec;
      fs::remove(spill_path_, ec);
      spill_path_.clear();
    }
    spill_tail_ = 0;
    spill_live_bytes_ = 0;
    spill_dead_bytes_ = 0;
    return;
  }
  const int old_fd = spill_fd_;
  const std::string old_path = spill_path_;
  spill_fd_ = -1;
  spill_path_.clear();
  spill_tail_ = 0;
  spill_live_bytes_ = 0;
  spill_dead_bytes_ = 0;
  const std::uint64_t live_before = spilled_keys_;
  causal::Value v;
  for (Shard& sh : shards_) {
    for (Slot& s : sh.slots) {
      if (s.key == kEmptyKey || s.tag != kSpilled) continue;
      std::uint8_t hdr[kSpillHeaderBytes];
      bool ok = ::pread(old_fd, hdr, sizeof hdr,
                        static_cast<off_t>(s.loc())) ==
                static_cast<ssize_t>(sizeof hdr);
      std::uint32_t len = ok ? get_u32(hdr + 24) : 0;
      std::string payload;
      if (ok && len > 0) {
        payload.resize(len);
        ok = ::pread(old_fd, payload.data(), len,
                     static_cast<off_t>(s.loc() + kSpillHeaderBytes)) ==
             static_cast<ssize_t>(len);
      }
      CCPR_ASSERT(ok && "spill segment corrupt during compaction");
      ensure_spill_file();
      CCPR_ASSERT(spill_fd_ >= 0);
      std::string buf;
      buf.reserve(kSpillHeaderBytes + len);
      buf.append(reinterpret_cast<const char*>(hdr), kSpillHeaderBytes);
      buf.append(payload);
      const bool wrote =
          ::pwrite(spill_fd_, buf.data(), buf.size(),
                   static_cast<off_t>(spill_tail_)) ==
          static_cast<ssize_t>(buf.size());
      CCPR_ASSERT(wrote && "spill rewrite failed");
      s.set_loc(spill_tail_);
      spill_tail_ += buf.size();
      spill_live_bytes_ += buf.size();
    }
  }
  CCPR_ASSERT(spilled_keys_ == live_before);
  ::close(old_fd);
  std::error_code ec;
  fs::remove(old_path, ec);
  ++compactions_;
}

void CompactEngine::on_checkpoint(std::uint64_t gen) {
  last_checkpoint_gen_ = gen;
  if (!spill_enabled_) return;
  // Rotate the segment when it carries garbage, so on-disk state tracks
  // checkpoint generations: after this returns, at most one live segment
  // exists and it is stamped with the current generation.
  if (spill_dead_bytes_ > 0) compact_spill();
}

void CompactEngine::ensure_spill_file() {
  if (spill_fd_ >= 0 || !spill_enabled_) return;
  spill_path_ = opts_.spill_dir + "/spill-g" +
                std::to_string(last_checkpoint_gen_) + "-" +
                std::to_string(spill_file_seq_++) + ".seg";
  spill_fd_ = ::open(spill_path_.c_str(),
                     O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  spill_tail_ = 0;
}

void CompactEngine::close_spill_file() {
  if (spill_fd_ >= 0) {
    ::close(spill_fd_);
    spill_fd_ = -1;
  }
}

EngineStats CompactEngine::stats() const {
  EngineStats st;
  st.kind = EngineKind::kCompact;
  st.keys = keys_;
  st.lookups = lookups_;
  st.probes = probes_;
  st.spilled_keys = spilled_keys_;
  st.spill_segment_bytes = spill_tail_;
  st.spill_reads = spill_reads_;
  st.spill_writes = spill_writes_;
  st.compactions = compactions_;
  std::uint64_t resident = resident_value_bytes();
  for (const Shard& sh : shards_) {
    st.index_slots += sh.slots.size();
    resident += sh.slots.size() * sizeof(Slot);
    resident += sh.extern_vals.capacity() * sizeof(void*);
  }
  for (const causal::Value& v : scratch_) {
    resident += string_heap_bytes(v.data);
  }
  st.resident_bytes = resident;
  return st;
}

}  // namespace ccpr::store
