#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/engine/value_engine.hpp"

namespace ccpr::store {

// Memory-lean engine for the q=10^6 regime.
//
// Layout, per shard (shard chosen by hashing the VarId):
//
//   index   open-addressing linear-probe table of 12-byte slots
//           { key, 48-bit location, tag, flags }, power-of-two capacity,
//           grown at 70% load. No deletes, so no tombstones.
//   arena   append-only 64 KiB blocks of varint-encoded records
//           [var+1][writer+1][seq][lamport][len][payload] for values with
//           payload <= inline_max. Overwrites mark the old record dead;
//           maintain() rewrites a shard once dead bytes dominate. A 0x00
//           byte marks an unusable block tail (var+1 is never 0).
//   extern  larger payloads live as individually heap-allocated Values
//           with stable addresses, so find() returns them without copying.
//
// Cold-value spill (optional): when resident value bytes exceed
// `spill_budget_bytes`, maintain() runs a CLOCK hand over the slots —
// finds set a referenced bit, the hand clears it, and an unreferenced
// value is appended to a disk segment file, its slot retagged kSpilled
// with the file offset. A find() on a spilled key promotes it back to
// resident. Segment files are named after the WAL checkpoint generation
// current at creation (`spill-g<gen>-<n>.seg`); on_checkpoint() compacts
// out dead spill bytes into a fresh generation-stamped segment, and the
// constructor deletes stale segments from earlier incarnations — spill
// files are an incarnation-scoped overflow area, never a recovery source
// (checkpoints serialize spilled values back in through for_each()).
//
// Arena/spilled reads materialize into a ring of kScratchSlots reusable
// Values; see the reference-stability contract in value_engine.hpp.
class CompactEngine final : public ValueEngine {
 public:
  explicit CompactEngine(EngineOptions opts);
  ~CompactEngine() override;

  void put(causal::VarId x, causal::Value v) override;
  const causal::Value* find(causal::VarId x) override;
  std::uint64_t size() const override { return keys_; }
  void for_each(const std::function<void(causal::VarId, const causal::Value&)>&
                    fn) override;
  void clear() override;
  void maintain() override;
  void on_checkpoint(std::uint64_t gen) override;
  EngineStats stats() const override;
  EngineKind kind() const override { return EngineKind::kCompact; }

  static constexpr std::uint32_t kScratchSlots = 8;

 private:
  enum Tag : std::uint8_t { kArena = 1, kExtern = 2, kSpilled = 3 };
  enum Flag : std::uint8_t { kReferenced = 1 };
  static constexpr causal::VarId kEmptyKey = 0xffffffffu;
  static constexpr std::uint32_t kBlockShift = 16;  // 64 KiB arena blocks
  static constexpr std::uint64_t kBlockBytes = 1ull << kBlockShift;
  static constexpr std::uint32_t kInitialSlots = 64;

  struct Slot {
    causal::VarId key = kEmptyKey;
    std::uint32_t lo = 0;   // location bits [0,32)
    std::uint16_t hi = 0;   // location bits [32,48)
    std::uint8_t tag = 0;
    std::uint8_t flags = 0;

    std::uint64_t loc() const {
      return static_cast<std::uint64_t>(hi) << 32 | lo;
    }
    void set_loc(std::uint64_t v) {
      lo = static_cast<std::uint32_t>(v);
      hi = static_cast<std::uint16_t>(v >> 32);
    }
  };
  static_assert(sizeof(Slot) == 12, "slot packing regressed");

  struct Shard {
    std::vector<Slot> slots;
    std::uint64_t used = 0;
    std::vector<std::unique_ptr<std::uint8_t[]>> blocks;
    std::uint64_t arena_tail = 0;  // logical offset of the next free byte
    std::uint64_t live_bytes = 0;  // arena record bytes the index points at
    std::uint64_t dead_bytes = 0;  // superseded records + block-tail waste
    std::vector<std::unique_ptr<causal::Value>> extern_vals;
    std::vector<std::uint32_t> extern_free;
    std::uint64_t extern_bytes = 0;
  };

  Shard& shard_for(causal::VarId x, std::uint64_t* hash_out);
  std::uint32_t probe(Shard& sh, causal::VarId x, std::uint64_t h);
  void grow(Shard& sh);
  std::uint64_t arena_append(Shard& sh, causal::VarId x,
                             const causal::Value& v);
  const causal::Value* decode_arena(const Shard& sh, std::uint64_t off);
  void release_location(Shard& sh, Slot& s);
  void place_resident(Shard& sh, Slot& s, causal::Value v);
  void compact_shard(Shard& sh);
  std::uint64_t resident_value_bytes() const;
  void clock_spill();
  bool spill_slot(Shard& sh, Slot& s);
  void compact_spill();
  bool read_spill(std::uint64_t off, causal::VarId expect,
                  causal::Value* out);
  void ensure_spill_file();
  void close_spill_file();
  causal::Value& next_scratch();

  EngineOptions opts_;
  std::uint32_t shard_count_;  // power of two
  std::vector<Shard> shards_;
  std::uint64_t keys_ = 0;

  std::array<causal::Value, kScratchSlots> scratch_;
  std::uint32_t scratch_next_ = 0;
  // Out-of-line values displaced while a borrow may still reference them;
  // freed at the next maintain() (outermost entry, no live borrows).
  std::vector<std::unique_ptr<causal::Value>> retired_;

  // CLOCK hand position for the spill sweep.
  std::uint32_t clock_shard_ = 0;
  std::uint32_t clock_slot_ = 0;

  bool spill_enabled_ = false;
  int spill_fd_ = -1;
  std::string spill_path_;
  std::uint64_t spill_tail_ = 0;
  std::uint64_t spill_live_bytes_ = 0;
  std::uint64_t spill_dead_bytes_ = 0;
  std::uint64_t last_checkpoint_gen_ = 0;
  std::uint64_t spill_file_seq_ = 0;

  // Lifetime counters for stats().
  std::uint64_t lookups_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t spilled_keys_ = 0;
  std::uint64_t spill_reads_ = 0;
  std::uint64_t spill_writes_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace ccpr::store
