#include "store/engine/value_engine.hpp"

#include "store/engine/compact_engine.hpp"
#include "store/engine/map_engine.hpp"
#include "util/assert.hpp"

namespace ccpr::store {

const char* engine_kind_token(EngineKind k) {
  switch (k) {
    case EngineKind::kMap:
      return "map";
    case EngineKind::kCompact:
      return "compact";
  }
  CCPR_UNREACHABLE("bad engine kind");
}

bool parse_engine_kind(const std::string& text, EngineKind* out) {
  if (text == "map") {
    *out = EngineKind::kMap;
    return true;
  }
  if (text == "compact") {
    *out = EngineKind::kCompact;
    return true;
  }
  return false;
}

std::unique_ptr<ValueEngine> make_engine(const EngineOptions& opts) {
  switch (opts.kind) {
    case EngineKind::kMap:
      return std::make_unique<MapEngine>();
    case EngineKind::kCompact:
      return std::make_unique<CompactEngine>(opts);
  }
  CCPR_UNREACHABLE("bad engine kind");
}

EngineStats MapEngine::stats() const {
  EngineStats st;
  st.kind = EngineKind::kMap;
  st.keys = store_.size();
  st.index_slots = store_.bucket_count();
  st.lookups = lookups_;
  st.probes = lookups_;  // hashed direct hit, by construction
  // Estimate what the node-based map actually costs per key: the bucket
  // array, one heap node per entry (next pointer + pair + allocator
  // header), and the value string's heap block when it outgrew SSO.
  constexpr std::uint64_t kNodeBytes =
      sizeof(void*) + sizeof(std::pair<const causal::VarId, causal::Value>);
  constexpr std::uint64_t kMallocHeader = 16;
  std::uint64_t resident =
      store_.bucket_count() * sizeof(void*) +
      store_.size() * (kNodeBytes + kMallocHeader);
  // A default-constructed string's capacity is exactly the running
  // implementation's SSO limit (15 on libstdc++, 22 on libc++); anything
  // above it lives in its own heap block.
  const std::uint64_t sso_capacity = std::string().capacity();
  for (const auto& [x, v] : store_) {
    (void)x;
    if (v.data.capacity() > sso_capacity) {
      resident += v.data.capacity() + 1 + kMallocHeader;
    }
  }
  st.resident_bytes = resident;
  return st;
}

}  // namespace ccpr::store
