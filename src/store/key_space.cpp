#include "store/key_space.hpp"

#include "util/assert.hpp"

namespace ccpr::store {

KeySpace::KeySpace(std::vector<std::string> keys) : keys_(std::move(keys)) {
  CCPR_EXPECTS(!keys_.empty());
  index_.reserve(keys_.size());
  for (causal::VarId x = 0; x < keys_.size(); ++x) {
    const auto [it, inserted] = index_.emplace(keys_[x], x);
    CCPR_EXPECTS(inserted);  // duplicate key
  }
}

KeySpace KeySpace::numbered(std::uint32_t q) {
  CCPR_EXPECTS(q > 0);
  std::vector<std::string> keys;
  keys.reserve(q);
  for (std::uint32_t i = 0; i < q; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  return KeySpace(std::move(keys));
}

causal::VarId KeySpace::intern(std::string_view key) const {
  const auto it = index_.find(key);
  CCPR_EXPECTS(it != index_.end());
  return it->second;
}

bool KeySpace::contains(std::string_view key) const {
  return index_.contains(key);
}

const std::string& KeySpace::name(causal::VarId x) const {
  CCPR_EXPECTS(x < keys_.size());
  return keys_[x];
}

}  // namespace ccpr::store
