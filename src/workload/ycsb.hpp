// YCSB core-workload presets mapped onto WorkloadSpec.
//
// The standard mixes (Cooper et al., SoCC'10) give the evaluation familiar,
// citable operation blends:
//   A  update-heavy   50% read / 50% write, zipfian
//   B  read-mostly    95% read /  5% write, zipfian
//   C  read-only     100% read,             zipfian
//   D  read-latest    95% read /  5% write (we approximate the "latest"
//                     distribution with zipfian over the key space)
//   F  read-modify-write: realized as alternating read/write pairs on the
//                     same zipfian key.
#pragma once

#include "workload/workload.hpp"

namespace ccpr::workload {

enum class YcsbMix : std::uint8_t { kA, kB, kC, kD, kF };

const char* ycsb_name(YcsbMix mix) noexcept;

/// Fills rates/distribution of `base` from the preset; ops, seed, value
/// bytes and locality are taken from `base` unchanged.
WorkloadSpec ycsb_spec(YcsbMix mix, WorkloadSpec base = {});

/// Generates the program. YCSB-F needs paired read-modify-write ops and is
/// generated directly; the other mixes delegate to generate_program.
causal::Program generate_ycsb(YcsbMix mix, const WorkloadSpec& base,
                              const causal::ReplicaMap& rmap);

}  // namespace ccpr::workload
