#include "workload/workload.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace ccpr::workload {

using causal::Operation;
using causal::Program;
using causal::VarId;

Program generate_program(const WorkloadSpec& spec,
                         const causal::ReplicaMap& rmap) {
  CCPR_EXPECTS(spec.write_rate >= 0.0 && spec.write_rate <= 1.0);
  CCPR_EXPECTS(spec.locality >= 0.0 && spec.locality <= 1.0);
  const std::uint32_t n = rmap.sites();
  const std::uint32_t q = rmap.vars();

  Program program(n);
  util::ZipfSampler zipf(q, spec.dist == WorkloadSpec::KeyDist::kZipf
                                ? spec.zipf_theta
                                : 0.0);

  for (causal::SiteId s = 0; s < n; ++s) {
    util::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + s + 1);
    const std::vector<VarId> local = rmap.vars_at(s);
    auto& ops = program[s];
    ops.reserve(spec.ops_per_site);
    for (std::uint64_t i = 0; i < spec.ops_per_site; ++i) {
      Operation op;
      op.kind = rng.chance(spec.write_rate) ? Operation::Kind::kWrite
                                            : Operation::Kind::kRead;
      if (!local.empty() && rng.chance(spec.locality)) {
        op.var = local[rng.below(local.size())];
      } else if (spec.dist == WorkloadSpec::KeyDist::kZipf) {
        op.var = static_cast<VarId>(zipf.sample(rng));
      } else {
        op.var = static_cast<VarId>(rng.below(q));
      }
      op.value_bytes = spec.value_bytes;
      ops.push_back(op);
    }
  }
  return program;
}

double predicted_messages_partial(double n, double p, double writes,
                                  double reads) {
  return p * writes + 2.0 * reads * (n - p) / n;
}

double predicted_messages_full(double n, double writes) { return n * writes; }

double crossover_write_rate(double n) { return 2.0 / (2.0 + n); }

}  // namespace ccpr::workload
