#include "workload/social.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace ccpr::workload {

using causal::Operation;
using causal::SiteId;
using causal::VarId;

SocialWorkload make_social_workload(const SocialSpec& spec) {
  CCPR_EXPECTS(spec.regions >= 1);
  CCPR_EXPECTS(spec.sites_per_region >= 1);
  CCPR_EXPECTS(spec.users >= 1);
  const std::uint32_t n = spec.regions * spec.sites_per_region;
  const std::uint32_t p =
      std::min(spec.replicas_per_user, spec.sites_per_region);
  util::Rng rng(spec.seed);

  std::vector<std::uint32_t> region_of_site(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    region_of_site[s] = s / spec.sites_per_region;
  }

  // Home regions and wall placement: p consecutive sites inside the home
  // region, offset by the user id for balance.
  std::vector<std::uint32_t> home(spec.users);
  std::vector<std::vector<SiteId>> replicas(spec.users);
  for (std::uint32_t u = 0; u < spec.users; ++u) {
    home[u] = static_cast<std::uint32_t>(rng.below(spec.regions));
    const SiteId base = home[u] * spec.sites_per_region;
    for (std::uint32_t k = 0; k < p; ++k) {
      replicas[u].push_back(base + (u + k) % spec.sites_per_region);
    }
  }
  causal::ReplicaMap rmap = causal::ReplicaMap::custom(n, replicas);

  // Per-region popularity ranking so zipf rank r maps to a user of that
  // region (most regional traffic hits a few regional celebrities).
  std::vector<std::vector<VarId>> users_in_region(spec.regions);
  for (std::uint32_t u = 0; u < spec.users; ++u) {
    users_in_region[home[u]].push_back(u);
  }
  // A region could be empty if users are few; fall back to the global list.
  std::vector<VarId> all_users(spec.users);
  for (std::uint32_t u = 0; u < spec.users; ++u) all_users[u] = u;

  util::ZipfSampler global_zipf(spec.users, spec.zipf_theta);

  causal::Program program(n);
  for (SiteId s = 0; s < n; ++s) {
    util::Rng site_rng(spec.seed * 0x2545f4914f6cdd1dULL + s + 1);
    const std::uint32_t region = region_of_site[s];
    const auto& local_users = users_in_region[region].empty()
                                  ? all_users
                                  : users_in_region[region];
    util::ZipfSampler local_zipf(local_users.size(), spec.zipf_theta);
    auto& ops = program[s];
    ops.reserve(spec.ops_per_site);
    for (std::uint64_t i = 0; i < spec.ops_per_site; ++i) {
      Operation op;
      op.value_bytes = spec.value_bytes;
      if (site_rng.chance(spec.write_rate)) {
        // Post to the wall of a user homed here (clients write via their
        // nearest site).
        op.kind = Operation::Kind::kWrite;
        op.var = local_users[local_zipf.sample(site_rng)];
      } else {
        op.kind = Operation::Kind::kRead;
        op.var = site_rng.chance(spec.follow_local_prob)
                     ? local_users[local_zipf.sample(site_rng)]
                     : static_cast<VarId>(global_zipf.sample(site_rng));
      }
      ops.push_back(op);
    }
  }

  return SocialWorkload{std::move(rmap), std::move(program),
                        std::move(region_of_site), std::move(home)};
}

}  // namespace ccpr::workload
