// Synthetic workload generation.
//
// The paper's evaluation sweeps the write rate w_rate = w/(w+r) over a
// replicated key space; this generator produces per-process operation
// sequences for those sweeps, plus locality- and skew-controlled variants
// for the scenario experiments (E8) and the store examples.
#pragma once

#include <cstdint>

#include "causal/operation.hpp"
#include "causal/replica_map.hpp"

namespace ccpr::workload {

struct WorkloadSpec {
  std::uint64_t ops_per_site = 1000;
  /// Probability an operation is a write: the paper's w_rate.
  double write_rate = 0.3;
  enum class KeyDist : std::uint8_t { kUniform, kZipf };
  KeyDist dist = KeyDist::kUniform;
  /// YCSB-style skew for kZipf (0.99 = YCSB default).
  double zipf_theta = 0.99;
  /// Probability an operation targets a variable replicated at the issuing
  /// site (HDFS/MapReduce-style data locality, paper §V). 0 = ignore
  /// placement entirely.
  double locality = 0.0;
  std::uint32_t value_bytes = 64;
  std::uint64_t seed = 1;
};

/// One operation sequence per site. Deterministic in (spec.seed, rmap).
causal::Program generate_program(const WorkloadSpec& spec,
                                 const causal::ReplicaMap& rmap);

/// The exact message-count predictions of the paper (§V and Fig. 4):
/// partial replication sends p*w + 2*r*(n-p)/n messages, full replication
/// n*w. Used by benches to overlay analytic curves on measured counts.
double predicted_messages_partial(double n, double p, double writes,
                                  double reads);
double predicted_messages_full(double n, double writes);

/// The paper's crossover: partial replication wins when
/// w_rate > 2 / (2 + n).
double crossover_write_rate(double n);

}  // namespace ccpr::workload
