#include "workload/hdfs.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ccpr::workload {

using causal::Operation;
using causal::SiteId;
using causal::VarId;

HdfsWorkload make_hdfs_workload(const HdfsSpec& spec) {
  CCPR_EXPECTS(spec.sites >= 1);
  CCPR_EXPECTS(spec.blocks >= 1);
  CCPR_EXPECTS(spec.replication >= 1 && spec.replication <= spec.sites);
  const std::uint32_t n = spec.sites;
  util::Rng rng(spec.seed);

  // Input blocks: first replica on a random site, the rest round-robin
  // (the HDFS "random rack, then spread" policy flattened to one rack).
  std::vector<std::vector<SiteId>> replicas;
  replicas.reserve(spec.blocks + n);
  for (VarId b = 0; b < spec.blocks; ++b) {
    std::vector<SiteId> reps;
    const auto first = static_cast<SiteId>(rng.below(n));
    for (std::uint32_t k = 0; k < spec.replication; ++k) {
      reps.push_back((first + k) % n);
    }
    replicas.push_back(std::move(reps));
  }
  // Output blocks: one per site, first replica local.
  const auto output_base = static_cast<VarId>(spec.blocks);
  for (SiteId s = 0; s < n; ++s) {
    std::vector<SiteId> reps;
    for (std::uint32_t k = 0; k < spec.replication; ++k) {
      reps.push_back((s + k) % n);
    }
    replicas.push_back(std::move(reps));
  }
  causal::ReplicaMap rmap =
      causal::ReplicaMap::custom(n, std::move(replicas));

  // Pre-compute, per site, the locally replicated input blocks.
  std::vector<std::vector<VarId>> local_blocks(n);
  for (VarId b = 0; b < spec.blocks; ++b) {
    for (SiteId s = 0; s < n; ++s) {
      if (rmap.replicated_at(b, s)) local_blocks[s].push_back(b);
    }
  }

  causal::Program program(n);
  for (SiteId s = 0; s < n; ++s) {
    util::Rng site_rng(spec.seed * 0x9e3779b97f4a7c15ULL + s + 1);
    auto& ops = program[s];
    ops.reserve(static_cast<std::size_t>(spec.tasks_per_site) *
                (spec.reads_per_task + 1));
    for (std::uint32_t task = 0; task < spec.tasks_per_site; ++task) {
      for (std::uint32_t r = 0; r < spec.reads_per_task; ++r) {
        Operation op;
        op.kind = Operation::Kind::kRead;
        if (!local_blocks[s].empty() && site_rng.chance(spec.locality)) {
          op.var = local_blocks[s][site_rng.below(local_blocks[s].size())];
        } else {
          op.var = static_cast<VarId>(site_rng.below(spec.blocks));
        }
        ops.push_back(op);
      }
      // Emit the task's output to the site-local output block.
      Operation out;
      out.kind = Operation::Kind::kWrite;
      out.var = output_base + s;
      out.value_bytes = spec.block_bytes;
      ops.push_back(out);
    }
  }

  return HdfsWorkload{std::move(rmap), std::move(program), output_base};
}

}  // namespace ccpr::workload
