#include "workload/ycsb.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace ccpr::workload {

const char* ycsb_name(YcsbMix mix) noexcept {
  switch (mix) {
    case YcsbMix::kA:
      return "YCSB-A";
    case YcsbMix::kB:
      return "YCSB-B";
    case YcsbMix::kC:
      return "YCSB-C";
    case YcsbMix::kD:
      return "YCSB-D";
    case YcsbMix::kF:
      return "YCSB-F";
  }
  CCPR_UNREACHABLE("unknown YCSB mix");
}

WorkloadSpec ycsb_spec(YcsbMix mix, WorkloadSpec base) {
  base.dist = WorkloadSpec::KeyDist::kZipf;
  base.zipf_theta = 0.99;
  switch (mix) {
    case YcsbMix::kA:
      base.write_rate = 0.5;
      break;
    case YcsbMix::kB:
    case YcsbMix::kD:
      base.write_rate = 0.05;
      break;
    case YcsbMix::kC:
      base.write_rate = 0.0;
      break;
    case YcsbMix::kF:
      base.write_rate = 0.5;  // realized as read+write pairs
      break;
  }
  return base;
}

causal::Program generate_ycsb(YcsbMix mix, const WorkloadSpec& base,
                              const causal::ReplicaMap& rmap) {
  const WorkloadSpec spec = ycsb_spec(mix, base);
  if (mix != YcsbMix::kF) return generate_program(spec, rmap);

  // Read-modify-write: each logical op is r(x) immediately followed by
  // w(x); ops_per_site counts individual operations, so emit pairs.
  const std::uint32_t n = rmap.sites();
  causal::Program program(n);
  util::ZipfSampler zipf(rmap.vars(), spec.zipf_theta);
  for (causal::SiteId s = 0; s < n; ++s) {
    util::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + s + 1);
    auto& ops = program[s];
    ops.reserve(spec.ops_per_site);
    while (ops.size() + 2 <= spec.ops_per_site) {
      const auto x = static_cast<causal::VarId>(zipf.sample(rng));
      ops.push_back({causal::Operation::Kind::kRead, x, 0});
      ops.push_back({causal::Operation::Kind::kWrite, x, spec.value_bytes});
    }
  }
  return program;
}

}  // namespace ccpr::workload
