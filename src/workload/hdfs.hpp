// HDFS + MapReduce data-locality workload (paper §V):
// "The HDFS framework usually chooses a small constant number as the
//  replication factor even when the size of the cluster is large.
//  Furthermore, the MapReduce framework tries its best to satisfy data
//  locality, i.e., assigning tasks that read only from the local machine."
//
// Model: q blocks, each replicated at `replication` sites (HDFS default 3).
// Every site runs `tasks` map tasks; a task reads `reads_per_task` input
// blocks — a block replicated locally with probability `locality` (the
// scheduler hit rate) — and then writes one output block that is always
// locally replicated (HDFS writes the first replica on the writer).
#pragma once

#include <cstdint>

#include "causal/operation.hpp"
#include "causal/replica_map.hpp"

namespace ccpr::workload {

struct HdfsSpec {
  std::uint32_t sites = 8;
  std::uint32_t blocks = 64;          ///< input blocks (variables)
  std::uint32_t replication = 3;      ///< HDFS dfs.replication
  std::uint32_t tasks_per_site = 50;  ///< map tasks scheduled per site
  std::uint32_t reads_per_task = 4;   ///< input splits touched per task
  double locality = 0.9;              ///< scheduler data-locality hit rate
  std::uint32_t block_bytes = 512;    ///< modelled block payload
  std::uint64_t seed = 2718;
};

struct HdfsWorkload {
  causal::ReplicaMap rmap;  ///< input blocks + one output block per site
  causal::Program program;
  std::uint32_t output_base;  ///< VarId of site 0's output block
};

HdfsWorkload make_hdfs_workload(const HdfsSpec& spec);

}  // namespace ccpr::workload
