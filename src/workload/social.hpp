// Social-network workload (paper §I's motivating scenario).
//
// Users have a home region; their wall variable is replicated only at sites
// in that region ("user U's connections are located mostly in the Chicago
// region and the US West coast"). Clients at a site mostly read walls of
// users homed in their own region and occasionally follow remote users.
// This is the E8 experiment input and the social_network example's engine.
#pragma once

#include <cstdint>
#include <vector>

#include "causal/operation.hpp"
#include "causal/replica_map.hpp"

namespace ccpr::workload {

struct SocialSpec {
  std::uint32_t regions = 2;
  std::uint32_t sites_per_region = 3;
  std::uint32_t users = 120;
  /// Replicas per wall; clamped to the region size.
  std::uint32_t replicas_per_user = 2;
  std::uint64_t ops_per_site = 1000;
  double write_rate = 0.2;          ///< posting vs browsing mix
  double follow_local_prob = 0.9;   ///< reads stay in-region with this prob
  double zipf_theta = 0.8;          ///< user popularity skew
  std::uint32_t value_bytes = 256;  ///< post size
  std::uint64_t seed = 99;
};

struct SocialWorkload {
  causal::ReplicaMap rmap;          ///< wall placement (users == variables)
  causal::Program program;
  std::vector<std::uint32_t> region_of_site;
  std::vector<std::uint32_t> home_region_of_user;
};

SocialWorkload make_social_workload(const SocialSpec& spec);

}  // namespace ccpr::workload
