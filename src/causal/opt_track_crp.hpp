// Algorithm Opt-Track-CRP (paper Algorithm 4): the full-replication
// specialization of Opt-Track.
//
// Under full replication every write goes to every site, so destination
// lists are constant and need not be carried: a log record shrinks to the
// 2-tuple <sender, clock>. Two further structural savings (paper Fig. 3):
//   * the local log resets to {<self, clock>} after every write — all prior
//     records share the new write's destination set and are subsumed by
//     Condition 2;
//   * applying a write stores only that write's own 2-tuple as
//     LastWriteOn<x>.
// The log therefore holds at most d+1 entries, d = reads since the last
// local write, which is what beats OptP's O(n) per-message overhead.
#pragma once

#include <optional>
#include <unordered_map>

#include "causal/protocol_base.hpp"

namespace ccpr::causal {

class OptTrackCRP final : public ProtocolBase {
 public:
  /// Requires a fully replicated ReplicaMap (all reads are local).
  OptTrackCRP(SiteId self, const ReplicaMap& rmap, Services svc);

  void do_write(VarId x, std::string data) override;

  std::size_t pending_update_count() const override { return pending_.size(); }
  std::uint64_t log_entry_count() const override { return log_.size(); }
  std::uint64_t meta_state_bytes() const override;
  Algorithm algorithm() const override { return Algorithm::kOptTrackCRP; }

  /// Test hooks.
  struct Entry {
    SiteId sender;
    std::uint64_t clock;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  const std::vector<Entry>& log() const noexcept { return log_; }
  std::uint64_t applied_clock(SiteId j) const { return apply_[j]; }

 protected:
  void on_update(const net::Message& msg) override;
  void merge_on_local_read(VarId x) override;
  void encode_fetch_resp_meta(net::Encoder& enc, VarId x) override;
  void merge_fetch_resp_meta(VarId x, SiteId responder,
                             net::Decoder& dec) override;
  void encode_fetch_req_meta(net::Encoder& enc, VarId x,
                             SiteId target) override;
  bool fetch_ready(VarId x, net::Decoder& meta) override;
  void serialize_meta(net::Encoder& enc) const override;
  bool restore_meta(net::Decoder& dec) override;
  void seal_local_meta() override;

 private:
  struct Update {
    VarId x;
    Value v;
    SiteId sender;
    std::uint64_t clock;
    std::vector<Entry> log;
    sim::SimTime receipt;
  };

  bool ready(const Update& u) const;
  void apply(Update&& u);
  void merge_entry(Entry e);
  void sample_space();

  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> apply_;
  std::vector<Entry> log_;
  std::unordered_map<VarId, Entry> last_write_on_;
  PendingBuffer<Update> pending_;
};

}  // namespace ccpr::causal
