// Shared machinery for all protocol implementations:
//   * the local variable store,
//   * the RemoteFetch request/response state machine (with optional
//     freshness gating, see DESIGN.md §6),
//   * value wire encoding,
//   * apply/read bookkeeping against the metrics and the history recorder,
//   * a pending buffer that realizes the paper's "wait until <activation
//     predicate>" without blocking threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/engine/value_engine.hpp"

#include "causal/protocol.hpp"
#include "causal/value_codec.hpp"
#include "causal/replica_map.hpp"
#include "metrics/metrics.hpp"
#include "net/wire.hpp"
#include "util/assert.hpp"

namespace ccpr::causal {

/// Enforces the Services single-writer contract (see protocol.hpp): at most
/// one thread may be inside the protocol at a time. Same-thread re-entry is
/// legal (a read continuation issuing further operations); a second thread
/// entering while another is inside aborts. Sequential handoff between
/// threads (e.g. mutex-serialized callers) is fine — the guard only rejects
/// genuine overlap.
class SingleCallerGuard {
 public:
  class Scope {
   public:
    explicit Scope(SingleCallerGuard& g) : g_(g) {
      const std::thread::id me = std::this_thread::get_id();
      if (g_.owner_.load(std::memory_order_relaxed) == me) {
        ++g_.depth_;
        return;
      }
      std::thread::id none{};
      CCPR_ASSERT(g_.owner_.compare_exchange_strong(
          none, me, std::memory_order_acquire) &&
          "concurrent IProtocol access violates the single-writer contract");
      g_.depth_ = 1;
    }
    /// True when this scope is the outermost protocol entry on the owning
    /// thread — the only point where no engine borrow can be live, hence
    /// where store maintenance (compaction/spill) is legal.
    bool outermost() const noexcept { return g_.depth_ == 1; }
    ~Scope() {
      if (--g_.depth_ == 0) {
        g_.owner_.store(std::thread::id{}, std::memory_order_release);
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SingleCallerGuard& g_;
  };

 private:
  std::atomic<std::thread::id> owner_{};
  int depth_ = 0;  ///< touched only by the owning thread
};

/// Holds updates whose activation predicate is not yet true and re-scans
/// them after every apply until a fixpoint is reached.
template <class Update>
class PendingBuffer {
 public:
  /// Either applies `u` now (and then drains whatever it unblocked) or
  /// buffers it. `ready(u)` must be side-effect free; `apply(u)` performs
  /// the apply and may change state that makes other updates ready.
  template <class Ready, class Apply>
  void submit(Update u, Ready&& ready, Apply&& apply) {
    if (ready(u)) {
      apply(std::move(u));
      drain(ready, apply);
    } else {
      pending_.push_back(std::move(u));
    }
  }

  template <class Ready, class Apply>
  void drain(Ready&& ready, Apply&& apply) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (ready(*it)) {
          Update u = std::move(*it);
          pending_.erase(it);
          apply(std::move(u));
          progress = true;
          break;
        }
      }
    }
  }

  std::size_t size() const noexcept { return pending_.size(); }

  /// Checkpoint support: expose / reinstate the buffered updates verbatim
  /// (still-pending updates are part of a protocol's durable state).
  const std::vector<Update>& items() const noexcept { return pending_; }
  void restore(std::vector<Update> items) { pending_ = std::move(items); }

 private:
  std::vector<Update> pending_;
};

class ProtocolBase : public IProtocol {
 public:
  // Every entry point takes a SingleCallerGuard scope so a runtime that
  // breaks the contract in protocol.hpp dies loudly instead of corrupting
  // causal state.
  void write(VarId x, std::string data) final {
    SingleCallerGuard::Scope scope(guard_);
    do_write(x, std::move(data));
    if (scope.outermost()) store_->maintain();
  }
  void read(VarId x, ReadContinuation k) final;
  void on_message(const net::Message& msg) final;
  const Value& peek(VarId x) const final { return stored(x); }
  WriteId last_write_id() const final { return {self_, write_seq_}; }
  std::vector<std::uint8_t> coverage_token(SiteId target) final;
  bool covered_by(const std::vector<std::uint8_t>& token) final;

  // ---- durability (see protocol.hpp) ----
  // The base serializes what it owns (store, write/Lamport counters) and
  // delegates algorithm metadata to the serialize_meta/restore_meta hooks;
  // final here so algorithms extend via the hooks, not by re-wrapping.
  void serialize_state(net::Encoder& enc) const final;
  bool restore_state(net::Decoder& dec) final;
  void replay_meta_merge(VarId x, SiteId responder, const std::uint8_t* data,
                         std::size_t len) final;
  void merge_all_local_meta() final;

  /// Causal+ mode (paper §V): apply writes through a deterministic
  /// last-writer-wins register so replicas converge once updates cease.
  /// Causal consistency is unaffected — an apply that loses LWW is exactly
  /// a write already causally- or concurrently-overwritten locally.
  void set_convergent(bool on) noexcept { convergent_ = on; }
  bool convergent() const noexcept { return convergent_; }

  /// §V availability: if a RemoteFetch gets no response within `us`
  /// (virtual time), retry against the next-preferred replica. 0 disables;
  /// requires Services::schedule (otherwise silently disabled).
  void set_fetch_timeout(sim::SimTime us) noexcept { fetch_timeout_us_ = us; }

  /// Carve this writer's WriteId seq space for a sharded site: shard k of N
  /// passes (k, N) so each shard issues a disjoint arithmetic progression
  /// and (writer, seq) stays unique site-wide. Protocol clocks that mirror
  /// seqs (Opt-Track, Opt-Track-CRP) tolerate the gaps because every
  /// activation predicate is a threshold test, never a successor test.
  /// Must run before the first local write.
  void set_write_id_space(std::uint64_t offset, std::uint64_t stride) {
    CCPR_EXPECTS(stride >= 1 && offset < stride);
    CCPR_EXPECTS(write_seq_ == 0);
    seq_offset_ = offset;
    seq_stride_ = stride;
  }

  /// Swap the value engine (factory/runtime wiring). Must run before any
  /// value lands in the store — engines do not migrate state.
  void configure_store_engine(const store::EngineOptions& opts);

  store::EngineStats store_stats() const final { return store_->stats(); }
  void on_durable_checkpoint(std::uint64_t gen) final {
    SingleCallerGuard::Scope scope(guard_);
    store_->on_checkpoint(gen);
  }

 protected:
  ProtocolBase(SiteId self, const ReplicaMap& rmap, Services svc,
               bool fetch_gating);

  // ---- hooks implemented by each algorithm ----

  /// Perform w_i(x)v; invoked by write() with the caller guard held.
  virtual void do_write(VarId x, std::string data) = 0;
  /// Handle an incoming kUpdate message.
  virtual void on_update(const net::Message& msg) = 0;
  /// Merge LastWriteOn<x> into the local causal state (x is locally
  /// replicated; called before returning a local read).
  virtual void merge_on_local_read(VarId x) = 0;
  /// Extra metadata on fetch requests (freshness gating); default: none.
  virtual void encode_fetch_req_meta(net::Encoder& enc, VarId x,
                                     SiteId target);
  /// Whether this site may answer a fetch for x given the request metadata;
  /// default: always. Re-evaluated after every apply.
  virtual bool fetch_ready(VarId x, net::Decoder& meta);
  /// LastWriteOn<x> metadata piggybacked on fetch responses.
  virtual void encode_fetch_resp_meta(net::Encoder& enc, VarId x) = 0;
  /// Merge fetch-response metadata at the reader; `responder` is the
  /// replica that served the fetch.
  virtual void merge_fetch_resp_meta(VarId x, SiteId responder,
                                     net::Decoder& dec) = 0;
  /// Whether the local store has applied every write destined to this site
  /// that is in the site's causal past. Always true for full-replication
  /// protocols; partial-replication protocols override it so that a remote
  /// read completes only once the local replicas have caught up with the
  /// causal knowledge the fetch brought in (DESIGN.md §6 — without this,
  /// the next *local* read can be causally stale, a gap in the paper's
  /// pseudo-code that the checker exposed).
  virtual bool locally_covered() const { return true; }

  /// Serialize the algorithm's causal metadata (clocks, logs, LastWriteOn
  /// records, pending updates) for a WAL checkpoint. Default: none.
  virtual void serialize_meta(net::Encoder& enc) const;
  /// Restore metadata written by serialize_meta. Returns false on a
  /// malformed buffer. Default: nothing to restore.
  virtual bool restore_meta(net::Decoder& dec);
  /// Fold every LastWriteOn record into the main clock/log (conservative
  /// over-approximation; see IProtocol::merge_all_local_meta). Default:
  /// no-op — correct for protocols whose merge_on_local_read is a no-op.
  virtual void seal_local_meta();

  // ---- utilities ----

  /// Current locally stored value (initial Value{} if never written).
  const Value& stored(VarId x) const;
  void store_value(VarId x, Value v);

  /// Bookkeeping for one apply event: writes the store, notifies recorder
  /// and metrics, and re-checks gated fetches that may now be answerable.
  void apply_value(VarId x, Value v, sim::SimTime receipt);

  /// Bookkeeping for a local write that is also locally applied.
  void apply_own_write(VarId x, Value v);

  /// Allocate this site's next WriteId. Seqs run offset+1, offset+1+stride,
  /// ... (the dense 1, 2, 3, ... by default); see set_write_id_space.
  WriteId next_write_id() {
    write_seq_ = write_seq_ == 0 ? seq_offset_ + 1 : write_seq_ + seq_stride_;
    return {self_, write_seq_};
  }
  std::uint64_t write_seq() const noexcept { return write_seq_; }

  /// Build the value for a local write, stamping the Lamport clock (ticked
  /// on every write, merged from every value observed).
  Value make_value(WriteId id, std::string data) {
    return Value{id, ++lamport_, std::move(data)};
  }
  void observe_lamport(std::uint64_t l) noexcept {
    if (l > lamport_) lamport_ = l;
  }
  std::uint64_t lamport_clock() const noexcept { return lamport_; }

  net::Message make_message(net::MsgKind kind, SiteId dst, net::Encoder&& enc,
                            std::uint32_t payload_bytes) const;

  void note_write_issued(VarId x, WriteId id);

  SiteId self_;
  const ReplicaMap& rmap_;
  Services svc_;
  bool fetch_gating_;
  SingleCallerGuard guard_;  ///< asserts the single-writer contract

 private:
  /// One logical remote read; multiple outstanding fetch requests (the
  /// original plus failover retries) may point at the same state, and the
  /// first response wins — later ones find `done` and are discarded.
  struct PendingRead {
    VarId var;
    ReadContinuation k;
    sim::SimTime issued;
    std::uint32_t attempt = 0;  // 0 = pre-designated target, 1+ = failover
    bool done = false;
    std::vector<std::uint64_t> req_ids;  // aliases to clean up on completion
  };
  struct PendingFetch {
    SiteId requester;
    VarId var;
    std::uint64_t req_id;
    std::vector<std::uint8_t> meta;
  };

  struct DeferredRead {
    VarId var;
    Value value;
    ReadContinuation k;
    sim::SimTime issued;
  };

  void read_impl(VarId x, ReadContinuation k);
  void start_fetch(const std::shared_ptr<PendingRead>& pr);
  void on_fetch_timeout(std::uint64_t req_id);
  void handle_fetch_req(const net::Message& msg);
  void handle_fetch_resp(const net::Message& msg);
  void serve_fetch(SiteId requester, VarId x, std::uint64_t req_id);
  void service_pending_fetches();
  void complete_read(VarId x, const Value& v, sim::SimTime issued);
  void service_deferred_reads();

  // The local variable store, behind the pluggable engine interface.
  // unique_ptr constness does not propagate, so const accessors (peek,
  // serialize_state) may still call the engine's logically-const but
  // physically mutating reads — safe under the single-writer contract.
  std::unique_ptr<store::ValueEngine> store_;
  std::uint64_t write_seq_ = 0;
  std::uint64_t seq_offset_ = 0;  ///< see set_write_id_space
  std::uint64_t seq_stride_ = 1;
  std::uint64_t lamport_ = 0;
  bool convergent_ = false;
  sim::SimTime fetch_timeout_us_ = 0;
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingRead>>
      pending_reads_;
  std::vector<PendingFetch> pending_fetches_;
  std::vector<DeferredRead> deferred_reads_;
  std::uint64_t next_req_ = 1;
};

}  // namespace ccpr::causal
