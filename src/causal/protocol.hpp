// The protocol interface every causal-memory algorithm implements.
//
// A protocol instance is the per-site state machine of one algorithm. It is
// runtime-agnostic: all side effects go through the Services struct, so the
// same object runs on the deterministic simulator and on the threaded
// runtime. Blocking constructs from the paper are expressed event-style:
//   * the "wait until <activation predicate>" of an update becomes a pending
//     buffer that is re-scanned after every apply;
//   * the synchronous RemoteFetch becomes a continuation resumed when the
//     fetch response message arrives.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "causal/types.hpp"
#include "net/message.hpp"
#include "net/wire.hpp"
#include "sim/scheduler.hpp"
#include "store/engine/value_engine.hpp"

namespace ccpr::metrics {
struct Metrics;
}
namespace ccpr::checker {
class HistoryRecorder;
}

namespace ccpr::causal {

/// Everything a protocol may do to the outside world.
///
/// Re-entrancy contract (single-writer): a protocol instance is NOT
/// thread-safe. All IProtocol entry points (write/read/on_message/
/// coverage_token/covered_by) must be invoked from one logical execution
/// context at a time — concurrent calls are a bug, asserted by ProtocolBase.
/// Each runtime discharges the contract its own way: the simulator runs
/// everything on one thread, the threaded cluster serializes under its
/// cluster mutex, and the TCP runtime funnels every command through the
/// single-writer server::ProtocolEngine apply thread. The callbacks below
/// inherit obligations from this:
///   * `send` is invoked synchronously from inside protocol calls; it must
///     not call back into the same protocol instance (it may enqueue).
///   * `schedule` callbacks fire on runtime-owned timer machinery; the
///     runtime must marshal them back into the protocol's execution context
///     (scheduler event, cluster mutex, engine command) before they touch
///     the protocol — they count as protocol entry points when they run.
struct Services {
  /// Asynchronous message send; the protocol fills msg.src/dst.
  std::function<void(net::Message)> send;
  /// Current time in microseconds (virtual on the simulator, monotonic wall
  /// time on the threaded runtime); used for latency accounting only.
  std::function<sim::SimTime()> now;
  /// Optional timer: run `fn` after `delay` microseconds. Enables the §V
  /// availability feature (RemoteFetch timeout + secondary replica). Null
  /// on runtimes without timers; the feature degrades to no-timeout.
  std::function<void(sim::SimTime delay, std::function<void()> fn)> schedule;
  /// Per-site metrics sink (required).
  metrics::Metrics* metrics = nullptr;
  /// Optional history recorder for the offline causal checker.
  checker::HistoryRecorder* recorder = nullptr;
  /// Optional durability hook: invoked synchronously just before a
  /// fetch-response metadata merge with the raw metadata bytes, so a
  /// write-ahead log can record the merge for replay (fetch merges are the
  /// one causal-state mutation not reconstructible from logged writes and
  /// updates). Same obligations as `send`: must not re-enter the protocol.
  std::function<void(VarId x, SiteId responder, const std::uint8_t* data,
                     std::size_t len)>
      persist_meta_merge;
  /// Optional failure-detector view: returns true while the runtime
  /// suspects `site` unreachable. Fetch routing ranks suspected replicas
  /// behind healthy ones (ReplicaMap::fetch_target_ranked overload). Null =
  /// no failure detector, every site presumed healthy. Called on the
  /// protocol thread; must be cheap and non-blocking (e.g. an atomic load).
  std::function<bool(SiteId)> peer_suspected;
};

using ReadContinuation = std::function<void(const Value&)>;

class IProtocol {
 public:
  virtual ~IProtocol() = default;

  /// Perform w_i(x)v. Completes synchronously (propagation is async).
  virtual void write(VarId x, std::string data) = 0;

  /// Perform r_i(x). `k` is invoked with the value — synchronously if the
  /// variable is locally replicated, otherwise when the RemoteFetch response
  /// arrives. `k` may issue further operations.
  virtual void read(VarId x, ReadContinuation k) = 0;

  /// Deliver a transport message addressed to this site.
  virtual void on_message(const net::Message& msg) = 0;

  /// Identity of the most recent local write (seq 0 if none yet). Lets a
  /// serving layer report the WriteId of the write() it just performed —
  /// e.g. the site server returns it to the client so client-side history
  /// recording can feed the offline checker.
  virtual WriteId last_write_id() const = 0;

  /// Inspect the locally stored value of x without generating a read event
  /// (used by the convergence auditor and tests; not part of the paper's
  /// operation model).
  virtual const Value& peek(VarId x) const = 0;

  // ---- session migration (client handoff between sites) ----
  //
  // A client that moves from site A to site B carries A's causal context;
  // B must catch up before serving it or the client loses its session
  // guarantees (the offline checker cannot flag this: the client's
  // operations are recorded under two different application processes).
  // The token is exactly the freshness requirement the RemoteFetch gating
  // already computes: "everything in A's causal past destined to B".

  /// Serialize this site's coverage requirement for `target`.
  virtual std::vector<std::uint8_t> coverage_token(SiteId target) = 0;
  /// Whether this site has applied everything a token requires.
  virtual bool covered_by(const std::vector<std::uint8_t>& token) = 0;

  // ---- durability (WAL checkpoints + crash recovery; TCP runtime) ----
  //
  // The four hooks below exist so a runtime with a write-ahead log can
  // checkpoint a protocol's complete state and rebuild it after a crash.
  // Defaults are no-ops so runtimes (and protocols) without persistence
  // are unaffected.

  /// Serialize the complete protocol state — store, causal metadata,
  /// pending (not yet activated) updates — into `enc`.
  virtual void serialize_state(net::Encoder& enc) const { (void)enc; }
  /// Restore state produced by serialize_state on a freshly constructed
  /// instance. Returns false on a malformed buffer; the instance is then
  /// unusable and must be discarded.
  virtual bool restore_state(net::Decoder& dec) {
    (void)dec;
    return true;
  }
  /// Replay a fetch-response metadata merge previously recorded via
  /// Services::persist_meta_merge (same bytes, same responder).
  virtual void replay_meta_merge(VarId x, SiteId responder,
                                 const std::uint8_t* data, std::size_t len) {
    (void)x;
    (void)responder;
    (void)data;
    (void)len;
  }
  /// Conservatively fold every per-variable LastWriteOn record into the
  /// site's main causal clock/log. Recovery calls this before replaying a
  /// logged local write: the original write's metadata may have absorbed
  /// read-path merges that were never logged, and sealing first makes the
  /// regenerated metadata a superset — which can only delay activation at
  /// peers, never violate causality.
  virtual void merge_all_local_meta() {}

  /// The durability layer finished a WAL checkpoint for generation `gen`.
  /// Lets the value engine rotate disk-backed state (cold-value spill
  /// segments) in step with checkpoint generations. Counts as a protocol
  /// entry point (single-writer contract applies). Default: no-op.
  virtual void on_durable_checkpoint(std::uint64_t gen) { (void)gen; }

  /// Value-engine statistics for this site's local store (keys, resident
  /// bytes, probe lengths, spill traffic). Zeroed stats by default so
  /// non-ProtocolBase implementations need not care.
  virtual store::EngineStats store_stats() const { return {}; }

  /// Updates received but whose activation predicate is still false.
  virtual std::size_t pending_update_count() const = 0;

  /// Entries currently held in the local causal log (algorithm-specific
  /// unit; see DESIGN.md "space" notes).
  virtual std::uint64_t log_entry_count() const = 0;

  /// Serialized footprint in bytes of all causal metadata at this site
  /// (clocks, logs, per-variable LastWriteOn records) — the paper's space
  /// metric, excluding the replicated values themselves.
  virtual std::uint64_t meta_state_bytes() const = 0;

  virtual Algorithm algorithm() const = 0;
};

}  // namespace ccpr::causal
