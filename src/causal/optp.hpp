// Algorithm OptP — the Baldoni, Milani, Piergiovanni complete-replication
// protocol with the optimal activation predicate, reconstructed as the
// vector specialization of Full-Track (DESIGN.md §6: under full replication
// every write reaches every site, so the Write matrix's columns are
// identical and collapse into an n-entry vector).
//
// This is the paper's head-to-head baseline for Opt-Track-CRP (Table I):
// O(n) control bytes per message, O(n) write/read time, O(nq) space.
#pragma once

#include <unordered_map>
#include <vector>

#include "causal/protocol_base.hpp"

namespace ccpr::causal {

class OptP final : public ProtocolBase {
 public:
  /// Requires a fully replicated ReplicaMap.
  OptP(SiteId self, const ReplicaMap& rmap, Services svc);

  void do_write(VarId x, std::string data) override;

  std::size_t pending_update_count() const override { return pending_.size(); }
  std::uint64_t log_entry_count() const override {
    return write_.size() +
           static_cast<std::uint64_t>(last_write_on_.size()) * n_;
  }
  std::uint64_t meta_state_bytes() const override;
  Algorithm algorithm() const override { return Algorithm::kOptP; }

  /// Test hooks.
  const std::vector<std::uint64_t>& write_clock() const noexcept {
    return write_;
  }
  std::uint64_t applied_from(SiteId j) const { return apply_[j]; }

 protected:
  void on_update(const net::Message& msg) override;
  void merge_on_local_read(VarId x) override;
  void encode_fetch_resp_meta(net::Encoder& enc, VarId x) override;
  void merge_fetch_resp_meta(VarId x, SiteId responder,
                             net::Decoder& dec) override;
  void encode_fetch_req_meta(net::Encoder& enc, VarId x,
                             SiteId target) override;
  bool fetch_ready(VarId x, net::Decoder& meta) override;
  void serialize_meta(net::Encoder& enc) const override;
  bool restore_meta(net::Decoder& dec) override;
  void seal_local_meta() override;

 private:
  struct Update {
    VarId x;
    Value v;
    SiteId sender;
    std::vector<std::uint64_t> w;
    sim::SimTime receipt;
  };

  bool ready(const Update& u) const;
  void apply(Update&& u);
  void sample_space();

  std::uint32_t n_;
  /// write_[k] = number of writes by ap_k in the causal past under ->co.
  std::vector<std::uint64_t> write_;
  std::vector<std::uint64_t> apply_;
  std::unordered_map<VarId, std::vector<std::uint64_t>> last_write_on_;
  PendingBuffer<Update> pending_;
};

}  // namespace ccpr::causal
