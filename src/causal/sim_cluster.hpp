// SimCluster: a complete simulated deployment — n sites running one causal
// algorithm over the discrete-event transport — plus drivers for scripted
// scenarios (the paper's figures) and generated workloads (the paper's
// evaluation sweeps).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "causal/factory.hpp"
#include "causal/operation.hpp"
#include "causal/replica_map.hpp"
#include "checker/recorder.hpp"
#include "metrics/metrics.hpp"
#include "net/faulty_transport.hpp"
#include "net/reliable_channel.hpp"
#include "net/sim_transport.hpp"
#include "sim/latency.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ccpr::causal {

class SimCluster {
 public:
  struct Options {
    ProtocolOptions protocol{};
    /// One-way delay model; defaults to Uniform(10ms, 50ms) wide-area.
    std::unique_ptr<sim::LatencyModel> latency;
    std::uint64_t latency_seed = 42;
    bool record_history = true;
    /// Mean exponential think time between a process's operations.
    sim::SimTime mean_think_us = 5'000;
    std::uint64_t think_seed = 7;
    /// Optional fault injection: when any rate is non-zero the cluster
    /// stacks FaultyTransport + ReliableChannelTransport between the
    /// protocols and the simulated network, so the causal algorithms still
    /// see the reliable FIFO channels the paper assumes. The fault classes
    /// mirror the TCP runtime's net::ChaosRule (drop / delay / reorder),
    /// with delays served by the virtual-time scheduler.
    double drop_rate = 0.0;
    double duplicate_rate = 0.0;
    double delay_rate = 0.0;
    std::uint64_t delay_min_us = 1'000;
    std::uint64_t delay_max_us = 20'000;
    double reorder_rate = 0.0;
    std::uint64_t fault_seed = 0xfa17;
  };

  SimCluster(Algorithm alg, ReplicaMap rmap);
  SimCluster(Algorithm alg, ReplicaMap rmap, Options opts);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  // ---- scripted drive (scenario tests) ----

  /// Issue a write at site s now (propagation stays queued until run()).
  void write(SiteId s, VarId x, std::string data);
  /// Issue a read at site s; the continuation fires when the value returns.
  void read_async(SiteId s, VarId x, ReadContinuation k);
  /// Convenience: issue a read and run the scheduler until it completes.
  Value read(SiteId s, VarId x);
  /// Run all queued events to quiescence.
  std::uint64_t run();
  /// Run events up to the given virtual time.
  void run_until(sim::SimTime deadline);

  // ---- generated workloads ----

  /// Run a whole program: process i executes program[i] sequentially with
  /// exponential think times, then the cluster drains to quiescence.
  void run_program(const Program& program);

  // ---- inspection ----

  sim::Scheduler& scheduler() noexcept { return sched_; }
  IProtocol& site(SiteId s);
  const IProtocol& site(SiteId s) const;
  const ReplicaMap& replica_map() const noexcept { return rmap_; }
  const checker::HistoryRecorder& history() const noexcept { return recorder_; }

  /// Fail-stop site `s`: it silently drops every incoming message from now
  /// on (its already-issued traffic stays in flight). Used by the §V
  /// availability tests together with ProtocolOptions::fetch_timeout_us.
  void crash_site(SiteId s);

  /// Session migration: run the scheduler until site `to` has applied
  /// everything in site `from`'s causal past that is destined to `to`
  /// (the coverage token of `from` for `to`). Returns the events fired.
  std::uint64_t await_coverage(SiteId from, SiteId to);

  /// Sum of buffered (not yet applied) updates across sites; 0 after a
  /// healthy run() (no stuck activation predicates).
  std::size_t pending_updates() const;

  /// Merged metrics: all per-site protocol metrics plus transport traffic.
  metrics::Metrics metrics() const;
  /// Reliability-layer counters (zero when fault injection is off).
  std::uint64_t retransmissions() const;
  std::uint64_t messages_dropped() const;
  std::uint64_t messages_delayed() const;
  std::uint64_t messages_reordered() const;
  const metrics::Metrics& transport_metrics() const noexcept {
    return transport_metrics_;
  }
  const metrics::Metrics& site_metrics(SiteId s) const;

  /// Generates the payload string for a write (deterministic filler).
  static std::string make_payload(SiteId writer, std::uint64_t nth,
                                  std::uint32_t bytes);

 private:
  class SiteSink;

  Algorithm alg_;
  ReplicaMap rmap_;
  Options opts_;
  sim::Scheduler sched_;
  util::Rng latency_rng_;
  std::unique_ptr<sim::LatencyModel> latency_;
  metrics::Metrics transport_metrics_;
  std::unique_ptr<net::SimTransport> transport_;
  std::unique_ptr<net::FaultyTransport> faulty_;
  std::unique_ptr<net::ReliableChannelTransport> reliable_;
  net::ITransport* wire_ = nullptr;  ///< the layer protocols talk to
  checker::HistoryRecorder recorder_;
  std::vector<std::unique_ptr<metrics::Metrics>> site_metrics_;
  std::vector<std::unique_ptr<SiteSink>> sinks_;
  std::vector<std::unique_ptr<IProtocol>> protocols_;
  std::vector<std::uint64_t> writes_issued_;
  std::size_t programs_done_ = 0;

  void step_program(const Program& program, SiteId s, std::size_t idx,
                    util::Rng& think_rng);
  void execute_op(const Program& program, SiteId s, std::size_t idx,
                  util::Rng& think_rng);
};

}  // namespace ccpr::causal
