#include "causal/opt_log.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace ccpr::causal {

void purge_log(Log& log) {
  std::unordered_map<SiteId, std::uint64_t> newest;
  for (const LogEntry& e : log) {
    auto [it, inserted] = newest.try_emplace(e.sender, e.clock);
    if (!inserted && e.clock > it->second) it->second = e.clock;
  }
  std::erase_if(log, [&](const LogEntry& e) {
    return e.dests.empty() && e.clock < newest[e.sender];
  });
}

void merge_logs(Log& local, Log incoming, MergePolicy policy) {
  // Pairwise marking from Algorithm 3, computed via per-sender maxima over
  // the *original* logs (equivalent because marking is simultaneous). Under
  // the conservative policy a record is deletable this way only once its
  // destination list is empty (a record with destinations is an unproven
  // obligation and must survive until pruned by Condition 1/2 evidence).
  std::unordered_map<SiteId, std::uint64_t> local_max;
  for (const LogEntry& e : local) {
    auto [it, inserted] = local_max.try_emplace(e.sender, e.clock);
    if (!inserted && e.clock > it->second) it->second = e.clock;
  }
  std::unordered_map<SiteId, std::uint64_t> in_max;
  for (const LogEntry& e : incoming) {
    auto [it, inserted] = in_max.try_emplace(e.sender, e.clock);
    if (!inserted && e.clock > it->second) it->second = e.clock;
  }

  // Same write known on both sides: intersect destination lists and drop
  // the incoming duplicate. This runs BEFORE any deletion so the combined
  // knowledge is applied even to records a later rule removes — each
  // side's pruning was individually justified in its causal past, and the
  // merging site is in the causal future of both.
  std::erase_if(incoming, [&](const LogEntry& in) {
    for (LogEntry& l : local) {
      if (l.sender == in.sender && l.clock == in.clock) {
        l.dests.intersect(in.dests);
        return true;
      }
    }
    return false;
  });

  const bool aggressive = policy == MergePolicy::kPaperAggressive;
  std::erase_if(local, [&](const LogEntry& e) {
    if (!aggressive && !e.dests.empty()) return false;
    const auto it = in_max.find(e.sender);
    return it != in_max.end() && e.clock < it->second;
  });
  std::erase_if(incoming, [&](const LogEntry& e) {
    if (!aggressive && !e.dests.empty()) return false;
    const auto it = local_max.find(e.sender);
    return it != local_max.end() && e.clock < it->second;
  });

  local.insert(local.end(), std::make_move_iterator(incoming.begin()),
               std::make_move_iterator(incoming.end()));
}

std::uint64_t log_byte_size(const Log& log) {
  std::uint64_t bytes = 0;
  for (const LogEntry& e : log) {
    bytes += sizeof(SiteId) + sizeof(std::uint64_t) +
             e.dests.size() * sizeof(SiteId);
  }
  return bytes;
}

void encode_entry(net::Encoder& enc, const LogEntry& e) {
  enc.varint(e.sender);
  enc.varint(e.clock);
  enc.varint(e.dests.size());
  for (const SiteId s : e.dests.span()) enc.varint(s);
}

LogEntry decode_entry(net::Decoder& dec) {
  LogEntry e;
  e.sender = static_cast<SiteId>(dec.varint());
  e.clock = dec.varint();
  const std::uint64_t k = dec.varint();
  for (std::uint64_t i = 0; i < k && dec.ok(); ++i) {
    e.dests.insert(static_cast<SiteId>(dec.varint()));
  }
  return e;
}

void encode_log(net::Encoder& enc, const Log& log) {
  enc.varint(log.size());
  for (const LogEntry& e : log) encode_entry(enc, e);
}

Log decode_log(net::Decoder& dec) {
  Log log;
  const std::uint64_t k = dec.varint();
  // Never trust the count for allocation: each entry needs at least 3
  // bytes on the wire, so a malformed count larger than that bound cannot
  // be satisfied and must not drive a reserve().
  log.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(k, dec.remaining() / 3)));
  for (std::uint64_t i = 0; i < k && dec.ok(); ++i) {
    log.push_back(decode_entry(dec));
  }
  return log;
}

}  // namespace ccpr::causal
