// A_ORG baseline — causal memory per Ahamad et al. [1], tracking causality
// with Lamport's happened-before relation instead of the ->co relation.
//
// The piggybacked vector clock is merged when a message is *applied* (not
// when its value is later read), so a write issued after merely receiving an
// unrelated update inherits a dependency on it: the "false causality" that
// the optimal activation predicate A_OPT eliminates. Full replication only.
// This is the ablation baseline for the activation-delay experiment (E7).
#pragma once

#include <vector>

#include "causal/protocol_base.hpp"

namespace ccpr::causal {

class Ahamad final : public ProtocolBase {
 public:
  Ahamad(SiteId self, const ReplicaMap& rmap, Services svc);

  void do_write(VarId x, std::string data) override;

  std::size_t pending_update_count() const override { return pending_.size(); }
  std::uint64_t log_entry_count() const override { return apply_.size(); }
  std::uint64_t meta_state_bytes() const override {
    return static_cast<std::uint64_t>(apply_.size()) * sizeof(std::uint64_t);
  }
  Algorithm algorithm() const override { return Algorithm::kAhamad; }

  std::uint64_t applied_from(SiteId j) const { return apply_[j]; }

 protected:
  void on_update(const net::Message& msg) override;
  void merge_on_local_read(VarId /*x*/) override {}
  void encode_fetch_resp_meta(net::Encoder& enc, VarId x) override;
  void merge_fetch_resp_meta(VarId x, SiteId responder,
                             net::Decoder& dec) override;
  void encode_fetch_req_meta(net::Encoder& enc, VarId x,
                             SiteId target) override;
  bool fetch_ready(VarId x, net::Decoder& meta) override;
  void serialize_meta(net::Encoder& enc) const override;
  bool restore_meta(net::Decoder& dec) override;
  // seal_local_meta: base no-op is exact — merge_on_local_read is empty.

 private:
  struct Update {
    VarId x;
    Value v;
    SiteId sender;
    std::vector<std::uint64_t> t;
    sim::SimTime receipt;
  };

  bool ready(const Update& u) const;
  void apply(Update&& u);

  std::uint32_t n_;
  /// apply_ doubles as the site's happened-before vector clock: after every
  /// apply, apply_[k] >= t[k] for the applied t, so the invariant
  /// "clock == applied counts" holds and one vector suffices.
  std::vector<std::uint64_t> apply_;
  PendingBuffer<Update> pending_;
};

}  // namespace ccpr::causal
