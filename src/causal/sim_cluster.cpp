#include "causal/sim_cluster.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace ccpr::causal {

namespace {

std::int64_t cpu_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Routes transport deliveries into one protocol instance.
class SimCluster::SiteSink final : public net::IMessageSink {
 public:
  void set_protocol(IProtocol* p) { proto_ = p; }
  void crash() { crashed_ = true; }
  void deliver(net::Message msg) override {
    CCPR_ASSERT(proto_ != nullptr);
    if (crashed_) return;  // a crashed site drops everything on the floor
    proto_->on_message(msg);
  }

 private:
  IProtocol* proto_ = nullptr;
  bool crashed_ = false;
};

SimCluster::SimCluster(Algorithm alg, ReplicaMap rmap)
    : SimCluster(alg, std::move(rmap), Options{}) {}

SimCluster::SimCluster(Algorithm alg, ReplicaMap rmap, Options opts)
    : alg_(alg),
      rmap_(std::move(rmap)),
      opts_(std::move(opts)),
      latency_rng_(opts_.latency_seed) {
  const std::uint32_t n = rmap_.sites();
  latency_ = opts_.latency
                 ? std::move(opts_.latency)
                 : std::make_unique<sim::UniformLatency>(10'000, 50'000);
  transport_ = std::make_unique<net::SimTransport>(
      n, sched_, *latency_, latency_rng_, transport_metrics_);
  wire_ = transport_.get();
  if (opts_.drop_rate > 0.0 || opts_.duplicate_rate > 0.0 ||
      opts_.delay_rate > 0.0 || opts_.reorder_rate > 0.0) {
    net::FaultyTransport::Options fopts;
    fopts.drop_rate = opts_.drop_rate;
    fopts.duplicate_rate = opts_.duplicate_rate;
    fopts.delay_rate = opts_.delay_rate;
    fopts.delay_min_us = opts_.delay_min_us;
    fopts.delay_max_us = opts_.delay_max_us;
    fopts.reorder_rate = opts_.reorder_rate;
    fopts.seed = opts_.fault_seed;
    fopts.defer = [this](std::uint64_t us, std::function<void()> fn) {
      sched_.schedule_after(static_cast<sim::SimTime>(us), std::move(fn));
    };
    faulty_ = std::make_unique<net::FaultyTransport>(*transport_,
                                                     std::move(fopts));
    reliable_ = std::make_unique<net::ReliableChannelTransport>(
        n, *faulty_, sched_);
    wire_ = reliable_.get();
  }

  site_metrics_.reserve(n);
  sinks_.reserve(n);
  protocols_.reserve(n);
  writes_issued_.assign(n, 0);
  for (SiteId s = 0; s < n; ++s) {
    site_metrics_.push_back(std::make_unique<metrics::Metrics>());
    sinks_.push_back(std::make_unique<SiteSink>());
    wire_->connect(s, sinks_.back().get());

    Services svc;
    svc.send = [this](net::Message m) { wire_->send(std::move(m)); };
    svc.now = [this] { return sched_.now(); };
    svc.schedule = [this](sim::SimTime delay, std::function<void()> fn) {
      sched_.schedule_after(delay, std::move(fn));
    };
    svc.metrics = site_metrics_.back().get();
    svc.recorder = opts_.record_history ? &recorder_ : nullptr;
    protocols_.push_back(
        make_protocol(alg, s, rmap_, std::move(svc), opts_.protocol));
    sinks_.back()->set_protocol(protocols_.back().get());
  }
}

SimCluster::~SimCluster() = default;

IProtocol& SimCluster::site(SiteId s) {
  CCPR_EXPECTS(s < protocols_.size());
  return *protocols_[s];
}

const IProtocol& SimCluster::site(SiteId s) const {
  CCPR_EXPECTS(s < protocols_.size());
  return *protocols_[s];
}

const metrics::Metrics& SimCluster::site_metrics(SiteId s) const {
  CCPR_EXPECTS(s < site_metrics_.size());
  return *site_metrics_[s];
}

std::string SimCluster::make_payload(SiteId writer, std::uint64_t nth,
                                     std::uint32_t bytes) {
  std::string payload = "w" + std::to_string(writer) + ":" +
                        std::to_string(nth);
  if (payload.size() < bytes) payload.resize(bytes, '.');
  return payload;
}

void SimCluster::write(SiteId s, VarId x, std::string data) {
  auto& m = *site_metrics_[s];
  const std::int64_t t0 = cpu_now_ns();
  site(s).write(x, std::move(data));
  m.write_op_ns.add(static_cast<double>(cpu_now_ns() - t0));
  ++writes_issued_[s];
}

void SimCluster::read_async(SiteId s, VarId x, ReadContinuation k) {
  auto& m = *site_metrics_[s];
  const std::int64_t t0 = cpu_now_ns();
  site(s).read(x, std::move(k));
  m.read_op_ns.add(static_cast<double>(cpu_now_ns() - t0));
}

Value SimCluster::read(SiteId s, VarId x) {
  std::optional<Value> result;
  read_async(s, x, [&result](const Value& v) { result = v; });
  while (!result.has_value() && sched_.step()) {
  }
  CCPR_ENSURES(result.has_value());
  return *result;
}

std::uint64_t SimCluster::run() { return sched_.run(); }

void SimCluster::run_until(sim::SimTime deadline) {
  sched_.run_until(deadline);
}

void SimCluster::execute_op(const Program& program, SiteId s, std::size_t idx,
                            util::Rng& think_rng) {
  const Operation& op = program[s][idx];
  if (op.kind == Operation::Kind::kWrite) {
    write(s, op.var,
          make_payload(s, writes_issued_[s] + 1, op.value_bytes));
    step_program(program, s, idx + 1, think_rng);
  } else {
    read_async(s, op.var, [this, &program, s, idx, &think_rng](const Value&) {
      step_program(program, s, idx + 1, think_rng);
    });
  }
}

void SimCluster::step_program(const Program& program, SiteId s,
                              std::size_t idx, util::Rng& think_rng) {
  if (idx >= program[s].size()) {
    ++programs_done_;
    return;
  }
  const auto think = static_cast<sim::SimTime>(
      think_rng.exponential(static_cast<double>(opts_.mean_think_us)));
  sched_.schedule_after(think, [this, &program, s, idx, &think_rng] {
    execute_op(program, s, idx, think_rng);
  });
}

void SimCluster::run_program(const Program& program) {
  CCPR_EXPECTS(program.size() == protocols_.size());
  std::vector<util::Rng> think_rngs;
  think_rngs.reserve(program.size());
  for (SiteId s = 0; s < program.size(); ++s) {
    think_rngs.emplace_back(opts_.think_seed * 0x9e3779b97f4a7c15ULL + s);
  }
  programs_done_ = 0;
  for (SiteId s = 0; s < program.size(); ++s) {
    step_program(program, s, 0, think_rngs[s]);
  }
  sched_.run();
  // A shortfall here means an operation hung: a stuck activation predicate
  // or a RemoteFetch whose gate never opened.
  CCPR_ENSURES(programs_done_ == program.size());
}

std::uint64_t SimCluster::await_coverage(SiteId from, SiteId to) {
  const std::vector<std::uint8_t> token = site(from).coverage_token(to);
  std::uint64_t fired = 0;
  while (!site(to).covered_by(token)) {
    const bool progressed = sched_.step();
    CCPR_ASSERT(progressed);  // otherwise the token can never be covered
    ++fired;
  }
  return fired;
}

void SimCluster::crash_site(SiteId s) {
  CCPR_EXPECTS(s < sinks_.size());
  sinks_[s]->crash();
}

std::size_t SimCluster::pending_updates() const {
  std::size_t total = 0;
  for (const auto& p : protocols_) total += p->pending_update_count();
  return total;
}

std::uint64_t SimCluster::retransmissions() const {
  return reliable_ ? reliable_->retransmissions() : 0;
}

std::uint64_t SimCluster::messages_dropped() const {
  return faulty_ ? faulty_->dropped() : 0;
}

std::uint64_t SimCluster::messages_delayed() const {
  return faulty_ ? faulty_->delayed() : 0;
}

std::uint64_t SimCluster::messages_reordered() const {
  return faulty_ ? faulty_->reordered() : 0;
}

metrics::Metrics SimCluster::metrics() const {
  metrics::Metrics merged = transport_metrics_;
  for (const auto& m : site_metrics_) merged.merge(*m);
  return merged;
}

}  // namespace ccpr::causal
