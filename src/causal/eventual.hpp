// Eventual-consistency baseline: updates are applied the moment they are
// received, with no causality metadata at all. Supports partial replication
// (reads fall back to RemoteFetch).
//
// This protocol is intentionally NOT causally consistent. It exists to
// (a) prove the offline checker actually detects violations, and (b) bound
// the minimum message/metadata cost any causal algorithm is paying on top.
#pragma once

#include "causal/protocol_base.hpp"

namespace ccpr::causal {

class Eventual final : public ProtocolBase {
 public:
  Eventual(SiteId self, const ReplicaMap& rmap, Services svc);

  void do_write(VarId x, std::string data) override;

  std::size_t pending_update_count() const override { return 0; }
  std::uint64_t log_entry_count() const override { return 0; }
  std::uint64_t meta_state_bytes() const override { return 0; }
  Algorithm algorithm() const override { return Algorithm::kEventual; }

 protected:
  void on_update(const net::Message& msg) override;
  void merge_on_local_read(VarId /*x*/) override {}
  void encode_fetch_resp_meta(net::Encoder& /*enc*/, VarId /*x*/) override {}
  void merge_fetch_resp_meta(VarId /*x*/, SiteId /*responder*/,
                             net::Decoder& /*dec*/) override {}
};

}  // namespace ccpr::causal
