// Destination sets for Opt-Track log entries (the `Dests` field of the KS
// records). Represented as a sorted vector of SiteIds: destination lists are
// small (at most p entries) and shrink monotonically under the two pruning
// conditions, so linear merges beat any tree/bitset representation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "causal/types.hpp"
#include "util/assert.hpp"

namespace ccpr::causal {

class DestSet {
 public:
  DestSet() = default;
  DestSet(std::initializer_list<SiteId> sites)
      : sites_(sites) {
    normalize();
  }
  /// From a sorted span (e.g. a ReplicaMap list).
  explicit DestSet(std::span<const SiteId> sorted)
      : sites_(sorted.begin(), sorted.end()) {
    CCPR_EXPECTS(std::is_sorted(sites_.begin(), sites_.end()));
  }

  bool empty() const noexcept { return sites_.empty(); }
  std::size_t size() const noexcept { return sites_.size(); }

  bool contains(SiteId s) const noexcept {
    return std::binary_search(sites_.begin(), sites_.end(), s);
  }

  void insert(SiteId s) {
    auto it = std::lower_bound(sites_.begin(), sites_.end(), s);
    if (it == sites_.end() || *it != s) sites_.insert(it, s);
  }

  void erase(SiteId s) {
    auto it = std::lower_bound(sites_.begin(), sites_.end(), s);
    if (it != sites_.end() && *it == s) sites_.erase(it);
  }

  /// this := this \ other (other given as a sorted span).
  void subtract(std::span<const SiteId> other) {
    auto keep = sites_.begin();
    auto ot = other.begin();
    for (auto it = sites_.begin(); it != sites_.end(); ++it) {
      while (ot != other.end() && *ot < *it) ++ot;
      if (ot != other.end() && *ot == *it) continue;
      *keep++ = *it;
    }
    sites_.erase(keep, sites_.end());
  }

  void subtract(const DestSet& other) { subtract(other.span()); }

  /// this := this ∩ other.
  void intersect(const DestSet& other) {
    auto keep = sites_.begin();
    auto ot = other.sites_.begin();
    for (auto it = sites_.begin(); it != sites_.end(); ++it) {
      while (ot != other.sites_.end() && *ot < *it) ++ot;
      if (ot != other.sites_.end() && *ot == *it) *keep++ = *it;
    }
    sites_.erase(keep, sites_.end());
  }

  std::span<const SiteId> span() const noexcept { return sites_; }
  const std::vector<SiteId>& items() const noexcept { return sites_; }

  friend bool operator==(const DestSet&, const DestSet&) = default;

 private:
  void normalize() {
    std::sort(sites_.begin(), sites_.end());
    sites_.erase(std::unique(sites_.begin(), sites_.end()), sites_.end());
  }

  std::vector<SiteId> sites_;
};

}  // namespace ccpr::causal
