#include "causal/opt_track.hpp"

#include "util/assert.hpp"

namespace ccpr::causal {

OptTrack::OptTrack(SiteId self, const ReplicaMap& rmap, Services svc)
    : OptTrack(self, rmap, std::move(svc), Options{}) {}

OptTrack::OptTrack(SiteId self, const ReplicaMap& rmap, Services svc,
                   Options options)
    : ProtocolBase(self, rmap, std::move(svc), options.fetch_gating),
      options_(options),
      apply_(rmap.sites(), 0),
      known_apply_(static_cast<std::size_t>(rmap.sites()) * rmap.sites(),
                   0) {}

void OptTrack::encode_apply_vector(net::Encoder& enc) const {
  for (const std::uint64_t a : apply_) enc.varint(a);
}

void OptTrack::absorb_apply_vector(SiteId from, net::Decoder& dec) {
  const std::uint32_t n = rmap_.sites();
  auto* row = known_apply_.data() + static_cast<std::size_t>(from) * n;
  for (std::uint32_t z = 0; z < n; ++z) {
    const std::uint64_t a = dec.varint();
    if (a > row[z]) row[z] = a;
  }
}

void OptTrack::discharge_log(Log& log) const {
  if (!gossip_enabled()) return;
  const std::uint32_t n = rmap_.sites();
  for (LogEntry& e : log) {
    if (e.dests.empty()) continue;
    DestSet remaining;
    for (const SiteId d : e.dests.span()) {
      if (known_apply_[static_cast<std::size_t>(d) * n + e.sender] <
          e.clock) {
        remaining.insert(d);
      }
    }
    e.dests = std::move(remaining);
  }
}

MergePolicy OptTrack::merge_policy() const {
  return options_.aggressive_merge ? MergePolicy::kPaperAggressive
                                   : MergePolicy::kConservative;
}

void OptTrack::do_write(VarId x, std::string data) {
  CCPR_EXPECTS(x < rmap_.vars());
  // clock_ mirrors the WriteId seq so protocol clocks equal write ids on
  // the wire. On a sharded site the seq space is strided (disjoint per
  // shard) — fine, because ready()/discharge_log()/purge_log() only ever
  // compare clocks by threshold, never by successor.
  const WriteId id = next_write_id();
  clock_ = id.seq;
  note_write_issued(x, id);

  const auto reps = rmap_.replicas(x);
  const DestSet reps_set{reps};
  Value v = make_value(id, std::move(data));
  const auto payload = static_cast<std::uint32_t>(v.data.size());

  discharge_log(log_);
  purge_log(log_);

  if (options_.distribute_write) {
    // Ship the unpruned log once; receivers subtract x.replicas themselves.
    net::Encoder enc;
    enc.varint(x);
    encode_value(enc, v);
    enc.varint(clock_);
    enc.varint(reps.size());
    for (const SiteId s : reps) enc.varint(s);
    encode_log(enc, log_);
    if (gossip_enabled()) encode_apply_vector(enc);
    const auto& body = enc.buffer();
    for (const SiteId j : reps) {
      if (j == self_) continue;
      net::Message msg;
      msg.kind = net::MsgKind::kUpdate;
      msg.src = self_;
      msg.dst = j;
      msg.body = body;
      msg.payload_bytes = payload;
      svc_.send(std::move(msg));
    }
  } else {
    for (const SiteId j : reps) {
      if (j == self_) continue;
      Log lw = log_;
      if (options_.prune_cond2) {
        for (LogEntry& o : lw) {
          // Condition 2: destinations covered by this write's replica set
          // are subsumed — except s_j's own membership, which the receiver's
          // activation predicate needs (paper lines 5-6, branches corrected).
          const bool had_j = o.dests.contains(j);
          o.dests.subtract(reps);
          if (had_j) o.dests.insert(j);
        }
        purge_log(lw);
      }
      net::Encoder enc;
      enc.varint(x);
      encode_value(enc, v);
      enc.varint(clock_);
      enc.varint(reps.size());
      for (const SiteId s : reps) enc.varint(s);
      encode_log(enc, lw);
      if (gossip_enabled()) encode_apply_vector(enc);
      svc_.send(make_message(net::MsgKind::kUpdate, j, std::move(enc),
                             payload));
    }
  }

  if (options_.prune_cond2) {
    for (LogEntry& l : log_) l.dests.subtract(reps);
  }
  purge_log(log_);
  DestSet own = reps_set;
  own.erase(self_);
  log_.push_back(LogEntry{self_, clock_, std::move(own)});

  if (rmap_.replicated_at(x, self_)) {
    apply_[self_] = clock_;
    known_apply_[static_cast<std::size_t>(self_) * rmap_.sites() + self_] =
        clock_;
    last_write_on_[x] = log_;
    apply_own_write(x, std::move(v));
  }
  sample_space();
}

bool OptTrack::ready(const Update& u) const {
  for (const LogEntry& o : u.log) {
    if (o.dests.contains(self_) && apply_[o.sender] < o.clock) return false;
  }
  return true;
}

void OptTrack::apply(Update&& u) {
  apply_[u.sender] = u.clock;
  const std::uint32_t n = rmap_.sites();
  auto& self_knows_sender =
      known_apply_[static_cast<std::size_t>(self_) * n + u.sender];
  if (u.clock > self_knows_sender) self_knows_sender = u.clock;
  // The sender applied its own write when it issued it.
  auto& sender_knows_self =
      known_apply_[static_cast<std::size_t>(u.sender) * n + u.sender];
  if (u.clock > sender_knows_self && u.replicas.contains(u.sender)) {
    sender_knows_self = u.clock;
  }
  Log lw = std::move(u.log);
  if (options_.distribute_write) {
    // Receiver-side Condition 2 (deferred from the sender).
    if (options_.prune_cond2) {
      for (LogEntry& o : lw) o.dests.subtract(u.replicas);
      purge_log(lw);
    }
  }
  lw.push_back(LogEntry{u.sender, u.clock, std::move(u.replicas)});
  if (options_.prune_cond1) {
    for (LogEntry& o : lw) o.dests.erase(self_);
  }
  last_write_on_[u.x] = std::move(lw);
  apply_value(u.x, std::move(u.v), u.receipt);
}

void OptTrack::on_update(const net::Message& msg) {
  net::Decoder dec(msg.body);
  Update u;
  u.x = static_cast<VarId>(dec.varint());
  u.v = decode_value(dec);
  u.clock = dec.varint();
  const std::uint64_t k = dec.varint();
  for (std::uint64_t i = 0; i < k && dec.ok(); ++i) {
    u.replicas.insert(static_cast<SiteId>(dec.varint()));
  }
  u.log = decode_log(dec);
  if (gossip_enabled()) absorb_apply_vector(msg.src, dec);
  u.sender = msg.src;
  u.receipt = svc_.now();
  CCPR_ASSERT(dec.ok());
  pending_.submit(
      std::move(u), [this](const Update& p) { return ready(p); },
      [this](Update&& p) { apply(std::move(p)); });
  svc_.metrics->note_pending(pending_.size());
  sample_space();
}

void OptTrack::merge_on_local_read(VarId x) {
  const auto it = last_write_on_.find(x);
  if (it == last_write_on_.end()) return;
  merge_logs(log_, it->second, merge_policy());
  discharge_log(log_);
  purge_log(log_);
  sample_space();
}

void OptTrack::encode_fetch_req_meta(net::Encoder& enc, VarId /*x*/,
                                     SiteId target) {
  // Freshness requirement: every write in the reader's causal past that is
  // destined to the target must be applied there before it may answer.
  std::uint64_t count = 0;
  for (const LogEntry& o : log_) {
    if (o.dests.contains(target)) ++count;
  }
  enc.varint(count);
  for (const LogEntry& o : log_) {
    if (o.dests.contains(target)) {
      enc.varint(o.sender);
      enc.varint(o.clock);
    }
  }
}

bool OptTrack::fetch_ready(VarId /*x*/, net::Decoder& meta) {
  const std::uint64_t k = meta.varint();
  bool ok = true;
  for (std::uint64_t i = 0; i < k && meta.ok(); ++i) {
    const auto sender = static_cast<SiteId>(meta.varint());
    const std::uint64_t clk = meta.varint();
    if (apply_[sender] < clk) ok = false;
  }
  CCPR_ASSERT(meta.ok());
  return ok;
}

void OptTrack::encode_fetch_resp_meta(net::Encoder& enc, VarId x) {
  const auto it = last_write_on_.find(x);
  if (it == last_write_on_.end()) {
    enc.u8(0);
    if (gossip_enabled()) encode_apply_vector(enc);
    return;
  }
  enc.u8(1);
  encode_log(enc, it->second);
  if (gossip_enabled()) encode_apply_vector(enc);
}

void OptTrack::merge_fetch_resp_meta(VarId /*x*/, SiteId responder,
                                     net::Decoder& dec) {
  if (dec.u8() == 0) {
    if (gossip_enabled()) {
      absorb_apply_vector(responder, dec);
      discharge_log(log_);
      purge_log(log_);
      sample_space();
    }
    return;
  }
  Log lw = decode_log(dec);
  if (gossip_enabled()) absorb_apply_vector(responder, dec);
  CCPR_ASSERT(dec.ok());
  merge_logs(log_, std::move(lw), merge_policy());
  discharge_log(log_);
  purge_log(log_);
  sample_space();
}

bool OptTrack::locally_covered() const {
  // Log records naming this site as a destination are exactly the writes in
  // the causal past that must land here; transitively later records cover
  // the pruned ones (same argument as the activation predicate).
  for (const LogEntry& o : log_) {
    if (o.dests.contains(self_) && apply_[o.sender] < o.clock) return false;
  }
  return true;
}

void OptTrack::serialize_meta(net::Encoder& enc) const {
  enc.varint(clock_);
  for (const std::uint64_t a : apply_) enc.varint(a);
  for (const std::uint64_t a : known_apply_) enc.varint(a);
  encode_log(enc, log_);
  enc.varint(last_write_on_.size());
  for (const auto& [x, lw] : last_write_on_) {
    enc.varint(x);
    encode_log(enc, lw);
  }
  const auto& pend = pending_.items();
  enc.varint(pend.size());
  for (const Update& u : pend) {
    enc.varint(u.x);
    encode_value(enc, u.v);
    enc.varint(u.sender);
    enc.varint(u.clock);
    enc.varint(u.replicas.size());
    for (const SiteId s : u.replicas.span()) enc.varint(s);
    encode_log(enc, u.log);
  }
}

bool OptTrack::restore_meta(net::Decoder& dec) {
  clock_ = dec.varint();
  for (std::uint64_t& a : apply_) a = dec.varint();
  for (std::uint64_t& a : known_apply_) a = dec.varint();
  log_ = decode_log(dec);
  const std::uint64_t lw = dec.varint();
  if (!dec.ok()) return false;
  last_write_on_.clear();
  for (std::uint64_t i = 0; i < lw; ++i) {
    const auto x = static_cast<VarId>(dec.varint());
    last_write_on_[x] = decode_log(dec);
  }
  const std::uint64_t np = dec.varint();
  if (!dec.ok()) return false;
  std::vector<Update> pend;
  pend.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) {
    Update u;
    u.x = static_cast<VarId>(dec.varint());
    u.v = decode_value(dec);
    u.sender = static_cast<SiteId>(dec.varint());
    u.clock = dec.varint();
    const std::uint64_t k = dec.varint();
    for (std::uint64_t j = 0; j < k && dec.ok(); ++j) {
      u.replicas.insert(static_cast<SiteId>(dec.varint()));
    }
    u.log = decode_log(dec);
    u.receipt = svc_.now();
    if (!dec.ok()) return false;
    pend.push_back(std::move(u));
  }
  pending_.restore(std::move(pend));
  return dec.ok();
}

void OptTrack::seal_local_meta() {
  for (const auto& [x, lw] : last_write_on_) {
    merge_logs(log_, lw, merge_policy());
  }
  discharge_log(log_);
  purge_log(log_);
  sample_space();
}

std::uint64_t OptTrack::meta_state_bytes() const {
  std::uint64_t bytes =
      sizeof(std::uint64_t) +
      static_cast<std::uint64_t>(apply_.size()) * sizeof(std::uint64_t) +
      (gossip_enabled()
           ? static_cast<std::uint64_t>(known_apply_.size()) *
                 sizeof(std::uint64_t)
           : 0) +
      log_byte_size(log_);
  for (const auto& [x, lw] : last_write_on_) {
    bytes += sizeof(VarId) + log_byte_size(lw);
  }
  return bytes;
}

void OptTrack::sample_space() {
  svc_.metrics->log_entries.add_sample(log_.size());
  svc_.metrics->meta_state_bytes.add_sample(meta_state_bytes());
}

}  // namespace ccpr::causal
