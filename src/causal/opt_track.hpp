// Algorithm Opt-Track (paper Algorithms 2 + 3).
//
// Message- and space-optimal causal memory under partial replication: the
// per-site log holds <sender, clock, Dests> records whose destination lists
// are pruned under the two Kshemkalyani–Singhal conditions:
//   Condition 1 — once an update is applied at s, "s is a destination" need
//     not be remembered in the causal future of that apply;
//   Condition 2 — a causally later write to the same destination subsumes
//     the earlier one's destination entry.
// Both conditions are independently switchable for the pruning ablation.
//
// Deviations from the paper's pseudo-code (see DESIGN.md §6): the two
// branches of WRITE lines 5–6 are swapped in the paper's text (the copy sent
// to s_j must *preserve* s_j in o.Dests, or the receiver's activation
// predicate has nothing to check), and line 16's `Apply_i[i]++` must be the
// assignment `Apply_i[i] := clock_i` because clock_i advances on every write
// while Apply only advances on locally replicated ones.
#pragma once

#include <unordered_map>

#include "causal/opt_log.hpp"
#include "causal/protocol_base.hpp"

namespace ccpr::causal {

class OptTrack final : public ProtocolBase {
 public:
  struct Options {
    bool fetch_gating = true;
    /// KS Condition 1 (prune own site id at apply).
    bool prune_cond1 = true;
    /// KS Condition 2 (prune replica set at write).
    bool prune_cond2 = true;
    /// §III-B optimization: ship one unpruned log to all destinations and
    /// let each receiver subtract x.replicas, trading O(n^2) write time for
    /// slightly larger messages.
    bool distribute_write = false;
    /// Use the paper's Algorithm 3 MERGE verbatim (deletes any record older
    /// than a same-sender record in the other log). UNSOUND — kept only to
    /// reproduce the defect; see MergePolicy::kPaperAggressive.
    bool aggressive_merge = false;
    /// Piggyback the sender's Apply vector on updates and fetch responses
    /// (O(n) varints) and maintain a known-apply matrix; log records
    /// discharge destinations using these *facts*, which is what keeps the
    /// sound (conservative) MERGE as compact as the paper's unsound rule.
    /// Disabled automatically in aggressive (paper-faithful) mode.
    bool apply_gossip = true;
  };

  OptTrack(SiteId self, const ReplicaMap& rmap, Services svc);
  OptTrack(SiteId self, const ReplicaMap& rmap, Services svc,
           Options options);

  void do_write(VarId x, std::string data) override;

  std::size_t pending_update_count() const override { return pending_.size(); }
  std::uint64_t log_entry_count() const override { return log_.size(); }
  std::uint64_t meta_state_bytes() const override;
  Algorithm algorithm() const override { return Algorithm::kOptTrack; }

  /// Test hooks.
  const Log& log() const noexcept { return log_; }
  std::uint64_t applied_clock(SiteId j) const { return apply_[j]; }
  std::uint64_t clock() const noexcept { return clock_; }

 protected:
  void on_update(const net::Message& msg) override;
  void merge_on_local_read(VarId x) override;
  void encode_fetch_req_meta(net::Encoder& enc, VarId x,
                             SiteId target) override;
  bool fetch_ready(VarId x, net::Decoder& meta) override;
  void encode_fetch_resp_meta(net::Encoder& enc, VarId x) override;
  void merge_fetch_resp_meta(VarId x, SiteId responder,
                             net::Decoder& dec) override;
  bool locally_covered() const override;
  void serialize_meta(net::Encoder& enc) const override;
  bool restore_meta(net::Decoder& dec) override;
  void seal_local_meta() override;

 private:
  struct Update {
    VarId x;
    Value v;
    SiteId sender;
    std::uint64_t clock;
    DestSet replicas;
    Log log;
    std::vector<std::uint64_t> sender_apply;  // gossip mode only
    sim::SimTime receipt;
  };

  bool ready(const Update& u) const;
  void apply(Update&& u);
  MergePolicy merge_policy() const;
  bool gossip_enabled() const {
    return options_.apply_gossip && !options_.aggressive_merge;
  }
  /// Remove from every record each destination d for which the known-apply
  /// matrix proves d already applied the record's write.
  void discharge_log(Log& log) const;
  void absorb_apply_vector(SiteId from, net::Decoder& dec);
  void encode_apply_vector(net::Encoder& enc) const;
  void sample_space();

  Options options_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> apply_;
  /// known_apply_[d * n + z]: proven lower bound on Apply_d[z], learned from
  /// gossiped Apply vectors (row self_ mirrors apply_).
  std::vector<std::uint64_t> known_apply_;
  Log log_;
  std::unordered_map<VarId, Log> last_write_on_;
  PendingBuffer<Update> pending_;
};

}  // namespace ccpr::causal
