#include "causal/types.hpp"

#include "util/assert.hpp"

namespace ccpr::causal {

const char* algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kFullTrack:
      return "Full-Track";
    case Algorithm::kOptTrack:
      return "Opt-Track";
    case Algorithm::kOptTrackCRP:
      return "Opt-Track-CRP";
    case Algorithm::kOptP:
      return "OptP";
    case Algorithm::kAhamad:
      return "Ahamad";
    case Algorithm::kEventual:
      return "Eventual";
  }
  CCPR_UNREACHABLE("unknown algorithm");
}

}  // namespace ccpr::causal
