#include "causal/protocol_base.hpp"

#include "checker/convergence.hpp"
#include "checker/recorder.hpp"
#include "util/assert.hpp"

namespace ccpr::causal {

namespace {
const Value kInitialValue{};
}  // namespace

ProtocolBase::ProtocolBase(SiteId self, const ReplicaMap& rmap, Services svc,
                           bool fetch_gating)
    : self_(self), rmap_(rmap), svc_(std::move(svc)),
      fetch_gating_(fetch_gating),
      store_(store::make_engine(store::EngineOptions{})) {
  CCPR_EXPECTS(self < rmap_.sites());
  CCPR_EXPECTS(svc_.metrics != nullptr);
  CCPR_EXPECTS(static_cast<bool>(svc_.send));
  CCPR_EXPECTS(static_cast<bool>(svc_.now));
}

void ProtocolBase::configure_store_engine(const store::EngineOptions& opts) {
  SingleCallerGuard::Scope scope(guard_);
  CCPR_EXPECTS(store_->size() == 0 &&
               "engine must be selected before the store is populated");
  store_ = store::make_engine(opts);
}

const Value& ProtocolBase::stored(VarId x) const {
  const Value* v = store_->find(x);
  return v == nullptr ? kInitialValue : *v;
}

void ProtocolBase::store_value(VarId x, Value v) {
  if (convergent_) {
    // LWW register: keep the winner under the deterministic total order on
    // (seq, writer); initial values always lose.
    const Value* cur = store_->find(x);
    if (cur != nullptr && &checker::lww_winner(*cur, v) == cur) {
      return;
    }
  }
  store_->put(x, std::move(v));
}

void ProtocolBase::apply_value(VarId x, Value v, sim::SimTime receipt) {
  const WriteId id = v.id;
  observe_lamport(v.lamport);
  store_value(x, std::move(v));
  if (svc_.recorder != nullptr) svc_.recorder->on_apply(self_, id, x);
  svc_.metrics->apply_delay_us.add(
      static_cast<double>(svc_.now() - receipt));
  service_pending_fetches();
  service_deferred_reads();
}

void ProtocolBase::apply_own_write(VarId x, Value v) {
  const WriteId id = v.id;
  store_value(x, std::move(v));
  if (svc_.recorder != nullptr) svc_.recorder->on_apply(self_, id, x);
  svc_.metrics->apply_delay_us.add(0.0);
  service_pending_fetches();
}

void ProtocolBase::note_write_issued(VarId x, WriteId id) {
  ++svc_.metrics->writes;
  svc_.metrics->write_latency_us.add(0.0);
  if (svc_.recorder != nullptr) svc_.recorder->on_write(self_, id, x);
}

net::Message ProtocolBase::make_message(net::MsgKind kind, SiteId dst,
                                        net::Encoder&& enc,
                                        std::uint32_t payload_bytes) const {
  net::Message msg;
  msg.kind = kind;
  msg.src = self_;
  msg.dst = dst;
  msg.body = std::move(enc).take();
  msg.payload_bytes = payload_bytes;
  CCPR_ASSERT(msg.payload_bytes <= msg.body.size());
  return msg;
}

void ProtocolBase::read(VarId x, ReadContinuation k) {
  SingleCallerGuard::Scope scope(guard_);
  read_impl(x, std::move(k));
  if (scope.outermost()) store_->maintain();
}

void ProtocolBase::read_impl(VarId x, ReadContinuation k) {
  CCPR_EXPECTS(x < rmap_.vars());
  ++svc_.metrics->reads;
  const sim::SimTime issued = svc_.now();
  if (rmap_.replicated_at(x, self_)) {
    merge_on_local_read(x);
    const Value& v = stored(x);
    if (svc_.recorder != nullptr) svc_.recorder->on_read(self_, x, v.id);
    svc_.metrics->read_latency_us.add(0.0);
    k(v);
    return;
  }
  // RemoteFetch from the pre-designated replica.
  ++svc_.metrics->remote_reads;
  auto pr = std::make_shared<PendingRead>();
  pr->var = x;
  pr->k = std::move(k);
  pr->issued = issued;
  start_fetch(pr);
}

void ProtocolBase::start_fetch(const std::shared_ptr<PendingRead>& pr) {
  // With a failure detector plugged in, suspected replicas rank behind
  // healthy ones, so the first attempt goes to a live site instead of
  // burning a fetch timeout against a dead one.
  std::uint32_t suspect_skips = 0;
  const SiteId target = rmap_.fetch_target_ranked(
      pr->var, self_, pr->attempt, svc_.peer_suspected, &suspect_skips);
  svc_.metrics->fetch_suspect_skips += suspect_skips;
  const std::uint64_t req_id = next_req_++;
  pr->req_ids.push_back(req_id);
  pending_reads_.emplace(req_id, pr);
  net::Encoder enc;
  enc.varint(pr->var);
  enc.varint(req_id);
  if (fetch_gating_) encode_fetch_req_meta(enc, pr->var, target);
  svc_.send(
      make_message(net::MsgKind::kFetchReq, target, std::move(enc), 0));
  if (fetch_timeout_us_ > 0 && svc_.schedule) {
    svc_.schedule(fetch_timeout_us_,
                  [this, req_id] { on_fetch_timeout(req_id); });
  }
}

void ProtocolBase::on_fetch_timeout(std::uint64_t req_id) {
  const auto it = pending_reads_.find(req_id);
  if (it == pending_reads_.end()) return;  // read already completed
  const std::shared_ptr<PendingRead> pr = it->second;
  if (pr->done) return;
  // The earlier request stays outstanding — whichever replica answers
  // first completes the read.
  ++pr->attempt;
  ++svc_.metrics->fetch_retries;
  start_fetch(pr);
}

void ProtocolBase::on_message(const net::Message& msg) {
  SingleCallerGuard::Scope scope(guard_);
  switch (msg.kind) {
    case net::MsgKind::kUpdate:
      on_update(msg);
      break;
    case net::MsgKind::kFetchReq:
      handle_fetch_req(msg);
      break;
    case net::MsgKind::kFetchResp:
      handle_fetch_resp(msg);
      break;
    default:
      CCPR_UNREACHABLE("bad message kind");
  }
  if (scope.outermost()) store_->maintain();
}

void ProtocolBase::encode_fetch_req_meta(net::Encoder&, VarId, SiteId) {}

bool ProtocolBase::fetch_ready(VarId, net::Decoder&) { return true; }

void ProtocolBase::serialize_meta(net::Encoder&) const {}

bool ProtocolBase::restore_meta(net::Decoder&) { return true; }

void ProtocolBase::seal_local_meta() {}

void ProtocolBase::serialize_state(net::Encoder& enc) const {
  enc.u8(1);  // layout version
  enc.varint(write_seq_);
  enc.varint(lamport_);
  enc.varint(store_->size());
  store_->for_each([&enc](VarId x, const Value& v) {
    enc.varint(x);
    encode_value(enc, v);
  });
  serialize_meta(enc);
}

bool ProtocolBase::restore_state(net::Decoder& dec) {
  SingleCallerGuard::Scope scope(guard_);
  if (dec.u8() != 1 || !dec.ok()) return false;
  write_seq_ = dec.varint();
  lamport_ = dec.varint();
  const std::uint64_t n = dec.varint();
  if (!dec.ok()) return false;
  store_->clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto x = static_cast<VarId>(dec.varint());
    Value v = decode_value(dec);
    if (!dec.ok()) return false;
    // Exact-state restore: bypass store_value's LWW filter on purpose.
    store_->put(x, std::move(v));
  }
  // A restored store may exceed the engine's resident budget wholesale;
  // let it re-establish its invariants (spill, compaction) immediately.
  store_->maintain();
  return restore_meta(dec) && dec.ok();
}

void ProtocolBase::replay_meta_merge(VarId x, SiteId responder,
                                     const std::uint8_t* data,
                                     std::size_t len) {
  SingleCallerGuard::Scope scope(guard_);
  net::Decoder dec(data, len);
  merge_fetch_resp_meta(x, responder, dec);
}

void ProtocolBase::merge_all_local_meta() {
  SingleCallerGuard::Scope scope(guard_);
  seal_local_meta();
}

std::vector<std::uint8_t> ProtocolBase::coverage_token(SiteId target) {
  SingleCallerGuard::Scope scope(guard_);
  net::Encoder enc;
  encode_fetch_req_meta(enc, /*x=*/0, target);
  return std::move(enc).take();
}

bool ProtocolBase::covered_by(const std::vector<std::uint8_t>& token) {
  SingleCallerGuard::Scope scope(guard_);
  net::Decoder dec(token.data(), token.size());
  return fetch_ready(/*x=*/0, dec);
}

void ProtocolBase::handle_fetch_req(const net::Message& msg) {
  net::Decoder dec(msg.body);
  const auto x = static_cast<VarId>(dec.varint());
  const std::uint64_t req_id = dec.varint();
  CCPR_ASSERT(dec.ok());
  CCPR_ASSERT(rmap_.replicated_at(x, self_));
  if (fetch_gating_) {
    // Stash the remaining bytes (gating metadata) and re-check after every
    // local apply until the freshness condition holds.
    std::vector<std::uint8_t> meta(msg.body.end() -
                                       static_cast<std::ptrdiff_t>(
                                           dec.remaining()),
                                   msg.body.end());
    net::Decoder meta_dec(meta.data(), meta.size());
    if (!fetch_ready(x, meta_dec)) {
      pending_fetches_.push_back(
          PendingFetch{msg.src, x, req_id, std::move(meta)});
      return;
    }
  }
  serve_fetch(msg.src, x, req_id);
}

void ProtocolBase::serve_fetch(SiteId requester, VarId x,
                               std::uint64_t req_id) {
  const Value& v = stored(x);
  net::Encoder enc;
  enc.varint(req_id);
  enc.varint(x);
  encode_value(enc, v);
  encode_fetch_resp_meta(enc, x);
  svc_.send(make_message(net::MsgKind::kFetchResp, requester, std::move(enc),
                         static_cast<std::uint32_t>(v.data.size())));
}

void ProtocolBase::service_pending_fetches() {
  if (pending_fetches_.empty()) return;
  for (auto it = pending_fetches_.begin(); it != pending_fetches_.end();) {
    net::Decoder meta(it->meta.data(), it->meta.size());
    if (fetch_ready(it->var, meta)) {
      serve_fetch(it->requester, it->var, it->req_id);
      it = pending_fetches_.erase(it);
    } else {
      ++it;
    }
  }
}

void ProtocolBase::handle_fetch_resp(const net::Message& msg) {
  net::Decoder dec(msg.body);
  const std::uint64_t req_id = dec.varint();
  const auto x = static_cast<VarId>(dec.varint());
  Value v = decode_value(dec);
  CCPR_ASSERT(dec.ok());
  const auto it = pending_reads_.find(req_id);
  if (it == pending_reads_.end()) {
    // Response for a read that already completed (its aliases were erased).
    return;
  }
  const std::shared_ptr<PendingRead> pr = it->second;
  CCPR_ASSERT(pr->var == x);
  CCPR_ASSERT(!pr->done);
  pr->done = true;
  for (const std::uint64_t alias : pr->req_ids) pending_reads_.erase(alias);
  observe_lamport(v.lamport);
  if (svc_.persist_meta_merge) {
    // Hand the WAL the exact metadata bytes the merge below consumes, so
    // recovery can replay the merge verbatim (replay_meta_merge).
    const std::size_t meta_off = msg.body.size() - dec.remaining();
    svc_.persist_meta_merge(x, msg.src, msg.body.data() + meta_off,
                            dec.remaining());
  }
  merge_fetch_resp_meta(x, msg.src, dec);
  // The fetch may have taught this site about writes destined here that it
  // has not applied yet; completing the read before they land would let the
  // *next local read* observe a causally stale value. Defer until the local
  // store covers the (just enlarged) causal past.
  if (fetch_gating_ && !locally_covered()) {
    deferred_reads_.push_back(
        DeferredRead{x, std::move(v), std::move(pr->k), pr->issued});
    return;
  }
  complete_read(x, v, pr->issued);
  pr->k(v);
}

void ProtocolBase::complete_read(VarId x, const Value& v,
                                 sim::SimTime issued) {
  if (svc_.recorder != nullptr) svc_.recorder->on_read(self_, x, v.id);
  svc_.metrics->read_latency_us.add(
      static_cast<double>(svc_.now() - issued));
}

void ProtocolBase::service_deferred_reads() {
  if (deferred_reads_.empty() || !locally_covered()) return;
  // One apply can release every deferred read at once; take the batch out
  // first because continuations may issue new operations.
  std::vector<DeferredRead> ready;
  ready.swap(deferred_reads_);
  for (DeferredRead& dr : ready) {
    complete_read(dr.var, dr.value, dr.issued);
    dr.k(dr.value);
  }
}

}  // namespace ccpr::causal
