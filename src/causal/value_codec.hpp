// Wire codec for Value: (write identity, Lamport stamp, payload).
// Free functions so the codec is testable without a protocol instance; the
// identity and stamp are accounted as control bytes, the payload as data.
#pragma once

#include "causal/types.hpp"
#include "net/wire.hpp"

namespace ccpr::causal {

inline void encode_value(net::Encoder& enc, const Value& v) {
  enc.varint(v.id.writer == kNoSite ? 0 : v.id.writer + 1);
  enc.varint(v.id.seq);
  enc.varint(v.lamport);
  enc.bytes(v.data);
}

inline Value decode_value(net::Decoder& dec) {
  Value v;
  const std::uint64_t writer = dec.varint();
  v.id.writer = writer == 0 ? kNoSite : static_cast<SiteId>(writer - 1);
  v.id.seq = dec.varint();
  v.lamport = dec.varint();
  v.data = dec.bytes();
  return v;
}

}  // namespace ccpr::causal
