// The Opt-Track causal log: KS-style records of recent writes with
// progressively pruned destination lists (paper Algorithms 2 and 3).
//
// MERGE and PURGE are free functions over plain data so the pruning rules —
// the subtle heart of the algorithm — are unit- and property-testable in
// isolation from any messaging.
#pragma once

#include <cstdint>
#include <vector>

#include "causal/dest_set.hpp"
#include "causal/types.hpp"
#include "net/wire.hpp"

namespace ccpr::causal {

/// One record <sender, clock, Dests>: write number `clock` by ap_sender is
/// destined to the sites in Dests for which delivery is not yet known (to
/// this log's holder) to be implied.
struct LogEntry {
  SiteId sender = kNoSite;
  std::uint64_t clock = 0;
  DestSet dests;

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

using Log = std::vector<LogEntry>;

/// Paper PURGE: drop an empty-Dests record if a strictly newer record from
/// the same sender exists — the newer record implicitly remembers it
/// (Fig. 2 of the paper explains why the newest empty record must stay).
void purge_log(Log& log);

enum class MergePolicy : std::uint8_t {
  /// Sound refinement (the default). Records of the *same* write keep the
  /// intersection of their destination lists — each side pruned only what
  /// its own causal past justified, and the reader is in the causal future
  /// of both. Older records with a NON-EMPTY destination list survive: they
  /// are unproven obligations, and deleting them merely because the other
  /// log has a newer record from the same sender can drop the co-maximal
  /// carrier of an obligation when two causal paths cross-justify their
  /// prunes (see DESIGN.md §6 — the checker exposed real causality
  /// violations under the paper's rule).
  kConservative,
  /// Paper Algorithm 3 verbatim: any record older than a same-sender record
  /// in the other log is deleted. Kept for the reproduction of the defect.
  kPaperAggressive,
};

/// Paper MERGE(LOG_i, L_w): combine the piggybacked log of a read value into
/// the local log. Surviving incoming records are appended.
void merge_logs(Log& local, Log incoming,
                MergePolicy policy = MergePolicy::kConservative);

/// Serialized size in bytes (also used as the space metric for logs).
std::uint64_t log_byte_size(const Log& log);

void encode_log(net::Encoder& enc, const Log& log);
Log decode_log(net::Decoder& dec);

void encode_entry(net::Encoder& enc, const LogEntry& e);
LogEntry decode_entry(net::Decoder& dec);

}  // namespace ccpr::causal
