#include "causal/factory.hpp"

#include "causal/ahamad.hpp"
#include "causal/eventual.hpp"
#include "causal/protocol_base.hpp"
#include "causal/shard_group.hpp"
#include "causal/full_track.hpp"
#include "causal/opt_track.hpp"
#include "causal/opt_track_crp.hpp"
#include "causal/optp.hpp"
#include "util/assert.hpp"

namespace ccpr::causal {

namespace {

std::unique_ptr<IProtocol> make_protocol_impl(Algorithm alg, SiteId self,
                                              const ReplicaMap& rmap,
                                              Services svc,
                                              const ProtocolOptions& opts) {
  switch (alg) {
    case Algorithm::kFullTrack:
      return std::make_unique<FullTrack>(
          self, rmap, std::move(svc),
          FullTrack::Options{.fetch_gating = opts.fetch_gating});
    case Algorithm::kOptTrack:
      return std::make_unique<OptTrack>(
          self, rmap, std::move(svc),
          OptTrack::Options{.fetch_gating = opts.fetch_gating,
                            .prune_cond1 = opts.prune_cond1,
                            .prune_cond2 = opts.prune_cond2,
                            .distribute_write = opts.distribute_write,
                            .aggressive_merge = opts.aggressive_merge});
    case Algorithm::kOptTrackCRP:
      return std::make_unique<OptTrackCRP>(self, rmap, std::move(svc));
    case Algorithm::kOptP:
      return std::make_unique<OptP>(self, rmap, std::move(svc));
    case Algorithm::kAhamad:
      return std::make_unique<Ahamad>(self, rmap, std::move(svc));
    case Algorithm::kEventual:
      return std::make_unique<Eventual>(self, rmap, std::move(svc));
  }
  CCPR_UNREACHABLE("unknown algorithm");
}

}  // namespace

const char* algorithm_token(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kFullTrack:
      return "full-track";
    case Algorithm::kOptTrack:
      return "opt-track";
    case Algorithm::kOptTrackCRP:
      return "opt-track-crp";
    case Algorithm::kOptP:
      return "optp";
    case Algorithm::kAhamad:
      return "ahamad";
    case Algorithm::kEventual:
      return "eventual";
  }
  CCPR_UNREACHABLE("unknown algorithm");
}

std::optional<Algorithm> algorithm_from_token(std::string_view token) {
  for (const Algorithm a :
       {Algorithm::kFullTrack, Algorithm::kOptTrack, Algorithm::kOptTrackCRP,
        Algorithm::kOptP, Algorithm::kAhamad, Algorithm::kEventual}) {
    if (token == algorithm_token(a)) return a;
  }
  return std::nullopt;
}

namespace {

std::unique_ptr<IProtocol> make_single(Algorithm alg, SiteId self,
                                       const ReplicaMap& rmap, Services svc,
                                       const ProtocolOptions& opts) {
  auto protocol = make_protocol_impl(alg, self, rmap, std::move(svc), opts);
  if (opts.convergent || opts.fetch_timeout_us > 0 ||
      opts.store_engine.kind != store::EngineKind::kMap ||
      opts.write_seq_stride > 1) {
    auto* base = dynamic_cast<ProtocolBase*>(protocol.get());
    CCPR_ASSERT(base != nullptr);
    base->set_convergent(opts.convergent);
    base->set_fetch_timeout(opts.fetch_timeout_us);
    if (opts.store_engine.kind != store::EngineKind::kMap) {
      base->configure_store_engine(opts.store_engine);
    }
    if (opts.write_seq_stride > 1) {
      base->set_write_id_space(opts.write_seq_offset, opts.write_seq_stride);
    }
  }
  return protocol;
}

}  // namespace

std::unique_ptr<IProtocol> make_protocol(Algorithm alg, SiteId self,
                                         const ReplicaMap& rmap, Services svc,
                                         const ProtocolOptions& opts) {
  if (opts.engine_shards <= 1) {
    return make_single(alg, self, rmap, std::move(svc), opts);
  }
  // Sharded site: a ShardGroup of single-shard instances. Each inner gets
  // the full ReplicaMap (causal metadata is per-site, so partitioning the
  // keyspace never changes who tracks whom) and, when the store engine
  // spills to disk, its own spill directory.
  return std::make_unique<ShardGroup>(
      opts.engine_shards, self, std::move(svc),
      [alg, self, &rmap, &opts](std::uint32_t k, Services sk) {
        ProtocolOptions single = opts;
        single.engine_shards = 1;
        // Disjoint WriteId seq spaces: without this, two shards of one site
        // would both issue (self, 1), (self, 2), ... and WriteIds — the
        // checker's globally unique write identities — would collide.
        single.write_seq_offset = k;
        single.write_seq_stride = opts.engine_shards;
        if (!single.store_engine.spill_dir.empty() && k > 0) {
          single.store_engine.spill_dir += "/shard-" + std::to_string(k);
        }
        return make_single(alg, self, rmap, std::move(sk), single);
      });
}

}  // namespace ccpr::causal
