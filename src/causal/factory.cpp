#include "causal/factory.hpp"

#include "causal/ahamad.hpp"
#include "causal/eventual.hpp"
#include "causal/protocol_base.hpp"
#include "causal/full_track.hpp"
#include "causal/opt_track.hpp"
#include "causal/opt_track_crp.hpp"
#include "causal/optp.hpp"
#include "util/assert.hpp"

namespace ccpr::causal {

namespace {

std::unique_ptr<IProtocol> make_protocol_impl(Algorithm alg, SiteId self,
                                              const ReplicaMap& rmap,
                                              Services svc,
                                              const ProtocolOptions& opts) {
  switch (alg) {
    case Algorithm::kFullTrack:
      return std::make_unique<FullTrack>(
          self, rmap, std::move(svc),
          FullTrack::Options{.fetch_gating = opts.fetch_gating});
    case Algorithm::kOptTrack:
      return std::make_unique<OptTrack>(
          self, rmap, std::move(svc),
          OptTrack::Options{.fetch_gating = opts.fetch_gating,
                            .prune_cond1 = opts.prune_cond1,
                            .prune_cond2 = opts.prune_cond2,
                            .distribute_write = opts.distribute_write,
                            .aggressive_merge = opts.aggressive_merge});
    case Algorithm::kOptTrackCRP:
      return std::make_unique<OptTrackCRP>(self, rmap, std::move(svc));
    case Algorithm::kOptP:
      return std::make_unique<OptP>(self, rmap, std::move(svc));
    case Algorithm::kAhamad:
      return std::make_unique<Ahamad>(self, rmap, std::move(svc));
    case Algorithm::kEventual:
      return std::make_unique<Eventual>(self, rmap, std::move(svc));
  }
  CCPR_UNREACHABLE("unknown algorithm");
}

}  // namespace

const char* algorithm_token(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kFullTrack:
      return "full-track";
    case Algorithm::kOptTrack:
      return "opt-track";
    case Algorithm::kOptTrackCRP:
      return "opt-track-crp";
    case Algorithm::kOptP:
      return "optp";
    case Algorithm::kAhamad:
      return "ahamad";
    case Algorithm::kEventual:
      return "eventual";
  }
  CCPR_UNREACHABLE("unknown algorithm");
}

std::optional<Algorithm> algorithm_from_token(std::string_view token) {
  for (const Algorithm a :
       {Algorithm::kFullTrack, Algorithm::kOptTrack, Algorithm::kOptTrackCRP,
        Algorithm::kOptP, Algorithm::kAhamad, Algorithm::kEventual}) {
    if (token == algorithm_token(a)) return a;
  }
  return std::nullopt;
}

std::unique_ptr<IProtocol> make_protocol(Algorithm alg, SiteId self,
                                         const ReplicaMap& rmap, Services svc,
                                         const ProtocolOptions& opts) {
  auto protocol = make_protocol_impl(alg, self, rmap, std::move(svc), opts);
  if (opts.convergent || opts.fetch_timeout_us > 0 ||
      opts.store_engine.kind != store::EngineKind::kMap) {
    auto* base = dynamic_cast<ProtocolBase*>(protocol.get());
    CCPR_ASSERT(base != nullptr);
    base->set_convergent(opts.convergent);
    base->set_fetch_timeout(opts.fetch_timeout_us);
    if (opts.store_engine.kind != store::EngineKind::kMap) {
      base->configure_store_engine(opts.store_engine);
    }
  }
  return protocol;
}

}  // namespace ccpr::causal
