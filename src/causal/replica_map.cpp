#include "causal/replica_map.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ccpr::causal {

ReplicaMap::ReplicaMap(std::uint32_t n, std::vector<std::uint32_t> offsets,
                       std::vector<SiteId> flat)
    : n_(n), offsets_(std::move(offsets)), flat_(std::move(flat)) {}

ReplicaMap ReplicaMap::even(std::uint32_t n, std::uint32_t q,
                            std::uint32_t p) {
  CCPR_EXPECTS(n > 0 && q > 0);
  CCPR_EXPECTS(p >= 1 && p <= n);
  std::vector<std::uint32_t> offsets(q + 1);
  std::vector<SiteId> flat;
  flat.reserve(static_cast<std::size_t>(q) * p);
  for (VarId x = 0; x < q; ++x) {
    offsets[x] = static_cast<std::uint32_t>(flat.size());
    std::vector<SiteId> reps(p);
    for (std::uint32_t k = 0; k < p; ++k) reps[k] = (x + k) % n;
    std::sort(reps.begin(), reps.end());
    flat.insert(flat.end(), reps.begin(), reps.end());
  }
  offsets[q] = static_cast<std::uint32_t>(flat.size());
  return ReplicaMap(n, std::move(offsets), std::move(flat));
}

ReplicaMap ReplicaMap::full(std::uint32_t n, std::uint32_t q) {
  return even(n, q, n);
}

ReplicaMap ReplicaMap::custom(std::uint32_t n,
                              std::vector<std::vector<SiteId>> replicas) {
  CCPR_EXPECTS(n > 0);
  CCPR_EXPECTS(!replicas.empty());
  std::vector<std::uint32_t> offsets(replicas.size() + 1);
  std::vector<SiteId> flat;
  for (std::size_t x = 0; x < replicas.size(); ++x) {
    auto reps = replicas[x];
    CCPR_EXPECTS(!reps.empty());
    std::sort(reps.begin(), reps.end());
    reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
    CCPR_EXPECTS(reps.back() < n);
    offsets[x] = static_cast<std::uint32_t>(flat.size());
    flat.insert(flat.end(), reps.begin(), reps.end());
  }
  offsets[replicas.size()] = static_cast<std::uint32_t>(flat.size());
  return ReplicaMap(n, std::move(offsets), std::move(flat));
}

std::span<const SiteId> ReplicaMap::replicas(VarId x) const {
  CCPR_EXPECTS(x < vars());
  return {flat_.data() + offsets_[x], flat_.data() + offsets_[x + 1]};
}

bool ReplicaMap::replicated_at(VarId x, SiteId s) const {
  const auto reps = replicas(x);
  return std::binary_search(reps.begin(), reps.end(), s);
}

void ReplicaMap::set_site_distances(std::vector<std::uint32_t> dist) {
  CCPR_EXPECTS(dist.size() == static_cast<std::size_t>(n_) * n_);
  dist_ = std::move(dist);
}

std::uint32_t ReplicaMap::site_distance(SiteId from, SiteId to) const {
  CCPR_EXPECTS(from < n_ && to < n_);
  if (dist_.empty()) return (to + n_ - from) % n_;  // ring distance
  return dist_[static_cast<std::size_t>(from) * n_ + to];
}

/// Nearness key for fetch routing: plugged site distance first (0 == ring
/// distance when no matrix is set), ring distance and site id as
/// deterministic tie-breaks so equidistant intra-region replicas still
/// spread load around the ring.
std::tuple<std::uint32_t, std::uint32_t, SiteId> ReplicaMap::nearness(
    SiteId reader, SiteId s) const {
  const std::uint32_t ring = (s + n_ - reader) % n_;
  const std::uint32_t d =
      dist_.empty() ? ring : dist_[static_cast<std::size_t>(reader) * n_ + s];
  return {d, ring, s};
}

SiteId ReplicaMap::fetch_target(VarId x, SiteId reader) const {
  CCPR_EXPECTS(reader < n_);
  const auto reps = replicas(x);
  if (std::binary_search(reps.begin(), reps.end(), reader)) return reader;
  SiteId best = reps.front();
  auto best_key = nearness(reader, best);
  for (const SiteId s : reps) {
    const auto key = nearness(reader, s);
    if (key < best_key) {
      best = s;
      best_key = key;
    }
  }
  return best;
}

SiteId ReplicaMap::fetch_target_ranked(VarId x, SiteId reader,
                                       std::uint32_t rank) const {
  CCPR_EXPECTS(reader < n_);
  const auto reps = replicas(x);
  std::vector<SiteId> ordered(reps.begin(), reps.end());
  std::sort(ordered.begin(), ordered.end(), [&](SiteId a, SiteId b) {
    return nearness(reader, a) < nearness(reader, b);
  });
  return ordered[rank % ordered.size()];
}

SiteId ReplicaMap::fetch_target_ranked(
    VarId x, SiteId reader, std::uint32_t rank,
    const std::function<bool(SiteId)>& suspected,
    std::uint32_t* suspect_skips) const {
  if (suspect_skips != nullptr) *suspect_skips = 0;
  if (!suspected) return fetch_target_ranked(x, reader, rank);
  CCPR_EXPECTS(reader < n_);
  const auto reps = replicas(x);
  std::vector<SiteId> ordered(reps.begin(), reps.end());
  std::sort(ordered.begin(), ordered.end(), [&](SiteId a, SiteId b) {
    return nearness(reader, a) < nearness(reader, b);
  });
  // Healthy replicas first, suspected behind, nearness order within each
  // group. stable_partition keeps the sort's tie-breaks deterministic.
  const auto first_suspected = std::stable_partition(
      ordered.begin(), ordered.end(),
      [&](SiteId s) { return s == reader || !suspected(s); });
  const auto demoted =
      static_cast<std::uint32_t>(ordered.end() - first_suspected);
  if (suspect_skips != nullptr && first_suspected != ordered.begin()) {
    *suspect_skips = demoted;
  }
  return ordered[rank % ordered.size()];
}

std::vector<VarId> ReplicaMap::vars_at(SiteId s) const {
  CCPR_EXPECTS(s < n_);
  std::vector<VarId> out;
  for (VarId x = 0; x < vars(); ++x) {
    if (replicated_at(x, s)) out.push_back(x);
  }
  return out;
}

double ReplicaMap::replication_factor() const {
  return static_cast<double>(flat_.size()) / vars();
}

bool ReplicaMap::fully_replicated() const {
  return flat_.size() == static_cast<std::size_t>(n_) * vars();
}

}  // namespace ccpr::causal
