#include "causal/threaded_cluster.hpp"

#include <chrono>
#include <utility>

#include "util/assert.hpp"

namespace ccpr::causal {

namespace {

sim::SimTime wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadedCluster::ThreadedCluster(Algorithm alg, ReplicaMap rmap)
    : ThreadedCluster(alg, std::move(rmap), Options{}) {}

ThreadedCluster::ThreadedCluster(Algorithm alg, ReplicaMap rmap, Options opts)
    : rmap_(std::move(rmap)), opts_(opts) {
  const std::uint32_t n = rmap_.sites();
  transport_ = std::make_unique<net::ThreadTransport>(
      n, transport_metrics_,
      net::ThreadTransport::Options{.max_delay_us = opts_.max_delay_us,
                                    .delay_seed = opts_.delay_seed});
  nodes_.reserve(n);
  for (SiteId s = 0; s < n; ++s) {
    nodes_.push_back(std::make_unique<Node>());
    Node& node = *nodes_.back();
    Services svc;
    svc.send = [this](net::Message m) { transport_->send(std::move(m)); };
    svc.now = [] { return wall_now_us(); };
    svc.schedule = [this, s](sim::SimTime delay, std::function<void()> fn) {
      // Timer callbacks mutate protocol state, so they take the same
      // per-site mutex as deliveries and application calls.
      timers_.schedule_after(delay, [this, s, fn = std::move(fn)] {
        Node& target = *nodes_[s];
        {
          std::lock_guard lk(target.mu);
          fn();
        }
        target.cv.notify_all();
      });
    };
    svc.metrics = &node.metrics;
    svc.recorder = opts_.record_history ? &recorder_ : nullptr;
    node.proto = make_protocol(alg, s, rmap_, std::move(svc), opts_.protocol);
    transport_->connect(s, &node);
  }
  transport_->start();
  timers_.start();
}

ThreadedCluster::~ThreadedCluster() {
  // Stop timers before the transport so no callback races teardown.
  timers_.stop();
  transport_->stop();
}

void ThreadedCluster::write(SiteId s, VarId x, std::string data) {
  CCPR_EXPECTS(s < nodes_.size());
  Node& node = *nodes_[s];
  std::lock_guard lk(node.mu);
  node.proto->write(x, std::move(data));
}

Value ThreadedCluster::read(SiteId s, VarId x) {
  CCPR_EXPECTS(s < nodes_.size());
  Node& node = *nodes_[s];
  std::unique_lock lk(node.mu);
  std::optional<Value> result;
  // The continuation's borrow dies with the protocol entry, so one copy
  // into the optional is unavoidable; moving it out below keeps it the
  // only copy on this path.
  node.proto->read(x, [&result](const Value& v) { result = v; });
  // A remote read resumes when the mailbox thread delivers the fetch
  // response; the site mutex is released while we park.
  node.cv.wait(lk, [&result] { return result.has_value(); });
  return std::move(*result);
}

std::vector<Value> ThreadedCluster::read_many(
    SiteId s, const std::vector<VarId>& vars) {
  CCPR_EXPECTS(s < nodes_.size());
  for (const VarId x : vars) {
    // A remote fetch would have to release the site lock and lose
    // atomicity; snapshot reads are a local-replica feature.
    CCPR_EXPECTS(rmap_.replicated_at(x, s));
  }
  Node& node = *nodes_[s];
  std::lock_guard lk(node.mu);
  std::vector<Value> out;
  out.reserve(vars.size());
  for (const VarId x : vars) {
    node.proto->read(x, [&out](const Value& v) { out.push_back(v); });
  }
  CCPR_ENSURES(out.size() == vars.size());
  return out;
}

void ThreadedCluster::drain() { transport_->drain(); }

void ThreadedCluster::await_coverage(SiteId from, SiteId to) {
  CCPR_EXPECTS(from < nodes_.size() && to < nodes_.size());
  std::vector<std::uint8_t> token;
  {
    Node& a = *nodes_[from];
    std::lock_guard lk(a.mu);
    token = a.proto->coverage_token(to);
  }
  Node& b = *nodes_[to];
  std::unique_lock lk(b.mu);
  // Re-checked whenever b's mailbox thread applies something (it notifies
  // the condition variable after every delivery).
  b.cv.wait(lk, [&] { return b.proto->covered_by(token); });
}

std::size_t ThreadedCluster::pending_updates() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) {
    std::lock_guard lk(node->mu);
    total += node->proto->pending_update_count();
  }
  return total;
}

metrics::Metrics ThreadedCluster::metrics() const {
  metrics::Metrics merged = transport_metrics_;
  for (const auto& node : nodes_) {
    std::lock_guard lk(node->mu);
    merged.merge(node->metrics);
  }
  return merged;
}

Value ThreadedCluster::peek(SiteId s, VarId x) const {
  CCPR_EXPECTS(s < nodes_.size());
  Node& node = *nodes_[s];
  std::lock_guard lk(node.mu);
  return node.proto->peek(x);
}

}  // namespace ccpr::causal
