#include "causal/optp.hpp"

#include "util/assert.hpp"

namespace ccpr::causal {

OptP::OptP(SiteId self, const ReplicaMap& rmap, Services svc)
    : ProtocolBase(self, rmap, std::move(svc), /*fetch_gating=*/false),
      n_(rmap.sites()),
      write_(n_, 0),
      apply_(n_, 0) {
  CCPR_EXPECTS(rmap.fully_replicated());
}

void OptP::do_write(VarId x, std::string data) {
  CCPR_EXPECTS(x < rmap_.vars());
  const WriteId id = next_write_id();
  note_write_issued(x, id);
  ++write_[self_];

  Value v = make_value(id, std::move(data));
  const auto payload = static_cast<std::uint32_t>(v.data.size());

  net::Encoder enc;
  enc.varint(x);
  encode_value(enc, v);
  for (const std::uint64_t c : write_) enc.varint(c);
  const auto& body = enc.buffer();
  for (SiteId j = 0; j < n_; ++j) {
    if (j == self_) continue;
    net::Message msg;
    msg.kind = net::MsgKind::kUpdate;
    msg.src = self_;
    msg.dst = j;
    msg.body = body;
    msg.payload_bytes = payload;
    svc_.send(std::move(msg));
  }

  ++apply_[self_];
  last_write_on_[x] = write_;
  apply_own_write(x, std::move(v));
  sample_space();
}

bool OptP::ready(const Update& u) const {
  for (std::uint32_t k = 0; k < n_; ++k) {
    if (k == u.sender) continue;
    if (apply_[k] < u.w[k]) return false;
  }
  return apply_[u.sender] == u.w[u.sender] - 1;
}

void OptP::apply(Update&& u) {
  ++apply_[u.sender];
  last_write_on_[u.x] = std::move(u.w);
  apply_value(u.x, std::move(u.v), u.receipt);
}

void OptP::on_update(const net::Message& msg) {
  net::Decoder dec(msg.body);
  Update u;
  u.x = static_cast<VarId>(dec.varint());
  u.v = decode_value(dec);
  u.w.resize(n_);
  for (auto& c : u.w) c = dec.varint();
  u.sender = msg.src;
  u.receipt = svc_.now();
  CCPR_ASSERT(dec.ok());
  pending_.submit(
      std::move(u), [this](const Update& p) { return ready(p); },
      [this](Update&& p) { apply(std::move(p)); });
  svc_.metrics->note_pending(pending_.size());
  sample_space();
}

void OptP::merge_on_local_read(VarId x) {
  const auto it = last_write_on_.find(x);
  if (it == last_write_on_.end()) return;
  for (std::uint32_t k = 0; k < n_; ++k) {
    if (it->second[k] > write_[k]) write_[k] = it->second[k];
  }
}

void OptP::encode_fetch_resp_meta(net::Encoder&, VarId) {
  CCPR_UNREACHABLE("OptP requires full replication; reads are local");
}

void OptP::merge_fetch_resp_meta(VarId, SiteId, net::Decoder&) {
  CCPR_UNREACHABLE("OptP requires full replication; reads are local");
}

void OptP::serialize_meta(net::Encoder& enc) const {
  for (const std::uint64_t c : write_) enc.varint(c);
  for (const std::uint64_t a : apply_) enc.varint(a);
  enc.varint(last_write_on_.size());
  for (const auto& [x, w] : last_write_on_) {
    enc.varint(x);
    for (const std::uint64_t c : w) enc.varint(c);
  }
  const auto& pend = pending_.items();
  enc.varint(pend.size());
  for (const Update& u : pend) {
    enc.varint(u.x);
    encode_value(enc, u.v);
    enc.varint(u.sender);
    for (const std::uint64_t c : u.w) enc.varint(c);
  }
}

bool OptP::restore_meta(net::Decoder& dec) {
  for (std::uint64_t& c : write_) c = dec.varint();
  for (std::uint64_t& a : apply_) a = dec.varint();
  const std::uint64_t lw = dec.varint();
  if (!dec.ok()) return false;
  last_write_on_.clear();
  for (std::uint64_t i = 0; i < lw && dec.ok(); ++i) {
    const auto x = static_cast<VarId>(dec.varint());
    std::vector<std::uint64_t> w(n_, 0);
    for (std::uint64_t& c : w) c = dec.varint();
    last_write_on_[x] = std::move(w);
  }
  const std::uint64_t np = dec.varint();
  if (!dec.ok()) return false;
  std::vector<Update> pend;
  pend.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) {
    Update u;
    u.x = static_cast<VarId>(dec.varint());
    u.v = decode_value(dec);
    u.sender = static_cast<SiteId>(dec.varint());
    u.w.resize(n_);
    for (std::uint64_t& c : u.w) c = dec.varint();
    u.receipt = svc_.now();
    if (!dec.ok()) return false;
    pend.push_back(std::move(u));
  }
  pending_.restore(std::move(pend));
  return dec.ok();
}

void OptP::seal_local_meta() {
  for (const auto& [x, w] : last_write_on_) {
    for (std::uint32_t k = 0; k < n_; ++k) {
      if (w[k] > write_[k]) write_[k] = w[k];
    }
  }
}

std::uint64_t OptP::meta_state_bytes() const {
  const std::uint64_t vec_bytes =
      static_cast<std::uint64_t>(n_) * sizeof(std::uint64_t);
  return 2 * vec_bytes +
         static_cast<std::uint64_t>(last_write_on_.size()) *
             (sizeof(VarId) + vec_bytes);
}

void OptP::sample_space() {
  svc_.metrics->log_entries.add_sample(log_entry_count());
  svc_.metrics->meta_state_bytes.add_sample(meta_state_bytes());
}


// Coverage tokens under full replication: the Apply vector is the causal
// frontier, and every write reaches every site, so "target has applied at
// least what I have applied" is exactly session freshness.
void OptP::encode_fetch_req_meta(net::Encoder& enc, VarId /*x*/,
                                  SiteId /*target*/) {
  for (const std::uint64_t a : apply_) enc.varint(a);
}

bool OptP::fetch_ready(VarId /*x*/, net::Decoder& meta) {
  for (std::size_t z = 0; z < apply_.size(); ++z) {
    const std::uint64_t need = meta.varint();
    if (apply_[z] < need) return false;
  }
  CCPR_ASSERT(meta.ok());
  return true;
}

}  // namespace ccpr::causal
