#include "causal/shard_map.hpp"

#include "net/wire.hpp"

namespace ccpr::causal {

net::Message wrap_shard_envelope(std::uint32_t shard,
                                 const std::vector<ShardToken>& tokens,
                                 const net::Message& inner) {
  net::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(inner.kind));
  enc.varint(shard);
  enc.varint(tokens.size());
  for (const ShardToken& t : tokens) {
    enc.varint(t.shard);
    enc.varint(t.token.size());
    enc.raw(t.token.data(), t.token.size());
  }
  enc.raw(inner.body.data(), inner.body.size());

  net::Message env;
  env.kind = net::MsgKind::kShardEnvelope;
  env.src = inner.src;
  env.dst = inner.dst;
  env.body = enc.take();
  env.payload_bytes = inner.payload_bytes;
  env.chan_epoch = inner.chan_epoch;
  env.chan_seq = inner.chan_seq;
  return env;
}

std::optional<ShardEnvelope> unwrap_shard_envelope(const net::Message& env) {
  if (env.kind != net::MsgKind::kShardEnvelope || env.body.empty()) {
    return std::nullopt;
  }
  net::Decoder dec(env.body);
  const std::uint8_t inner_kind = dec.u8();
  if (inner_kind < static_cast<std::uint8_t>(net::MsgKind::kUpdate) ||
      inner_kind >= static_cast<std::uint8_t>(net::MsgKind::kShardEnvelope)) {
    return std::nullopt;  // nested envelopes are not a thing
  }
  ShardEnvelope out;
  out.shard = static_cast<std::uint32_t>(dec.varint());
  const std::uint64_t ntokens = dec.varint();
  if (!dec.ok() || ntokens > env.body.size()) return std::nullopt;
  out.tokens.reserve(static_cast<std::size_t>(ntokens));
  for (std::uint64_t i = 0; i < ntokens; ++i) {
    ShardToken t;
    t.shard = static_cast<std::uint32_t>(dec.varint());
    const std::uint64_t len = dec.varint();
    if (!dec.ok() || len > dec.remaining()) return std::nullopt;
    const std::string raw = dec.raw(static_cast<std::size_t>(len));
    t.token.assign(raw.begin(), raw.end());
    out.tokens.push_back(std::move(t));
  }
  if (!dec.ok()) return std::nullopt;
  out.inner.kind = static_cast<net::MsgKind>(inner_kind);
  out.inner.src = env.src;
  out.inner.dst = env.dst;
  const std::string rest = dec.raw(dec.remaining());
  out.inner.body.assign(rest.begin(), rest.end());
  out.inner.payload_bytes = env.payload_bytes;
  out.inner.chan_epoch = env.chan_epoch;
  out.inner.chan_seq = env.chan_seq;
  return out;
}

std::vector<std::uint8_t> combine_shard_tokens(
    const std::vector<std::vector<std::uint8_t>>& per_shard) {
  if (per_shard.size() == 1) return per_shard[0];
  net::Encoder enc;
  enc.varint(per_shard.size());
  for (const auto& t : per_shard) {
    enc.varint(t.size());
    enc.raw(t.data(), t.size());
  }
  return enc.take();
}

std::optional<std::vector<std::vector<std::uint8_t>>> split_shard_tokens(
    const std::vector<std::uint8_t>& combined, std::uint32_t shards) {
  if (shards <= 1) return std::vector<std::vector<std::uint8_t>>{combined};
  net::Decoder dec(combined);
  const std::uint64_t n = dec.varint();
  if (!dec.ok() || n != shards) return std::nullopt;
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    const std::uint64_t len = dec.varint();
    if (!dec.ok() || len > dec.remaining()) return std::nullopt;
    const std::string raw = dec.raw(static_cast<std::size_t>(len));
    out.emplace_back(raw.begin(), raw.end());
  }
  if (!dec.ok() || !dec.exhausted()) return std::nullopt;
  return out;
}

}  // namespace ccpr::causal
