// Core identifier and value types shared across the causal-memory protocols.
#pragma once

#include <cstdint>
#include <string>

namespace ccpr::causal {

/// Site identifier. The paper colocates application process ap_i with site
/// s_i, so a SiteId also names the application process.
using SiteId = std::uint32_t;

/// Shared-memory variable identifier (x_1 .. x_q in the paper).
using VarId = std::uint32_t;

inline constexpr SiteId kNoSite = 0xffffffffu;

/// Globally unique identity of a write operation: (writer, per-writer
/// sequence number). seq == 0 denotes "no write" (a variable's initial
/// value). Sequence numbers start at 1 and increase with program order, so
/// WriteIds double as per-writer FIFO positions.
struct WriteId {
  SiteId writer = kNoSite;
  std::uint64_t seq = 0;

  bool is_initial() const noexcept { return seq == 0; }

  friend bool operator==(const WriteId&, const WriteId&) = default;
};

/// A stored value: the payload plus the identity of the write that produced
/// it and a Lamport timestamp. The identity travels on the wire so the
/// offline checker can rebuild the read-from relation; the Lamport clock
/// orders writes consistently with causality and drives the causal+ LWW
/// convergence rule (causally later => strictly larger). Both are accounted
/// as control bytes.
struct Value {
  WriteId id;
  std::uint64_t lamport = 0;
  std::string data;
};

/// The algorithms implemented by this library.
enum class Algorithm : std::uint8_t {
  kFullTrack,     ///< paper Alg. 1: n x n Write matrix, optimal activation
  kOptTrack,      ///< paper Alg. 2+3: KS-pruned logs, partial replication
  kOptTrackCRP,   ///< paper Alg. 4: full-replication specialization
  kOptP,          ///< Baldoni et al. baseline (full replication)
  kAhamad,        ///< Ahamad et al. A_ORG baseline (false causality)
  kEventual,      ///< apply-on-receipt; intentionally NOT causal
};

const char* algorithm_name(Algorithm a) noexcept;

}  // namespace ccpr::causal
