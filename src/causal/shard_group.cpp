#include "causal/shard_group.hpp"

#include <string_view>

#include "net/wire.hpp"
#include "util/assert.hpp"

namespace ccpr::causal {

ShardGroup::ShardGroup(std::uint32_t shards, SiteId self, Services svc,
                       const ProtocolBuilder& builder)
    : map_(shards), self_(self), outer_(std::move(svc)) {
  (void)self_;
  inner_.reserve(map_.shards());
  for (std::uint32_t k = 0; k < map_.shards(); ++k) {
    Services sk = outer_;
    sk.send = [this, k](net::Message m) { group_send(k, std::move(m)); };
    if (outer_.schedule) {
      // Timer callbacks are protocol entry points: applying a deferred
      // fetch/activation can cover parked cross-shard tokens, so re-scan
      // after every one.
      sk.schedule = [this](sim::SimTime delay, std::function<void()> fn) {
        outer_.schedule(delay, [this, fn = std::move(fn)] {
          fn();
          rescan_parked();
        });
      };
    }
    inner_.push_back(builder(k, std::move(sk)));
    CCPR_ASSERT(inner_.back() != nullptr);
  }
}

void ShardGroup::group_send(std::uint32_t from_shard, net::Message m) {
  if (map_.shards() == 1) {
    outer_.send(std::move(m));
    return;
  }
  std::vector<ShardToken> tokens;
  // Only messages that carry causal state forward need dependency tokens:
  // updates (the receiver must not apply w before its cross-shard past) and
  // fetch responses (the reader must not return v before v's cross-shard
  // past is applied locally). Requests are wrapped for demux only.
  if (m.kind == net::MsgKind::kUpdate || m.kind == net::MsgKind::kFetchResp) {
    tokens.reserve(map_.shards() - 1);
    for (std::uint32_t j = 0; j < map_.shards(); ++j) {
      if (j == from_shard) continue;
      tokens.push_back(ShardToken{j, inner_[j]->coverage_token(m.dst)});
    }
  }
  outer_.send(wrap_shard_envelope(from_shard, tokens, m));
}

void ShardGroup::write(VarId x, std::string data) {
  const std::uint32_t k = map_.shard_of(x);
  inner_[k]->write(x, std::move(data));
  last_write_shard_ = k;
  has_local_write_ = true;
}

void ShardGroup::read(VarId x, ReadContinuation k) {
  inner_[map_.shard_of(x)]->read(x, std::move(k));
}

void ShardGroup::on_message(const net::Message& msg) {
  if (map_.shards() == 1) {
    inner_[0]->on_message(msg);
    return;
  }
  if (msg.kind != net::MsgKind::kShardEnvelope) {
    // A sharded site only exchanges envelopes with peers (heartbeats are
    // handled by the runtime before the protocol sees them).
    CCPR_DEBUG_ASSERT(false && "non-envelope message at sharded site");
    ++malformed_;
    return;
  }
  std::optional<ShardEnvelope> env = unwrap_shard_envelope(msg);
  if (!env || env->shard >= map_.shards()) {
    ++malformed_;
    return;
  }
  parked_[{msg.src, env->shard}].push_back(std::move(*env));
  ++parked_total_;
  rescan_parked();
}

bool ShardGroup::head_ready(const ShardEnvelope& env) {
  for (const ShardToken& t : env.tokens) {
    if (t.shard >= map_.shards()) return true;  // stale token: ignore
    if (!inner_[t.shard]->covered_by(t.token)) return false;
  }
  return true;
}

void ShardGroup::rescan_parked() {
  // A read continuation delivered below may synchronously issue further
  // ShardGroup operations; the guard turns such nested re-scans into no-ops
  // while the outer loop runs to its fixpoint.
  if (rescanning_ || parked_total_ == 0) return;
  rescanning_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = parked_.begin(); it != parked_.end();) {
      std::deque<ShardEnvelope>& q = it->second;
      while (!q.empty() && head_ready(q.front())) {
        ShardEnvelope env = std::move(q.front());
        q.pop_front();
        --parked_total_;
        progress = true;
        inner_[env.shard]->on_message(env.inner);
      }
      if (q.empty()) {
        it = parked_.erase(it);
      } else {
        ++it;
      }
    }
  }
  rescanning_ = false;
}

WriteId ShardGroup::last_write_id() const {
  return inner_[has_local_write_ ? last_write_shard_ : 0]->last_write_id();
}

const Value& ShardGroup::peek(VarId x) const {
  return inner_[map_.shard_of(x)]->peek(x);
}

std::vector<std::uint8_t> ShardGroup::coverage_token(SiteId target) {
  std::vector<std::vector<std::uint8_t>> per;
  per.reserve(map_.shards());
  for (auto& p : inner_) per.push_back(p->coverage_token(target));
  return combine_shard_tokens(per);
}

bool ShardGroup::covered_by(const std::vector<std::uint8_t>& token) {
  const auto split = split_shard_tokens(token, map_.shards());
  if (!split) return false;
  for (std::uint32_t k = 0; k < map_.shards(); ++k) {
    if (!inner_[k]->covered_by((*split)[k])) return false;
  }
  return true;
}

void ShardGroup::serialize_state(net::Encoder& enc) const {
  enc.varint(map_.shards());
  for (const auto& p : inner_) {
    net::Encoder sub;
    p->serialize_state(sub);
    enc.bytes(std::string_view(
        reinterpret_cast<const char*>(sub.buffer().data()),
        sub.buffer().size()));
  }
  enc.varint(parked_total_);
  for (const auto& [key, q] : parked_) {
    for (const ShardEnvelope& env : q) {
      const net::Message m =
          wrap_shard_envelope(env.shard, env.tokens, env.inner);
      enc.varint(m.src);
      enc.varint(m.dst);
      enc.varint(m.payload_bytes);
      enc.varint(m.chan_epoch);
      enc.varint(m.chan_seq);
      enc.bytes(std::string_view(reinterpret_cast<const char*>(m.body.data()),
                                 m.body.size()));
    }
  }
}

bool ShardGroup::restore_state(net::Decoder& dec) {
  if (dec.varint() != map_.shards() || !dec.ok()) return false;
  for (auto& p : inner_) {
    const std::string s = dec.bytes();
    if (!dec.ok()) return false;
    net::Decoder sub(reinterpret_cast<const std::uint8_t*>(s.data()),
                     s.size());
    if (!p->restore_state(sub)) return false;
  }
  const std::uint64_t nparked = dec.varint();
  if (!dec.ok()) return false;
  for (std::uint64_t i = 0; i < nparked; ++i) {
    net::Message m;
    m.kind = net::MsgKind::kShardEnvelope;
    m.src = static_cast<SiteId>(dec.varint());
    m.dst = static_cast<SiteId>(dec.varint());
    m.payload_bytes = static_cast<std::uint32_t>(dec.varint());
    m.chan_epoch = dec.varint();
    m.chan_seq = dec.varint();
    const std::string body = dec.bytes();
    if (!dec.ok()) return false;
    m.body.assign(body.begin(), body.end());
    std::optional<ShardEnvelope> env = unwrap_shard_envelope(m);
    if (!env || env->shard >= map_.shards()) return false;
    parked_[{m.src, env->shard}].push_back(std::move(*env));
    ++parked_total_;
  }
  rescan_parked();
  return true;
}

void ShardGroup::replay_meta_merge(VarId x, SiteId responder,
                                   const std::uint8_t* data, std::size_t len) {
  inner_[map_.shard_of(x)]->replay_meta_merge(x, responder, data, len);
}

void ShardGroup::merge_all_local_meta() {
  for (auto& p : inner_) p->merge_all_local_meta();
}

void ShardGroup::on_durable_checkpoint(std::uint64_t gen) {
  for (auto& p : inner_) p->on_durable_checkpoint(gen);
}

store::EngineStats ShardGroup::store_stats() const {
  store::EngineStats sum = inner_[0]->store_stats();
  for (std::size_t k = 1; k < inner_.size(); ++k) {
    const store::EngineStats s = inner_[k]->store_stats();
    sum.keys += s.keys;
    sum.resident_bytes += s.resident_bytes;
    sum.index_slots += s.index_slots;
    sum.lookups += s.lookups;
    sum.probes += s.probes;
    sum.spilled_keys += s.spilled_keys;
    sum.spill_segment_bytes += s.spill_segment_bytes;
    sum.spill_reads += s.spill_reads;
    sum.spill_writes += s.spill_writes;
    sum.compactions += s.compactions;
  }
  return sum;
}

std::size_t ShardGroup::pending_update_count() const {
  std::size_t n = parked_total_;
  for (const auto& p : inner_) n += p->pending_update_count();
  return n;
}

std::uint64_t ShardGroup::log_entry_count() const {
  std::uint64_t n = 0;
  for (const auto& p : inner_) n += p->log_entry_count();
  return n;
}

std::uint64_t ShardGroup::meta_state_bytes() const {
  std::uint64_t n = 0;
  for (const auto& p : inner_) n += p->meta_state_bytes();
  return n;
}

Algorithm ShardGroup::algorithm() const { return inner_[0]->algorithm(); }

}  // namespace ccpr::causal
