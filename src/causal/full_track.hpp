// Algorithm Full-Track (paper Algorithm 1).
//
// Implements the optimal activation predicate A_OPT under partial
// replication by tracking, per (writer, destination) pair, how many writes
// are in the causal past under ->co. Piggybacked matrices are merged into
// the local clock only when the corresponding value is *read* (not when the
// message is received), which is exactly what prunes false causality.
#pragma once

#include <unordered_map>

#include "causal/matrix_clock.hpp"
#include "causal/protocol_base.hpp"

namespace ccpr::causal {

class FullTrack final : public ProtocolBase {
 public:
  struct Options {
    /// Gate RemoteFetch responses on the reader's causal past (DESIGN.md §6:
    /// prevents causally stale remote reads; the paper's pseudo-code does
    /// not gate). Costs n varints on each fetch request.
    bool fetch_gating = true;
  };

  FullTrack(SiteId self, const ReplicaMap& rmap, Services svc);
  FullTrack(SiteId self, const ReplicaMap& rmap, Services svc,
            Options options);

  void do_write(VarId x, std::string data) override;

  std::size_t pending_update_count() const override { return pending_.size(); }
  std::uint64_t log_entry_count() const override;
  std::uint64_t meta_state_bytes() const override;
  Algorithm algorithm() const override { return Algorithm::kFullTrack; }

  /// Test hooks.
  const MatrixClock& write_clock() const noexcept { return write_; }
  std::uint64_t applied_from(SiteId j) const { return apply_[j]; }

 protected:
  void on_update(const net::Message& msg) override;
  void merge_on_local_read(VarId x) override;
  void encode_fetch_req_meta(net::Encoder& enc, VarId x,
                             SiteId target) override;
  bool fetch_ready(VarId x, net::Decoder& meta) override;
  void encode_fetch_resp_meta(net::Encoder& enc, VarId x) override;
  void merge_fetch_resp_meta(VarId x, SiteId responder,
                             net::Decoder& dec) override;
  bool locally_covered() const override;
  void serialize_meta(net::Encoder& enc) const override;
  bool restore_meta(net::Decoder& dec) override;
  void seal_local_meta() override;

 private:
  struct Update {
    VarId x;
    Value v;
    SiteId sender;
    MatrixClock w;
    sim::SimTime receipt;
  };

  bool ready(const Update& u) const;
  void apply(Update&& u);
  void sample_space();

  std::uint32_t n_;
  MatrixClock write_;
  std::vector<std::uint64_t> apply_;
  std::unordered_map<VarId, MatrixClock> last_write_on_;
  PendingBuffer<Update> pending_;
};

}  // namespace ccpr::causal
