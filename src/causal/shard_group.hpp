// N engine shards behind one IProtocol facade, for the sim and threaded
// runtimes.
//
// ShardGroup partitions a site's keyspace over N inner protocol instances
// via the cluster-wide causal::ShardMap. Each inner protocol believes it is
// the whole site (full ReplicaMap — causal metadata is per-site, not
// per-variable, so the partition is safe); it just never sees operations on
// variables outside its shard. Cross-shard causal order is restored on the
// wire: every outbound protocol message is wrapped in a kShardEnvelope
// carrying, for each *other* local shard, that shard's coverage token for
// the destination site. The receiving ShardGroup parks an envelope until
// its own shards cover the attached tokens, preserving per-(src, shard)
// FIFO order while parked.
//
// With shards == 1 the group is a strict passthrough: no envelopes, no
// token calls, byte-identical wire traffic to an unsharded site.
//
// Single-writer contract: ShardGroup is one protocol instance to its
// runtime, so all entry points are already serialized; the inner instances
// then run strictly within those calls. Calling inner j's coverage_token
// from inside inner k's send hook is legal — the re-entrancy guard is
// per-instance, and j != k always holds there.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "causal/protocol.hpp"
#include "causal/shard_map.hpp"

namespace ccpr::causal {

class ShardGroup final : public IProtocol {
 public:
  /// Builds the inner protocol instance for shard `k`, bound to `svc`. The
  /// index lets the builder give each shard private disk paths (spill
  /// directories) when the store engine needs them.
  using ProtocolBuilder =
      std::function<std::unique_ptr<IProtocol>(std::uint32_t k, Services svc)>;

  ShardGroup(std::uint32_t shards, SiteId self, Services svc,
             const ProtocolBuilder& builder);

  // ---- IProtocol ----
  void write(VarId x, std::string data) override;
  void read(VarId x, ReadContinuation k) override;
  void on_message(const net::Message& msg) override;
  WriteId last_write_id() const override;
  const Value& peek(VarId x) const override;
  std::vector<std::uint8_t> coverage_token(SiteId target) override;
  bool covered_by(const std::vector<std::uint8_t>& token) override;
  void serialize_state(net::Encoder& enc) const override;
  bool restore_state(net::Decoder& dec) override;
  void replay_meta_merge(VarId x, SiteId responder, const std::uint8_t* data,
                         std::size_t len) override;
  void merge_all_local_meta() override;
  void on_durable_checkpoint(std::uint64_t gen) override;
  store::EngineStats store_stats() const override;
  std::size_t pending_update_count() const override;
  std::uint64_t log_entry_count() const override;
  std::uint64_t meta_state_bytes() const override;
  Algorithm algorithm() const override;

  const ShardMap& shard_map() const noexcept { return map_; }
  std::uint32_t shards() const noexcept { return map_.shards(); }
  IProtocol& shard(std::uint32_t k) { return *inner_[k]; }

  /// Envelopes currently parked on unmet cross-shard tokens (all channels).
  std::size_t parked_envelope_count() const noexcept { return parked_total_; }
  /// Envelopes dropped because their body failed to decode.
  std::uint64_t malformed_envelopes() const noexcept { return malformed_; }

 private:
  void group_send(std::uint32_t from_shard, net::Message m);
  bool head_ready(const ShardEnvelope& env);
  /// Deliver every channel head whose tokens are covered; loops to a
  /// fixpoint since each delivery can cover further tokens.
  void rescan_parked();

  ShardMap map_;
  SiteId self_;
  Services outer_;
  std::vector<std::unique_ptr<IProtocol>> inner_;
  std::uint32_t last_write_shard_ = 0;
  bool has_local_write_ = false;

  // Per-(src site, shard) FIFO of parked envelopes. Only the head of each
  // channel is eligible; later entries wait behind it to preserve channel
  // order. std::map keeps rescan order deterministic for the simulator.
  std::map<std::pair<SiteId, std::uint32_t>, std::deque<ShardEnvelope>>
      parked_;
  std::size_t parked_total_ = 0;
  std::uint64_t malformed_ = 0;
  bool rescanning_ = false;
};

}  // namespace ccpr::causal
