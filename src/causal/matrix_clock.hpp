// The n x n Write matrix clock of Algorithm Full-Track.
// Write[j][k] = number of write operations by application process ap_j
// destined to site s_k that are in the causal past under the ->co relation.
#pragma once

#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "util/assert.hpp"

namespace ccpr::causal {

class MatrixClock {
 public:
  MatrixClock() = default;
  explicit MatrixClock(std::uint32_t n)
      : n_(n), cells_(static_cast<std::size_t>(n) * n, 0) {}

  std::uint32_t n() const noexcept { return n_; }

  std::uint64_t at(std::uint32_t j, std::uint32_t k) const noexcept {
    CCPR_EXPECTS(j < n_ && k < n_);
    return cells_[static_cast<std::size_t>(j) * n_ + k];
  }

  std::uint64_t& at(std::uint32_t j, std::uint32_t k) noexcept {
    CCPR_EXPECTS(j < n_ && k < n_);
    return cells_[static_cast<std::size_t>(j) * n_ + k];
  }

  /// Elementwise max — the paper's merge of a piggybacked clock into the
  /// local clock, deferred to read time to avoid false causality.
  void merge_max(const MatrixClock& other) noexcept {
    CCPR_EXPECTS(n_ == other.n_);
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (other.cells_[i] > cells_[i]) cells_[i] = other.cells_[i];
    }
  }

  void encode(net::Encoder& enc) const {
    for (const std::uint64_t c : cells_) enc.varint(c);
  }

  static MatrixClock decode(net::Decoder& dec, std::uint32_t n) {
    MatrixClock m(n);
    for (auto& c : m.cells_) c = dec.varint();
    return m;
  }

  /// In-memory footprint used for the space metric.
  std::uint64_t byte_size() const noexcept {
    return static_cast<std::uint64_t>(cells_.size()) * sizeof(std::uint64_t);
  }

  friend bool operator==(const MatrixClock&, const MatrixClock&) = default;

 private:
  std::uint32_t n_ = 0;
  std::vector<std::uint64_t> cells_;
};

}  // namespace ccpr::causal
