// Construction of protocol instances by Algorithm tag.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "causal/protocol.hpp"
#include "causal/replica_map.hpp"

namespace ccpr::causal {

/// Algorithm-independent superset of per-protocol options; each protocol
/// picks out the flags it understands.
struct ProtocolOptions {
  /// Gate RemoteFetch responses on the reader's causal past (protocols with
  /// non-local reads only; see DESIGN.md §6).
  bool fetch_gating = true;
  /// Opt-Track pruning ablation switches.
  bool prune_cond1 = true;
  bool prune_cond2 = true;
  /// Opt-Track §III-B distributed-write-processing optimization.
  bool distribute_write = false;
  /// Opt-Track: use the paper's (unsound) Algorithm 3 MERGE verbatim.
  bool aggressive_merge = false;
  /// Causal+ (paper §V): converge replicas via a deterministic LWW rule at
  /// apply time. Works with every algorithm.
  bool convergent = false;
  /// §V availability: RemoteFetch timeout before contacting a secondary
  /// replica (microseconds of virtual time; 0 disables).
  sim::SimTime fetch_timeout_us = 0;
  /// Which value-store engine backs the local variable store, plus its
  /// tuning (shards, inline threshold, cold-value spill). Defaults to the
  /// reference MapEngine.
  store::EngineOptions store_engine{};
  /// Partition the site's keyspace over this many independent engine
  /// shards (causal::ShardGroup; cluster-wide — every site must agree).
  /// 1 = unsharded, byte-identical to the pre-sharding behavior. The TCP
  /// runtime implements sharding in server::ShardedEngine instead and
  /// always builds single-shard protocols.
  std::uint32_t engine_shards = 1;
  /// Carve the per-writer WriteId sequence space: the protocol issues seqs
  /// offset+1, offset+1+stride, offset+1+2*stride, ... Shard k of N uses
  /// (k, N) so the shards of one site never collide on (writer, seq) — the
  /// checker treats WriteIds as globally unique identities. The defaults
  /// are the dense unsharded space 1, 2, 3, ...
  std::uint64_t write_seq_offset = 0;
  std::uint64_t write_seq_stride = 1;
};

std::unique_ptr<IProtocol> make_protocol(Algorithm alg, SiteId self,
                                         const ReplicaMap& rmap, Services svc,
                                         const ProtocolOptions& opts = {});

/// CLI/config token for an algorithm ("opt-track", "full-track", ...), the
/// inverse of algorithm_from_token. Distinct from algorithm_name(), which
/// is the display name.
const char* algorithm_token(Algorithm a) noexcept;

/// Parse a CLI/config token; nullopt if unknown. Shared by the experiment
/// tools and the cluster-config loader so they cannot drift.
std::optional<Algorithm> algorithm_from_token(std::string_view token);

}  // namespace ccpr::causal
