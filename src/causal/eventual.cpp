#include "causal/eventual.hpp"

#include "util/assert.hpp"

namespace ccpr::causal {

Eventual::Eventual(SiteId self, const ReplicaMap& rmap, Services svc)
    : ProtocolBase(self, rmap, std::move(svc), /*fetch_gating=*/false) {}

void Eventual::do_write(VarId x, std::string data) {
  CCPR_EXPECTS(x < rmap_.vars());
  const WriteId id = next_write_id();
  note_write_issued(x, id);

  Value v = make_value(id, std::move(data));
  const auto payload = static_cast<std::uint32_t>(v.data.size());

  net::Encoder enc;
  enc.varint(x);
  encode_value(enc, v);
  const auto& body = enc.buffer();
  for (const SiteId j : rmap_.replicas(x)) {
    if (j == self_) continue;
    net::Message msg;
    msg.kind = net::MsgKind::kUpdate;
    msg.src = self_;
    msg.dst = j;
    msg.body = body;
    msg.payload_bytes = payload;
    svc_.send(std::move(msg));
  }

  if (rmap_.replicated_at(x, self_)) {
    apply_own_write(x, std::move(v));
  }
}

void Eventual::on_update(const net::Message& msg) {
  net::Decoder dec(msg.body);
  const auto x = static_cast<VarId>(dec.varint());
  Value v = decode_value(dec);
  CCPR_ASSERT(dec.ok());
  apply_value(x, std::move(v), svc_.now());
}

}  // namespace ccpr::causal
