// Deterministic VarId -> engine-shard map plus the shard-envelope codec.
//
// A site running with `engine-shards N` partitions its keyspace into N
// independent protocol instances ("engine shards"). Every runtime — sim,
// threaded, TCP — derives the same partition from the cluster-wide shard
// count, so shard k's protocol at site i only ever talks to shard k's
// protocol at site j. Cross-shard causal dependencies are carried on the
// wire as explicit coverage tokens (the same freshness requirement client
// session migration already uses): an update sent by shard k is wrapped in
// a kShardEnvelope that names the shard and attaches, for every *other*
// shard at the sending site, that shard's coverage token for the
// destination. The receiver holds the inner message until its own shards
// cover those tokens, which restores exactly the cross-shard causal order
// the single-engine runtime got for free.
//
// Envelope body layout (inner kind first, so transports can classify
// metrics by peeking one byte):
//
//   [u8 inner_kind][varint shard][varint ntokens]
//     { [varint shard_j][varint token_len][token bytes] }*
//   [inner body, raw]
//
// The envelope message copies src/dst/chan_epoch/chan_seq/payload_bytes
// from the inner message, so per-channel FIFO dedup and the paper's
// metadata-bytes accounting (control_bytes = frame minus payload) keep
// working; token bytes are automatically counted as metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "causal/types.hpp"
#include "net/message.hpp"

namespace ccpr::causal {

/// Deterministic, version-stable VarId -> shard map. All sites and all
/// runtimes must agree on it, so it is a fixed mixer hash — never derived
/// from runtime state.
class ShardMap {
 public:
  ShardMap() = default;
  explicit ShardMap(std::uint32_t shards) : shards_(shards ? shards : 1) {}

  std::uint32_t shards() const noexcept { return shards_; }

  std::uint32_t shard_of(VarId x) const noexcept {
    if (shards_ == 1) return 0;
    return static_cast<std::uint32_t>(mix(x) % shards_);
  }

  /// The stable 64-bit mixer behind shard_of (splitmix64 finalizer).
  /// Exposed so the distribution/stability unit test can pin golden values.
  static std::uint64_t mix(VarId x) noexcept {
    std::uint64_t z = static_cast<std::uint64_t>(x) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint32_t shards_ = 1;
};

/// One cross-shard dependency: "the destination site's shard `shard` must
/// cover `token` before the enveloped message may be applied".
struct ShardToken {
  std::uint32_t shard = 0;
  std::vector<std::uint8_t> token;
};

/// A decoded shard envelope: the target shard, the cross-shard dependency
/// tokens, and the reconstructed inner message.
struct ShardEnvelope {
  std::uint32_t shard = 0;
  std::vector<ShardToken> tokens;
  net::Message inner;
};

/// Wrap `inner` in a kShardEnvelope addressed to shard `shard` at the
/// destination. Channel/accounting fields are copied from the inner
/// message (see file comment).
net::Message wrap_shard_envelope(std::uint32_t shard,
                                 const std::vector<ShardToken>& tokens,
                                 const net::Message& inner);

/// Decode an envelope produced by wrap_shard_envelope. Returns nullopt on
/// a malformed body (wrong kind, truncated tokens, bad inner kind).
std::optional<ShardEnvelope> unwrap_shard_envelope(const net::Message& env);

/// Peek the inner message kind of an envelope body without decoding it
/// (for transport metric classification). Returns 0 on an empty body.
inline std::uint8_t shard_envelope_inner_kind(
    const std::vector<std::uint8_t>& body) noexcept {
  return body.empty() ? 0 : body[0];
}

// ---- multi-shard session tokens -------------------------------------------
//
// Client-visible coverage tokens for a sharded site are the framed
// concatenation of every shard's token:
//
//   [varint nshards] { [varint token_len][token bytes] }*
//
// With one shard the raw single-protocol token is used unchanged, so
// `engine-shards 1` stays byte-identical to the unsharded build.

/// Concatenate per-shard tokens into one client-visible session token.
/// `per_shard[k]` is shard k's token. Passthrough when size() == 1.
std::vector<std::uint8_t> combine_shard_tokens(
    const std::vector<std::vector<std::uint8_t>>& per_shard);

/// Split a combined token back into per-shard tokens. `shards` is the
/// expected count; nullopt on malformed input or count mismatch (callers
/// treat that like any other garbage token: not covered). Passthrough when
/// shards == 1.
std::optional<std::vector<std::vector<std::uint8_t>>> split_shard_tokens(
    const std::vector<std::uint8_t>& combined, std::uint32_t shards);

}  // namespace ccpr::causal
