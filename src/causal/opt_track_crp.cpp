#include "causal/opt_track_crp.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ccpr::causal {

OptTrackCRP::OptTrackCRP(SiteId self, const ReplicaMap& rmap, Services svc)
    : ProtocolBase(self, rmap, std::move(svc), /*fetch_gating=*/false),
      apply_(rmap.sites(), 0) {
  CCPR_EXPECTS(rmap.fully_replicated());
}

void OptTrackCRP::do_write(VarId x, std::string data) {
  CCPR_EXPECTS(x < rmap_.vars());
  // clock_ mirrors the (possibly strided) WriteId seq; ready() is a
  // threshold test, so seq-space gaps on sharded sites are harmless.
  const WriteId id = next_write_id();
  clock_ = id.seq;
  note_write_issued(x, id);

  Value v = make_value(id, std::move(data));
  const auto payload = static_cast<std::uint32_t>(v.data.size());

  net::Encoder enc;
  enc.varint(x);
  encode_value(enc, v);
  enc.varint(clock_);
  enc.varint(log_.size());
  for (const Entry& e : log_) {
    enc.varint(e.sender);
    enc.varint(e.clock);
  }
  const auto& body = enc.buffer();
  const std::uint32_t n = rmap_.sites();
  for (SiteId j = 0; j < n; ++j) {
    if (j == self_) continue;
    net::Message msg;
    msg.kind = net::MsgKind::kUpdate;
    msg.src = self_;
    msg.dst = j;
    msg.body = body;
    msg.payload_bytes = payload;
    svc_.send(std::move(msg));
  }

  // Fig. 3: the new write subsumes everything in the log.
  log_.assign(1, Entry{self_, clock_});
  apply_[self_] = clock_;
  last_write_on_[x] = Entry{self_, clock_};
  apply_own_write(x, std::move(v));
  sample_space();
}

bool OptTrackCRP::ready(const Update& u) const {
  for (const Entry& o : u.log) {
    if (apply_[o.sender] < o.clock) return false;
  }
  return true;
}

void OptTrackCRP::apply(Update&& u) {
  apply_[u.sender] = u.clock;
  last_write_on_[u.x] = Entry{u.sender, u.clock};
  apply_value(u.x, std::move(u.v), u.receipt);
}

void OptTrackCRP::on_update(const net::Message& msg) {
  net::Decoder dec(msg.body);
  Update u;
  u.x = static_cast<VarId>(dec.varint());
  u.v = decode_value(dec);
  u.clock = dec.varint();
  const std::uint64_t k = dec.varint();
  // Bound the reserve by what the buffer could possibly hold (2+ bytes per
  // entry) — the count is untrusted wire data.
  u.log.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(k, dec.remaining() / 2)));
  for (std::uint64_t i = 0; i < k && dec.ok(); ++i) {
    const auto sender = static_cast<SiteId>(dec.varint());
    const std::uint64_t clk = dec.varint();
    u.log.push_back(Entry{sender, clk});
  }
  u.sender = msg.src;
  u.receipt = svc_.now();
  CCPR_ASSERT(dec.ok());
  pending_.submit(
      std::move(u), [this](const Update& p) { return ready(p); },
      [this](Update&& p) { apply(std::move(p)); });
  svc_.metrics->note_pending(pending_.size());
  sample_space();
}

void OptTrackCRP::merge_entry(Entry e) {
  // Alg. 4 MERGE with the obvious refinement: keep only the newest entry per
  // sender (adding an entry older than an existing one would only re-add
  // already-satisfied wait conditions).
  for (auto it = log_.begin(); it != log_.end(); ++it) {
    if (it->sender != e.sender) continue;
    if (it->clock >= e.clock) return;
    it->clock = e.clock;
    return;
  }
  log_.push_back(e);
}

void OptTrackCRP::merge_on_local_read(VarId x) {
  const auto it = last_write_on_.find(x);
  if (it == last_write_on_.end()) return;  // initial value: no dependency
  merge_entry(it->second);
  sample_space();
}

void OptTrackCRP::encode_fetch_resp_meta(net::Encoder&, VarId) {
  CCPR_UNREACHABLE("Opt-Track-CRP requires full replication; reads are local");
}

void OptTrackCRP::merge_fetch_resp_meta(VarId, SiteId, net::Decoder&) {
  CCPR_UNREACHABLE("Opt-Track-CRP requires full replication; reads are local");
}

void OptTrackCRP::serialize_meta(net::Encoder& enc) const {
  enc.varint(clock_);
  for (const std::uint64_t a : apply_) enc.varint(a);
  enc.varint(log_.size());
  for (const Entry& e : log_) {
    enc.varint(e.sender);
    enc.varint(e.clock);
  }
  enc.varint(last_write_on_.size());
  for (const auto& [x, e] : last_write_on_) {
    enc.varint(x);
    enc.varint(e.sender);
    enc.varint(e.clock);
  }
  const auto& pend = pending_.items();
  enc.varint(pend.size());
  for (const Update& u : pend) {
    enc.varint(u.x);
    encode_value(enc, u.v);
    enc.varint(u.sender);
    enc.varint(u.clock);
    enc.varint(u.log.size());
    for (const Entry& e : u.log) {
      enc.varint(e.sender);
      enc.varint(e.clock);
    }
  }
}

bool OptTrackCRP::restore_meta(net::Decoder& dec) {
  clock_ = dec.varint();
  for (std::uint64_t& a : apply_) a = dec.varint();
  const std::uint64_t nl = dec.varint();
  if (!dec.ok()) return false;
  log_.clear();
  for (std::uint64_t i = 0; i < nl && dec.ok(); ++i) {
    const auto sender = static_cast<SiteId>(dec.varint());
    const std::uint64_t clk = dec.varint();
    log_.push_back(Entry{sender, clk});
  }
  const std::uint64_t lw = dec.varint();
  if (!dec.ok()) return false;
  last_write_on_.clear();
  for (std::uint64_t i = 0; i < lw && dec.ok(); ++i) {
    const auto x = static_cast<VarId>(dec.varint());
    const auto sender = static_cast<SiteId>(dec.varint());
    const std::uint64_t clk = dec.varint();
    last_write_on_[x] = Entry{sender, clk};
  }
  const std::uint64_t np = dec.varint();
  if (!dec.ok()) return false;
  std::vector<Update> pend;
  pend.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) {
    Update u;
    u.x = static_cast<VarId>(dec.varint());
    u.v = decode_value(dec);
    u.sender = static_cast<SiteId>(dec.varint());
    u.clock = dec.varint();
    const std::uint64_t k = dec.varint();
    for (std::uint64_t j = 0; j < k && dec.ok(); ++j) {
      const auto sender = static_cast<SiteId>(dec.varint());
      const std::uint64_t clk = dec.varint();
      u.log.push_back(Entry{sender, clk});
    }
    u.receipt = svc_.now();
    if (!dec.ok()) return false;
    pend.push_back(std::move(u));
  }
  pending_.restore(std::move(pend));
  return dec.ok();
}

void OptTrackCRP::seal_local_meta() {
  for (const auto& [x, e] : last_write_on_) merge_entry(e);
  sample_space();
}

std::uint64_t OptTrackCRP::meta_state_bytes() const {
  const std::uint64_t entry_bytes = sizeof(SiteId) + sizeof(std::uint64_t);
  return sizeof(std::uint64_t) +
         static_cast<std::uint64_t>(apply_.size()) * sizeof(std::uint64_t) +
         static_cast<std::uint64_t>(log_.size()) * entry_bytes +
         static_cast<std::uint64_t>(last_write_on_.size()) *
             (sizeof(VarId) + entry_bytes);
}

void OptTrackCRP::sample_space() {
  svc_.metrics->log_entries.add_sample(log_.size());
  svc_.metrics->meta_state_bytes.add_sample(meta_state_bytes());
}


// Coverage tokens under full replication: the Apply vector is the causal
// frontier, and every write reaches every site, so "target has applied at
// least what I have applied" is exactly session freshness.
void OptTrackCRP::encode_fetch_req_meta(net::Encoder& enc, VarId /*x*/,
                                  SiteId /*target*/) {
  for (const std::uint64_t a : apply_) enc.varint(a);
}

bool OptTrackCRP::fetch_ready(VarId /*x*/, net::Decoder& meta) {
  for (std::size_t z = 0; z < apply_.size(); ++z) {
    const std::uint64_t need = meta.varint();
    if (apply_[z] < need) return false;
  }
  CCPR_ASSERT(meta.ok());
  return true;
}

}  // namespace ccpr::causal
