// Static placement of variables onto sites (the X_i sets of the paper).
//
// Placement is immutable for the lifetime of a run and known at every site,
// matching the paper's model. Replica lists are stored sorted so membership
// tests are binary searches and set algebra on them is linear merges.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <tuple>
#include <vector>

#include "causal/types.hpp"

namespace ccpr::causal {

class ReplicaMap {
 public:
  /// Ring placement: variable x is replicated at sites
  /// {x mod n, x+1 mod n, ..., x+p-1 mod n}. Every site stores ~ p*q/n
  /// variables, the paper's "evenly replicated" assumption.
  static ReplicaMap even(std::uint32_t n, std::uint32_t q, std::uint32_t p);

  /// Full replication (p == n); the CRP special case.
  static ReplicaMap full(std::uint32_t n, std::uint32_t q);

  /// Arbitrary placement; each inner list must be non-empty, contain valid
  /// site ids, and will be sorted/deduplicated.
  static ReplicaMap custom(std::uint32_t n,
                           std::vector<std::vector<SiteId>> replicas);

  std::uint32_t sites() const noexcept { return n_; }
  std::uint32_t vars() const noexcept {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }

  /// Sorted list of sites replicating x.
  std::span<const SiteId> replicas(VarId x) const;

  bool replicated_at(VarId x, SiteId s) const;

  /// Pluggable site distance: an n*n row-major matrix of abstract
  /// inter-site distances (e.g. one-way link latencies from a
  /// server::Topology). When set, fetch targets prefer the replica at
  /// minimum distance from the reader — intra-region before WAN — with
  /// ring distance then site id as deterministic tie-breaks. Without a
  /// matrix the classic ring distance applies.
  void set_site_distances(std::vector<std::uint32_t> dist);
  bool has_site_distances() const noexcept { return !dist_.empty(); }
  std::uint32_t site_distance(SiteId from, SiteId to) const;

  /// The pre-designated site a non-replica reader fetches x from: the
  /// replica nearest to `reader` (site distance when plugged, else ring
  /// distance), which is deterministic and locality-friendly. If `reader`
  /// replicates x it is its own target.
  SiteId fetch_target(VarId x, SiteId reader) const;

  /// The rank-th preferred fetch target (rank 0 == fetch_target). Ranks
  /// wrap around the replica list ordered by nearness, so retrying with
  /// increasing ranks cycles through every replica — the paper's §V
  /// "contact a secondary process" availability fallback — crossing into
  /// farther regions only after the near ones are exhausted.
  SiteId fetch_target_ranked(VarId x, SiteId reader, std::uint32_t rank) const;

  /// fetch_target_ranked with a failure-detector view: replicas the
  /// predicate suspects are ranked behind every healthy one (each group
  /// still ordered by nearness), so retries burn timeouts on likely-dead
  /// sites only after exhausting the likely-alive ones. When every replica
  /// is suspected the ranking degrades to the plain nearness order.
  /// `suspect_skips`, when non-null, receives the number of suspected
  /// replicas demoted behind a healthy one (0 when none, or all, are
  /// suspected) — the signal behind ccpr_fetch_suspect_skips_total.
  SiteId fetch_target_ranked(VarId x, SiteId reader, std::uint32_t rank,
                             const std::function<bool(SiteId)>& suspected,
                             std::uint32_t* suspect_skips) const;

  /// Variables replicated at site s (ascending).
  std::vector<VarId> vars_at(SiteId s) const;

  /// Average number of replicas per variable (the paper's p).
  double replication_factor() const;

  bool fully_replicated() const;

 private:
  ReplicaMap(std::uint32_t n, std::vector<std::uint32_t> offsets,
             std::vector<SiteId> flat);

  std::tuple<std::uint32_t, std::uint32_t, SiteId> nearness(SiteId reader,
                                                            SiteId s) const;

  std::uint32_t n_;
  std::vector<std::uint32_t> offsets_;  // vars()+1 entries into flat_
  std::vector<SiteId> flat_;
  std::vector<std::uint32_t> dist_;  // empty, or n_*n_ site distances
};

}  // namespace ccpr::causal
