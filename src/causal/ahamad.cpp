#include "causal/ahamad.hpp"

#include "util/assert.hpp"

namespace ccpr::causal {

Ahamad::Ahamad(SiteId self, const ReplicaMap& rmap, Services svc)
    : ProtocolBase(self, rmap, std::move(svc), /*fetch_gating=*/false),
      n_(rmap.sites()),
      apply_(n_, 0) {
  CCPR_EXPECTS(rmap.fully_replicated());
}

void Ahamad::do_write(VarId x, std::string data) {
  CCPR_EXPECTS(x < rmap_.vars());
  const WriteId id = next_write_id();
  note_write_issued(x, id);
  ++apply_[self_];

  Value v = make_value(id, std::move(data));
  const auto payload = static_cast<std::uint32_t>(v.data.size());

  net::Encoder enc;
  enc.varint(x);
  encode_value(enc, v);
  for (const std::uint64_t c : apply_) enc.varint(c);
  const auto& body = enc.buffer();
  for (SiteId j = 0; j < n_; ++j) {
    if (j == self_) continue;
    net::Message msg;
    msg.kind = net::MsgKind::kUpdate;
    msg.src = self_;
    msg.dst = j;
    msg.body = body;
    msg.payload_bytes = payload;
    svc_.send(std::move(msg));
  }

  apply_own_write(x, std::move(v));
  svc_.metrics->log_entries.add_sample(log_entry_count());
  svc_.metrics->meta_state_bytes.add_sample(meta_state_bytes());
}

bool Ahamad::ready(const Update& u) const {
  // A_ORG: deliver in happened-before order. The sender slot must be the
  // next expected write; every other slot must already be covered.
  if (apply_[u.sender] != u.t[u.sender] - 1) return false;
  for (std::uint32_t k = 0; k < n_; ++k) {
    if (k == u.sender) continue;
    if (apply_[k] < u.t[k]) return false;
  }
  return true;
}

void Ahamad::apply(Update&& u) {
  ++apply_[u.sender];
  apply_value(u.x, std::move(u.v), u.receipt);
}

void Ahamad::on_update(const net::Message& msg) {
  net::Decoder dec(msg.body);
  Update u;
  u.x = static_cast<VarId>(dec.varint());
  u.v = decode_value(dec);
  u.t.resize(n_);
  for (auto& c : u.t) c = dec.varint();
  u.sender = msg.src;
  u.receipt = svc_.now();
  CCPR_ASSERT(dec.ok());
  pending_.submit(
      std::move(u), [this](const Update& p) { return ready(p); },
      [this](Update&& p) { apply(std::move(p)); });
  svc_.metrics->note_pending(pending_.size());
}

void Ahamad::serialize_meta(net::Encoder& enc) const {
  for (const std::uint64_t a : apply_) enc.varint(a);
  const auto& pend = pending_.items();
  enc.varint(pend.size());
  for (const Update& u : pend) {
    enc.varint(u.x);
    encode_value(enc, u.v);
    enc.varint(u.sender);
    for (const std::uint64_t c : u.t) enc.varint(c);
  }
}

bool Ahamad::restore_meta(net::Decoder& dec) {
  for (std::uint64_t& a : apply_) a = dec.varint();
  const std::uint64_t np = dec.varint();
  if (!dec.ok()) return false;
  std::vector<Update> pend;
  pend.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) {
    Update u;
    u.x = static_cast<VarId>(dec.varint());
    u.v = decode_value(dec);
    u.sender = static_cast<SiteId>(dec.varint());
    u.t.resize(n_);
    for (std::uint64_t& c : u.t) c = dec.varint();
    u.receipt = svc_.now();
    if (!dec.ok()) return false;
    pend.push_back(std::move(u));
  }
  pending_.restore(std::move(pend));
  return dec.ok();
}

void Ahamad::encode_fetch_resp_meta(net::Encoder&, VarId) {
  CCPR_UNREACHABLE("Ahamad requires full replication; reads are local");
}

void Ahamad::merge_fetch_resp_meta(VarId, SiteId, net::Decoder&) {
  CCPR_UNREACHABLE("Ahamad requires full replication; reads are local");
}


// Coverage tokens under full replication: the Apply vector is the causal
// frontier, and every write reaches every site, so "target has applied at
// least what I have applied" is exactly session freshness.
void Ahamad::encode_fetch_req_meta(net::Encoder& enc, VarId /*x*/,
                                  SiteId /*target*/) {
  for (const std::uint64_t a : apply_) enc.varint(a);
}

bool Ahamad::fetch_ready(VarId /*x*/, net::Decoder& meta) {
  for (std::size_t z = 0; z < apply_.size(); ++z) {
    const std::uint64_t need = meta.varint();
    if (apply_[z] < need) return false;
  }
  CCPR_ASSERT(meta.ok());
  return true;
}

}  // namespace ccpr::causal
