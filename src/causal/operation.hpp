// A workload operation: the unit exchanged between the workload generators
// and the cluster drivers.
#pragma once

#include <cstdint>
#include <vector>

#include "causal/types.hpp"

namespace ccpr::causal {

struct Operation {
  enum class Kind : std::uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  VarId var = 0;
  /// For writes: size of the value payload to generate.
  std::uint32_t value_bytes = 0;
};

/// One operation sequence per application process (index == SiteId).
using Program = std::vector<std::vector<Operation>>;

}  // namespace ccpr::causal
