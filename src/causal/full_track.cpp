#include "causal/full_track.hpp"

#include "util/assert.hpp"

namespace ccpr::causal {

FullTrack::FullTrack(SiteId self, const ReplicaMap& rmap, Services svc)
    : FullTrack(self, rmap, std::move(svc), Options{}) {}

FullTrack::FullTrack(SiteId self, const ReplicaMap& rmap, Services svc,
                     Options options)
    : ProtocolBase(self, rmap, std::move(svc), options.fetch_gating),
      n_(rmap.sites()),
      write_(n_),
      apply_(n_, 0) {}

void FullTrack::do_write(VarId x, std::string data) {
  CCPR_EXPECTS(x < rmap_.vars());
  const WriteId id = next_write_id();
  note_write_issued(x, id);

  const auto reps = rmap_.replicas(x);
  for (const SiteId j : reps) ++write_.at(self_, j);

  Value v = make_value(id, std::move(data));

  // The piggybacked clock is identical for every destination: encode once.
  net::Encoder enc;
  enc.varint(x);
  encode_value(enc, v);
  write_.encode(enc);
  const auto payload = static_cast<std::uint32_t>(v.data.size());
  const auto& body = enc.buffer();
  for (const SiteId j : reps) {
    if (j == self_) continue;
    net::Message msg;
    msg.kind = net::MsgKind::kUpdate;
    msg.src = self_;
    msg.dst = j;
    msg.body = body;
    msg.payload_bytes = payload;
    svc_.send(std::move(msg));
  }

  if (rmap_.replicated_at(x, self_)) {
    ++apply_[self_];
    last_write_on_[x] = write_;
    apply_own_write(x, std::move(v));
  }
  sample_space();
}

bool FullTrack::ready(const Update& u) const {
  // A_OPT: all causally preceding writes destined to this site are applied,
  // and this is the next write from the sender destined here (FIFO slot).
  for (std::uint32_t k = 0; k < n_; ++k) {
    if (k == u.sender) continue;
    if (apply_[k] < u.w.at(k, self_)) return false;
  }
  return apply_[u.sender] == u.w.at(u.sender, self_) - 1;
}

void FullTrack::apply(Update&& u) {
  ++apply_[u.sender];
  last_write_on_[u.x] = std::move(u.w);
  apply_value(u.x, std::move(u.v), u.receipt);
}

void FullTrack::on_update(const net::Message& msg) {
  net::Decoder dec(msg.body);
  Update u;
  u.x = static_cast<VarId>(dec.varint());
  u.v = decode_value(dec);
  u.w = MatrixClock::decode(dec, n_);
  u.sender = msg.src;
  u.receipt = svc_.now();
  CCPR_ASSERT(dec.ok());
  pending_.submit(
      std::move(u), [this](const Update& p) { return ready(p); },
      [this](Update&& p) { apply(std::move(p)); });
  svc_.metrics->note_pending(pending_.size());
  sample_space();
}

void FullTrack::merge_on_local_read(VarId x) {
  const auto it = last_write_on_.find(x);
  if (it != last_write_on_.end()) write_.merge_max(it->second);
}

void FullTrack::encode_fetch_req_meta(net::Encoder& enc, VarId /*x*/,
                                      SiteId target) {
  // The reader's knowledge of writes destined to the fetch target: column
  // `target` of the Write matrix. The target must have applied at least
  // this many writes from each process before its copy of any variable is
  // guaranteed causally fresh for this reader.
  for (std::uint32_t k = 0; k < n_; ++k) enc.varint(write_.at(k, target));
}

bool FullTrack::fetch_ready(VarId /*x*/, net::Decoder& meta) {
  for (std::uint32_t k = 0; k < n_; ++k) {
    const std::uint64_t need = meta.varint();
    if (apply_[k] < need) return false;
  }
  CCPR_ASSERT(meta.ok());
  return true;
}

void FullTrack::encode_fetch_resp_meta(net::Encoder& enc, VarId x) {
  const auto it = last_write_on_.find(x);
  if (it == last_write_on_.end()) {
    enc.u8(0);
    return;
  }
  enc.u8(1);
  it->second.encode(enc);
}

void FullTrack::merge_fetch_resp_meta(VarId /*x*/, SiteId /*responder*/,
                                      net::Decoder& dec) {
  if (dec.u8() == 0) return;
  const MatrixClock m = MatrixClock::decode(dec, n_);
  CCPR_ASSERT(dec.ok());
  write_.merge_max(m);
}

bool FullTrack::locally_covered() const {
  // Column self of the Write clock counts the writes destined to this site
  // in the causal past; all of them must be applied.
  for (std::uint32_t k = 0; k < n_; ++k) {
    if (apply_[k] < write_.at(k, self_)) return false;
  }
  return true;
}

void FullTrack::serialize_meta(net::Encoder& enc) const {
  write_.encode(enc);
  for (std::uint32_t k = 0; k < n_; ++k) enc.varint(apply_[k]);
  enc.varint(last_write_on_.size());
  for (const auto& [x, m] : last_write_on_) {
    enc.varint(x);
    m.encode(enc);
  }
  const auto& pend = pending_.items();
  enc.varint(pend.size());
  for (const Update& u : pend) {
    enc.varint(u.x);
    encode_value(enc, u.v);
    enc.varint(u.sender);
    u.w.encode(enc);
  }
}

bool FullTrack::restore_meta(net::Decoder& dec) {
  write_ = MatrixClock::decode(dec, n_);
  for (std::uint32_t k = 0; k < n_; ++k) apply_[k] = dec.varint();
  const std::uint64_t lw = dec.varint();
  if (!dec.ok()) return false;
  last_write_on_.clear();
  for (std::uint64_t i = 0; i < lw; ++i) {
    const auto x = static_cast<VarId>(dec.varint());
    last_write_on_[x] = MatrixClock::decode(dec, n_);
  }
  const std::uint64_t np = dec.varint();
  if (!dec.ok()) return false;
  std::vector<Update> pend;
  pend.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) {
    Update u;
    u.x = static_cast<VarId>(dec.varint());
    u.v = decode_value(dec);
    u.sender = static_cast<SiteId>(dec.varint());
    u.w = MatrixClock::decode(dec, n_);
    u.receipt = svc_.now();
    if (!dec.ok()) return false;
    pend.push_back(std::move(u));
  }
  pending_.restore(std::move(pend));
  return dec.ok();
}

void FullTrack::seal_local_meta() {
  for (const auto& [x, m] : last_write_on_) write_.merge_max(m);
}

std::uint64_t FullTrack::log_entry_count() const {
  // Matrix cells held locally: the Write clock plus one matrix per locally
  // replicated, written variable.
  return (1 + static_cast<std::uint64_t>(last_write_on_.size())) *
         static_cast<std::uint64_t>(n_) * n_;
}

std::uint64_t FullTrack::meta_state_bytes() const {
  std::uint64_t bytes = write_.byte_size() +
                        static_cast<std::uint64_t>(n_) * sizeof(std::uint64_t);
  for (const auto& [x, m] : last_write_on_) {
    bytes += sizeof(VarId) + m.byte_size();
  }
  return bytes;
}

void FullTrack::sample_space() {
  svc_.metrics->log_entries.add_sample(log_entry_count());
  svc_.metrics->meta_state_bytes.add_sample(meta_state_bytes());
}

}  // namespace ccpr::causal
