// ThreadedCluster: the same protocol state machines running on real threads
// over the ThreadTransport. Application calls are blocking (a read parks the
// calling thread until the RemoteFetch response arrives), matching the
// paper's synchronous operation model. Each site's protocol is guarded by
// one mutex: application operations and message deliveries interleave but
// never overlap, mirroring the per-site serialization of the simulator.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "causal/factory.hpp"
#include "causal/replica_map.hpp"
#include "checker/recorder.hpp"
#include "metrics/metrics.hpp"
#include "net/thread_transport.hpp"
#include "util/timer_thread.hpp"

namespace ccpr::causal {

class ThreadedCluster {
 public:
  struct Options {
    ProtocolOptions protocol{};
    /// Random extra delivery delay per message (widens interleavings).
    std::uint32_t max_delay_us = 100;
    std::uint64_t delay_seed = 0xdeed;
    bool record_history = true;
  };

  ThreadedCluster(Algorithm alg, ReplicaMap rmap);
  ThreadedCluster(Algorithm alg, ReplicaMap rmap, Options opts);
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  /// Blocking write issued by site s's application process.
  void write(SiteId s, VarId x, std::string data);
  /// Blocking read issued by site s's application process.
  Value read(SiteId s, VarId x);

  /// Atomic multi-read at one site: all variables must be locally
  /// replicated there. Because a site's applies and reads are serialized
  /// under one mutex and applied state is causally closed, the returned
  /// values form a causally consistent cut (no value may depend on a
  /// newer version of another returned variable).
  std::vector<Value> read_many(SiteId s, const std::vector<VarId>& vars);

  /// Wait until all in-flight messages (and the handlers they trigger) have
  /// been processed.
  void drain();

  /// Session migration: block until site `to` has applied everything in
  /// site `from`'s causal past destined to `to`. After this returns, a
  /// client that last operated at `from` keeps all four session guarantees
  /// when it continues at `to`.
  void await_coverage(SiteId from, SiteId to);

  const ReplicaMap& replica_map() const noexcept { return rmap_; }
  const checker::HistoryRecorder& history() const noexcept {
    return recorder_;
  }
  std::size_t pending_updates() const;
  metrics::Metrics metrics() const;
  Value peek(SiteId s, VarId x) const;

 private:
  struct Node : net::IMessageSink {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unique_ptr<IProtocol> proto;
    metrics::Metrics metrics;

    void deliver(net::Message msg) override {
      {
        std::lock_guard lk(mu);
        proto->on_message(msg);
      }
      cv.notify_all();
    }
  };

  ReplicaMap rmap_;
  Options opts_;
  metrics::Metrics transport_metrics_;
  checker::HistoryRecorder recorder_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<net::ThreadTransport> transport_;
  util::TimerThread timers_;
};

}  // namespace ccpr::causal
