// Run-wide measurement surface shared by the transport, the protocols, and
// the benchmark harness.
//
// The paper's four evaluation metrics (Table I) map onto this struct:
//   message count  -> messages_total() (update + fetch request + response)
//   message size   -> control_bytes + payload_bytes, measured on the wire
//   time           -> write_op_ns / read_op_ns (protocol CPU, not sim time)
//   space          -> log_entries / meta_state_bytes gauges sampled by sites
// plus latency histograms in simulated time (apply delay, read latency).
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace ccpr::metrics {

/// Last-value gauge with peak tracking: set() moves `current` both up and
/// down (it is a level, not a counter); only `peak` is monotone, recording
/// the high-water mark across all samples.
class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    current_ = v;
    if (v > peak_) peak_ = v;
  }
  void add_sample(std::uint64_t v) noexcept {
    set(v);
    stats_.add(static_cast<double>(v));
  }
  std::uint64_t current() const noexcept { return current_; }
  std::uint64_t peak() const noexcept { return peak_; }
  const util::RunningStats& samples() const noexcept { return stats_; }

  /// Cross-site merge: peak is the max over sites, the sample stream is the
  /// union, and `current` sums (total footprint of the cluster).
  void merge(const Gauge& other) noexcept {
    current_ += other.current_;
    if (other.peak_ > peak_) peak_ = other.peak_;
    stats_.merge(other.stats_);
  }

 private:
  std::uint64_t current_ = 0;
  std::uint64_t peak_ = 0;
  util::RunningStats stats_;
};

struct Metrics {
  // ---- message counts, by transport-level kind ----
  std::uint64_t update_msgs = 0;       ///< write-propagation multicasts
  std::uint64_t fetch_req_msgs = 0;    ///< RemoteFetch requests
  std::uint64_t fetch_resp_msgs = 0;   ///< RemoteFetch responses

  std::uint64_t messages_total() const noexcept {
    return update_msgs + fetch_req_msgs + fetch_resp_msgs;
  }

  // ---- message sizes (bytes on the wire) ----
  std::uint64_t control_bytes = 0;  ///< protocol metadata (clocks, logs, ids)
  std::uint64_t payload_bytes = 0;  ///< replicated value bytes

  std::uint64_t bytes_total() const noexcept {
    return control_bytes + payload_bytes;
  }

  // ---- operation counts at the store API ----
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t remote_reads = 0;  ///< reads served by RemoteFetch
  std::uint64_t fetch_retries = 0; ///< failovers to a secondary replica
  /// Suspected replicas demoted in fetch-target ranking (failure detector
  /// steered a remote read away from a likely-dead site).
  std::uint64_t fetch_suspect_skips = 0;

  // ---- simulated-time latencies (microseconds) ----
  util::Histogram apply_delay_us;   ///< receipt -> activation-predicate true
  util::Histogram read_latency_us;  ///< read issue -> value returned
  util::Histogram write_latency_us; ///< write issue -> local completion

  // ---- protocol CPU time (nanoseconds of real time per op) ----
  util::RunningStats write_op_ns;
  util::RunningStats read_op_ns;

  // ---- space: sampled by protocol instances ----
  Gauge log_entries;        ///< entries in the local causal log (per site)
  Gauge meta_state_bytes;   ///< serialized footprint of all causal metadata
  std::uint64_t pending_peak = 0;  ///< max buffered (not-yet-applied) updates

  void note_pending(std::uint64_t depth) noexcept {
    if (depth > pending_peak) pending_peak = depth;
  }

  /// Mean control bytes per message; the paper's amortized "message size".
  double control_bytes_per_message() const noexcept {
    const auto m = messages_total();
    return m ? static_cast<double>(control_bytes) / static_cast<double>(m)
             : 0.0;
  }

  /// Accumulate another Metrics (per-site metrics into a cluster total).
  void merge(const Metrics& other) noexcept {
    update_msgs += other.update_msgs;
    fetch_req_msgs += other.fetch_req_msgs;
    fetch_resp_msgs += other.fetch_resp_msgs;
    control_bytes += other.control_bytes;
    payload_bytes += other.payload_bytes;
    writes += other.writes;
    reads += other.reads;
    remote_reads += other.remote_reads;
    fetch_retries += other.fetch_retries;
    fetch_suspect_skips += other.fetch_suspect_skips;
    apply_delay_us.merge(other.apply_delay_us);
    read_latency_us.merge(other.read_latency_us);
    write_latency_us.merge(other.write_latency_us);
    write_op_ns.merge(other.write_op_ns);
    read_op_ns.merge(other.read_op_ns);
    log_entries.merge(other.log_entries);
    meta_state_bytes.merge(other.meta_state_bytes);
    if (other.pending_peak > pending_peak) pending_peak = other.pending_peak;
  }
};

}  // namespace ccpr::metrics
