// Minimal command-line flag parsing for the tools and examples:
// --key=value and --switch forms, with typed accessors and an automatic
// usage listing. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ccpr::util {

class Flags {
 public:
  /// Parses argv; returns std::nullopt and fills `error` on malformed input
  /// (unknown flags are collected and reported by unknown_flags()).
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// --flag or --flag=true/1/yes; --flag=false/0/no turns it off.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names seen on the command line (for unknown-flag diagnostics).
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ccpr::util
