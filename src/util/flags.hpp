// Minimal command-line flag parsing for the tools and examples:
// --key=value and --switch forms, with typed accessors and unknown-flag
// detection. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ccpr::util {

class Flags {
 public:
  /// Parses argv. Every --flag the binary later reads through has()/get_*()
  /// is recorded as known; anything left over is reported by
  /// unknown_flags(), so a typo like --opps= can be rejected instead of
  /// silently running the default configuration.
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// --flag or --flag=true/1/yes; --flag=false/0/no turns it off.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names seen on the command line (for unknown-flag diagnostics).
  std::vector<std::string> names() const;

  /// Marks flags as known without reading them — for binaries whose
  /// subcommands only query their own subset (e.g. ccpr_client).
  void note_known(std::initializer_list<const char*> names) const;

  /// Flags present on the command line that no accessor ever asked for and
  /// note_known() never covered. Call after all flags have been read.
  std::vector<std::string> unknown_flags() const;

  /// Prints a diagnostic (with a did-you-mean suggestion when a known flag
  /// is within edit distance 2) and exits(2) if any unknown flag remains.
  void exit_on_unknown(const std::string& prog) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  // Which flag names the program asked about — mutated by the const typed
  // accessors, which is exactly the point: "known" means "some code path
  // would have consumed it".
  mutable std::set<std::string> known_;
};

}  // namespace ccpr::util
