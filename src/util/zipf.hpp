// Zipfian sampler over [0, n) with exponent theta, matching the YCSB
// generator's parameterization (theta = 0.99 is the YCSB default).
//
// Uses the Gray et al. "A billion records" closed-form approximation, which
// samples in O(1) after O(n)-free setup — important because workloads sweep
// the key-space size.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace ccpr::util {

class ZipfSampler {
 public:
  /// n: number of items; theta in [0, 1): skew (0 = uniform-ish, 0.99 = YCSB).
  ZipfSampler(std::uint64_t n, double theta);

  /// Draw an item rank in [0, n); rank 0 is the most popular item.
  std::uint64_t sample(Rng& rng) const noexcept;

  std::uint64_t size() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) noexcept;

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

}  // namespace ccpr::util
