// A single background thread running delayed callbacks — the wall-clock
// analogue of the simulator's scheduler, used by the threaded runtime to
// support Services::schedule (RemoteFetch failover timers).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ccpr::util {

class TimerThread {
 public:
  TimerThread() = default;
  ~TimerThread() { stop(); }

  TimerThread(const TimerThread&) = delete;
  TimerThread& operator=(const TimerThread&) = delete;

  void start();
  /// Stops the thread; pending timers are discarded. Idempotent.
  void stop();

  /// Run `fn` after `delay_us` microseconds of wall time (best effort).
  /// Callable before start(); such timers fire once the thread runs.
  void schedule_after(std::int64_t delay_us, std::function<void()> fn);

  std::size_t pending() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    Clock::time_point when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void pump();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::thread thread_;
  std::uint64_t next_seq_ = 0;
  bool running_ = false;
  bool stopping_ = false;
};

}  // namespace ccpr::util
