#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace ccpr::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  // n in {0, 1} has no sample variance — report 0, never NaN. m2_ is
  // mathematically non-negative but merge()'s catastrophic cancellation can
  // leave a tiny negative residue; clamp so stddev() never sqrts below 0.
  if (n_ < 2) return 0.0;
  const double v = m2_ / static_cast<double>(n_ - 1);
  return v > 0.0 ? v : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram()
    : buckets_(static_cast<std::size_t>(kExponents) * kSubBuckets, 0) {}

// Bucket layout: values in [0, kSubBuckets) map 1:1 to buckets
// [0, kSubBuckets). A value v >= kSubBuckets with most-significant bit `msb`
// falls in group g = msb - kSubBucketBits + 1 >= 1; within the group, the
// kSubBucketBits bits from the msb downwards select one of kSubBuckets
// sub-buckets: sub = (v >> (g - 1)) - kSubBuckets. Index =
// g * kSubBuckets + sub. Relative bucket width is 1/kSubBuckets.
std::uint32_t Histogram::index_for(double value) noexcept {
  if (value < 0.0) value = 0.0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<std::uint32_t>(v);
  const int msb = 63 - __builtin_clzll(v);
  const int g = msb - kSubBucketBits + 1;
  const auto sub = static_cast<std::uint32_t>((v >> (g - 1)) - kSubBuckets);
  const std::uint32_t idx =
      static_cast<std::uint32_t>(g) * kSubBuckets + sub;
  const auto cap = static_cast<std::uint32_t>(kExponents * kSubBuckets - 1);
  return idx > cap ? cap : idx;
}

// Upper edge of the bucket: conservative for percentile reporting. Group 0
// bucket `sub` holds values in [sub, sub+1), so its upper edge is sub + 1 —
// same convention as every other group (returning the lower edge there, as
// an earlier version did, under-reported small-value percentiles and broke
// the invariant value_for(index_for(v)) >= v).
double Histogram::value_for(std::uint32_t index) noexcept {
  const std::uint32_t g = index / kSubBuckets;
  const std::uint32_t sub = index % kSubBuckets;
  if (g == 0) return static_cast<double>(sub + 1);
  return std::ldexp(static_cast<double>(kSubBuckets + sub + 1),
                    static_cast<int>(g) - 1);
}

void Histogram::add(double value) noexcept {
  ++total_;
  sum_ += value;
  max_ = std::max(max_, value);
  ++buckets_[index_for(value)];
}

void Histogram::merge(const Histogram& other) noexcept {
  CCPR_ASSERT(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double Histogram::percentile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(value_for(i), max_);
  }
  return max_;
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  max_ = std::numeric_limits<double>::lowest();
}

}  // namespace ccpr::util
