// Deterministic, seedable pseudo-random number generation.
//
// All randomness in the repository flows through these generators so that
// every experiment is reproducible from a single 64-bit seed. We use
// splitmix64 for seeding and xoshiro256** as the workhorse generator
// (both public-domain algorithms by Blackman & Vigna); <random> engines are
// avoided because their streams are not portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace ccpr::util {

/// splitmix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
/// Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedu) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept {
    CCPR_EXPECTS(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    CCPR_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) noexcept;

  /// Log-normal variate parameterized by the *resulting* median and sigma of
  /// the underlying normal. Used for wide-area latency tails.
  double lognormal(double median, double sigma) noexcept;

  /// Standard normal via Box-Muller (no cached spare; callers are not hot
  /// enough to care and statelessness keeps replay simple).
  double normal() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ccpr::util
