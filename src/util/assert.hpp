// Lightweight contract-checking macros (Core Guidelines I.6 / E.something:
// Expects/Ensures). Violations are programming errors: print and abort so the
// failure is visible in both test and benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ccpr::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace ccpr::detail

#define CCPR_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::ccpr::detail::contract_failure("Precondition", #cond,         \
                                             __FILE__, __LINE__))

#define CCPR_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::ccpr::detail::contract_failure("Postcondition", #cond,        \
                                             __FILE__, __LINE__))

#define CCPR_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                            \
          : ::ccpr::detail::contract_failure("Invariant", #cond, __FILE__,  \
                                             __LINE__))

// Marks unreachable control flow (e.g. exhaustive switch fall-through).
#define CCPR_UNREACHABLE(msg)                                               \
  ::ccpr::detail::contract_failure("Unreachable", msg, __FILE__, __LINE__)

// Debug-only invariant: aborts in debug builds, compiles to nothing under
// NDEBUG. For checks on hot paths or where release builds must degrade
// gracefully instead of dying (the caller handles the bad case).
#ifndef NDEBUG
#define CCPR_DEBUG_ASSERT(cond) CCPR_ASSERT(cond)
#else
#define CCPR_DEBUG_ASSERT(cond) static_cast<void>(0)
#endif
