// Streaming statistics used by the metrics layer and the benchmark harness.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ccpr::util {

/// Welford online mean/variance plus min/max. O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-memory percentile histogram with log-spaced buckets (HdrHistogram
/// style, base-2 with linear sub-buckets). Values are non-negative; relative
/// error is bounded by 1/kSubBuckets.
class Histogram {
 public:
  Histogram();

  void add(double value) noexcept;
  void merge(const Histogram& other) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  double mean() const noexcept { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  double max() const noexcept { return total_ ? max_ : 0.0; }
  /// q in [0, 1]; returns an upper bound on the q-quantile value.
  double percentile(double q) const noexcept;

  void reset() noexcept;

 private:
  static constexpr int kSubBucketBits = 5;           // 32 sub-buckets
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kExponents = 48;              // values up to ~2^48

  static std::uint32_t index_for(double value) noexcept;
  static double value_for(std::uint32_t index) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = std::numeric_limits<double>::lowest();
};

}  // namespace ccpr::util
