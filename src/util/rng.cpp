#include "util/rng.hpp"

#include <cmath>

namespace ccpr::util {

double Rng::exponential(double mean) noexcept {
  CCPR_EXPECTS(mean > 0.0);
  // Guard against log(0): uniform01() can return exactly 0.
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() noexcept {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::lognormal(double median, double sigma) noexcept {
  CCPR_EXPECTS(median > 0.0);
  CCPR_EXPECTS(sigma >= 0.0);
  return median * std::exp(sigma * normal());
}

}  // namespace ccpr::util
