// Minimal JSON value type: parse, build, and deterministic serialization.
// Used by the bench JsonReporter, the sweep runner (configs, meta.json,
// result.json) and the snapshot aggregator. Deliberately small: objects are
// sorted maps so `dump()` is byte-stable for identical values — the sweep
// aggregation relies on that to make resume-vs-scratch runs comparable
// byte-for-byte. Not a general-purpose library: no \uXXXX escapes beyond
// pass-through, numbers are int64 or double.
#pragma once

#include <cstdint>
#include <map>
#include <type_traits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ccpr::util {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  /// One template for every integer width so uint32_t etc. bind exactly
  /// instead of ambiguously converting toward int/int64/double.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(float v) : kind_(Kind::kDouble), double_(v) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Json(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_int() const noexcept { return kind_ == Kind::kInt; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    if (kind_ == Kind::kInt) return int_;
    if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(double_);
    return fallback;
  }
  double as_double(double fallback = 0.0) const noexcept {
    if (kind_ == Kind::kDouble) return double_;
    if (kind_ == Kind::kInt) return static_cast<double>(int_);
    return fallback;
  }
  const std::string& as_string() const noexcept { return string_; }
  std::string as_string(const std::string& fallback) const {
    return is_string() ? string_ : fallback;
  }

  const Array& items() const noexcept { return array_; }
  Array& items() noexcept { return array_; }
  const Object& fields() const noexcept { return object_; }
  Object& fields() noexcept { return object_; }

  /// Object member access; returns a shared null for missing keys.
  const Json& operator[](const std::string& key) const;
  /// Mutable object member (creates the key; converts a null to an object).
  Json& operator[](const std::string& key);
  bool contains(const std::string& key) const {
    return kind_ == Kind::kObject && object_.count(key) != 0;
  }

  void push_back(Json v);
  std::size_t size() const noexcept {
    return kind_ == Kind::kArray ? array_.size() : object_.size();
  }

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  /// Serialize. indent=0: compact one-line; indent>0: pretty-printed with
  /// that many spaces per level. Object keys are emitted in sorted order,
  /// doubles with "%.12g" — the output is a pure function of the value.
  std::string dump(int indent = 0) const;

  /// Parse; returns std::nullopt and fills `error` (if non-null) on failure.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

  /// File helpers; load returns nullopt on missing/unreadable/invalid file.
  static std::optional<Json> load_file(const std::string& path,
                                       std::string* error = nullptr);
  bool save_file(const std::string& path, int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace ccpr::util
