#include "util/zipf.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ccpr::util {

double ZipfSampler::zeta(std::uint64_t n, double theta) noexcept {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  CCPR_EXPECTS(n >= 1);
  CCPR_EXPECTS(theta >= 0.0 && theta < 1.0);
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace ccpr::util
