#include "util/flags.hpp"

#include <cstdlib>

namespace ccpr::util {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      flags.values_[body] = "";
    } else {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  return false;
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace ccpr::util
