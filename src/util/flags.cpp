#include "util/flags.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ccpr::util {

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      flags.values_[body] = "";
    } else {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  known_.insert(name);
  return values_.count(name) != 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  return false;
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

void Flags::note_known(std::initializer_list<const char*> names) const {
  for (const char* n : names) known_.insert(n);
}

std::vector<std::string> Flags::unknown_flags() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (known_.count(k) == 0) out.push_back(k);
  }
  return out;
}

void Flags::exit_on_unknown(const std::string& prog) const {
  const auto unknown = unknown_flags();
  if (unknown.empty()) return;
  for (const auto& flag : unknown) {
    std::string hint;
    std::size_t best = 3;  // suggest only within edit distance 2
    for (const auto& k : known_) {
      const std::size_t d = edit_distance(flag, k);
      if (d < best) {
        best = d;
        hint = k;
      }
    }
    std::fprintf(stderr, "%s: unknown flag --%s%s%s\n", prog.c_str(),
                 flag.c_str(), hint.empty() ? "" : " (did you mean --",
                 hint.empty() ? "" : (hint + "?)").c_str());
  }
  std::exit(2);
}

}  // namespace ccpr::util
