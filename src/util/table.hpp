// Plain-text table and CSV rendering for the benchmark harness. Every bench
// binary prints paper-style tables through this so output formatting is
// uniform and greppable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccpr::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(double value, int precision = 3);

  /// Render with aligned columns and a header separator.
  void print(std::ostream& os) const;
  /// Render as CSV (RFC-4180-ish quoting for commas/quotes).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with bench output).
std::string format_double(double value, int precision);

}  // namespace ccpr::util
