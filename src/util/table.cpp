#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace ccpr::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CCPR_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  CCPR_EXPECTS(!rows_.empty());
  CCPR_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "| " : " | ");
      os << s << std::string(widths[c] - s.size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) emit_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& r : rows_) emit_row(r);
}

}  // namespace ccpr::util
