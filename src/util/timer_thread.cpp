#include "util/timer_thread.hpp"

namespace ccpr::util {

void TimerThread::start() {
  std::lock_guard lk(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { pump(); });
}

void TimerThread::stop() {
  {
    std::lock_guard lk(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lk(mu_);
  running_ = false;
  while (!queue_.empty()) queue_.pop();
}

void TimerThread::schedule_after(std::int64_t delay_us,
                                 std::function<void()> fn) {
  {
    std::lock_guard lk(mu_);
    queue_.push(Entry{Clock::now() + std::chrono::microseconds(delay_us),
                      next_seq_++, std::move(fn)});
  }
  cv_.notify_all();
}

std::size_t TimerThread::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

void TimerThread::pump() {
  std::unique_lock lk(mu_);
  while (!stopping_) {
    if (queue_.empty()) {
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }
    const auto when = queue_.top().when;
    if (Clock::now() < when) {
      cv_.wait_until(lk, when, [this, when] {
        return stopping_ ||
               (!queue_.empty() && queue_.top().when < when);
      });
      continue;
    }
    auto fn = std::move(const_cast<Entry&>(queue_.top()).fn);
    queue_.pop();
    lk.unlock();
    fn();
    lk.lock();
  }
}

}  // namespace ccpr::util
