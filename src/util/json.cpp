#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ccpr::util {

namespace {

const Json& null_json() {
  static const Json kNull;
  return kNull;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return number();
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("invalid token");
      return std::nullopt;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end == tok.c_str() + tok.size() && errno == 0) {
        return Json(static_cast<std::int64_t>(v));
      }
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      fail("invalid number '" + tok + "'");
      return std::nullopt;
    }
    return Json(d);
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // Pass BMP escapes through as '?' placeholders rather than
            // carrying a full UTF-8 encoder; snapshot content is ASCII.
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            pos_ += 4;
            out += '?';
            break;
          }
          default:
            fail(std::string("bad escape '\\") + e + "'");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> array() {
    consume('[');
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      if (consume(',')) continue;
      if (consume(']')) return out;
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<Json> object() {
    consume('{');
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      auto v = value();
      if (!v) return std::nullopt;
      out.fields()[std::move(*key)] = std::move(*v);
      if (consume(',')) continue;
      if (consume('}')) return out;
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json& Json::operator[](const std::string& key) const {
  if (kind_ == Kind::kObject) {
    const auto it = object_.find(key);
    if (it != object_.end()) return it->second;
  }
  return null_json();
}

Json& Json::operator[](const std::string& key) {
  if (kind_ != Kind::kObject) {
    *this = Json::object();
  }
  return object_[key];
}

void Json::push_back(Json v) {
  if (kind_ != Kind::kArray) {
    *this = Json::array();
  }
  array_.push_back(std::move(v));
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) {
    // int 3 == double 3.0 for aggregation comparisons.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kInt: return int_ == other.int_;
    case Kind::kDouble: return double_ == other.double_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return array_ == other.array_;
    case Kind::kObject: return object_ == other.object_;
  }
  return false;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      if (std::isnan(double_) || std::isinf(double_)) {
        out += "null";  // JSON has no NaN/Inf; null is the honest encoding
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.12g", double_);
      out += buf;
      // Keep doubles round-trippable as doubles (aggregation stability).
      if (std::strpbrk(buf, ".eE") == nullptr) out += ".0";
      break;
    }
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline(depth + 1);
        append_escaped(out, k);
        out += ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  return Parser(text, error).run();
}

std::optional<Json> Json::load_file(const std::string& path,
                                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), error);
}

bool Json::save_file(const std::string& path, int indent) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << dump(indent) << '\n';
  return static_cast<bool>(out);
}

}  // namespace ccpr::util
