#include "sweep/sweep.hpp"

#include <sys/utsname.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace ccpr::sweep {

namespace fs = std::filesystem;

namespace {

std::string json_string_list_error(const char* what) {
  return std::string(what) + " must be a string or array of scalars";
}

/// Matrix values and fixed args accept any scalar JSON value; everything
/// is carried as the string that ends up on the command line.
std::optional<std::string> scalar_to_string(const util::Json& v) {
  switch (v.kind()) {
    case util::Json::Kind::kString:
      return v.as_string();
    case util::Json::Kind::kBool:
      return std::string(v.as_bool() ? "true" : "false");
    case util::Json::Kind::kInt:
      return std::to_string(v.as_int());
    case util::Json::Kind::kDouble: {
      util::Json d(v.as_double());
      return d.dump();
    }
    default:
      return std::nullopt;
  }
}

/// Run-directory names must be stable and portable: keep [A-Za-z0-9._-],
/// map everything else to '-'.
std::string slug(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out.push_back(ok ? c : '-');
  }
  return out;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

/// Best-effort `git rev-parse HEAD`; empty when not in a repo / no git.
std::string git_head() {
  std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  char buf[128] = {0};
  std::string out;
  if (std::fgets(buf, sizeof buf, pipe) != nullptr) out = buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

util::Json host_info() {
  util::Json host = util::Json::object();
  struct utsname un = {};
  if (::uname(&un) == 0) {
    host["os"] = std::string(un.sysname) + " " + un.release;
    host["machine"] = un.machine;
    host["node"] = un.nodename;
  }
  host["hardware_concurrency"] =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());
  return host;
}

bool is_numeric(const util::Json& v) { return v.is_number(); }

/// Merge one row's field across seeds: identical values collapse to the
/// value itself; differing numbers become {"mean","std"} (n-1 stddev, 0
/// for a single seed); differing non-numbers keep the first seed's value.
util::Json merge_field(const std::vector<const util::Json*>& values) {
  bool all_equal = true;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (!(*values[i] == *values[0])) {
      all_equal = false;
      break;
    }
  }
  if (all_equal) return *values[0];
  bool all_numeric = true;
  for (const auto* v : values) {
    if (!is_numeric(*v)) {
      all_numeric = false;
      break;
    }
  }
  if (!all_numeric) return *values[0];
  util::RunningStats stats;
  for (const auto* v : values) stats.add(v->as_double());
  util::Json merged = util::Json::object();
  merged["mean"] = stats.mean();
  merged["std"] = stats.stddev();
  return merged;
}

}  // namespace

std::optional<SweepConfig> SweepConfig::parse(const util::Json& doc,
                                              std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<SweepConfig> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("sweep config must be a JSON object");
  SweepConfig cfg;
  cfg.name = doc["name"].as_string("");
  if (cfg.name.empty()) return fail("sweep config needs a \"name\"");
  cfg.out_root = doc["out_root"].as_string(cfg.out_root);
  cfg.bin_dir = doc["bin_dir"].as_string(cfg.bin_dir);
  if (doc.contains("jobs")) {
    cfg.jobs = static_cast<int>(doc["jobs"].as_int(1));
  }
  const auto& benches = doc["benches"];
  if (!benches.is_array() || benches.items().empty()) {
    return fail("sweep config needs a non-empty \"benches\" array");
  }
  for (const auto& b : benches.items()) {
    BenchSpec spec;
    spec.bench = b["bench"].as_string("");
    spec.bin = b["bin"].as_string("");
    if (spec.bench.empty() || spec.bin.empty()) {
      return fail("every bench entry needs \"bench\" and \"bin\"");
    }
    for (const auto& [key, value] : b["args"].fields()) {
      const auto s = scalar_to_string(value);
      if (!s) return fail("args." + key + ": " + json_string_list_error("it"));
      spec.args[key] = *s;
    }
    for (const auto& [key, values] : b["matrix"].fields()) {
      if (!values.is_array() || values.items().empty()) {
        return fail("matrix." + key + " must be a non-empty array");
      }
      for (const auto& value : values.items()) {
        const auto s = scalar_to_string(value);
        if (!s) return fail(json_string_list_error(("matrix." + key).c_str()));
        spec.matrix[key].push_back(*s);
      }
    }
    for (const auto& seed : b["seeds"].items()) {
      spec.seeds.push_back(static_cast<std::uint64_t>(seed.as_int(1)));
    }
    for (const auto& a : b["ablations"].items()) {
      Ablation ab;
      ab.name = a["name"].as_string("");
      if (ab.name.empty()) return fail("every ablation needs a \"name\"");
      for (const auto& f : a["flags"].items()) {
        const auto s = scalar_to_string(f);
        if (!s) return fail(json_string_list_error("ablation flags"));
        ab.flags.push_back(*s);
      }
      spec.ablations.push_back(std::move(ab));
    }
    cfg.benches.push_back(std::move(spec));
  }
  return cfg;
}

std::optional<SweepConfig> SweepConfig::load(const std::string& path,
                                             std::string* error) {
  const auto doc = util::Json::load_file(path, error);
  if (!doc) return std::nullopt;
  return parse(*doc, error);
}

std::string experiment_dir(const SweepConfig& config) {
  return config.out_root + "/" + slug(config.name);
}

std::vector<Cell> expand_cells(const SweepConfig& config) {
  std::vector<Cell> cells;
  for (const auto& bench : config.benches) {
    const std::vector<Ablation> ablations =
        bench.ablations.empty() ? std::vector<Ablation>{{"base", {}}}
                                : bench.ablations;
    const std::vector<std::uint64_t> seeds =
        bench.seeds.empty() ? std::vector<std::uint64_t>{1} : bench.seeds;

    // Row-major walk of the matrix in sorted-key order (std::map).
    std::vector<std::pair<std::string, std::vector<std::string>>> axes(
        bench.matrix.begin(), bench.matrix.end());
    std::size_t points = 1;
    for (const auto& [key, values] : axes) points *= values.size();

    for (const auto& ablation : ablations) {
      for (std::size_t point = 0; point < points; ++point) {
        std::map<std::string, std::string> params;
        std::size_t rem = point;
        for (auto it = axes.rbegin(); it != axes.rend(); ++it) {
          params[it->first] = it->second[rem % it->second.size()];
          rem /= it->second.size();
        }
        for (const std::uint64_t seed : seeds) {
          Cell cell;
          cell.bench = bench.bench;
          cell.bin = bench.bin;
          cell.ablation = ablation.name;
          cell.seed = seed;
          cell.params = params;

          std::string id = slug(bench.bench) + "." + slug(ablation.name);
          for (const auto& [key, value] : params) {
            id += "." + slug(key) + "-" + slug(value);
          }
          id += ".s" + std::to_string(seed);
          cell.id = id;

          for (const auto& [key, value] : bench.args) {
            cell.argv.push_back("--" + key + "=" + value);
          }
          for (const auto& [key, value] : params) {
            cell.argv.push_back("--" + key + "=" + value);
          }
          for (const auto& flag : ablation.flags) {
            cell.argv.push_back(flag);
          }
          cell.argv.push_back("--seed=" + std::to_string(seed));
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

namespace {

/// A prior run counts as complete only if its result exists AND its
/// meta.json recorded a clean exit — a cell killed mid-write leaves a
/// result.json-less dir or a non-zero exit and reruns on --resume.
bool cell_complete(const fs::path& dir) {
  std::error_code ec;
  if (!fs::exists(dir / "result.json", ec)) return false;
  const auto meta = util::Json::load_file((dir / "meta.json").string());
  if (!meta) return false;
  return (*meta)["exit_code"].as_int(-1) == 0;
}

struct CellOutcome {
  bool skipped = false;
  bool failed = false;
};

CellOutcome run_one_cell(const Cell& cell, const fs::path& runs_dir,
                         const std::string& bin_abs, bool resume,
                         const std::string& sha, const util::Json& host,
                         std::ostream& log, std::mutex& log_mu) {
  const fs::path dir = runs_dir / cell.id;
  if (resume && cell_complete(dir)) {
    std::lock_guard<std::mutex> lock(log_mu);
    log << "  [resume] " << cell.id << "\n";
    return {.skipped = true};
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  if (ec) {
    std::lock_guard<std::mutex> lock(log_mu);
    log << "  [FAIL]   " << cell.id << ": cannot create " << dir.string()
        << "\n";
    return {.failed = true};
  }

  std::string command = "cd " + shell_quote(dir.string()) + " && " +
                        shell_quote(bin_abs);
  for (const auto& arg : cell.argv) command += " " + shell_quote(arg);
  command += " --out=result.json > stdout.txt 2> stderr.txt";

  const auto t0 = std::chrono::steady_clock::now();
  const int status = std::system(command.c_str());
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  const int exit_code =
      WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);

  util::Json meta = util::Json::object();
  meta["cell"] = cell.id;
  meta["bench"] = cell.bench;
  meta["ablation"] = cell.ablation;
  meta["seed"] = cell.seed;
  util::Json params = util::Json::object();
  for (const auto& [key, value] : cell.params) params[key] = value;
  meta["params"] = params;
  meta["bin"] = bin_abs;
  meta["command"] = command;
  meta["git_sha"] = sha;
  meta["host"] = host;
  meta["exit_code"] = exit_code;
  meta["wall_s"] = wall_s;
  meta.save_file((dir / "meta.json").string());

  std::lock_guard<std::mutex> lock(log_mu);
  if (exit_code != 0) {
    log << "  [FAIL]   " << cell.id << " (exit " << exit_code << ", see "
        << (dir / "stderr.txt").string() << ")\n";
    return {.failed = true};
  }
  log << "  [done]   " << cell.id << " (" << util::format_double(wall_s, 1)
      << "s)\n";
  return {};
}

}  // namespace

RunSummary run_cells(const SweepConfig& config, const std::vector<Cell>& cells,
                     const RunnerOptions& opts, std::ostream& log) {
  RunSummary summary;
  const fs::path runs_dir = fs::path(experiment_dir(config)) / "runs";
  const std::size_t limit =
      opts.max_cells > 0 ? std::min(opts.max_cells, cells.size())
                         : cells.size();

  if (opts.dry_run) {
    for (std::size_t i = 0; i < limit; ++i) {
      log << "  [plan]   " << cells[i].id << "  " << cells[i].bin;
      for (const auto& arg : cells[i].argv) log << " " << arg;
      log << "\n";
    }
    return summary;
  }

  std::error_code ec;
  fs::create_directories(runs_dir, ec);
  const std::string bin_root =
      fs::absolute(config.bin_dir, ec).lexically_normal().string();
  const std::string sha = git_head();
  const util::Json host = host_info();

  std::mutex log_mu;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ran{0}, resumed{0}, failed{0};
  const int jobs = std::max(1, opts.jobs);
  std::vector<std::thread> workers;
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= limit) return;
        const Cell& cell = cells[i];
        const std::string bin_abs = bin_root + "/" + cell.bin;
        const auto outcome = run_one_cell(cell, runs_dir, bin_abs,
                                          opts.resume, sha, host, log, log_mu);
        if (outcome.skipped) {
          resumed.fetch_add(1);
        } else if (outcome.failed) {
          failed.fetch_add(1);
        } else {
          ran.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  summary.ran = ran.load();
  summary.resumed = resumed.load();
  summary.failed = failed.load();
  return summary;
}

bool aggregate(const SweepConfig& config, std::string* error,
               std::ostream& log) {
  const fs::path exp_dir = experiment_dir(config);
  const fs::path runs_dir = exp_dir / "runs";
  const auto cells = expand_cells(config);

  // bench -> group key -> seed-ordered list of (seed, results array).
  struct Group {
    std::string ablation;
    std::map<std::string, std::string> params;
    std::vector<std::pair<std::uint64_t, const util::Json*>> seeds;
  };
  std::map<std::string, std::map<std::string, Group>> by_bench;
  // Parsed documents need to outlive the Group pointers above.
  std::vector<std::unique_ptr<util::Json>> docs;

  for (const auto& cell : cells) {
    const fs::path dir = runs_dir / cell.id;
    if (!cell_complete(dir)) {
      if (error != nullptr) {
        *error = "cell " + cell.id + " has no successful result (run the "
                 "sweep, or rerun with --resume)";
      }
      return false;
    }
    auto doc = util::Json::load_file((dir / "result.json").string(), error);
    if (!doc) {
      if (error != nullptr) *error = cell.id + ": " + *error;
      return false;
    }
    docs.push_back(std::make_unique<util::Json>(std::move(*doc)));
    const util::Json* results = &(*docs.back())["results"];
    if (!results->is_array()) {
      if (error != nullptr) {
        *error = cell.id + ": result.json has no \"results\" array";
      }
      return false;
    }

    std::string key = slug(cell.ablation);
    for (const auto& [k, v] : cell.params) key += "." + k + "-" + v;
    auto& group = by_bench[cell.bench][key];
    group.ablation = cell.ablation;
    group.params = cell.params;
    group.seeds.emplace_back(cell.seed, results);
  }

  for (auto& [bench, groups] : by_bench) {
    util::Json doc = util::Json::object();
    doc["bench"] = bench;
    doc["sweep"] = config.name;
    util::Json::Array group_rows;
    for (auto& [key, group] : groups) {
      util::Json g = util::Json::object();
      g["ablation"] = group.ablation;
      util::Json params = util::Json::object();
      for (const auto& [k, v] : group.params) params[k] = v;
      g["params"] = params;
      util::Json::Array seed_list;
      std::size_t rows = SIZE_MAX;
      for (const auto& [seed, results] : group.seeds) {
        seed_list.push_back(seed);
        rows = std::min(rows, results->items().size());
      }
      g["seeds"] = util::Json(std::move(seed_list));
      // Align rows by index: every seed of a group ran the same grid, so
      // row i is the same configuration everywhere. A seed with fewer rows
      // (crashed mid-emit would not get here; a --quick/full mismatch
      // could) truncates the group to the common prefix.
      util::Json::Array merged_rows;
      for (std::size_t i = 0; i < rows; ++i) {
        util::Json row = util::Json::object();
        // Union of keys, sorted (std::map) for determinism.
        std::map<std::string, std::vector<const util::Json*>> fields;
        for (const auto& [seed, results] : group.seeds) {
          for (const auto& [k, v] : results->items()[i].fields()) {
            fields[k].push_back(&v);
          }
        }
        for (const auto& [k, values] : fields) {
          if (values.size() != group.seeds.size()) {
            row[k] = *values[0];  // field missing for some seed: keep first
          } else {
            row[k] = merge_field(values);
          }
        }
        merged_rows.push_back(std::move(row));
      }
      g["results"] = util::Json(std::move(merged_rows));
      group_rows.push_back(std::move(g));
    }
    doc["groups"] = util::Json(std::move(group_rows));

    const std::string out = (exp_dir / ("BENCH_" + bench + ".json")).string();
    if (!doc.save_file(out)) {
      if (error != nullptr) *error = "cannot write " + out;
      return false;
    }
    log << "  [agg]    " << out << " (" << groups.size() << " groups)\n";
  }
  return true;
}

}  // namespace ccpr::sweep
