// Declarative experiment sweep: a JSON config describes a matrix of
// (bench binary × parameter grid × seeds × ablations); the runner executes
// one subprocess per cell into its own run directory (meta.json capturing
// git sha / host / exit status, result.json from the bench's --out), can
// resume a half-finished sweep by skipping cells whose result already
// exists, and aggregates all cells of a bench into one deterministic
// BENCH_<name>.json with mean±std across seeds.
//
// Determinism contract: aggregate() output depends only on the result.json
// contents (sorted groups, sorted keys, fixed float formatting via
// util::Json) — never on wall-clock, host, or the order cells ran in. The
// sweep_harness_test relies on this to compare a resumed sweep against a
// from-scratch one byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ccpr::sweep {

/// One named flag bundle toggled on top of a bench's fixed args, e.g.
/// {"name": "no-gating", "flags": ["--no-gating"]}. The implicit default
/// ablation is "base" with no extra flags.
struct Ablation {
  std::string name;
  std::vector<std::string> flags;
};

/// One bench entry of the experiment matrix.
struct BenchSpec {
  std::string bench;  ///< logical name; aggregate writes BENCH_<bench>.json
  std::string bin;    ///< binary path relative to bin_dir ("bench/store_engine")
  std::map<std::string, std::string> args;  ///< fixed --key=value flags
  /// Grid parameters: every combination of one value per key becomes a
  /// distinct cell, passed as --key=value.
  std::map<std::string, std::vector<std::string>> matrix;
  std::vector<std::uint64_t> seeds;  ///< empty = single run with seed 1
  std::vector<Ablation> ablations;   ///< empty = just the "base" ablation
};

struct SweepConfig {
  std::string name;      ///< experiment name; runs land in out_root/name/
  std::string out_root = "sweep-out";
  std::string bin_dir = "build";
  int jobs = 1;          ///< default parallelism (CLI --jobs overrides)
  std::vector<BenchSpec> benches;

  static std::optional<SweepConfig> parse(const util::Json& doc,
                                          std::string* error);
  static std::optional<SweepConfig> load(const std::string& path,
                                         std::string* error);
};

/// One fully-resolved grid point. `id` doubles as the run-directory name:
/// it contains only [A-Za-z0-9._-] and is stable across runs of the same
/// config, which is what makes --resume able to find prior results.
struct Cell {
  std::string id;
  std::string bench;
  std::string bin;       ///< still relative to bin_dir
  std::string ablation;
  std::uint64_t seed = 1;
  std::map<std::string, std::string> params;   ///< matrix point
  std::vector<std::string> argv;  ///< flags after the binary, sans --out
};

/// Expand a config into the full, deterministically-ordered cell list
/// (benches in config order, then ablations, then the matrix in sorted-key
/// row-major order, then seeds).
std::vector<Cell> expand_cells(const SweepConfig& config);

struct RunnerOptions {
  int jobs = 1;
  bool resume = false;     ///< skip cells with a successful prior result
  bool dry_run = false;    ///< print the plan, touch nothing
  std::size_t max_cells = 0;  ///< stop after N cells (0 = all); lets tests
                              ///< emulate an interrupted sweep
};

struct RunSummary {
  std::size_t ran = 0;
  std::size_t resumed = 0;   ///< skipped because a prior result was found
  std::size_t failed = 0;
  bool ok() const { return failed == 0; }
};

/// Execute the cells under <out_root>/<name>/runs/<cell.id>/. Each cell's
/// subprocess runs with the run directory as cwd, so `--out=result.json`
/// and any scratch files stay inside it; stdout/stderr are captured next
/// to it. Thread-parallel up to opts.jobs.
RunSummary run_cells(const SweepConfig& config, const std::vector<Cell>& cells,
                     const RunnerOptions& opts, std::ostream& log);

/// Merge every completed cell into per-bench snapshots
/// <out_root>/<name>/BENCH_<bench>.json. Rows are aligned by index within
/// each (ablation, params) group across seeds; fields identical across
/// seeds stay scalar, numeric fields that differ become
/// {"mean": .., "std": ..} over the seeds present.
bool aggregate(const SweepConfig& config, std::string* error,
               std::ostream& log);

/// The directory all of a config's runs and snapshots land in.
std::string experiment_dir(const SweepConfig& config);

}  // namespace ccpr::sweep
