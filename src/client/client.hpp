// Blocking client library for the real-network runtime.
//
// A Client is one causal session pinned to a site: it connects to that
// site's client port, speaks the framed request/response protocol of
// client_protocol.hpp, and can migrate between sites with the session's
// causal context intact (the server-side coverage_token / covered_by
// handshake — the new site is not used until it has applied everything the
// session could have observed at the old one).
//
// Resilience: every operation runs under Options::retry. Transient
// failures (connection loss, timeouts, a server answering "shutting down"
// or "unavailable") are retried with exponential backoff and jitter inside
// a per-operation deadline; with `failover` enabled the session moves to
// the next-nearest reachable site instead of hammering a dead one,
// carrying its causal past via coverage tokens the servers piggyback on
// ordinary responses. Puts are made idempotent across retries by a
// client-generated request id the server dedups, so "retry after a lost
// response" cannot double-write.
//
// Optionally records its operations into a checker::HistoryRecorder (under
// the current site's process id, matching how the in-process runtimes
// record), so a multi-process run can be machine-verified by the offline
// causal checker exactly like a simulated one. A put whose outcome is
// unknowable (the connection died after the request hit the wire and no
// retry confirmed it) is recorded via on_write_maybe so the checker stays
// sound.
//
// Errors throw client::Error (see error.hpp), which still derives from
// std::runtime_error; the Client is single-threaded by design.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "causal/replica_map.hpp"
#include "causal/types.hpp"
#include "checker/recorder.hpp"
#include "client/error.hpp"
#include "net/chaos.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "store/key_space.hpp"

namespace ccpr::client {

struct ServerStatus {
  causal::SiteId site = 0;
  causal::Algorithm algorithm = causal::Algorithm::kOptTrack;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t pending_updates = 0;
  std::uint64_t peer_msgs_sent = 0;
  std::uint64_t peer_msgs_recv = 0;
  std::uint64_t peer_queued = 0;
  /// The site's region name; empty when the cluster has no geo topology.
  std::string region;
  /// Per-region peer health as seen from this site (its own region
  /// included; the site itself is not a peer so it is not counted).
  struct RegionPeers {
    std::string region;
    std::uint64_t peers = 0;      ///< peers located in this region
    std::uint64_t connected = 0;  ///< of those, with a live outbound link
  };
  std::vector<RegionPeers> region_peers;
  /// Peers this site's failure detector currently suspects (empty when
  /// the server predates the detector or everything is healthy).
  std::vector<causal::SiteId> suspected_peers;
  /// Per-engine-shard activity (one row on an unsharded site; a single
  /// synthesized row aggregating the totals when the server predates
  /// sharding and omits the extension).
  struct ShardRow {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t pending_updates = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t queue_capacity = 0;
    std::uint64_t parked_reads = 0;
    std::uint64_t covered_waiters = 0;
  };
  std::vector<ShardRow> shards;
};

/// kEngineStat: the full per-shard engine-queue counters plus the
/// cross-shard envelope-admission gauges (see sharded_engine.hpp).
struct EngineStat {
  struct Shard {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t pending_updates = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t queue_capacity = 0;
    std::uint64_t queue_peak_depth = 0;
    std::uint64_t producer_waits = 0;
    std::uint64_t parked_reads = 0;
    std::uint64_t covered_waiters = 0;
    std::uint64_t commands_total = 0;
  };
  std::vector<Shard> shards;
  /// Inbound peer envelopes currently parked on unmet cross-shard tokens.
  std::uint64_t parked_envelopes = 0;
  /// Envelopes dropped because their wrapping did not decode.
  std::uint64_t malformed_envelopes = 0;
};

class Client {
 public:
  /// Client-side resilience knobs. Attempts are bounded three ways: by
  /// count (max_attempts), by wall clock (op_deadline), and per round by
  /// the socket timeouts in Options.
  struct RetryPolicy {
    bool enabled = true;
    /// Move the session to the next-nearest site when the current one
    /// looks dead, instead of only retrying in place. Requires servers
    /// that piggyback coverage tokens (kReqWantTokens) for the causal
    /// session to survive the move.
    bool failover = false;
    std::uint32_t max_attempts = 4;
    std::chrono::milliseconds initial_backoff{20};
    std::chrono::milliseconds max_backoff{400};
    /// Hard wall-clock budget per operation; an op either succeeds or
    /// throws a typed Error within roughly this bound.
    std::chrono::milliseconds op_deadline{10000};
  };

  struct Options {
    /// Budget for establishing a connection (initial connect and migrate),
    /// retried with exponential backoff + jitter within it.
    std::chrono::milliseconds connect_timeout{5000};
    /// Per-request receive timeout (a remote fetch can be slow; 0 = none).
    std::chrono::milliseconds request_timeout{30000};
    std::uint32_t max_frame_bytes = 0;  ///< 0 = the config's / default
    /// Optional client-side history recording for the offline checker.
    checker::HistoryRecorder* recorder = nullptr;
    RetryPolicy retry;
  };

  /// Connects immediately; throws client::Error on failure.
  Client(server::ClusterConfig config, causal::SiteId site, Options opts);
  Client(server::ClusterConfig config, causal::SiteId site)
      : Client(std::move(config), site, Options()) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  // ---- operations by variable id ----
  causal::WriteId put(causal::VarId x, std::string value);
  causal::Value get(causal::VarId x);
  /// Causally consistent multi-key snapshot; every var must be replicated
  /// at this session's site.
  std::vector<causal::Value> snapshot(const std::vector<causal::VarId>& xs);

  // ---- operations by key name (via the config's key space) ----
  causal::WriteId put_key(std::string_view key, std::string value);
  std::string get_key(std::string_view key);

  /// Move this session to another site, blocking until the new site covers
  /// this session's causal past (read-your-writes and monotonic reads
  /// survive the move). Throws on timeout; the session then still points at
  /// the old site.
  void migrate(causal::SiteId new_site,
               std::chrono::milliseconds timeout = std::chrono::seconds(30));

  /// Nearest-site selection for geo clusters: the lowest-id site in
  /// `region`, i.e. where a client physically in that region should open
  /// its session so reads stay intra-region. Throws client::Error on an
  /// unknown region, a region with no sites, or a flat cluster.
  static causal::SiteId nearest_site(const server::ClusterConfig& config,
                                     std::string_view region);

  ServerStatus status();
  /// Prometheus exposition text for the session's site (merged protocol +
  /// transport counters, engine queue depths, per-peer wire stats).
  std::string metrics_text();
  /// The site's value-store engine counters (kStoreStat): engine kind,
  /// resident footprint, probe statistics, spill activity.
  store::EngineStats store_stat();
  /// The site's per-shard protocol-engine counters (kEngineStat).
  EngineStat engine_stat();
  void ping();

  // ---- chaos administration (net/chaos.hpp over the wire) ----
  /// Install `rule` on the connected server's link toward `peer`, or
  /// toward every peer when peer == causal::kNoSite.
  void chaos_set(const net::ChaosRule& rule,
                 causal::SiteId peer = causal::kNoSite);
  /// Remove every chaos rule on the connected server.
  void chaos_clear();

  causal::SiteId site() const noexcept { return site_; }
  const store::KeySpace& keys() const noexcept { return keys_; }
  /// Resilience observability for tests: same-site retry rounds and
  /// completed site failovers performed so far by this session.
  std::uint64_t retries() const noexcept { return retries_; }
  std::uint64_t failovers() const noexcept { return failovers_; }
  void close();

 private:
  net::Socket dial_site(causal::SiteId site,
                        std::chrono::milliseconds timeout);
  /// One request/response round trip on the current connection. Throws
  /// Error(kConnect) before the request is on the wire, Error(kTimeout,
  /// indeterminate) after.
  std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& req);
  /// Run one pre-encoded request under the retry policy; returns the raw
  /// ok response. `maybe_sites`, when non-null, collects the serving site
  /// of every attempt whose execution is indeterminate (puts only).
  std::vector<std::uint8_t> transact(const char* op,
                                     const std::vector<std::uint8_t>& req,
                                     std::vector<causal::SiteId>* maybe_sites);
  /// The trailing [opts] the retry layer appends to put/get/snapshot
  /// requests; 0 = append nothing (legacy format).
  std::uint8_t request_opts(bool is_put) const;
  /// Consume the response's trailing flags/tokens (present iff the request
  /// carried an opts byte), caching piggybacked coverage tokens.
  void absorb_response_tail(net::Decoder& dec, std::uint8_t opts,
                            const char* op);
  /// Try to move the session to `target` within `deadline`, replaying the
  /// cached coverage token so causality survives. Returns false (session
  /// unchanged) if the site cannot be reached or covered in time.
  bool failover_to(causal::SiteId target,
                   std::chrono::steady_clock::time_point deadline);
  /// Failover candidates from `from`, nearest first (excludes `from`).
  std::vector<causal::SiteId> failover_candidates(causal::SiteId from) const;
  /// kCovered poll loop on `s`: 1 covered, 0 deadline passed, -1 error.
  int covered_poll(net::Socket& s, const std::string& token,
                   std::chrono::steady_clock::time_point deadline);

  server::ClusterConfig config_;
  store::KeySpace keys_;
  causal::ReplicaMap rmap_;
  causal::SiteId site_;
  Options opts_;
  std::uint32_t max_frame_bytes_;
  net::Socket sock_;

  /// Session identity for server-side put dedup (random, nonzero) and the
  /// per-put request id counter.
  std::uint64_t session_id_ = 0;
  std::uint64_t next_req_id_ = 1;
  /// Freshest coverage token per remote site, piggybacked by servers on
  /// ordinary responses; the failover "luggage".
  std::unordered_map<causal::SiteId, std::string> tokens_;
  std::uint64_t retries_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t backoff_rng_ = 0;
};

}  // namespace ccpr::client
