// Blocking client library for the real-network runtime.
//
// A Client is one causal session pinned to a site: it connects to that
// site's client port, speaks the framed request/response protocol of
// client_protocol.hpp, and can migrate between sites with the session's
// causal context intact (the server-side coverage_token / covered_by
// handshake — the new site is not used until it has applied everything the
// session could have observed at the old one).
//
// Optionally records its operations into a checker::HistoryRecorder (under
// the current site's process id, matching how the in-process runtimes
// record), so a multi-process run can be machine-verified by the offline
// causal checker exactly like a simulated one.
//
// Errors (unreachable server, protocol violation, timeout) throw
// std::runtime_error; the Client is single-threaded by design.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "causal/types.hpp"
#include "checker/recorder.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "store/key_space.hpp"

namespace ccpr::client {

struct ServerStatus {
  causal::SiteId site = 0;
  causal::Algorithm algorithm = causal::Algorithm::kOptTrack;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t pending_updates = 0;
  std::uint64_t peer_msgs_sent = 0;
  std::uint64_t peer_msgs_recv = 0;
  std::uint64_t peer_queued = 0;
  /// The site's region name; empty when the cluster has no geo topology.
  std::string region;
  /// Per-region peer health as seen from this site (its own region
  /// included; the site itself is not a peer so it is not counted).
  struct RegionPeers {
    std::string region;
    std::uint64_t peers = 0;      ///< peers located in this region
    std::uint64_t connected = 0;  ///< of those, with a live outbound link
  };
  std::vector<RegionPeers> region_peers;
};

class Client {
 public:
  struct Options {
    /// Budget for establishing a connection (initial connect and migrate),
    /// retried with exponential backoff + jitter within it.
    std::chrono::milliseconds connect_timeout{5000};
    /// Per-request receive timeout (a remote fetch can be slow; 0 = none).
    std::chrono::milliseconds request_timeout{30000};
    std::uint32_t max_frame_bytes = 0;  ///< 0 = the config's / default
    /// Optional client-side history recording for the offline checker.
    checker::HistoryRecorder* recorder = nullptr;
  };

  /// Connects immediately; throws std::runtime_error on failure.
  Client(server::ClusterConfig config, causal::SiteId site, Options opts);
  Client(server::ClusterConfig config, causal::SiteId site)
      : Client(std::move(config), site, Options()) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  // ---- operations by variable id ----
  causal::WriteId put(causal::VarId x, std::string value);
  causal::Value get(causal::VarId x);
  /// Causally consistent multi-key snapshot; every var must be replicated
  /// at this session's site.
  std::vector<causal::Value> snapshot(const std::vector<causal::VarId>& xs);

  // ---- operations by key name (via the config's key space) ----
  causal::WriteId put_key(std::string_view key, std::string value);
  std::string get_key(std::string_view key);

  /// Move this session to another site, blocking until the new site covers
  /// this session's causal past (read-your-writes and monotonic reads
  /// survive the move). Throws on timeout; the session then still points at
  /// the old site.
  void migrate(causal::SiteId new_site,
               std::chrono::milliseconds timeout = std::chrono::seconds(30));

  /// Nearest-site selection for geo clusters: the lowest-id site in
  /// `region`, i.e. where a client physically in that region should open
  /// its session so reads stay intra-region. Throws std::runtime_error on
  /// an unknown region, a region with no sites, or a flat cluster.
  static causal::SiteId nearest_site(const server::ClusterConfig& config,
                                     std::string_view region);

  ServerStatus status();
  /// Prometheus exposition text for the session's site (merged protocol +
  /// transport counters, engine queue depths, per-peer wire stats).
  std::string metrics_text();
  void ping();

  causal::SiteId site() const noexcept { return site_; }
  const store::KeySpace& keys() const noexcept { return keys_; }
  void close();

 private:
  net::Socket dial_site(causal::SiteId site,
                        std::chrono::milliseconds timeout);
  /// One request/response round trip on the current connection.
  std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& req);

  server::ClusterConfig config_;
  store::KeySpace keys_;
  causal::SiteId site_;
  Options opts_;
  std::uint32_t max_frame_bytes_;
  net::Socket sock_;
};

}  // namespace ccpr::client
