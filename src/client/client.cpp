#include "client/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "causal/value_codec.hpp"
#include "net/wire.hpp"
#include "server/client_protocol.hpp"

namespace ccpr::client {

namespace {

using server::ClientOp;
using server::ClientStatus;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ccpr client: " + what);
}

const char* status_name(ClientStatus st) {
  switch (st) {
    case ClientStatus::kOk: return "ok";
    case ClientStatus::kBadRequest: return "bad request";
    case ClientStatus::kNotReplicated: return "not replicated at site";
    case ClientStatus::kShuttingDown: return "server shutting down";
  }
  return "unknown status";
}

/// Expect kOk; throw a descriptive error otherwise.
void check_status(net::Decoder& dec, const char* op) {
  const auto st = static_cast<ClientStatus>(dec.u8());
  if (!dec.ok()) fail(std::string(op) + ": short response");
  if (st != ClientStatus::kOk) {
    fail(std::string(op) + ": " + status_name(st));
  }
}

}  // namespace

Client::Client(server::ClusterConfig config, causal::SiteId site,
               Options opts)
    : config_(std::move(config)),
      keys_(config_.key_space()),
      site_(site),
      opts_(opts),
      max_frame_bytes_(opts.max_frame_bytes > 0 ? opts.max_frame_bytes
                       : config_.max_frame_bytes > 0
                           ? config_.max_frame_bytes
                           : net::kDefaultMaxFrameBytes) {
  if (site_ >= config_.site_count()) fail("site id out of range");
  sock_ = dial_site(site_, opts_.connect_timeout);
  if (!sock_.valid()) fail("cannot connect to site " + std::to_string(site_));
}

Client::~Client() = default;

void Client::close() { sock_.close(); }

net::Socket Client::dial_site(causal::SiteId site,
                              std::chrono::milliseconds timeout) {
  const auto& addr = config_.sites[site];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto backoff = std::chrono::milliseconds(10);
  while (true) {
    net::Socket s = net::tcp_dial(addr.host, addr.client_port);
    if (s.valid()) {
      if (opts_.request_timeout.count() > 0) {
        struct timeval tv;
        tv.tv_sec = static_cast<time_t>(opts_.request_timeout.count() / 1000);
        tv.tv_usec = static_cast<suseconds_t>(
            (opts_.request_timeout.count() % 1000) * 1000);
        ::setsockopt(s.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      }
      return s;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now + backoff > deadline) return {};
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
  }
}

std::vector<std::uint8_t> Client::roundtrip(
    const std::vector<std::uint8_t>& req) {
  if (!sock_.valid()) fail("connection closed");
  // Any failure past this point leaves the stream desynchronized — in
  // particular a request timeout, where the late response would otherwise
  // be read as the answer to the *next* request (frames carry no
  // correlation id). Close the connection so a caller that catches the
  // exception cannot accidentally reuse it.
  if (!server::write_client_frame(sock_.fd(), req)) {
    sock_.close();
    fail("send failed (site " + std::to_string(site_) + " unreachable?)");
  }
  auto resp = server::read_client_frame(sock_.fd(), max_frame_bytes_);
  if (!resp) {
    sock_.close();
    fail("no response (site " + std::to_string(site_) +
         " closed the connection or timed out)");
  }
  return std::move(*resp);
}

causal::WriteId Client::put(causal::VarId x, std::string value) {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kPut));
  req.varint(x);
  req.bytes(value);
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "put");
  causal::WriteId id;
  const std::uint64_t writer = dec.varint();
  id.writer = writer == 0 ? causal::kNoSite
                          : static_cast<causal::SiteId>(writer - 1);
  id.seq = dec.varint();
  (void)dec.varint();  // lamport: informational
  if (!dec.ok()) fail("put: malformed response");
  if (opts_.recorder != nullptr) opts_.recorder->on_write(site_, id, x);
  return id;
}

causal::Value Client::get(causal::VarId x) {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kGet));
  req.varint(x);
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "get");
  causal::Value v = causal::decode_value(dec);
  if (!dec.ok()) fail("get: malformed response");
  if (opts_.recorder != nullptr) opts_.recorder->on_read(site_, x, v.id);
  return v;
}

std::vector<causal::Value> Client::snapshot(
    const std::vector<causal::VarId>& xs) {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kSnapshot));
  req.varint(xs.size());
  for (const causal::VarId x : xs) req.varint(x);
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "snapshot");
  const std::uint64_t count = dec.varint();
  if (!dec.ok() || count != xs.size()) fail("snapshot: malformed response");
  std::vector<causal::Value> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back(causal::decode_value(dec));
    if (!dec.ok()) fail("snapshot: malformed response");
    if (opts_.recorder != nullptr) {
      opts_.recorder->on_read(site_, xs[i], out.back().id);
    }
  }
  return out;
}

causal::WriteId Client::put_key(std::string_view key, std::string value) {
  if (!keys_.contains(key)) fail("unknown key '" + std::string(key) + "'");
  return put(keys_.intern(key), std::move(value));
}

std::string Client::get_key(std::string_view key) {
  if (!keys_.contains(key)) fail("unknown key '" + std::string(key) + "'");
  return get(keys_.intern(key)).data;
}

void Client::migrate(causal::SiteId new_site,
                     std::chrono::milliseconds timeout) {
  if (new_site >= config_.site_count()) fail("migrate: site out of range");
  if (new_site == site_) return;
  const auto deadline = std::chrono::steady_clock::now() + timeout;

  // 1. Ask the current site for a coverage token naming the target.
  net::Encoder treq;
  treq.u8(static_cast<std::uint8_t>(ClientOp::kToken));
  treq.varint(new_site);
  const auto tresp = roundtrip(treq.buffer());
  net::Decoder tdec(tresp);
  check_status(tdec, "migrate/token");
  const std::string token = tdec.bytes();
  if (!tdec.ok()) fail("migrate: malformed token response");

  // 2. Connect to the target and poll until it covers this session's causal
  //    past. The old connection stays usable until the handoff succeeds.
  const auto remaining = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
  };
  if (remaining().count() <= 0) fail("migrate: timed out");
  net::Socket next = dial_site(new_site, remaining());
  if (!next.valid()) {
    fail("migrate: cannot connect to site " + std::to_string(new_site));
  }
  while (true) {
    net::Encoder creq;
    creq.u8(static_cast<std::uint8_t>(ClientOp::kCovered));
    creq.bytes(token);
    creq.varint(200'000);  // server-side wait per round: 200ms
    if (!server::write_client_frame(next.fd(), creq.buffer())) {
      fail("migrate: site " + std::to_string(new_site) + " unreachable");
    }
    const auto cresp = server::read_client_frame(next.fd(), max_frame_bytes_);
    if (!cresp) {
      fail("migrate: site " + std::to_string(new_site) + " unreachable");
    }
    net::Decoder cdec(*cresp);
    check_status(cdec, "migrate/covered");
    const bool covered = cdec.u8() != 0;
    if (!cdec.ok()) fail("migrate: malformed covered response");
    if (covered) break;
    if (remaining().count() <= 0) {
      fail("migrate: site " + std::to_string(new_site) +
           " did not cover the session in time");
    }
  }
  sock_ = std::move(next);
  site_ = new_site;
}

causal::SiteId Client::nearest_site(const server::ClusterConfig& config,
                                    std::string_view region) {
  if (config.topology.empty()) {
    throw std::runtime_error("nearest_site: cluster has no geo topology");
  }
  const auto r = config.topology.region_id(region);
  if (!r) {
    throw std::runtime_error("nearest_site: unknown region '" +
                             std::string(region) + "'");
  }
  const auto sites = config.topology.sites_in_region(*r);
  if (sites.empty()) {
    throw std::runtime_error("nearest_site: region '" + std::string(region) +
                             "' has no sites");
  }
  return sites.front();
}

ServerStatus Client::status() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kStatus));
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "status");
  ServerStatus st;
  st.site = static_cast<causal::SiteId>(dec.varint());
  st.algorithm = static_cast<causal::Algorithm>(dec.u8());
  st.writes = dec.varint();
  st.reads = dec.varint();
  st.pending_updates = dec.varint();
  st.peer_msgs_sent = dec.varint();
  st.peer_msgs_recv = dec.varint();
  st.peer_queued = dec.varint();
  st.region = dec.bytes();
  const std::uint64_t regions = dec.varint();
  for (std::uint64_t r = 0; dec.ok() && r < regions; ++r) {
    ServerStatus::RegionPeers rp;
    rp.region = dec.bytes();
    rp.peers = dec.varint();
    rp.connected = dec.varint();
    st.region_peers.push_back(std::move(rp));
  }
  if (!dec.ok()) fail("status: malformed response");
  return st;
}

std::string Client::metrics_text() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kMetrics));
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "metrics");
  std::string text = dec.bytes();
  if (!dec.ok()) fail("metrics: malformed response");
  return text;
}

void Client::ping() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kPing));
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "ping");
}

}  // namespace ccpr::client
