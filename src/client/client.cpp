#include "client/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

#include "causal/value_codec.hpp"
#include "net/wire.hpp"
#include "server/client_protocol.hpp"

namespace ccpr::client {

namespace {

using server::ClientOp;
using server::ClientStatus;

[[noreturn]] void fail_usage(const std::string& what) {
  throw Error(ErrorKind::kProtocol, /*retryable=*/false,
              /*indeterminate=*/false, what);
}

[[noreturn]] void fail_protocol(const std::string& what) {
  // The server answered, so the operation executed; we just cannot read
  // the result. Indeterminate, and retrying won't fix a format mismatch.
  throw Error(ErrorKind::kProtocol, /*retryable=*/false,
              /*indeterminate=*/true, what);
}

const char* status_name(ClientStatus st) {
  switch (st) {
    case ClientStatus::kOk: return "ok";
    case ClientStatus::kBadRequest: return "bad request";
    case ClientStatus::kNotReplicated: return "not replicated at site";
    case ClientStatus::kShuttingDown: return "server shutting down";
    case ClientStatus::kUnavailable: return "unavailable (replicas down)";
  }
  return "unknown status";
}

/// Map a non-ok server status to the typed error the retry layer acts on.
Error status_error(const char* op, ClientStatus st) {
  const std::string what = std::string(op) + ": " + status_name(st);
  switch (st) {
    case ClientStatus::kShuttingDown:
    case ClientStatus::kUnavailable:
      // Transient by construction: another attempt — ideally at another
      // site — can succeed. The server rejected before executing.
      return Error(ErrorKind::kServer, /*retryable=*/true,
                   /*indeterminate=*/false, what);
    default:
      return Error(ErrorKind::kServer, /*retryable=*/false,
                   /*indeterminate=*/false, what);
  }
}

/// Expect kOk; throw a descriptive error otherwise.
void check_status(net::Decoder& dec, const char* op) {
  const auto st = static_cast<ClientStatus>(dec.u8());
  if (!dec.ok()) fail_protocol(std::string(op) + ": short response");
  if (st != ClientStatus::kOk) throw status_error(op, st);
}

std::uint64_t random_session_id() {
  std::random_device rd;
  std::uint64_t id = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  id ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return id == 0 ? 1 : id;
}

}  // namespace

Client::Client(server::ClusterConfig config, causal::SiteId site,
               Options opts)
    : config_(std::move(config)),
      keys_(config_.key_space()),
      rmap_(config_.replica_map()),
      site_(site),
      opts_(opts),
      max_frame_bytes_(opts.max_frame_bytes > 0 ? opts.max_frame_bytes
                       : config_.max_frame_bytes > 0
                           ? config_.max_frame_bytes
                           : net::kDefaultMaxFrameBytes),
      session_id_(random_session_id()),
      backoff_rng_(random_session_id()) {
  if (site_ >= config_.site_count()) fail_usage("site id out of range");
  sock_ = dial_site(site_, opts_.connect_timeout);
  if (!sock_.valid() && opts_.retry.enabled && opts_.retry.failover) {
    // The preferred site may already be down when the session starts. A
    // fresh session has no causal past, so starting it at the next
    // nearest site needs no coverage handshake.
    for (const causal::SiteId cand : failover_candidates(site_)) {
      sock_ = dial_site(cand, opts_.connect_timeout);
      if (sock_.valid()) {
        site_ = cand;
        ++failovers_;
        break;
      }
    }
  }
  if (!sock_.valid()) {
    throw Error(ErrorKind::kConnect, /*retryable=*/true,
                /*indeterminate=*/false,
                "cannot connect to site " + std::to_string(site_));
  }
}

Client::~Client() = default;

void Client::close() { sock_.close(); }

net::Socket Client::dial_site(causal::SiteId site,
                              std::chrono::milliseconds timeout) {
  const auto& addr = config_.sites[site];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto backoff = std::chrono::milliseconds(10);
  while (true) {
    net::Socket s = net::tcp_dial(addr.host, addr.client_port);
    if (s.valid()) {
      if (opts_.request_timeout.count() > 0) {
        struct timeval tv;
        tv.tv_sec = static_cast<time_t>(opts_.request_timeout.count() / 1000);
        tv.tv_usec = static_cast<suseconds_t>(
            (opts_.request_timeout.count() % 1000) * 1000);
        ::setsockopt(s.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      }
      return s;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now + backoff > deadline) return {};
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
  }
}

std::vector<std::uint8_t> Client::roundtrip(
    const std::vector<std::uint8_t>& req) {
  if (!sock_.valid()) {
    throw Error(ErrorKind::kConnect, /*retryable=*/true,
                /*indeterminate=*/false, "connection closed");
  }
  // Any failure past this point leaves the stream desynchronized — in
  // particular a request timeout, where the late response would otherwise
  // be read as the answer to the *next* request (frames carry no
  // correlation id). Close the connection so a caller that catches the
  // exception cannot accidentally reuse it.
  if (!server::write_client_frame(sock_.fd(), req)) {
    sock_.close();
    throw Error(ErrorKind::kConnect, /*retryable=*/true,
                /*indeterminate=*/false,
                "send failed (site " + std::to_string(site_) +
                    " unreachable?)");
  }
  auto resp = server::read_client_frame(sock_.fd(), max_frame_bytes_);
  if (!resp) {
    sock_.close();
    // The request reached the socket but no answer came back: the server
    // may or may not have executed it.
    throw Error(ErrorKind::kTimeout, /*retryable=*/true,
                /*indeterminate=*/true,
                "no response (site " + std::to_string(site_) +
                    " closed the connection or timed out)");
  }
  return std::move(*resp);
}

std::uint8_t Client::request_opts(bool is_put) const {
  std::uint8_t opts = 0;
  if (opts_.retry.enabled && is_put) opts |= server::kReqHasRequestId;
  if (opts_.retry.failover) opts |= server::kReqWantTokens;
  return opts;
}

void Client::absorb_response_tail(net::Decoder& dec, std::uint8_t opts,
                                  const char* op) {
  if (opts == 0) return;  // legacy request shape: no flags byte follows
  const std::uint8_t flags = dec.u8();
  if (!dec.ok()) fail_protocol(std::string(op) + ": missing response flags");
  if ((flags & server::kRespHasTokens) != 0) {
    const std::uint64_t count = dec.varint();
    for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
      const auto target = static_cast<causal::SiteId>(dec.varint());
      std::string token = dec.bytes();
      if (dec.ok() && target < config_.site_count()) {
        tokens_[target] = std::move(token);
      }
    }
    if (!dec.ok()) fail_protocol(std::string(op) + ": malformed tokens");
  }
}

std::vector<causal::SiteId> Client::failover_candidates(
    causal::SiteId from) const {
  std::vector<causal::SiteId> out;
  for (causal::SiteId s = 0; s < config_.site_count(); ++s) {
    if (s != from) out.push_back(s);
  }
  std::stable_sort(out.begin(), out.end(),
                   [&](causal::SiteId a, causal::SiteId b) {
                     return rmap_.site_distance(from, a) <
                            rmap_.site_distance(from, b);
                   });
  return out;
}

int Client::covered_poll(net::Socket& s, const std::string& token,
                         std::chrono::steady_clock::time_point deadline) {
  while (true) {
    net::Encoder creq;
    creq.u8(static_cast<std::uint8_t>(ClientOp::kCovered));
    creq.bytes(token);
    creq.varint(200'000);  // server-side wait per round: 200ms
    if (!server::write_client_frame(s.fd(), creq.buffer())) return -1;
    const auto cresp = server::read_client_frame(s.fd(), max_frame_bytes_);
    if (!cresp) return -1;
    net::Decoder cdec(*cresp);
    const auto st = static_cast<ClientStatus>(cdec.u8());
    if (!cdec.ok() || st != ClientStatus::kOk) return -1;
    const bool covered = cdec.u8() != 0;
    if (!cdec.ok()) return -1;
    if (covered) return 1;
    if (std::chrono::steady_clock::now() >= deadline) return 0;
  }
}

bool Client::failover_to(causal::SiteId target,
                         std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return false;
  auto budget =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
  budget = std::min(budget, opts_.connect_timeout);
  net::Socket next = dial_site(target, budget);
  if (!next.valid()) return false;
  // Carry the session's causal past: wait until the target covers the
  // freshest coverage token we hold for it. A session with no token (no
  // operations yet, or a server that doesn't piggyback them) has no
  // tracked past to protect and adopts the site directly.
  const auto it = tokens_.find(target);
  if (it != tokens_.end()) {
    if (covered_poll(next, it->second, deadline) != 1) return false;
  }
  sock_ = std::move(next);
  site_ = target;
  ++failovers_;
  return true;
}

std::vector<std::uint8_t> Client::transact(
    const char* op, const std::vector<std::uint8_t>& req,
    std::vector<causal::SiteId>* maybe_sites) {
  const auto& retry = opts_.retry;
  if (!retry.enabled) {
    auto resp = roundtrip(req);
    net::Decoder dec(resp);
    const auto st = static_cast<ClientStatus>(dec.u8());
    if (!dec.ok()) fail_protocol(std::string(op) + ": short response");
    if (st != ClientStatus::kOk) throw status_error(op, st);
    return resp;
  }

  const auto deadline = std::chrono::steady_clock::now() + retry.op_deadline;
  auto backoff = retry.initial_backoff;
  std::uint32_t attempts = 0;
  std::uint32_t same_site_timeouts = 0;
  std::vector<causal::SiteId> tried_sites;
  while (true) {
    ++attempts;
    try {
      if (!sock_.valid()) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          throw Error(ErrorKind::kConnect, true, false,
                      std::string(op) +
                          ": operation deadline exceeded while disconnected");
        }
        auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - now);
        budget = std::min(budget, opts_.connect_timeout);
        sock_ = dial_site(site_, budget);
        if (!sock_.valid()) {
          throw Error(ErrorKind::kConnect, true, false,
                      std::string(op) + ": cannot reconnect to site " +
                          std::to_string(site_));
        }
      }
      auto resp = roundtrip(req);
      net::Decoder dec(resp);
      const auto st = static_cast<ClientStatus>(dec.u8());
      if (!dec.ok()) fail_protocol(std::string(op) + ": short response");
      if (st != ClientStatus::kOk) throw status_error(op, st);
      return resp;
    } catch (const Error& e) {
      if (e.indeterminate() && maybe_sites != nullptr) {
        // This attempt may have executed at the current site; the caller
        // records it as a maybe-write unless a later success at the same
        // site resolves it through the server's request-id dedup.
        if (std::find(maybe_sites->begin(), maybe_sites->end(), site_) ==
            maybe_sites->end()) {
          maybe_sites->push_back(site_);
        }
      }
      if (!e.retryable() || attempts >= retry.max_attempts) throw;
      const auto now = std::chrono::steady_clock::now();
      if (now + backoff >= deadline) throw;

      if (e.kind() == ErrorKind::kTimeout) ++same_site_timeouts;
      // Decide whether this attempt should move sites: immediately for a
      // dead connection or a server that refused (shutting down /
      // unavailable), and after two straight timeouts — one timeout can be
      // a single slow remote fetch, not a dead site.
      const bool want_failover =
          retry.failover &&
          (e.kind() == ErrorKind::kConnect || e.kind() == ErrorKind::kServer ||
           (e.kind() == ErrorKind::kTimeout && same_site_timeouts >= 2));
      if (want_failover) {
        bool moved = false;
        for (const causal::SiteId cand : failover_candidates(site_)) {
          if (std::find(tried_sites.begin(), tried_sites.end(), cand) !=
              tried_sites.end()) {
            continue;
          }
          tried_sites.push_back(cand);
          if (failover_to(cand, deadline)) {
            moved = true;
            break;
          }
        }
        if (moved) {
          same_site_timeouts = 0;
          ++retries_;
          continue;  // new site: try immediately, no backoff
        }
        tried_sites.clear();  // every site failed once: allow re-tries
      }

      // Exponential backoff with jitter (xorshift — cheap, seedless).
      backoff_rng_ ^= backoff_rng_ << 13;
      backoff_rng_ ^= backoff_rng_ >> 7;
      backoff_rng_ ^= backoff_rng_ << 17;
      const auto jitter = std::chrono::milliseconds(
          backoff.count() > 0
              ? static_cast<std::int64_t>(
                    backoff_rng_ %
                    static_cast<std::uint64_t>(backoff.count()))
              : 0);
      std::this_thread::sleep_for(backoff / 2 + jitter);
      backoff = std::min(backoff * 2, retry.max_backoff);
      ++retries_;
    }
  }
}

causal::WriteId Client::put(causal::VarId x, std::string value) {
  const std::uint8_t opts = request_opts(/*is_put=*/true);
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kPut));
  req.varint(x);
  req.bytes(value);
  if (opts != 0) {
    req.u8(opts);
    if ((opts & server::kReqHasRequestId) != 0) {
      req.varint(session_id_);
      req.varint(next_req_id_++);
    }
  }

  std::vector<causal::SiteId> maybe_sites;
  try {
    const auto resp = transact("put", req.buffer(), &maybe_sites);
    net::Decoder dec(resp);
    check_status(dec, "put");
    causal::WriteId id;
    const std::uint64_t writer = dec.varint();
    id.writer = writer == 0 ? causal::kNoSite
                            : static_cast<causal::SiteId>(writer - 1);
    id.seq = dec.varint();
    (void)dec.varint();  // lamport: informational
    if (!dec.ok()) fail_protocol("put: malformed response");
    absorb_response_tail(dec, opts, "put");
    if (opts_.recorder != nullptr) {
      // A retry that crossed sites cannot be deduped by the final site, so
      // any indeterminate attempt elsewhere may have produced a second
      // execution. Record those as maybe-writes so the checker tolerates
      // their effects; the confirmed execution is recorded normally.
      for (const causal::SiteId s : maybe_sites) {
        if (s != site_) opts_.recorder->on_write_maybe(s, x);
      }
      opts_.recorder->on_write(site_, id, x);
    }
    return id;
  } catch (const Error&) {
    if (opts_.recorder != nullptr) {
      for (const causal::SiteId s : maybe_sites) {
        opts_.recorder->on_write_maybe(s, x);
      }
    }
    throw;
  }
}

causal::Value Client::get(causal::VarId x) {
  const std::uint8_t opts = request_opts(/*is_put=*/false);
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kGet));
  req.varint(x);
  if (opts != 0) req.u8(opts);
  const auto resp = transact("get", req.buffer(), nullptr);
  net::Decoder dec(resp);
  check_status(dec, "get");
  causal::Value v = causal::decode_value(dec);
  if (!dec.ok()) fail_protocol("get: malformed response");
  absorb_response_tail(dec, opts, "get");
  if (opts_.recorder != nullptr) opts_.recorder->on_read(site_, x, v.id);
  return v;
}

std::vector<causal::Value> Client::snapshot(
    const std::vector<causal::VarId>& xs) {
  const std::uint8_t opts = request_opts(/*is_put=*/false);
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kSnapshot));
  req.varint(xs.size());
  for (const causal::VarId x : xs) req.varint(x);
  if (opts != 0) req.u8(opts);
  const auto resp = transact("snapshot", req.buffer(), nullptr);
  net::Decoder dec(resp);
  check_status(dec, "snapshot");
  const std::uint64_t count = dec.varint();
  if (!dec.ok() || count != xs.size()) {
    fail_protocol("snapshot: malformed response");
  }
  std::vector<causal::Value> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back(causal::decode_value(dec));
    if (!dec.ok()) fail_protocol("snapshot: malformed response");
  }
  absorb_response_tail(dec, opts, "snapshot");
  if (opts_.recorder != nullptr) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      opts_.recorder->on_read(site_, xs[i], out[i].id);
    }
  }
  return out;
}

causal::WriteId Client::put_key(std::string_view key, std::string value) {
  if (!keys_.contains(key)) {
    fail_usage("unknown key '" + std::string(key) + "'");
  }
  return put(keys_.intern(key), std::move(value));
}

std::string Client::get_key(std::string_view key) {
  if (!keys_.contains(key)) {
    fail_usage("unknown key '" + std::string(key) + "'");
  }
  return get(keys_.intern(key)).data;
}

void Client::migrate(causal::SiteId new_site,
                     std::chrono::milliseconds timeout) {
  if (new_site >= config_.site_count()) {
    fail_usage("migrate: site out of range");
  }
  if (new_site == site_) return;
  const auto deadline = std::chrono::steady_clock::now() + timeout;

  // 1. Ask the current site for a coverage token naming the target.
  net::Encoder treq;
  treq.u8(static_cast<std::uint8_t>(ClientOp::kToken));
  treq.varint(new_site);
  const auto tresp = roundtrip(treq.buffer());
  net::Decoder tdec(tresp);
  check_status(tdec, "migrate/token");
  const std::string token = tdec.bytes();
  if (!tdec.ok()) fail_protocol("migrate: malformed token response");

  // 2. Connect to the target and poll until it covers this session's causal
  //    past. The old connection stays usable until the handoff succeeds.
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) {
    throw Error(ErrorKind::kTimeout, true, false, "migrate: timed out");
  }
  net::Socket next = dial_site(
      new_site,
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
  if (!next.valid()) {
    throw Error(ErrorKind::kConnect, true, false,
                "migrate: cannot connect to site " +
                    std::to_string(new_site));
  }
  switch (covered_poll(next, token, deadline)) {
    case 1:
      break;
    case 0:
      throw Error(ErrorKind::kTimeout, true, false,
                  "migrate: site " + std::to_string(new_site) +
                      " did not cover the session in time");
    default:
      throw Error(ErrorKind::kConnect, true, false,
                  "migrate: site " + std::to_string(new_site) +
                      " unreachable");
  }
  sock_ = std::move(next);
  site_ = new_site;
}

causal::SiteId Client::nearest_site(const server::ClusterConfig& config,
                                    std::string_view region) {
  if (config.topology.empty()) {
    fail_usage("nearest_site: cluster has no geo topology");
  }
  const auto r = config.topology.region_id(region);
  if (!r) {
    fail_usage("nearest_site: unknown region '" + std::string(region) + "'");
  }
  const auto sites = config.topology.sites_in_region(*r);
  if (sites.empty()) {
    fail_usage("nearest_site: region '" + std::string(region) +
               "' has no sites");
  }
  return sites.front();
}

ServerStatus Client::status() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kStatus));
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "status");
  ServerStatus st;
  st.site = static_cast<causal::SiteId>(dec.varint());
  st.algorithm = static_cast<causal::Algorithm>(dec.u8());
  st.writes = dec.varint();
  st.reads = dec.varint();
  st.pending_updates = dec.varint();
  st.peer_msgs_sent = dec.varint();
  st.peer_msgs_recv = dec.varint();
  st.peer_queued = dec.varint();
  st.region = dec.bytes();
  const std::uint64_t regions = dec.varint();
  for (std::uint64_t r = 0; dec.ok() && r < regions; ++r) {
    ServerStatus::RegionPeers rp;
    rp.region = dec.bytes();
    rp.peers = dec.varint();
    rp.connected = dec.varint();
    st.region_peers.push_back(std::move(rp));
  }
  if (!dec.ok()) fail_protocol("status: malformed response");
  // Trailing failure-detector block; absent on pre-detector servers.
  if (dec.remaining() > 0) {
    const std::uint64_t suspected = dec.varint();
    for (std::uint64_t i = 0; dec.ok() && i < suspected; ++i) {
      st.suspected_peers.push_back(static_cast<causal::SiteId>(dec.varint()));
    }
    if (!dec.ok()) fail_protocol("status: malformed suspected list");
  }
  // Trailing engine-shard extension; absent on pre-sharding servers, in
  // which case the totals above are the one (unlabeled) shard.
  if (dec.remaining() > 0) {
    const std::uint64_t shards = dec.varint();
    for (std::uint64_t k = 0; dec.ok() && k < shards; ++k) {
      ServerStatus::ShardRow row;
      row.writes = dec.varint();
      row.reads = dec.varint();
      row.pending_updates = dec.varint();
      row.queue_depth = dec.varint();
      row.queue_capacity = dec.varint();
      row.parked_reads = dec.varint();
      row.covered_waiters = dec.varint();
      st.shards.push_back(row);
    }
    if (!dec.ok()) fail_protocol("status: malformed shard rows");
  }
  if (st.shards.empty()) {
    ServerStatus::ShardRow row;
    row.writes = st.writes;
    row.reads = st.reads;
    row.pending_updates = st.pending_updates;
    st.shards.push_back(row);
  }
  return st;
}

std::string Client::metrics_text() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kMetrics));
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "metrics");
  std::string text = dec.bytes();
  if (!dec.ok()) fail_protocol("metrics: malformed response");
  return text;
}

store::EngineStats Client::store_stat() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kStoreStat));
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "store-stat");
  store::EngineStats st;
  st.kind = static_cast<store::EngineKind>(dec.u8());
  st.keys = dec.varint();
  st.resident_bytes = dec.varint();
  st.index_slots = dec.varint();
  st.lookups = dec.varint();
  st.probes = dec.varint();
  st.spilled_keys = dec.varint();
  st.spill_segment_bytes = dec.varint();
  st.spill_reads = dec.varint();
  st.spill_writes = dec.varint();
  st.compactions = dec.varint();
  if (!dec.ok()) fail_protocol("store-stat: malformed response");
  return st;
}

EngineStat Client::engine_stat() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kEngineStat));
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "engine-stat");
  EngineStat st;
  const std::uint64_t shards = dec.varint();
  st.parked_envelopes = dec.varint();
  st.malformed_envelopes = dec.varint();
  for (std::uint64_t k = 0; dec.ok() && k < shards; ++k) {
    EngineStat::Shard row;
    row.writes = dec.varint();
    row.reads = dec.varint();
    row.pending_updates = dec.varint();
    row.queue_depth = dec.varint();
    row.queue_capacity = dec.varint();
    row.queue_peak_depth = dec.varint();
    row.producer_waits = dec.varint();
    row.parked_reads = dec.varint();
    row.covered_waiters = dec.varint();
    row.commands_total = dec.varint();
    st.shards.push_back(row);
  }
  if (!dec.ok()) fail_protocol("engine-stat: malformed response");
  return st;
}

void Client::ping() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kPing));
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "ping");
}

void Client::chaos_set(const net::ChaosRule& rule, causal::SiteId peer) {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kChaos));
  req.u8(1);  // set
  req.varint(peer == causal::kNoSite
                 ? 0
                 : static_cast<std::uint64_t>(peer) + 1);
  req.varint(rule.drop_milli);
  req.varint(rule.delay_us);
  req.varint(rule.rate_per_s);
  req.u8(rule.partition ? 1 : 0);
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "chaos");
}

void Client::chaos_clear() {
  net::Encoder req;
  req.u8(static_cast<std::uint8_t>(ClientOp::kChaos));
  req.u8(0);  // clear
  const auto resp = roundtrip(req.buffer());
  net::Decoder dec(resp);
  check_status(dec, "chaos");
}

}  // namespace ccpr::client
