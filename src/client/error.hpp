// Typed client errors.
//
// Every failure the client library surfaces is a client::Error, which
// still derives from std::runtime_error so existing catch sites keep
// working, but carries three machine-readable facts the retry layer (and
// callers building their own) need:
//
//   kind          what broke — the connection, the clock, the server, or
//                 the wire format.
//   retryable     whether re-issuing the operation can possibly help.
//                 Protocol errors and rejected requests are not retryable;
//                 connection loss and timeouts are.
//   indeterminate whether the server may have EXECUTED the operation even
//                 though we never saw the response. A put that dies after
//                 the request hit the socket is indeterminate: retrying it
//                 is only safe because the server dedups request ids, and
//                 a checker must treat the write as "maybe happened"
//                 (Recorder::on_write_maybe) if the retry never lands.
#pragma once

#include <stdexcept>
#include <string>

namespace ccpr::client {

enum class ErrorKind : std::uint8_t {
  kConnect = 0,   ///< dial failed or the connection dropped before send
  kTimeout = 1,   ///< request sent, no response within the request timeout
  kServer = 2,    ///< server answered with a non-ok status
  kProtocol = 3,  ///< malformed frame; the wire formats disagree
};

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, bool retryable, bool indeterminate,
        const std::string& what)
      : std::runtime_error("ccpr client: " + what),
        kind_(kind),
        retryable_(retryable),
        indeterminate_(indeterminate) {}

  ErrorKind kind() const noexcept { return kind_; }
  bool retryable() const noexcept { return retryable_; }
  bool indeterminate() const noexcept { return indeterminate_; }

  const char* kind_name() const noexcept {
    switch (kind_) {
      case ErrorKind::kConnect: return "connect";
      case ErrorKind::kTimeout: return "timeout";
      case ErrorKind::kServer: return "server";
      case ErrorKind::kProtocol: return "protocol";
    }
    return "unknown";
  }

 private:
  ErrorKind kind_;
  bool retryable_;
  bool indeterminate_;
};

}  // namespace ccpr::client
