// Transport-level message envelope shared by the simulated and threaded
// runtimes. `body` is an opaque, protocol-defined byte string; the
// payload/control split exists purely so the metrics layer can report the
// paper's "message size" metric net of replicated value bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ccpr::net {

using SiteId = std::uint32_t;

enum class MsgKind : std::uint8_t {
  kUpdate = 1,      ///< write propagation (Multicast primitive)
  kFetchReq = 2,    ///< RemoteFetch request
  kFetchResp = 3,   ///< RemoteFetch response (remote return event)
  kCatchupReq = 4,  ///< anti-entropy: durable watermark announcement
  kCatchupResp = 5, ///< anti-entropy: responder's retention bounds
  kHeartbeat = 6,   ///< failure detector ping (body: sender steady-clock us)
  kHeartbeatAck = 7,///< failure detector pong (body echoed verbatim)
  /// Sharded-engine wrapper: [u8 inner_kind][varint shard][varint ntokens]
  /// {[varint shard_j][varint len][token]}*[inner body]. Carries a protocol
  /// message addressed to one engine shard plus the sending site's
  /// cross-shard coverage tokens (see causal/shard_map.hpp). Only emitted
  /// when `engine-shards > 1`.
  kShardEnvelope = 8,
};

struct Message {
  MsgKind kind = MsgKind::kUpdate;
  SiteId src = 0;
  SiteId dst = 0;
  std::vector<std::uint8_t> body;
  /// Bytes of `body` that carry the replicated value itself; the remainder
  /// is protocol control metadata.
  std::uint32_t payload_bytes = 0;
  /// Durable per-(src, dst) update channel stamps, assigned by the sending
  /// site server for kUpdate messages (0 on other kinds and on runtimes
  /// without persistence). Unlike the transport-level incarnation/seq pair —
  /// which restarts with the process and exists only to dedup reconnect
  /// resends — chan_epoch survives restarts via the WAL and chan_seq is
  /// dense per applied update, so receivers can detect gaps (updates lost
  /// while they were down) and request catch-up.
  std::uint64_t chan_epoch = 0;
  std::uint64_t chan_seq = 0;

  std::size_t control_bytes() const noexcept {
    // payload_bytes > body.size() is a construction bug (or a corrupt frame
    // that slipped past validation); without the guard the subtraction
    // underflows and poisons the byte metrics with huge values.
    CCPR_DEBUG_ASSERT(payload_bytes <= body.size());
    if (payload_bytes > body.size()) return 0;
    return body.size() - payload_bytes;
  }
};

/// The kind used for transport metric classification: a shard envelope
/// counts as its inner message's kind (first body byte), so the paper's
/// update/fetch message counters stay meaningful when `engine-shards > 1`.
inline MsgKind classify_kind(const Message& msg) noexcept {
  if (msg.kind != MsgKind::kShardEnvelope || msg.body.empty()) return msg.kind;
  return static_cast<MsgKind>(msg.body[0]);
}

/// Receives messages addressed to one site. The transport guarantees that
/// deliveries to a single sink never overlap (they are serialized), and that
/// messages on one (src, dst) channel arrive in FIFO order.
class IMessageSink {
 public:
  virtual ~IMessageSink() = default;
  virtual void deliver(Message msg) = 0;
};

/// Point-to-point message transport between registered sites.
class ITransport {
 public:
  virtual ~ITransport() = default;
  /// Attach the handler for messages addressed to `site`.
  virtual void connect(SiteId site, IMessageSink* sink) = 0;
  /// Asynchronously deliver msg to msg.dst (FIFO per channel).
  virtual void send(Message msg) = 0;
};

}  // namespace ccpr::net
