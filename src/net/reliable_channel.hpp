// Reliable exactly-once FIFO delivery over a lossy, duplicating network.
//
// The paper's system model *assumes* FIFO reliable channels between sites;
// this layer builds them, so the causal algorithms can run unchanged over a
// faulty substrate. Classic go-back-N-ish design per (src, dst) channel:
//   * every data message carries a channel sequence number;
//   * the receiver delivers in sequence order, buffers out-of-order arrivals
//     (bounded), discards duplicates, and acks cumulatively;
//   * the sender retains unacked messages and retransmits them on a timer.
// All timers run on the shared discrete-event scheduler, so runs stay
// deterministic and seed-reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "sim/scheduler.hpp"

namespace ccpr::net {

class ReliableChannelTransport final : public ITransport {
 public:
  struct Options {
    /// Retransmit an unacked frame this long after (each) send.
    sim::SimTime retransmit_after_us = 120'000;
    /// Give up guard: a frame retransmitted this many times trips an
    /// invariant failure (the fault model here never partitions forever).
    std::uint32_t max_retransmits = 60;
  };

  /// `inner` is the (possibly faulty) datagram transport; delivery callbacks
  /// come back through it, so connect() must go through this object.
  ReliableChannelTransport(std::uint32_t n, ITransport& inner,
                           sim::Scheduler& sched, Options options);
  ReliableChannelTransport(std::uint32_t n, ITransport& inner,
                           sim::Scheduler& sched);

  void connect(SiteId site, IMessageSink* sink) override;
  void send(Message msg) override;

  /// Frames sent again because no ack arrived in time.
  std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  /// Duplicate or already-delivered frames discarded at receivers.
  std::uint64_t duplicates_discarded() const noexcept {
    return duplicates_discarded_;
  }
  /// Data frames currently unacknowledged across all channels.
  std::uint64_t unacked() const noexcept;

 private:
  struct Endpoint;
  class Peer;

  // Frame header (prepended to the application message body):
  //   u8 frame kind (data/ack), varint seq.
  enum class FrameKind : std::uint8_t { kData = 1, kAck = 2 };

  void on_datagram(SiteId self, Message msg);
  void deliver_ready(Endpoint& ep, SiteId self, SiteId peer);
  void arm_retransmit(SiteId src, SiteId dst, std::uint64_t seq);
  void send_ack(SiteId self, SiteId peer, std::uint64_t cumulative);

  struct Pending {
    Message msg;  // original application message (unframed)
    std::uint32_t retransmits = 0;
  };

  /// Per-directed-channel state, held at both ends.
  struct Channel {
    // Sender side.
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Pending> unacked;
    // Receiver side.
    std::uint64_t delivered_upto = 0;  // cumulative, in-order
    std::map<std::uint64_t, Message> reorder;
  };

  struct Endpoint {
    IMessageSink* app = nullptr;
    std::vector<Channel> channels;  // indexed by peer site
  };

  class Sink final : public IMessageSink {
   public:
    Sink(ReliableChannelTransport& owner, SiteId self)
        : owner_(owner), self_(self) {}
    void deliver(Message msg) override {
      owner_.on_datagram(self_, std::move(msg));
    }

   private:
    ReliableChannelTransport& owner_;
    SiteId self_;
  };

  std::uint32_t n_;
  ITransport& inner_;
  sim::Scheduler& sched_;
  Options options_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicates_discarded_ = 0;
};

}  // namespace ccpr::net
