#include "net/faulty_transport.hpp"

#include <memory>
#include <utility>

#include "util/assert.hpp"

namespace ccpr::net {

namespace {
bool valid_rate(double r) { return r >= 0.0 && r <= 1.0; }
}  // namespace

FaultyTransport::FaultyTransport(ITransport& inner, Options options)
    : inner_(inner), options_(std::move(options)), rng_(options_.seed) {
  CCPR_EXPECTS(valid_rate(options_.drop_rate));
  CCPR_EXPECTS(valid_rate(options_.duplicate_rate));
  CCPR_EXPECTS(valid_rate(options_.delay_rate));
  CCPR_EXPECTS(valid_rate(options_.reorder_rate));
  CCPR_EXPECTS(options_.delay_max_us >= options_.delay_min_us);
  CCPR_EXPECTS(options_.delay_rate == 0.0 || options_.defer != nullptr);
}

void FaultyTransport::connect(SiteId site, IMessageSink* sink) {
  inner_.connect(site, sink);
}

void FaultyTransport::send(Message msg) {
  if (rng_.chance(options_.drop_rate)) {
    ++dropped_;
    return;
  }
  // Reorder: stash this message; it departs right after the next one, an
  // adjacent transposition. If traffic stops while a message is stashed it
  // looks like a drop until the next send — ReliableChannel's
  // retransmission recovers it, same as a real loss.
  // The rate guard is not just an optimisation: chance() consumes an RNG
  // draw, so skipping it keeps the seeded fault stream of drop/duplicate
  // configs identical to what it was before reorder faults existed.
  if (options_.reorder_rate > 0.0 && !held_.has_value() &&
      rng_.chance(options_.reorder_rate)) {
    held_ = std::move(msg);
    ++reordered_;
    return;
  }
  if (rng_.chance(options_.duplicate_rate)) {
    ++duplicated_;
    inner_.send(msg);  // copy
  }
  // Delay: park the message on the runtime's timer; anything sent in the
  // meantime overtakes it.
  if (options_.delay_rate > 0.0 && rng_.chance(options_.delay_rate)) {
    const std::uint64_t span = options_.delay_max_us - options_.delay_min_us;
    const std::uint64_t d =
        options_.delay_min_us +
        (span > 0 ? rng_.below(static_cast<std::uint32_t>(span + 1)) : 0);
    ++delayed_;
    auto parked = std::make_shared<Message>(std::move(msg));
    options_.defer(d, [this, parked] { inner_.send(std::move(*parked)); });
  } else {
    inner_.send(std::move(msg));
  }
  if (held_.has_value()) {
    Message swapped = std::move(*held_);
    held_.reset();
    inner_.send(std::move(swapped));
  }
}

}  // namespace ccpr::net
