#include "net/faulty_transport.hpp"

#include "util/assert.hpp"

namespace ccpr::net {

FaultyTransport::FaultyTransport(ITransport& inner, Options options)
    : inner_(inner), options_(options), rng_(options.seed) {
  CCPR_EXPECTS(options.drop_rate >= 0.0 && options.drop_rate <= 1.0);
  CCPR_EXPECTS(options.duplicate_rate >= 0.0 &&
               options.duplicate_rate <= 1.0);
}

void FaultyTransport::connect(SiteId site, IMessageSink* sink) {
  inner_.connect(site, sink);
}

void FaultyTransport::send(Message msg) {
  if (rng_.chance(options_.drop_rate)) {
    ++dropped_;
    return;
  }
  if (rng_.chance(options_.duplicate_rate)) {
    ++duplicated_;
    inner_.send(msg);  // copy
  }
  inner_.send(std::move(msg));
}

}  // namespace ccpr::net
