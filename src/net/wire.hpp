// Binary wire format helpers.
//
// Protocol messages are serialized to real byte buffers so that the paper's
// "message size" metric is *measured* rather than asserted. Encoding is
// little-endian with LEB128 varints for counters and length prefixes; the
// Decoder is bounds-checked and sticky-error so malformed input is reported
// instead of read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace ccpr::net {

class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// LEB128 unsigned varint: 1 byte for values < 128, natural for the mostly
  /// small clock values the protocols carry.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Length-prefixed byte string.
  void bytes(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw append without a length prefix (caller frames it).
  void raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit Decoder(const std::vector<std::uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  bool ok() const noexcept { return ok_; }
  bool exhausted() const noexcept { return pos_ == len_; }
  std::size_t remaining() const noexcept { return len_ - pos_; }

  std::uint8_t u8() noexcept {
    if (!need(1)) return 0;
    return data_[pos_++];
  }

  std::uint32_t u32() noexcept {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() noexcept {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t varint() noexcept {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (!need(1) || shift >= 64) {
        ok_ = false;
        return 0;
      }
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  /// Read `n` raw bytes (no length prefix; caller frames it). Empty string
  /// and sticky error on underrun.
  std::string raw(std::size_t n) noexcept {
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::string bytes() noexcept {
    const std::uint64_t n = varint();
    if (!ok_ || !need(n)) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

 private:
  bool need(std::uint64_t n) noexcept {
    if (!ok_ || n > len_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ccpr::net
