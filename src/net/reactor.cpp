#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/wire.hpp"
#include "util/assert.hpp"

namespace ccpr::net {

namespace {

// epoll_event.data.u64 tags. Connection ids start above the reserved range.
constexpr std::uint64_t kTagWake = 0;
constexpr std::uint64_t kTagListener = 1;
constexpr std::uint64_t kFirstConnId = 2;

}  // namespace

Reactor::Reactor(Socket listener, Options opts, RequestHandler on_request)
    : opts_(opts),
      listener_(std::move(listener)),
      on_request_(std::move(on_request)) {
  CCPR_EXPECTS(opts_.io_threads >= 1);
  CCPR_EXPECTS(on_request_ != nullptr);
  next_conn_id_.store(kFirstConnId, std::memory_order_relaxed);
}

Reactor::~Reactor() { stop(); }

bool Reactor::start() {
  CCPR_EXPECTS(!started_);
  if (!listener_.valid() || !set_nonblocking(listener_.fd())) return false;
  stopping_.store(false, std::memory_order_relaxed);
  loops_.clear();
  for (std::uint32_t i = 0; i < opts_.io_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->idx = i;
    loop->ep = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->ep < 0 || loop->wake < 0) {
      if (loop->ep >= 0) ::close(loop->ep);
      if (loop->wake >= 0) ::close(loop->wake);
      for (auto& l : loops_) {
        ::close(l->ep);
        ::close(l->wake);
      }
      loops_.clear();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagWake;
    ::epoll_ctl(loop->ep, EPOLL_CTL_ADD, loop->wake, &ev);
    if (i == 0) {
      ev.events = EPOLLIN;
      ev.data.u64 = kTagListener;
      ::epoll_ctl(loop->ep, EPOLL_CTL_ADD, listener_.fd(), &ev);
    }
    loops_.push_back(std::move(loop));
  }
  for (std::uint32_t i = 0; i < opts_.io_threads; ++i) {
    loops_[i]->thread = std::thread([this, i] { run(i); });
  }
  started_ = true;
  return true;
}

void Reactor::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& loop : loops_) {
    const std::uint64_t one = 1;
    std::lock_guard lk(loop->mu);
    if (!loop->closed) {
      [[maybe_unused]] const auto n =
          ::write(loop->wake, &one, sizeof one);
    }
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : loops_) {
    std::lock_guard lk(loop->mu);
    loop->closed = true;
    loop->ops.clear();
    loop->conns.clear();  // closes every client socket
    ::close(loop->ep);
    ::close(loop->wake);
  }
  active_.store(0, std::memory_order_relaxed);
  listener_.close();
  loops_.clear();
  started_ = false;
}

void Reactor::post(std::uint32_t idx, std::function<void()> op) {
  Loop& loop = *loops_[idx];
  std::lock_guard lk(loop.mu);
  if (loop.closed) return;
  loop.ops.push_back(std::move(op));
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(loop.wake, &one, sizeof one);
}

void Reactor::send_response(const ConnRef& ref,
                            std::vector<std::uint8_t> body) {
  if (ref.loop >= loops_.size()) {
    late_responses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Loop& loop = *loops_[ref.loop];
  std::lock_guard lk(loop.mu);
  if (loop.closed || stopping_.load(std::memory_order_relaxed)) {
    late_responses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  loop.ops.push_back([this, ref, body = std::move(body)]() mutable {
    Loop& l = *loops_[ref.loop];
    const auto it = l.conns.find(ref.conn);
    if (it == l.conns.end()) {
      late_responses_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Conn& c = *it->second;
    Encoder framed(body.size() + kFrameLenBytes);
    framed.u32(static_cast<std::uint32_t>(body.size()));
    framed.raw(body.data(), body.size());
    c.held.emplace(ref.seq, framed.take());
    release_ready(l, c);
    flush_writes(l, c);
  });
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(loop.wake, &one, sizeof one);
}

void Reactor::run(std::uint32_t idx) {
  Loop& loop = *loops_[idx];
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int timeout = next_timeout_ms(loop);
    const int n = ::epoll_wait(loop.ep, events, kMaxEvents, timeout);
    if (n < 0 && errno != EINTR) break;
    // Drain marshalled ops first: response releases may re-arm EPOLLIN
    // before we process a stale readable event for a paused conn (harmless
    // either way, but this order keeps the in-flight cap tight).
    for (;;) {
      std::vector<std::function<void()>> ops;
      {
        std::lock_guard lk(loop.mu);
        ops.swap(loop.ops);
      }
      if (ops.empty()) break;
      for (auto& op : ops) op();
    }
    run_due_timers(loop);
    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kTagWake) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const auto r =
            ::read(loop.wake, &drain, sizeof drain);
        continue;
      }
      if (tag == kTagListener) {
        accept_ready(loop);
        continue;
      }
      const auto it = loop.conns.find(tag);
      if (it == loop.conns.end()) continue;  // closed earlier this batch
      Conn& c = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(loop, tag, /*error=*/true);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) conn_writable(loop, c);
      // conn_writable may close on write error; re-check.
      if (loop.conns.count(tag) != 0 &&
          (events[i].events & EPOLLIN) != 0) {
        conn_readable(loop, c);
      }
    }
  }
}

int Reactor::next_timeout_ms(Loop& loop) const {
  {
    std::lock_guard lk(loop.mu);
    if (!loop.ops.empty()) return 0;
  }
  if (loop.timers.empty()) return -1;
  auto earliest = loop.timers.front().first;
  for (const auto& t : loop.timers) {
    if (t.first < earliest) earliest = t.first;
  }
  const auto now = std::chrono::steady_clock::now();
  if (earliest <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      earliest - now)
                      .count();
  return static_cast<int>(ms) + 1;
}

void Reactor::run_due_timers(Loop& loop) {
  if (loop.timers.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::function<void()>> due;
  for (auto it = loop.timers.begin(); it != loop.timers.end();) {
    if (it->first <= now) {
      due.push_back(std::move(it->second));
      it = loop.timers.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& fn : due) fn();
}

void Reactor::accept_ready(Loop& loop) {
  for (;;) {
    Socket sock;
    switch (tcp_accept(listener_.fd(), &sock)) {
      case AcceptResult::kOk: {
        if (!set_nonblocking(sock.fd())) break;  // drop this one
        accepted_.fetch_add(1, std::memory_order_relaxed);
        const std::uint32_t target =
            rr_.fetch_add(1, std::memory_order_relaxed) %
            static_cast<std::uint32_t>(loops_.size());
        if (&*loops_[target] == &loop) {
          add_conn(loop, std::move(sock));
        } else {
          // Socket moves through a shared_ptr: std::function must stay
          // copyable.
          auto held = std::make_shared<Socket>(std::move(sock));
          post(target, [this, target, held] {
            add_conn(*loops_[target], std::move(*held));
          });
        }
        break;
      }
      case AcceptResult::kRetryNow:
        break;
      case AcceptResult::kWouldBlock:
        return;
      case AcceptResult::kFdExhausted: {
        // Park the listener: pending connections wait in the kernel
        // backlog; spinning here would peg the loop without ever
        // succeeding until an fd frees up.
        accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
        ::epoll_ctl(loop.ep, EPOLL_CTL_DEL, listener_.fd(), nullptr);
        loop.timers.emplace_back(
            std::chrono::steady_clock::now() +
                std::chrono::milliseconds(opts_.accept_backoff_ms),
            [this, &loop] {
              epoll_event ev{};
              ev.events = EPOLLIN;
              ev.data.u64 = kTagListener;
              ::epoll_ctl(loop.ep, EPOLL_CTL_ADD, listener_.fd(), &ev);
            });
        return;
      }
      case AcceptResult::kFatal:
        ::epoll_ctl(loop.ep, EPOLL_CTL_DEL, listener_.fd(), nullptr);
        return;
    }
  }
}

void Reactor::add_conn(Loop& loop, Socket sock) {
  auto conn = std::make_unique<Conn>();
  conn->sock = std::move(sock);
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(loop.ep, EPOLL_CTL_ADD, conn->sock.fd(), &ev) != 0) {
    conns_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  active_.fetch_add(1, std::memory_order_relaxed);
  loop.conns.emplace(conn->id, std::move(conn));
}

void Reactor::conn_readable(Loop& loop, Conn& c) {
  const std::uint64_t id = c.id;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    if (c.paused) break;  // hit the in-flight cap mid-drain
    const ssize_t n = ::read(c.sock.fd(), buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(loop, id, /*error=*/true);
      return;
    }
    if (n == 0) {
      close_conn(loop, id, /*error=*/false);
      return;
    }
    c.rbuf.insert(c.rbuf.end(), buf, buf + n);
    // Parse complete frames.
    while (c.rbuf.size() - c.rpos >= kFrameLenBytes) {
      const auto size = decode_frame_size(c.rbuf.data() + c.rpos,
                                          kFrameLenBytes,
                                          opts_.max_frame_bytes);
      if (!size) {
        close_conn(loop, id, /*error=*/true);
        return;
      }
      if (c.rbuf.size() - c.rpos - kFrameLenBytes < *size) break;
      const auto* body = c.rbuf.data() + c.rpos + kFrameLenBytes;
      std::vector<std::uint8_t> frame(body, body + *size);
      c.rpos += kFrameLenBytes + *size;
      frames_in_.fetch_add(1, std::memory_order_relaxed);
      ConnRef ref;
      ref.loop = loop.idx;
      ref.conn = c.id;
      ref.seq = c.next_req_seq++;
      ++c.inflight;
      if (c.inflight >= opts_.max_inflight && !c.paused) {
        c.paused = true;
        update_events(loop, c);
      }
      on_request_(ref, std::move(frame));
      // The handler may have completed synchronously and closed the conn
      // (engine stopped -> error path); bail if so.
      if (loop.conns.count(id) == 0) return;
    }
    // Compact once the parsed prefix dominates the buffer.
    if (c.rpos > 0 && (c.rpos >= c.rbuf.size() || c.rpos > 64 * 1024)) {
      c.rbuf.erase(c.rbuf.begin(),
                   c.rbuf.begin() + static_cast<std::ptrdiff_t>(c.rpos));
      c.rpos = 0;
    }
    if (static_cast<std::size_t>(n) < sizeof buf) break;  // drained
  }
}

void Reactor::release_ready(Loop& loop, Conn& c) {
  bool released = false;
  while (!c.held.empty() && c.held.begin()->first == c.next_send_seq) {
    c.wq.push_back(std::move(c.held.begin()->second));
    c.held.erase(c.held.begin());
    ++c.next_send_seq;
    --c.inflight;
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    released = true;
  }
  if (released && c.paused && c.inflight < opts_.max_inflight) {
    c.paused = false;
    update_events(loop, c);
  }
}

void Reactor::flush_writes(Loop& loop, Conn& c) {
  const std::uint64_t id = c.id;
  while (!c.wq.empty()) {
    const auto& front = c.wq.front();
    const ssize_t n = ::write(c.sock.fd(), front.data() + c.woff,
                              front.size() - c.woff);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c.want_write) {
          c.want_write = true;
          update_events(loop, c);
        }
        return;
      }
      close_conn(loop, id, /*error=*/true);
      return;
    }
    c.woff += static_cast<std::size_t>(n);
    if (c.woff == front.size()) {
      c.wq.pop_front();
      c.woff = 0;
    }
  }
  if (c.want_write) {
    c.want_write = false;
    update_events(loop, c);
  }
}

void Reactor::conn_writable(Loop& loop, Conn& c) { flush_writes(loop, c); }

void Reactor::update_events(Loop& loop, Conn& c) {
  epoll_event ev{};
  ev.events = 0;
  if (!c.paused) ev.events |= EPOLLIN;
  if (c.want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = c.id;
  ::epoll_ctl(loop.ep, EPOLL_CTL_MOD, c.sock.fd(), &ev);
}

void Reactor::close_conn(Loop& loop, std::uint64_t id, bool error) {
  const auto it = loop.conns.find(id);
  if (it == loop.conns.end()) return;
  ::epoll_ctl(loop.ep, EPOLL_CTL_DEL, it->second->sock.fd(), nullptr);
  loop.conns.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
  if (error) conns_dropped_.fetch_add(1, std::memory_order_relaxed);
}

Reactor::Stats Reactor::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.accept_backoffs = accept_backoffs_.load(std::memory_order_relaxed);
  s.conns_dropped = conns_dropped_.load(std::memory_order_relaxed);
  s.late_responses = late_responses_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ccpr::net
