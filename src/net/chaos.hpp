// Runtime-controllable fault injection for the TCP transport.
//
// A ChaosRule describes what the network between this site and one peer
// should look like: lossy (drop_milli), slow (delay_us one-way latency,
// rate_per_s throughput cap), or cut (partition). Rules are installed per
// outbound link via TcpTransport::set_chaos(); inbound frames from a
// partitioned peer are discarded too, so one site's rule blackholes the
// link in both directions from its own point of view.
//
// Semantics, chosen to mimic real networks rather than to be convenient:
//
//   * drop_milli drops at enqueue time — the message vanishes as it would
//     on a lossy link. Counted in PeerStats::chaos_drops.
//   * delay_us / rate_per_s assign each queued message a due time; the
//     sender thread does not flush a frame before it is due. Due times are
//     clamped monotone per link so injected delay never reorders a channel:
//     the receiver's seq dedup would otherwise discard late frames as
//     duplicates, silently converting "slow" into "lossy".
//   * partition does NOT drop at enqueue. Outbound messages keep queueing
//     (and eventually overflow drop-oldest, exactly as against a dead
//     peer); the sender thread just refuses to flush, like TCP backing off
//     into a blackhole. Inbound frames from the partitioned peer are read
//     off the socket and discarded (PeerStats::chaos_rx_drops). Healing
//     the partition releases whatever survived the queue cap.
//
// Drops are seeded and deterministic given the same send sequence
// (TcpTransport::Options::chaos_seed).
#pragma once

#include <cstdint>

namespace ccpr::net {

struct ChaosRule {
  /// Per-message drop probability in permille (0..1000).
  std::uint32_t drop_milli = 0;
  /// Extra one-way delay added to every message on this link.
  std::uint32_t delay_us = 0;
  /// Throughput cap in messages/second (slow link). 0 = unlimited.
  std::uint32_t rate_per_s = 0;
  /// Blackhole the link: hold outbound traffic, discard inbound.
  bool partition = false;

  bool active() const noexcept {
    return drop_milli != 0 || delay_us != 0 || rate_per_s != 0 || partition;
  }
};

}  // namespace ccpr::net
