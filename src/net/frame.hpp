// TCP frame codec: the length-prefixed wire representation of one
// net::Message, used by the real-network transport and by the client
// request/response protocol's outer framing.
//
// Layout on the wire:
//
//   [u32 length]                      little-endian, bytes that follow
//   [u8  kind][varint src][varint dst][varint incarnation][varint seq]
//   [varint chan_epoch][varint chan_seq]
//   [varint payload_bytes][varint body_len][raw body]
//
// `chan_epoch`/`chan_seq` are the *durable* update-channel stamps carried in
// Message itself (see message.hpp): assigned by the sending site server,
// persisted across restarts, and used by the anti-entropy catch-up path.
// Both are 0 (one byte each) on non-update traffic.
//
// `seq` is a per-(src, dst) channel sequence number (starting at 1) that
// lets the receiver drop duplicates after a sender-side reconnect resends a
// possibly-already-delivered frame. `incarnation` is a nonzero nonce drawn
// once per sender *process instance*: seq watermarks are only comparable
// within one incarnation, so when a site restarts (and its seq space resets
// to 1) receivers see the new incarnation and reset their dedup watermark
// instead of silently dropping every frame from the fresh process. The
// decoder is bounds-checked via net::Decoder, and both sides reject frames
// whose declared length exceeds a configurable maximum so a corrupt or
// hostile length prefix cannot force an unbounded allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "net/wire.hpp"

namespace ccpr::net {

/// Bytes of the fixed length prefix preceding every frame.
inline constexpr std::size_t kFrameLenBytes = 4;

/// Default ceiling on the framed (post-prefix) size. Generous for protocol
/// traffic (updates carry one value plus logs) yet small enough that a
/// garbage length prefix cannot exhaust memory.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u * 1024 * 1024;

struct Frame {
  Message msg;
  /// Sender process-instance nonce (nonzero for real senders).
  std::uint64_t incarnation = 0;
  /// Channel sequence number assigned by the sender (1-based).
  std::uint64_t seq = 0;
};

/// Serialize `msg` with its sender incarnation and channel seq into a
/// self-contained frame, including the leading u32 length prefix.
std::vector<std::uint8_t> encode_frame(const Message& msg,
                                       std::uint64_t incarnation,
                                       std::uint64_t seq);

/// Parse the u32 length prefix. Returns std::nullopt unless exactly
/// kFrameLenBytes are supplied or the declared size exceeds `max_frame_bytes`
/// or is zero (a frame always carries at least a kind byte).
std::optional<std::uint32_t> decode_frame_size(const std::uint8_t* data,
                                               std::size_t len,
                                               std::uint32_t max_frame_bytes);

/// Decode a frame body (the bytes *after* the length prefix). Returns
/// std::nullopt on any malformed input: truncation, trailing garbage,
/// unknown message kind, or a body larger than the enclosing frame.
std::optional<Frame> decode_frame_body(const std::uint8_t* data,
                                       std::size_t len);

}  // namespace ccpr::net
