// Discrete-event-simulated transport: FIFO channels with pluggable latency.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.hpp"
#include "net/message.hpp"
#include "sim/latency.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ccpr::net {

class SimTransport final : public ITransport {
 public:
  /// n: number of sites. The scheduler, latency model, rng and metrics are
  /// borrowed; they must outlive the transport.
  SimTransport(std::uint32_t n, sim::Scheduler& sched, sim::LatencyModel& lat,
               util::Rng& rng, metrics::Metrics& metrics);

  void connect(SiteId site, IMessageSink* sink) override;
  void send(Message msg) override;

  std::uint64_t messages_in_flight() const noexcept { return in_flight_; }

 private:
  void account(const Message& msg);

  std::uint32_t n_;
  sim::Scheduler& sched_;
  sim::LatencyModel& lat_;
  util::Rng& rng_;
  metrics::Metrics& metrics_;
  std::vector<IMessageSink*> sinks_;
  /// Last scheduled delivery time per (src, dst) channel: enforces FIFO even
  /// when a later message samples a smaller latency.
  std::vector<sim::SimTime> channel_front_;
  std::uint64_t in_flight_ = 0;
};

}  // namespace ccpr::net
