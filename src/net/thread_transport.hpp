// Actually-concurrent in-process transport: one delivery thread per site.
//
// This is the second runtime behind the same IProtocol state machines; it
// exists to show the protocol logic is runtime-agnostic and to exercise real
// interleavings that the deterministic simulator cannot produce. Delivery to
// one site is serialized by that site's single mailbox thread; per (src, dst)
// FIFO follows from senders enqueueing in program order and a single
// consumer per mailbox. An optional random delivery delay widens the
// interleaving space for stress tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"
#include "net/message.hpp"
#include "util/rng.hpp"

namespace ccpr::net {

class ThreadTransport final : public ITransport {
 public:
  struct Options {
    /// Max artificial delivery delay in microseconds (0 = none). The delay is
    /// applied inside the mailbox thread so channel FIFO is preserved.
    std::uint32_t max_delay_us = 0;
    std::uint64_t delay_seed = 0x7a57ed;
  };

  ThreadTransport(std::uint32_t n, metrics::Metrics& metrics);
  ThreadTransport(std::uint32_t n, metrics::Metrics& metrics,
                  Options options);
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  void connect(SiteId site, IMessageSink* sink) override;
  void send(Message msg) override;

  /// Launch the mailbox threads. All sites must be connected first.
  void start();
  /// Block until every queued and in-handler message has been processed and
  /// no new ones were produced (the network is quiescent).
  void drain();
  /// Stop the mailbox threads (drains first).
  void stop();

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void pump(std::uint32_t site);

  std::uint32_t n_;
  metrics::Metrics& metrics_;
  Options options_;
  std::mutex metrics_mu_;
  std::vector<IMessageSink*> sinks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> outstanding_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool started_ = false;
};

}  // namespace ccpr::net
