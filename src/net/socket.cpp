#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace ccpr::net {

namespace {

/// Writing to a peer that already closed raises SIGPIPE by default, which
/// would kill the process instead of surfacing EPIPE to the reconnect
/// logic. Ignore it once, lazily, the first time any socket is created.
void ignore_sigpipe_once() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

bool resolve(const std::string& host, std::uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof *out);
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    out->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || res == nullptr) {
    return false;
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return true;
}

}  // namespace

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want == flags) return true;
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool set_reuseaddr(int fd) {
  const int one = 1;
  return ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) == 0;
}

bool set_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) == 0;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket tcp_listen(const std::string& host, std::uint16_t port,
                  std::uint16_t* bound_port) {
  ignore_sigpipe_once();
  sockaddr_in addr{};
  if (!resolve(host, port, &addr)) return Socket{};
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Socket{};
  set_reuseaddr(sock.fd());
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return Socket{};
  }
  if (::listen(sock.fd(), 64) != 0) return Socket{};
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof actual;
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      return Socket{};
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Socket tcp_dial(const std::string& host, std::uint16_t port) {
  ignore_sigpipe_once();
  sockaddr_in addr{};
  if (!resolve(host.empty() ? "127.0.0.1" : host, port, &addr)) {
    return Socket{};
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Socket{};
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return Socket{};
  }
  set_nodelay(sock.fd());
  return sock;
}

AcceptResult tcp_accept(int listen_fd, Socket* out) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) {
    set_nodelay(fd);
    *out = Socket(fd);
    return AcceptResult::kOk;
  }
  switch (errno) {
    case EINTR:
    case ECONNABORTED:  // peer gave up while queued; next one may be fine
#ifdef EPROTO
    case EPROTO:
#endif
      return AcceptResult::kRetryNow;
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
    case EAGAIN:
      return AcceptResult::kWouldBlock;
    case EMFILE:   // per-process fd limit
    case ENFILE:   // system-wide fd limit
    case ENOBUFS:
    case ENOMEM:
      return AcceptResult::kFdExhausted;
    default:
      return AcceptResult::kFatal;
  }
}

bool write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all_vec(int fd, const WriteSpan* spans, std::size_t count) {
  constexpr std::size_t kMaxIov = 64;  // well under any IOV_MAX
  struct iovec iov[kMaxIov];
  std::size_t next = 0;  // first span not yet fully written
  std::size_t offset = 0;  // bytes of spans[next] already written
  while (next < count) {
    std::size_t iovcnt = 0;
    for (std::size_t i = next; i < count && iovcnt < kMaxIov; ++i) {
      const std::size_t skip = (i == next) ? offset : 0;
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(
          static_cast<const std::uint8_t*>(spans[i].data) + skip);
      iov[iovcnt].iov_len = spans[i].len - skip;
      ++iovcnt;
    }
    const ssize_t n = ::writev(fd, iov, static_cast<int>(iovcnt));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    std::size_t written = static_cast<std::size_t>(n);
    // Advance past fully written spans, then note the partial one.
    while (next < count && written >= spans[next].len - offset) {
      written -= spans[next].len - offset;
      offset = 0;
      ++next;
    }
    offset += written;
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace ccpr::net
