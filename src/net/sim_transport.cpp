#include "net/sim_transport.hpp"

#include <utility>

#include "util/assert.hpp"

namespace ccpr::net {

SimTransport::SimTransport(std::uint32_t n, sim::Scheduler& sched,
                           sim::LatencyModel& lat, util::Rng& rng,
                           metrics::Metrics& metrics)
    : n_(n),
      sched_(sched),
      lat_(lat),
      rng_(rng),
      metrics_(metrics),
      sinks_(n, nullptr),
      channel_front_(static_cast<std::size_t>(n) * n, 0) {
  CCPR_EXPECTS(n > 0);
}

void SimTransport::connect(SiteId site, IMessageSink* sink) {
  CCPR_EXPECTS(site < n_);
  CCPR_EXPECTS(sink != nullptr);
  CCPR_EXPECTS(sinks_[site] == nullptr);
  sinks_[site] = sink;
}

void SimTransport::account(const Message& msg) {
  switch (classify_kind(msg)) {
    case MsgKind::kUpdate:
      ++metrics_.update_msgs;
      break;
    case MsgKind::kFetchReq:
      ++metrics_.fetch_req_msgs;
      break;
    case MsgKind::kFetchResp:
      ++metrics_.fetch_resp_msgs;
      break;
    default:
      break;
  }
  metrics_.control_bytes += msg.control_bytes();
  metrics_.payload_bytes += msg.payload_bytes;
}

void SimTransport::send(Message msg) {
  CCPR_EXPECTS(msg.src < n_ && msg.dst < n_);
  CCPR_EXPECTS(msg.payload_bytes <= msg.body.size());
  CCPR_EXPECTS(sinks_[msg.dst] != nullptr);
  account(msg);

  const sim::SimTime latency = lat_.sample(msg.src, msg.dst, rng_);
  CCPR_ASSERT(latency >= 0);
  const std::size_t channel =
      static_cast<std::size_t>(msg.src) * n_ + msg.dst;
  // FIFO clamp: never deliver before an earlier message on the same channel.
  // Equal timestamps are fine: the scheduler fires same-time events in
  // schedule order, which per channel equals send order.
  sim::SimTime when = sched_.now() + latency;
  if (when < channel_front_[channel]) when = channel_front_[channel];
  channel_front_[channel] = when;

  ++in_flight_;
  IMessageSink* sink = sinks_[msg.dst];
  sched_.schedule_at(
      when, [this, sink, m = std::move(msg)]() mutable {
        --in_flight_;
        sink->deliver(std::move(m));
      });
}

}  // namespace ccpr::net
