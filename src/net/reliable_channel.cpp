#include "net/reliable_channel.hpp"

#include <utility>

#include "net/wire.hpp"
#include "util/assert.hpp"

namespace ccpr::net {

namespace {

/// Frames an application message: [kind u8][seq varint][app kind u8][body].
Message frame_data(const Message& app, std::uint64_t seq) {
  Encoder enc(app.body.size() + 12);
  enc.u8(static_cast<std::uint8_t>(1));  // FrameKind::kData
  enc.varint(seq);
  enc.u8(static_cast<std::uint8_t>(app.kind));
  enc.raw(app.body.data(), app.body.size());
  Message framed;
  framed.kind = app.kind;  // preserved for transport metrics accounting
  framed.src = app.src;
  framed.dst = app.dst;
  framed.body = std::move(enc).take();
  framed.payload_bytes = app.payload_bytes;
  return framed;
}

}  // namespace

ReliableChannelTransport::ReliableChannelTransport(std::uint32_t n,
                                                   ITransport& inner,
                                                   sim::Scheduler& sched,
                                                   Options options)
    : n_(n), inner_(inner), sched_(sched), options_(options),
      endpoints_(n) {
  CCPR_EXPECTS(n > 0);
  for (auto& ep : endpoints_) {
    ep.channels.resize(n);
  }
  sinks_.reserve(n);
  for (SiteId s = 0; s < n; ++s) {
    sinks_.push_back(std::make_unique<Sink>(*this, s));
    inner_.connect(s, sinks_.back().get());
  }
}

ReliableChannelTransport::ReliableChannelTransport(std::uint32_t n,
                                                   ITransport& inner,
                                                   sim::Scheduler& sched)
    : ReliableChannelTransport(n, inner, sched, Options{}) {}

void ReliableChannelTransport::connect(SiteId site, IMessageSink* sink) {
  CCPR_EXPECTS(site < n_);
  CCPR_EXPECTS(sink != nullptr);
  CCPR_EXPECTS(endpoints_[site].app == nullptr);
  endpoints_[site].app = sink;
}

void ReliableChannelTransport::send(Message msg) {
  CCPR_EXPECTS(msg.src < n_ && msg.dst < n_);
  const SiteId src = msg.src;
  const SiteId dst = msg.dst;
  Channel& ch = endpoints_[src].channels[dst];
  const std::uint64_t seq = ch.next_seq++;
  inner_.send(frame_data(msg, seq));
  ch.unacked.emplace(seq, Pending{std::move(msg), 0});
  arm_retransmit(src, dst, seq);
}

void ReliableChannelTransport::arm_retransmit(SiteId src, SiteId dst,
                                              std::uint64_t seq) {
  sched_.schedule_after(options_.retransmit_after_us, [this, src, dst, seq] {
    Channel& ch = endpoints_[src].channels[dst];
    const auto it = ch.unacked.find(seq);
    if (it == ch.unacked.end()) return;  // acked meanwhile
    ++retransmissions_;
    ++it->second.retransmits;
    CCPR_ASSERT(it->second.retransmits <= options_.max_retransmits);
    inner_.send(frame_data(it->second.msg, seq));
    arm_retransmit(src, dst, seq);
  });
}

void ReliableChannelTransport::send_ack(SiteId self, SiteId peer,
                                        std::uint64_t cumulative) {
  Encoder enc(12);
  enc.u8(static_cast<std::uint8_t>(2));  // FrameKind::kAck
  enc.varint(cumulative);
  Message ack;
  ack.kind = MsgKind::kUpdate;  // metrics: control-plane message
  ack.src = self;
  ack.dst = peer;
  ack.body = std::move(enc).take();
  ack.payload_bytes = 0;
  inner_.send(std::move(ack));
}

void ReliableChannelTransport::on_datagram(SiteId self, Message msg) {
  Decoder dec(msg.body);
  const auto kind = dec.u8();
  if (kind == 2) {  // ack
    const std::uint64_t cumulative = dec.varint();
    CCPR_ASSERT(dec.ok());
    // An ack received at `self` from msg.src covers the channel
    // self -> msg.src, whose sender-side state lives at this endpoint.
    Channel& sender_ch = endpoints_[self].channels[msg.src];
    sender_ch.unacked.erase(sender_ch.unacked.begin(),
                            sender_ch.unacked.upper_bound(cumulative));
    return;
  }
  CCPR_ASSERT(kind == 1);  // data
  const std::uint64_t seq = dec.varint();
  const auto app_kind = static_cast<MsgKind>(dec.u8());
  CCPR_ASSERT(dec.ok());

  Endpoint& ep = endpoints_[self];
  Channel& ch = ep.channels[msg.src];
  if (seq <= ch.delivered_upto || ch.reorder.count(seq) != 0) {
    ++duplicates_discarded_;
    send_ack(self, msg.src, ch.delivered_upto);
    return;
  }

  Message app;
  app.kind = app_kind;
  app.src = msg.src;
  app.dst = self;
  app.body.assign(msg.body.begin() +
                      static_cast<std::ptrdiff_t>(msg.body.size() -
                                                  dec.remaining()),
                  msg.body.end());
  app.payload_bytes = msg.payload_bytes;
  ch.reorder.emplace(seq, std::move(app));
  deliver_ready(ep, self, msg.src);
  send_ack(self, msg.src, ch.delivered_upto);
}

void ReliableChannelTransport::deliver_ready(Endpoint& ep, SiteId self,
                                             SiteId peer) {
  CCPR_ASSERT(ep.app != nullptr);
  Channel& ch = ep.channels[peer];
  while (true) {
    const auto it = ch.reorder.find(ch.delivered_upto + 1);
    if (it == ch.reorder.end()) break;
    Message app = std::move(it->second);
    ch.reorder.erase(it);
    ++ch.delivered_upto;
    ep.app->deliver(std::move(app));
  }
  (void)self;
}

std::uint64_t ReliableChannelTransport::unacked() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) {
    for (const auto& ch : ep.channels) total += ch.unacked.size();
  }
  return total;
}

}  // namespace ccpr::net
