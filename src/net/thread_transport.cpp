#include "net/thread_transport.hpp"

#include <chrono>
#include <utility>

#include "util/assert.hpp"

namespace ccpr::net {

ThreadTransport::ThreadTransport(std::uint32_t n, metrics::Metrics& metrics)
    : ThreadTransport(n, metrics, Options{}) {}

ThreadTransport::ThreadTransport(std::uint32_t n, metrics::Metrics& metrics,
                                 Options options)
    : n_(n), metrics_(metrics), options_(options), sinks_(n, nullptr) {
  CCPR_EXPECTS(n > 0);
  mailboxes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

ThreadTransport::~ThreadTransport() { stop(); }

void ThreadTransport::connect(SiteId site, IMessageSink* sink) {
  CCPR_EXPECTS(site < n_);
  CCPR_EXPECTS(sink != nullptr);
  CCPR_EXPECTS(!started_);
  sinks_[site] = sink;
}

void ThreadTransport::start() {
  CCPR_EXPECTS(!started_);
  for (std::uint32_t i = 0; i < n_; ++i) CCPR_EXPECTS(sinks_[i] != nullptr);
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  threads_.reserve(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    threads_.emplace_back([this, i] { pump(i); });
  }
}

void ThreadTransport::send(Message msg) {
  CCPR_EXPECTS(msg.src < n_ && msg.dst < n_);
  CCPR_EXPECTS(msg.payload_bytes <= msg.body.size());
  {
    std::lock_guard lk(metrics_mu_);
    switch (classify_kind(msg)) {
      case MsgKind::kUpdate:
        ++metrics_.update_msgs;
        break;
      case MsgKind::kFetchReq:
        ++metrics_.fetch_req_msgs;
        break;
      case MsgKind::kFetchResp:
        ++metrics_.fetch_resp_msgs;
        break;
      default:
        break;
    }
    metrics_.control_bytes += msg.control_bytes();
    metrics_.payload_bytes += msg.payload_bytes;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  Mailbox& box = *mailboxes_[msg.dst];
  {
    std::lock_guard lk(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

void ThreadTransport::pump(std::uint32_t site) {
  Mailbox& box = *mailboxes_[site];
  util::Rng rng(options_.delay_seed + site);
  while (true) {
    Message msg;
    {
      std::unique_lock lk(box.mu);
      box.cv.wait(lk, [&] {
        return !box.queue.empty() ||
               stopping_.load(std::memory_order_relaxed);
      });
      if (box.queue.empty()) return;  // stopping and drained
      msg = std::move(box.queue.front());
      box.queue.pop_front();
    }
    if (options_.max_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          rng.below(options_.max_delay_us + 1)));
    }
    sinks_[site]->deliver(std::move(msg));
    // Decrement only after the handler returns: any messages the handler
    // sent were counted first, so outstanding_ hitting zero really means
    // network quiescence.
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lk(drain_mu_);
      drain_cv_.notify_all();
    }
  }
}

void ThreadTransport::drain() {
  std::unique_lock lk(drain_mu_);
  drain_cv_.wait(lk, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadTransport::stop() {
  if (!started_) return;
  drain();
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& box : mailboxes_) {
    std::lock_guard lk(box->mu);
    box->cv.notify_all();
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  started_ = false;
}

}  // namespace ccpr::net
