// Real-network transport: the third ITransport implementation, carrying the
// same net::Message envelope between OS processes over TCP sockets.
//
// One TcpTransport instance serves exactly one site (unlike the in-process
// transports, which host all sites): `connect()` attaches the local sink and
// `send()` routes by msg.dst to a per-peer connection. Design:
//
//   * Frames are length-prefixed (net/frame.hpp), bounds-checked on decode,
//     and capped at a configurable maximum size.
//   * One sender thread per peer owns that peer's outbound TCP connection.
//     Messages queue per peer; each wakeup the thread drains as much of the
//     queue as fits the batch limits (max_batch_bytes / max_batch_msgs) and
//     flushes the coalesced frames with one writev, so a backlog costs one
//     syscall per batch instead of one per frame. The thread dials lazily,
//     retries with exponential backoff plus jitter, and resends the
//     in-flight batch after a connection loss. Per-channel sequence numbers
//     let the receiver drop the duplicates this can produce, so each
//     (src, dst) channel stays FIFO and at-most-once for the lifetime of
//     both endpoints. Each frame also carries the sender's per-process
//     incarnation nonce; a receiver resets its seq watermark when the
//     incarnation changes, so a restarted peer (whose seq space restarts
//     at 1) is not mistaken for a duplicate stream and rejoins cleanly.
//   * Per-peer queues are capped (max_queue_msgs) with a drop-oldest
//     overflow policy: send() never blocks. The producer is the site's
//     apply thread, so parking it on a peer that is not draining (dead or
//     partitioned) would freeze the whole site — every client op and every
//     inbound apply — and deadlock shutdown, which joins the apply thread
//     before tearing the transport down. At the cap the oldest queued
//     message is dropped and counted (PeerStats::overflow_drops): the cap
//     bounds memory and staleness, not delivery. The inbound delivery
//     queue stays unbounded on purpose: readers must never block, or two
//     saturated sites could deadlock through their full kernel buffers
//     (see docs/RUNTIMES.md, threading model).
//   * Inbound, an accept thread spawns one reader thread per connection;
//     readers push decoded frames onto a single delivery queue drained by a
//     dedicated delivery thread, so deliveries to the sink never overlap.
//   * A process crash loses whatever that process had queued or applied;
//     messages queued toward a dead peer are retained up to the queue cap
//     and delivered once the peer comes back (with its state reset — the
//     protocol layer decides what that means). A peer down long enough to
//     overflow its queue misses the dropped updates — within the crash
//     model, since without persistence a restarted site returns empty and
//     rejoins under a fresh incarnation anyway. See docs/RUNTIMES.md for
//     the guarantee matrix.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.hpp"
#include "net/chaos.hpp"
#include "net/frame.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace ccpr::net {

class TcpTransport final : public ITransport {
 public:
  struct Peer {
    SiteId site = 0;
    std::string host;
    std::uint16_t port = 0;
  };

  struct Options {
    SiteId self = 0;
    std::string listen_host = "127.0.0.1";
    /// 0 lets the kernel pick; read the result from listen_port().
    std::uint16_t listen_port = 0;
    /// Remote sites this one may send to (entries for `self` are ignored).
    std::vector<Peer> peers;
    std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Reconnect backoff: initial delay, doubled per failure up to the max,
    /// each scaled by a uniform jitter in [0.5, 1.5).
    std::uint32_t backoff_initial_ms = 10;
    std::uint32_t backoff_max_ms = 1000;
    std::uint64_t jitter_seed = 0x7cb1e;
    /// Per-process-instance nonce stamped into every outbound frame so
    /// receivers can tell a restarted sender from a duplicate stream.
    /// 0 (the default) draws a random nonzero nonce at construction;
    /// set explicitly only in tests that need determinism.
    std::uint64_t incarnation = 0;
    /// Sender batching: coalesce queued frames into one writev flush up to
    /// this many bytes (a single frame always goes out regardless of its
    /// size). 1 effectively disables batching — one frame per syscall.
    std::uint32_t max_batch_bytes = 256 * 1024;
    /// Upper bound on frames per writev flush.
    std::uint32_t max_batch_msgs = 64;
    /// Cap on messages queued per peer. send() never blocks: at the cap
    /// the oldest queued message is dropped and counted (see the overflow
    /// policy in the header comment). 0 = unbounded.
    std::uint32_t max_queue_msgs = 65536;
    /// Seed for chaos-injection drop decisions (net/chaos.hpp). Per-link
    /// streams are derived from it, so a run is deterministic given the
    /// same send sequence.
    std::uint64_t chaos_seed = 0xc4a05;
  };

  /// Per-peer wire counters (sent side from the sender thread, received
  /// side keyed by the src field of inbound frames).
  struct PeerStats {
    SiteId site = 0;
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_recv = 0;
    std::uint64_t bytes_recv = 0;
    std::uint64_t dup_drops = 0;   ///< frames discarded by seq dedup
    std::uint64_t connects = 0;    ///< successful dials (first + re-dials)
    std::uint64_t queued = 0;      ///< messages currently waiting to send
    std::uint64_t incarnation_resets = 0;  ///< peer restarts observed
    std::uint64_t batches_sent = 0;  ///< writev flushes (≥1 frame each)
    std::uint64_t overflow_drops = 0;  ///< oldest msgs dropped at the cap
    std::uint64_t queue_cap = 0;     ///< configured cap (0 = unbounded)
    bool connected = false;  ///< outbound socket currently established
    std::uint64_t chaos_drops = 0;     ///< outbound msgs dropped by chaos
    std::uint64_t chaos_rx_drops = 0;  ///< inbound frames dropped by chaos
    std::uint64_t chaos_delayed = 0;   ///< msgs assigned a future due time
    bool chaos_active = false;  ///< a chaos rule is installed on this link
    bool chaos_partitioned = false;  ///< that rule blackholes the link
  };

  TcpTransport(Options opts, metrics::Metrics& metrics);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Only the local site may attach (this transport is one endpoint).
  void connect(SiteId site, IMessageSink* sink) override;
  void send(Message msg) override;

  /// Bind the listen socket and launch the I/O threads. Returns false if
  /// the listen address could not be bound (the transport stays stopped).
  bool start();
  /// Graceful shutdown: close connections, join every thread. Messages not
  /// yet written to a socket are dropped (call flush() first if they
  /// matter); messages already queued for delivery are delivered.
  void stop();

  /// Wait until every outbound queue has drained into the kernel's send
  /// buffers. Returns false on timeout (e.g. an unreachable peer).
  bool flush(std::chrono::milliseconds timeout);

  std::uint16_t listen_port() const noexcept { return listen_port_; }
  SiteId self() const noexcept { return opts_.self; }
  bool started() const noexcept { return started_; }

  std::vector<PeerStats> peer_stats() const;
  /// Copy of the transport-level counters, safe to call concurrently.
  metrics::Metrics metrics_snapshot() const;

  /// Install a chaos rule on the link to `peer` (replacing any previous
  /// rule; a default-constructed rule clears it). Thread-safe; takes effect
  /// on subsequent sends and, for partition, on queued traffic immediately.
  /// Unknown / self peer ids are ignored.
  void set_chaos(SiteId peer, const ChaosRule& rule);
  /// Remove every installed chaos rule and release held traffic.
  void clear_chaos();
  /// The rule currently installed toward `peer` ({} if none/unknown).
  ChaosRule chaos_rule(SiteId peer) const;

 private:
  struct Outbound {
    Message msg;
    std::uint64_t seq = 0;
    /// Earliest flush time, pushed into the future by chaos delay / rate
    /// pacing. Monotone non-decreasing within one queue (FIFO preserved).
    std::chrono::steady_clock::time_point due{};
  };

  /// State for one outbound peer connection, owned by its sender thread.
  struct Link {
    SiteId site = 0;
    std::string host;
    std::uint16_t port = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Outbound> queue;
    /// Messages the sender thread has popped off the queue and owns while
    /// it writes (and retries) them. Guarded by mu; counted into the
    /// `queued` stat and awaited by flush().
    std::size_t inflight = 0;
    std::uint64_t next_seq = 0;
    Socket sock;  // open/close/shutdown under mu; writes from sender thread
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t connects = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t overflow_drops = 0;
    // Chaos injection (guarded by mu). `chaos_rx_drops` counts inbound
    // frames from this peer discarded while partitioned — written by reader
    // threads, so it shares the same lock.
    ChaosRule chaos;
    util::Rng chaos_rng{0};
    std::chrono::steady_clock::time_point last_due{};
    std::uint64_t chaos_drops = 0;
    std::uint64_t chaos_rx_drops = 0;
    std::uint64_t chaos_delayed = 0;
    std::thread thread;
  };

  /// One accepted inbound connection and its reader thread.
  struct InConn {
    std::mutex mu;  ///< guards sock fd lifecycle (reader close vs stop)
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  struct RecvStats {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t dup_drops = 0;
    /// Watermark of the highest seq seen, valid only within `incarnation`:
    /// when a frame arrives from a new sender incarnation the watermark
    /// resets, so a restarted peer's fresh seq space is not deduplicated
    /// against the dead process's.
    std::uint64_t last_seq = 0;
    std::uint64_t incarnation = 0;
    std::uint64_t incarnation_resets = 0;
  };

  void accept_loop();
  void reader_loop(InConn* conn);
  void sender_loop(Link* link);
  void delivery_loop();
  bool known_peer(SiteId site) const;
  Link* link_for(SiteId site) const;

  Options opts_;
  metrics::Metrics& metrics_;
  mutable std::mutex metrics_mu_;

  IMessageSink* sink_ = nullptr;
  std::uint16_t listen_port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  Socket listen_sock_;
  std::thread accept_thread_;
  std::thread delivery_thread_;

  std::vector<std::unique_ptr<Link>> links_;  // fixed after construction

  std::uint64_t incarnation_ = 0;  // fixed after construction, nonzero

  mutable std::mutex in_mu_;
  std::condition_variable in_cv_;
  bool in_closed_ = false;  ///< set once no producer can enqueue again
  std::deque<Message> in_queue_;
  std::unordered_map<SiteId, RecvStats> recv_;  // guarded by in_mu_

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<InConn>> conns_;
};

}  // namespace ccpr::net
