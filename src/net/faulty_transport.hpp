// Fault injection: a decorator over any ITransport that drops, duplicates,
// delays and/or reorders messages with seeded probabilities — the same
// fault classes the TCP runtime's net::ChaosRule injects on real links
// (drop / one-way delay / rate-limit-induced skew), so simulated sweeps
// and real-network chaos tests exercise matching failure modes.
//
// The paper assumes reliable FIFO channels; this wrapper lets us (a) prove
// the offline checker notices when that assumption is broken (lost-update
// detection), and (b) exercise the ReliableChannel layer that rebuilds
// exactly-once FIFO delivery on top of a lossy network. Delay and reorder
// additionally break FIFO *ordering* without losing payloads, which is
// exactly the gap ReliableChannel's sequence numbers must close.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace ccpr::net {

class FaultyTransport final : public ITransport {
 public:
  struct Options {
    double drop_rate = 0.0;       ///< P(message silently vanishes)
    double duplicate_rate = 0.0;  ///< P(message delivered twice)
    /// P(message held back and re-sent delay_min..delay_max_us later).
    /// Needs `defer` (the runtime's timer); a delayed message overtaken by
    /// later traffic arrives out of order, like a chaos-delayed TCP link.
    double delay_rate = 0.0;
    std::uint64_t delay_min_us = 1'000;
    std::uint64_t delay_max_us = 20'000;
    /// P(message swapped with the next message sent): a minimal adjacent
    /// transposition, deterministic given the seed.
    double reorder_rate = 0.0;
    std::uint64_t seed = 0xfa17;
    /// Timer hook for delay injection: run `fn` after `us` microseconds.
    /// The simulated runtime passes Scheduler::schedule_after.
    std::function<void(std::uint64_t us, std::function<void()> fn)> defer;
  };

  FaultyTransport(ITransport& inner, Options options);

  void connect(SiteId site, IMessageSink* sink) override;
  void send(Message msg) override;

  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t duplicated() const noexcept { return duplicated_; }
  std::uint64_t delayed() const noexcept { return delayed_; }
  std::uint64_t reordered() const noexcept { return reordered_; }

 private:
  ITransport& inner_;
  Options options_;
  util::Rng rng_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t reordered_ = 0;
  /// The message a reorder fault is holding until the next send.
  std::optional<Message> held_;
};

}  // namespace ccpr::net
