// Fault injection: a decorator over any ITransport that drops and/or
// duplicates messages with seeded probabilities.
//
// The paper assumes reliable FIFO channels; this wrapper lets us (a) prove
// the offline checker notices when that assumption is broken (lost-update
// detection), and (b) exercise the ReliableChannel layer that rebuilds
// exactly-once FIFO delivery on top of a lossy network.
#pragma once

#include <cstdint>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace ccpr::net {

class FaultyTransport final : public ITransport {
 public:
  struct Options {
    double drop_rate = 0.0;       ///< P(message silently vanishes)
    double duplicate_rate = 0.0;  ///< P(message delivered twice)
    std::uint64_t seed = 0xfa17;
  };

  FaultyTransport(ITransport& inner, Options options);

  void connect(SiteId site, IMessageSink* sink) override;
  void send(Message msg) override;

  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t duplicated() const noexcept { return duplicated_; }

 private:
  ITransport& inner_;
  Options options_;
  util::Rng rng_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
};

}  // namespace ccpr::net
