// Reactor: epoll-based client-connection I/O for a site server.
//
// Replaces the thread-per-connection client path. A handful of event-loop
// threads (`io_threads`, default 2) each run an epoll loop over non-blocking
// sockets; loop 0 additionally owns the listener and deals accepted
// connections round-robin across loops. The reactor owns exactly three
// things: frame assembly (the [u32 len][body] client framing), ordered
// response delivery, and accept-storm backoff. Everything else — request
// semantics, covered-wait deadlines, admission control beyond the per-conn
// in-flight cap — lives behind the request handler (the protocol engines
// already park and time out waits on their own apply threads).
//
// Data flow: a readable socket is drained into the connection's read
// buffer; each complete frame gets the connection's next request sequence
// number and is handed to the RequestHandler *on the loop thread*. The
// handler must not block — it enqueues async engine commands and returns.
// Completions (on apply threads, admin executors, anywhere) call
// send_response(ref, body); the reactor marshals that onto the owning loop
// via its pending-op queue + eventfd, buffers out-of-order completions, and
// releases responses strictly in request order per connection (clients
// pipeline frames and match responses positionally).
//
// Backpressure: a connection with `max_inflight` unanswered requests stops
// being read (EPOLLIN interest dropped) until responses drain — a client
// flooding one connection stalls itself, not the loop. Accept storms under
// fd exhaustion (EMFILE and friends) deregister the listener for
// `accept_backoff_ms` instead of spinning; pending connections stay in the
// kernel backlog.
//
// Connection ids are 64-bit and never reused, so a stale ConnRef held by a
// slow engine callback simply misses the lookup and the response is
// dropped — the disconnect-vs-response race needs no generation counter.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace ccpr::net {

class Reactor {
 public:
  struct Options {
    /// Event-loop threads. Loop 0 also accepts.
    std::uint32_t io_threads = 2;
    std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Unanswered requests per connection before reads pause.
    std::uint32_t max_inflight = 128;
    /// Listener re-arm delay after fd exhaustion.
    std::uint32_t accept_backoff_ms = 100;
  };

  /// Names one request on one connection. Valid to hold across threads;
  /// after the connection dies the ref is harmlessly stale.
  struct ConnRef {
    std::uint32_t loop = 0;
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
  };

  /// Runs on the loop thread with one decoded frame body. Must not block.
  using RequestHandler =
      std::function<void(const ConnRef&, std::vector<std::uint8_t>)>;

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t active = 0;          ///< open connections right now
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t accept_backoffs = 0; ///< fd-exhaustion listener parks
    std::uint64_t conns_dropped = 0;   ///< closed on protocol/socket error
    std::uint64_t late_responses = 0;  ///< response for a dead connection
  };

  /// Takes ownership of a listening socket (from tcp_listen).
  Reactor(Socket listener, Options opts, RequestHandler on_request);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  bool start();
  /// Stops the loops, closes every connection, joins the threads.
  /// send_response stays safe to call during and after (drops + counts).
  void stop();

  /// Complete request `ref` with `body` (unframed; the reactor adds the
  /// length prefix). Thread-safe, never blocks beyond a short mutex.
  void send_response(const ConnRef& ref, std::vector<std::uint8_t> body);

  Stats stats() const;

 private:
  struct Conn {
    Socket sock;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> rbuf;
    std::size_t rpos = 0;  ///< parsed prefix of rbuf
    std::deque<std::vector<std::uint8_t>> wq;  ///< framed, in order
    std::size_t woff = 0;  ///< bytes of wq.front() already written
    std::uint64_t next_req_seq = 0;
    std::uint64_t next_send_seq = 0;
    /// Completed-out-of-order responses (framed), keyed by seq.
    std::map<std::uint64_t, std::vector<std::uint8_t>> held;
    std::uint32_t inflight = 0;
    bool want_write = false;
    bool paused = false;  ///< EPOLLIN interest dropped (in-flight cap)
  };

  struct Loop {
    std::uint32_t idx = 0;
    int ep = -1;
    int wake = -1;  ///< eventfd
    std::thread thread;
    std::mutex mu;
    bool closed = false;              ///< guarded by mu
    std::vector<std::function<void()>> ops;  ///< guarded by mu
    /// Loop-thread-only from here down.
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
    std::vector<std::pair<std::chrono::steady_clock::time_point,
                          std::function<void()>>>
        timers;
  };

  void run(std::uint32_t idx);
  void post(std::uint32_t idx, std::function<void()> op);
  void accept_ready(Loop& loop);
  void add_conn(Loop& loop, Socket sock);
  void conn_readable(Loop& loop, Conn& c);
  void conn_writable(Loop& loop, Conn& c);
  void flush_writes(Loop& loop, Conn& c);
  void release_ready(Loop& loop, Conn& c);
  void update_events(Loop& loop, Conn& c);
  void close_conn(Loop& loop, std::uint64_t id, bool error);
  int next_timeout_ms(Loop& loop) const;
  void run_due_timers(Loop& loop);

  Options opts_;
  Socket listener_;
  RequestHandler on_request_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::uint32_t> rr_{0};  ///< round-robin accept target

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> accept_backoffs_{0};
  std::atomic<std::uint64_t> conns_dropped_{0};
  std::atomic<std::uint64_t> late_responses_{0};
};

}  // namespace ccpr::net
