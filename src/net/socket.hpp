// Thin POSIX TCP socket helpers shared by the transport, the site server
// and the client library. All functions are blocking and return -1 /false
// on error (errno holds the cause); no exceptions.
#pragma once

#include <cstdint>
#include <string>

namespace ccpr::net {

/// RAII wrapper over a file descriptor. Closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;
  /// shutdown(SHUT_RDWR): unblocks any thread parked in read/write/accept
  /// on this fd without racing a concurrent close+reuse of the fd number.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

// ---- socket-option helpers (the ONE place these options get set; every
//      listen/dial/accept path below goes through them) ----

/// O_NONBLOCK on/off. Returns false on error (errno set).
bool set_nonblocking(int fd, bool on = true);
/// SO_REUSEADDR (listeners only — lets a restarted site rebind its port
/// while old connections sit in TIME_WAIT).
bool set_reuseaddr(int fd);
/// TCP_NODELAY (every connected socket — the protocol is request/response
/// with small frames; Nagle would add RTTs for nothing).
bool set_nodelay(int fd);

/// Bind + listen on host:port (TCP, SO_REUSEADDR). `port` may be 0 to let
/// the kernel pick; `bound_port` (if non-null) receives the actual port.
Socket tcp_listen(const std::string& host, std::uint16_t port,
                  std::uint16_t* bound_port = nullptr);

/// One blocking connect attempt (TCP_NODELAY set on success).
Socket tcp_dial(const std::string& host, std::uint16_t port);

/// Outcome classification for one accept() attempt, so callers share a
/// single audited errno policy instead of each growing its own.
enum class AcceptResult {
  kOk,           ///< *out holds a connected socket (TCP_NODELAY set)
  kRetryNow,     ///< transient (EINTR, ECONNABORTED, EPROTO): try again
  kWouldBlock,   ///< EAGAIN on a non-blocking listener: nothing pending
  kFdExhausted,  ///< EMFILE/ENFILE/ENOBUFS/ENOMEM: back off, do NOT spin —
                 ///< the pending connection stays queued and accept() will
                 ///< keep failing until an fd frees up (accept storm)
  kFatal,        ///< listener is broken (EBADF, EINVAL, ...)
};

/// One accept() attempt on `listen_fd`. Never blocks if the listener is
/// non-blocking; sets TCP_NODELAY on the accepted socket.
AcceptResult tcp_accept(int listen_fd, Socket* out);

/// Write exactly `len` bytes (restarting on EINTR / partial writes).
bool write_all(int fd, const void* data, std::size_t len);

/// One gather-write span: `data`/`len` pairs are coalesced into as few
/// writev() syscalls as possible (chunked to IOV_MAX, restarted on EINTR
/// and partial writes). Returns false on the first unrecoverable error.
struct WriteSpan {
  const void* data = nullptr;
  std::size_t len = 0;
};
bool write_all_vec(int fd, const WriteSpan* spans, std::size_t count);

/// Read exactly `len` bytes. Returns false on EOF or error.
bool read_all(int fd, void* data, std::size_t len);

}  // namespace ccpr::net
