#include "net/frame.hpp"

namespace ccpr::net {

std::vector<std::uint8_t> encode_frame(const Message& msg,
                                       std::uint64_t incarnation,
                                       std::uint64_t seq) {
  Encoder enc(msg.body.size() + 32);
  enc.u32(0);  // placeholder for the length prefix, patched below
  enc.u8(static_cast<std::uint8_t>(msg.kind));
  enc.varint(msg.src);
  enc.varint(msg.dst);
  enc.varint(incarnation);
  enc.varint(seq);
  enc.varint(msg.chan_epoch);
  enc.varint(msg.chan_seq);
  enc.varint(msg.payload_bytes);
  enc.varint(msg.body.size());
  enc.raw(msg.body.data(), msg.body.size());
  std::vector<std::uint8_t> out = enc.take();
  const auto framed = static_cast<std::uint32_t>(out.size() - kFrameLenBytes);
  for (std::size_t i = 0; i < kFrameLenBytes; ++i) {
    out[i] = static_cast<std::uint8_t>(framed >> (8 * i));
  }
  return out;
}

std::optional<std::uint32_t> decode_frame_size(const std::uint8_t* data,
                                               std::size_t len,
                                               std::uint32_t max_frame_bytes) {
  if (len != kFrameLenBytes) return std::nullopt;
  Decoder dec(data, len);
  const std::uint32_t framed = dec.u32();
  if (!dec.ok() || framed == 0 || framed > max_frame_bytes) {
    return std::nullopt;
  }
  return framed;
}

std::optional<Frame> decode_frame_body(const std::uint8_t* data,
                                       std::size_t len) {
  Decoder dec(data, len);
  Frame frame;
  const std::uint8_t kind = dec.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(MsgKind::kUpdate):
    case static_cast<std::uint8_t>(MsgKind::kFetchReq):
    case static_cast<std::uint8_t>(MsgKind::kFetchResp):
    case static_cast<std::uint8_t>(MsgKind::kCatchupReq):
    case static_cast<std::uint8_t>(MsgKind::kCatchupResp):
    case static_cast<std::uint8_t>(MsgKind::kHeartbeat):
    case static_cast<std::uint8_t>(MsgKind::kHeartbeatAck):
    case static_cast<std::uint8_t>(MsgKind::kShardEnvelope):
      frame.msg.kind = static_cast<MsgKind>(kind);
      break;
    default:
      return std::nullopt;
  }
  frame.msg.src = static_cast<SiteId>(dec.varint());
  frame.msg.dst = static_cast<SiteId>(dec.varint());
  frame.incarnation = dec.varint();
  frame.seq = dec.varint();
  frame.msg.chan_epoch = dec.varint();
  frame.msg.chan_seq = dec.varint();
  frame.msg.payload_bytes = static_cast<std::uint32_t>(dec.varint());
  const std::uint64_t body_len = dec.varint();
  if (!dec.ok() || body_len != dec.remaining()) return std::nullopt;
  const std::size_t body_start = len - dec.remaining();
  frame.msg.body.assign(data + body_start, data + len);
  if (frame.msg.payload_bytes > frame.msg.body.size()) return std::nullopt;
  return frame;
}

}  // namespace ccpr::net
