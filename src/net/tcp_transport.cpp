#include "net/tcp_transport.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <random>
#include <utility>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ccpr::net {

namespace {

/// Nonzero per-process-instance nonce. Entropy comes from the OS, not the
/// clock, so two sites started in the same tick still differ.
std::uint64_t draw_incarnation() {
  std::random_device rd;
  std::uint64_t nonce = 0;
  do {
    nonce = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  } while (nonce == 0);
  return nonce;
}

}  // namespace

TcpTransport::TcpTransport(Options opts, metrics::Metrics& metrics)
    : opts_(std::move(opts)), metrics_(metrics) {
  CCPR_EXPECTS(opts_.max_frame_bytes > 0);
  CCPR_EXPECTS(opts_.backoff_initial_ms > 0);
  if (opts_.max_batch_bytes == 0) opts_.max_batch_bytes = 1;
  if (opts_.max_batch_msgs == 0) opts_.max_batch_msgs = 1;
  incarnation_ =
      opts_.incarnation != 0 ? opts_.incarnation : draw_incarnation();
  for (const Peer& peer : opts_.peers) {
    if (peer.site == opts_.self) continue;
    auto link = std::make_unique<Link>();
    link->site = peer.site;
    link->host = peer.host;
    link->port = peer.port;
    link->chaos_rng = util::Rng(opts_.chaos_seed ^
                                (0x9e3779b97f4a7c15ULL * (peer.site + 1)));
    links_.push_back(std::move(link));
  }
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::connect(SiteId site, IMessageSink* sink) {
  CCPR_EXPECTS(site == opts_.self);
  CCPR_EXPECTS(sink != nullptr);
  CCPR_EXPECTS(!started_);
  sink_ = sink;
}

bool TcpTransport::start() {
  CCPR_EXPECTS(!started_);
  CCPR_EXPECTS(sink_ != nullptr);
  listen_sock_ =
      tcp_listen(opts_.listen_host, opts_.listen_port, &listen_port_);
  if (!listen_sock_.valid()) return false;
  stopping_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lk(in_mu_);
    in_closed_ = false;
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  delivery_thread_ = std::thread([this] { delivery_loop(); });
  for (auto& link : links_) {
    link->thread = std::thread([this, l = link.get()] { sender_loop(l); });
  }
  return true;
}

void TcpTransport::send(Message msg) {
  CCPR_EXPECTS(started_);
  CCPR_EXPECTS(msg.src == opts_.self);
  CCPR_EXPECTS(msg.payload_bytes <= msg.body.size());
  {
    std::lock_guard lk(metrics_mu_);
    switch (classify_kind(msg)) {
      case MsgKind::kUpdate:
        ++metrics_.update_msgs;
        break;
      case MsgKind::kFetchReq:
        ++metrics_.fetch_req_msgs;
        break;
      case MsgKind::kFetchResp:
        ++metrics_.fetch_resp_msgs;
        break;
      default:
        break;  // heartbeats / catch-up count only into the byte totals
    }
    metrics_.control_bytes += msg.control_bytes();
    metrics_.payload_bytes += msg.payload_bytes;
  }
  if (msg.dst == opts_.self) {
    // Loopback: straight onto the delivery queue (seq 0 bypasses dedup).
    std::lock_guard lk(in_mu_);
    in_queue_.push_back(std::move(msg));
    in_cv_.notify_one();
    return;
  }
  for (auto& link : links_) {
    if (link->site != msg.dst) continue;
    {
      std::lock_guard lk(link->mu);
      auto due = std::chrono::steady_clock::time_point{};
      if (link->chaos.active()) {
        // Lossy link: the message vanishes at enqueue, like on the wire.
        if (link->chaos.drop_milli != 0 &&
            link->chaos_rng.below(1000) < link->chaos.drop_milli) {
          ++link->chaos_drops;
          return;
        }
        // Slow link: push the flush time into the future. Clamped monotone
        // per link — reordering a channel would make the receiver's seq
        // dedup discard the late frames as duplicates.
        auto now = std::chrono::steady_clock::now();
        due = now;
        if (link->chaos.delay_us != 0) {
          due += std::chrono::microseconds(link->chaos.delay_us);
        }
        if (link->chaos.rate_per_s != 0) {
          const auto gap =
              std::chrono::microseconds(1'000'000 / link->chaos.rate_per_s);
          due = std::max(due, link->last_due + gap);
        }
        due = std::max(due, link->last_due);
        link->last_due = due;
        if (due > now) ++link->chaos_delayed;
        // Partition holds the queue at the sender loop, not here: traffic
        // keeps queueing (and overflow-dropping) as against a dead peer.
      }
      if (opts_.max_queue_msgs > 0 &&
          link->queue.size() >= opts_.max_queue_msgs) {
        // Overflow: drop the oldest queued message instead of blocking the
        // producer. The producer is the apply thread; parking it on a peer
        // that is not draining (dead or partitioned) would freeze every
        // client op and inbound apply on this site, and deadlock stop(),
        // which joins the apply thread before the transport shuts down.
        // The dropped update is lost to that peer — within the crash model
        // (no persistence yet: a peer down that long rejoins empty under a
        // fresh incarnation) — and the drop is counted.
        const std::size_t excess =
            link->queue.size() - opts_.max_queue_msgs + 1;
        link->queue.erase(
            link->queue.begin(),
            link->queue.begin() + static_cast<std::ptrdiff_t>(excess));
        link->overflow_drops += excess;
      }
      link->queue.push_back(Outbound{std::move(msg), ++link->next_seq, due});
    }
    link->cv.notify_all();
    return;
  }
  CCPR_UNREACHABLE("send to unconfigured peer site");
}

void TcpTransport::sender_loop(Link* link) {
  util::Rng jitter(opts_.jitter_seed ^
                   (0x9e3779b97f4a7c15ULL * (link->site + 1)));
  std::uint32_t backoff_ms = opts_.backoff_initial_ms;
  std::vector<Outbound> batch;                    // owned in-flight batch
  std::vector<std::vector<std::uint8_t>> frames;  // encoded batch
  std::vector<WriteSpan> spans;
  while (true) {
    // Pop a batch off the queue head. The batch is *owned* by this thread
    // from here on — send()'s drop-oldest overflow may erase queue
    // elements at any time, so no reference into the queue can outlive the
    // lock. A failed write retries the owned batch, never losing it.
    // Batch sizing uses the body length plus a fixed header allowance as a
    // frame-size proxy: close enough to bound the writev, and it keeps the
    // 64-frame encode out of the critical section (holding the lock across
    // it would stall every producer, the apply thread above all).
    batch.clear();
    frames.clear();
    {
      std::unique_lock lk(link->mu);
      for (;;) {
        if (stopping_.load(std::memory_order_relaxed)) return;
        // A partition rule parks the sender with the queue intact — the
        // link behaves like TCP into a blackhole until the rule is lifted.
        if (link->queue.empty() || link->chaos.partition) {
          link->cv.wait(lk);
          continue;
        }
        const auto now = std::chrono::steady_clock::now();
        if (link->queue.front().due > now) {
          // Chaos delay / rate pacing: nothing is due yet. wait_until
          // returns on heal/stop notifications too; re-evaluate then.
          link->cv.wait_until(lk, link->queue.front().due);
          continue;
        }
        break;
      }
      const auto now = std::chrono::steady_clock::now();
      std::size_t est_bytes = 0;
      while (!link->queue.empty() && batch.size() < opts_.max_batch_msgs &&
             (batch.empty() || est_bytes < opts_.max_batch_bytes) &&
             link->queue.front().due <= now) {
        est_bytes += link->queue.front().msg.body.size() + 48;
        batch.push_back(std::move(link->queue.front()));
        link->queue.pop_front();
      }
      link->inflight = batch.size();
    }
    spans.clear();
    std::size_t batch_wire_bytes = 0;
    for (const Outbound& out : batch) {
      frames.push_back(encode_frame(out.msg, incarnation_, out.seq));
    }
    for (const auto& f : frames) {
      spans.push_back(WriteSpan{f.data(), f.size()});
      batch_wire_bytes += f.size();
    }
    // Exponential backoff with jitter; stop-aware sleep. Applied on any
    // iteration that makes no progress — a failed dial, but also a failed
    // write (a peer mid-restart can accept and immediately reset, which
    // would otherwise spin dial/write/close at full speed).
    const auto backoff_sleep = [&] {
      const auto base = static_cast<std::uint64_t>(backoff_ms);
      const std::uint64_t wait_ms = base / 2 + jitter.below(base + 1);
      backoff_ms = std::min(backoff_ms * 2, opts_.backoff_max_ms);
      std::unique_lock lk(link->mu);
      link->cv.wait_for(lk, std::chrono::milliseconds(wait_ms), [&] {
        return stopping_.load(std::memory_order_relaxed);
      });
    };
    bool sent = false;
    while (!sent && !stopping_.load(std::memory_order_relaxed)) {
      int fd = -1;
      {
        std::lock_guard lk(link->mu);
        fd = link->sock.fd();
      }
      if (fd < 0) {
        Socket sock = tcp_dial(link->host, link->port);
        if (!sock.valid()) {
          backoff_sleep();
          continue;
        }
        std::lock_guard lk(link->mu);
        link->sock = std::move(sock);
        ++link->connects;
        fd = link->sock.fd();
      }
      if (write_all_vec(fd, spans.data(), spans.size())) {
        sent = true;
        // Only frames on the wire count as progress; a successful dial
        // alone does not reset the backoff.
        backoff_ms = opts_.backoff_initial_ms;
      } else {
        // Connection lost; drop the socket and retry the whole batch on a
        // fresh one. A prefix of it may have reached the peer — the
        // receiver's seq dedup absorbs the duplicates.
        {
          std::lock_guard lk(link->mu);
          link->sock.close();
        }
        backoff_sleep();
      }
    }
    {
      std::lock_guard lk(link->mu);
      link->inflight = 0;
      if (sent) {
        link->msgs_sent += frames.size();
        link->bytes_sent += batch_wire_bytes;
        ++link->batches_sent;
      }
    }
    // Wake flush() when the in-flight batch is resolved (on the wire, or
    // abandoned because the process is stopping).
    link->cv.notify_all();
    if (!sent) return;  // stopping
  }
}

void TcpTransport::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_sock_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      // A persistent errno (e.g. EMFILE) must not become a busy spin.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    auto conn = std::make_unique<InConn>();
    conn->sock = Socket(fd);
    InConn* raw = conn.get();
    std::lock_guard lk(conns_mu_);
    // Reap readers that finished (their peer disconnected) so a long-lived
    // process does not accumulate dead threads across reconnects.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    conn->thread = std::thread([this, raw] { reader_loop(raw); });
    conns_.push_back(std::move(conn));
  }
}

bool TcpTransport::known_peer(SiteId site) const {
  for (const auto& link : links_) {
    if (link->site == site) return true;
  }
  return false;
}

TcpTransport::Link* TcpTransport::link_for(SiteId site) const {
  for (const auto& link : links_) {
    if (link->site == site) return link.get();
  }
  return nullptr;
}

void TcpTransport::set_chaos(SiteId peer, const ChaosRule& rule) {
  Link* link = link_for(peer);
  if (link == nullptr) return;
  {
    std::lock_guard lk(link->mu);
    link->chaos = rule;
    if (!rule.active()) link->last_due = {};
  }
  // Wake the sender: a lifted partition releases held traffic, a changed
  // delay re-evaluates the front due time.
  link->cv.notify_all();
}

void TcpTransport::clear_chaos() {
  for (auto& link : links_) {
    {
      std::lock_guard lk(link->mu);
      link->chaos = ChaosRule{};
      link->last_due = {};
    }
    link->cv.notify_all();
  }
}

ChaosRule TcpTransport::chaos_rule(SiteId peer) const {
  Link* link = link_for(peer);
  if (link == nullptr) return {};
  std::lock_guard lk(link->mu);
  return link->chaos;
}

void TcpTransport::reader_loop(InConn* conn) {
  std::vector<std::uint8_t> buf;
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::uint8_t lenbuf[kFrameLenBytes];
    if (!read_all(conn->sock.fd(), lenbuf, sizeof lenbuf)) break;
    const auto framed =
        decode_frame_size(lenbuf, sizeof lenbuf, opts_.max_frame_bytes);
    if (!framed) break;  // oversized or zero length: drop the connection
    buf.resize(*framed);
    if (!read_all(conn->sock.fd(), buf.data(), buf.size())) break;
    auto frame = decode_frame_body(buf.data(), buf.size());
    if (!frame) break;  // malformed frame: drop the connection
    if (frame->msg.dst != opts_.self || !known_peer(frame->msg.src)) break;
    if (Link* link = link_for(frame->msg.src)) {
      // Chaos partition blackholes the link from this site's point of
      // view: frames from the partitioned peer are read off the socket and
      // discarded before the seq-dedup bookkeeping, as if never received.
      std::lock_guard lk(link->mu);
      if (link->chaos.partition) {
        ++link->chaos_rx_drops;
        continue;
      }
    }
    {
      std::lock_guard lk(in_mu_);
      RecvStats& rs = recv_[frame->msg.src];
      if (frame->seq != 0) {
        if (frame->incarnation != rs.incarnation) {
          // New sender process instance: its seq space restarted, so the
          // old watermark is meaningless. Reset rather than dropping the
          // restarted site's traffic as "duplicates".
          if (rs.incarnation != 0) ++rs.incarnation_resets;
          rs.incarnation = frame->incarnation;
          rs.last_seq = 0;
        }
        if (frame->seq <= rs.last_seq) {
          ++rs.dup_drops;
          continue;
        }
        rs.last_seq = frame->seq;
      }
      ++rs.msgs;
      rs.bytes += buf.size() + kFrameLenBytes;
      in_queue_.push_back(std::move(frame->msg));
    }
    in_cv_.notify_one();
  }
  {
    // Close eagerly so a dead peer's fd is not held until the next reap,
    // under the conn mutex: stop() may be shutting the same socket down.
    std::lock_guard lk(conn->mu);
    conn->sock.close();
  }
  conn->done.store(true, std::memory_order_release);
}

void TcpTransport::delivery_loop() {
  while (true) {
    Message msg;
    {
      std::unique_lock lk(in_mu_);
      // Exit only once stop() has joined every producer (readers and the
      // loopback path) and the queue is drained, so a message that made it
      // into the queue is always delivered.
      in_cv_.wait(lk, [&] { return !in_queue_.empty() || in_closed_; });
      if (in_queue_.empty()) return;  // closed and drained
      msg = std::move(in_queue_.front());
      in_queue_.pop_front();
    }
    sink_->deliver(std::move(msg));
  }
}

bool TcpTransport::flush(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (auto& link : links_) {
    std::unique_lock lk(link->mu);
    const bool drained = link->cv.wait_until(lk, deadline, [&] {
      return (link->queue.empty() && link->inflight == 0) ||
             stopping_.load(std::memory_order_relaxed);
    });
    if (!drained || !link->queue.empty() || link->inflight != 0) {
      return false;
    }
  }
  return true;
}

void TcpTransport::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblock and join accept() first so no new reader can appear.
  listen_sock_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock and join the readers. They are the inbound producers, so only
  // after this point is the delivery queue complete.
  {
    std::lock_guard lk(conns_mu_);
    for (auto& conn : conns_) {
      std::lock_guard conn_lk(conn->mu);
      conn->sock.shutdown_both();
    }
  }
  {
    std::lock_guard lk(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  // Unblock senders (parked on their cv or mid-write/backoff) and join.
  for (auto& link : links_) {
    std::lock_guard lk(link->mu);
    link->sock.shutdown_both();
    link->cv.notify_all();
  }
  for (auto& link : links_) {
    if (link->thread.joinable()) link->thread.join();
    std::lock_guard lk(link->mu);
    link->sock.close();
  }
  // Every producer is gone: close the delivery queue so the delivery thread
  // drains what is queued and exits — messages that reached the queue are
  // delivered, never dropped.
  {
    std::lock_guard lk(in_mu_);
    in_closed_ = true;
  }
  in_cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  listen_sock_.close();
  started_ = false;
}

std::vector<TcpTransport::PeerStats> TcpTransport::peer_stats() const {
  std::vector<PeerStats> out;
  out.reserve(links_.size());
  for (const auto& link : links_) {
    PeerStats ps;
    ps.site = link->site;
    ps.queue_cap = opts_.max_queue_msgs;
    {
      std::lock_guard lk(link->mu);
      ps.msgs_sent = link->msgs_sent;
      ps.bytes_sent = link->bytes_sent;
      ps.connects = link->connects;
      ps.queued = link->queue.size() + link->inflight;
      ps.batches_sent = link->batches_sent;
      ps.overflow_drops = link->overflow_drops;
      ps.connected = link->sock.valid();
      ps.chaos_drops = link->chaos_drops;
      ps.chaos_rx_drops = link->chaos_rx_drops;
      ps.chaos_delayed = link->chaos_delayed;
      ps.chaos_active = link->chaos.active();
      ps.chaos_partitioned = link->chaos.partition;
    }
    {
      std::lock_guard lk(in_mu_);
      const auto it = recv_.find(link->site);
      if (it != recv_.end()) {
        ps.msgs_recv = it->second.msgs;
        ps.bytes_recv = it->second.bytes;
        ps.dup_drops = it->second.dup_drops;
        ps.incarnation_resets = it->second.incarnation_resets;
      }
    }
    out.push_back(ps);
  }
  return out;
}

metrics::Metrics TcpTransport::metrics_snapshot() const {
  std::lock_guard lk(metrics_mu_);
  return metrics_;
}

}  // namespace ccpr::net
