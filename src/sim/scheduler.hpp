// Deterministic discrete-event scheduler.
//
// The simulator stands in for the paper's geo-distributed deployment: sites
// and channels are event-driven state machines and "time" is virtual.
// Determinism contract: two events at the same timestamp fire in the order
// they were scheduled (a monotone sequence number breaks ties), so a run is a
// pure function of (workload seed, latency seed).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace ccpr::sim {

/// Virtual time in microseconds.
using SimTime = std::int64_t;

class Scheduler {
 public:
  using Action = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` microseconds from now.
  void schedule_after(SimTime delay, Action action) {
    CCPR_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule `action` at absolute virtual time `when` (>= now).
  void schedule_at(SimTime when, Action action) {
    CCPR_EXPECTS(when >= now_);
    queue_.push(Event{when, next_seq_++, std::move(action)});
  }

  /// Run events until the queue drains. Returns the number of events fired.
  std::uint64_t run() {
    std::uint64_t fired = 0;
    while (!queue_.empty()) {
      fire_next();
      ++fired;
    }
    return fired;
  }

  /// Run events with timestamp <= deadline. Events scheduled during the run
  /// are processed if they also fall within the deadline.
  std::uint64_t run_until(SimTime deadline) {
    std::uint64_t fired = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      fire_next();
      ++fired;
    }
    if (now_ < deadline) now_ = deadline;
    return fired;
  }

  /// Run exactly one event if available. Returns false when idle.
  bool step() {
    if (queue_.empty()) return false;
    fire_next();
    return true;
  }

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t events_fired() const noexcept { return fired_total_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void fire_next() {
    // Move the event out before popping so the action may schedule more work.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    CCPR_ASSERT(ev.when >= now_);
    now_ = ev.when;
    ++fired_total_;
    ev.action();
  }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_total_ = 0;
};

}  // namespace ccpr::sim
