// Pluggable one-way network latency models for the simulated wide-area
// topology. All models are sampled with an externally owned Rng so a run
// remains a pure function of its seeds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ccpr::sim {

/// Samples the one-way delay in microseconds for a message src -> dst.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimTime sample(std::uint32_t src, std::uint32_t dst,
                         util::Rng& rng) = 0;
};

/// Fixed delay for every channel (useful for analytic comparisons).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime delay_us);
  SimTime sample(std::uint32_t src, std::uint32_t dst, util::Rng& rng) override;

 private:
  SimTime delay_us_;
};

/// Uniform delay in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo_us, SimTime hi_us);
  SimTime sample(std::uint32_t src, std::uint32_t dst, util::Rng& rng) override;

 private:
  SimTime lo_us_;
  SimTime hi_us_;
};

/// Log-normal delay: heavy-tailed, the usual fit for WAN RTT distributions.
class LogNormalLatency final : public LatencyModel {
 public:
  LogNormalLatency(double median_us, double sigma);
  SimTime sample(std::uint32_t src, std::uint32_t dst, util::Rng& rng) override;

 private:
  double median_us_;
  double sigma_;
};

/// Explicit per-pair base delay matrix plus multiplicative log-normal jitter.
/// Models a geo-replicated deployment where sites live in named regions.
class GeoLatency final : public LatencyModel {
 public:
  /// base_us is an n*n row-major matrix of one-way delays; diagonal entries
  /// model the local loopback (typically small but nonzero).
  GeoLatency(std::uint32_t n, std::vector<SimTime> base_us, double jitter_sigma);

  SimTime sample(std::uint32_t src, std::uint32_t dst, util::Rng& rng) override;

  /// Builds a matrix from region assignments: sites in the same region are
  /// `intra_us` apart; sites in different regions `inter_us`.
  static std::unique_ptr<GeoLatency> two_tier(
      const std::vector<std::uint32_t>& region_of, SimTime intra_us,
      SimTime inter_us, double jitter_sigma);

 private:
  std::uint32_t n_;
  std::vector<SimTime> base_us_;
  double jitter_sigma_;
};

}  // namespace ccpr::sim
