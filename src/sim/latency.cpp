#include "sim/latency.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ccpr::sim {

ConstantLatency::ConstantLatency(SimTime delay_us) : delay_us_(delay_us) {
  CCPR_EXPECTS(delay_us >= 0);
}

SimTime ConstantLatency::sample(std::uint32_t /*src*/, std::uint32_t /*dst*/,
                                util::Rng& /*rng*/) {
  return delay_us_;
}

UniformLatency::UniformLatency(SimTime lo_us, SimTime hi_us)
    : lo_us_(lo_us), hi_us_(hi_us) {
  CCPR_EXPECTS(lo_us >= 0);
  CCPR_EXPECTS(lo_us <= hi_us);
}

SimTime UniformLatency::sample(std::uint32_t /*src*/, std::uint32_t /*dst*/,
                               util::Rng& rng) {
  return rng.range(lo_us_, hi_us_);
}

LogNormalLatency::LogNormalLatency(double median_us, double sigma)
    : median_us_(median_us), sigma_(sigma) {
  CCPR_EXPECTS(median_us > 0.0);
  CCPR_EXPECTS(sigma >= 0.0);
}

SimTime LogNormalLatency::sample(std::uint32_t /*src*/, std::uint32_t /*dst*/,
                                 util::Rng& rng) {
  return static_cast<SimTime>(std::llround(rng.lognormal(median_us_, sigma_)));
}

GeoLatency::GeoLatency(std::uint32_t n, std::vector<SimTime> base_us,
                       double jitter_sigma)
    : n_(n), base_us_(std::move(base_us)), jitter_sigma_(jitter_sigma) {
  CCPR_EXPECTS(n_ > 0);
  CCPR_EXPECTS(base_us_.size() == static_cast<std::size_t>(n_) * n_);
  CCPR_EXPECTS(jitter_sigma_ >= 0.0);
}

SimTime GeoLatency::sample(std::uint32_t src, std::uint32_t dst,
                           util::Rng& rng) {
  CCPR_EXPECTS(src < n_ && dst < n_);
  const SimTime base = base_us_[static_cast<std::size_t>(src) * n_ + dst];
  if (jitter_sigma_ == 0.0) return base;
  const double jitter = rng.lognormal(1.0, jitter_sigma_);
  return static_cast<SimTime>(
      std::llround(static_cast<double>(base) * jitter));
}

std::unique_ptr<GeoLatency> GeoLatency::two_tier(
    const std::vector<std::uint32_t>& region_of, SimTime intra_us,
    SimTime inter_us, double jitter_sigma) {
  const auto n = static_cast<std::uint32_t>(region_of.size());
  CCPR_EXPECTS(n > 0);
  std::vector<SimTime> base(static_cast<std::size_t>(n) * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      base[static_cast<std::size_t>(i) * n + j] =
          region_of[i] == region_of[j] ? intra_us : inter_us;
    }
  }
  return std::make_unique<GeoLatency>(n, std::move(base), jitter_sigma);
}

}  // namespace ccpr::sim
