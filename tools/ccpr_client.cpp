// ccpr_client: command-line client for a running cluster.
//
//   build/tools/ccpr_client --config=cluster.conf --site=0 put mykey hello
//   build/tools/ccpr_client --config=cluster.conf --site=1 get mykey
//   build/tools/ccpr_client --config=cluster.conf --site=0 snapshot k1 k2
//   build/tools/ccpr_client --config=cluster.conf --site=2 status
//   build/tools/ccpr_client --config=cluster.conf --region=eu get mykey
//   build/tools/ccpr_client --config=cluster.conf --site=0 bench
//       --ops=1000 --write-rate=0.3 --seed=1 [--json]
//
// Commands (first positional argument):
//   ping                     round-trip check
//   put <key> <value>        write, prints the WriteId
//   get <key>                read, prints the value
//   snapshot <key>...        causally consistent multi-key read
//   status                   server-side counters
//   metrics                  Prometheus exposition text from the site
//   bench                    seeded read/write loop; reports throughput,
//                            per-op latency p50/p90/p99 and the site's
//                            peer-message rate (--ops, --write-rate,
//                            --value-bytes, --seed, --json)
//   wal-stat                 offline WAL summary (record counts, checkpoint
//                            position, per-peer durable watermarks); needs
//                            --data-dir=<path> --site=<id> but no running
//                            server and no --config
//   store-stat               the site's value-store engine counters:
//                            engine kind, keys, resident bytes, probe
//                            length, spill activity (live server query)
//   engine-stat              per-shard protocol-engine counters (queue
//                            depth/peak, producer waits, parked reads,
//                            covered waiters) plus the cross-shard
//                            envelope-admission gauges
//   chaos clear              remove every fault-injection rule on the site
//   chaos set <peer|all>     install a fault rule on the site's link(s):
//       [--drop=<p>]         drop probability (0.25 or permille like 250)
//       [--delay=<dur>]      one-way delay, duration token (50ms, 1s)
//       [--rate=<n>]         cap the link at n messages/second
//       [--partition]        blackhole the link until cleared
//
// Resilience flags (any command): --no-retry disables the client retry
// loop, --failover lets the session move to the next-nearest site when its
// home looks dead, --op-deadline-ms=<n> bounds each operation's wall clock.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "server/durability.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace ccpr;

namespace {

int usage() {
  std::cerr << "usage: ccpr_client --config=<path> --site=<id> "
               "ping|put|get|snapshot|status|metrics|store-stat|"
               "engine-stat|bench|chaos ...\n"
               "       ccpr_client --config=<path> --region=<name> <cmd> ...\n"
               "       ccpr_client --data-dir=<path> --site=<id> wal-stat\n"
               "(--region picks the nearest site of a geo config; --site "
               "wins when both are given)\n"
               "resilience: --no-retry --failover --op-deadline-ms=<n>\n"
               "chaos: chaos clear | chaos set <peer|all> [--drop=<p>] "
               "[--delay=<dur>] [--rate=<n>] [--partition]\n";
  return 2;
}

/// Drop probability: a fraction ("0.25") or a permille count ("250").
bool parse_drop(const std::string& s, std::uint32_t* out) {
  try {
    if (s.find('.') != std::string::npos) {
      const double f = std::stod(s);
      if (f < 0.0 || f > 1.0) return false;
      *out = static_cast<std::uint32_t>(f * 1000.0 + 0.5);
    } else {
      const long v = std::stol(s);
      if (v < 0 || v > 1000) return false;
      *out = static_cast<std::uint32_t>(v);
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

int run_chaos(client::Client& cli, const std::vector<std::string>& args,
              const util::Flags& flags) {
  if (args.size() >= 2 && args[1] == "clear") {
    cli.chaos_clear();
    std::printf("ok\n");
    return 0;
  }
  if (args.size() < 3 || args[1] != "set") return usage();
  causal::SiteId peer = causal::kNoSite;  // "all"
  if (args[2] != "all") {
    try {
      peer = static_cast<causal::SiteId>(std::stoul(args[2]));
    } catch (const std::exception&) {
      return usage();
    }
  }
  net::ChaosRule rule;
  const std::string drop = flags.get_string("drop", "");
  if (!drop.empty() && !parse_drop(drop, &rule.drop_milli)) {
    std::cerr << "ccpr_client: bad --drop value '" << drop << "'\n";
    return 2;
  }
  const std::string delay = flags.get_string("delay", "");
  if (!delay.empty() && !server::parse_duration_token(delay, &rule.delay_us)) {
    std::cerr << "ccpr_client: bad --delay duration '" << delay << "'\n";
    return 2;
  }
  rule.rate_per_s = static_cast<std::uint32_t>(flags.get_int("rate", 0));
  rule.partition = flags.get_bool("partition", false);
  cli.chaos_set(rule, peer);
  std::printf("ok\n");
  return 0;
}

int run_wal_stat(const util::Flags& flags) {
  const std::string data_dir = flags.get_string("data-dir", "");
  const auto site_id = flags.get_int("site", -1);
  if (data_dir.empty() || site_id < 0) {
    std::cerr << "usage: ccpr_client --data-dir=<path> --site=<id> wal-stat\n";
    return 2;
  }
  std::string text;
  std::string error;
  if (!server::Durability::describe_wal(
          data_dir, static_cast<causal::SiteId>(site_id), &text, &error)) {
    std::cerr << "ccpr_client: " << error << "\n";
    return 1;
  }
  std::fputs(text.c_str(), stdout);
  return 0;
}

int run_bench(client::Client& cli, const util::Flags& flags) {
  const auto ops = static_cast<std::uint64_t>(flags.get_int("ops", 1000));
  const double write_rate = flags.get_double("write-rate", 0.3);
  const auto value_bytes =
      static_cast<std::size_t>(flags.get_int("value-bytes", 64));
  const bool json = flags.get_bool("json", false);
  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const std::uint32_t q = cli.keys().size();

  // Peer-message rate comes from the server's own counters, bracketed
  // around the loop, so it reflects the whole site (all clients + protocol
  // propagation), not just this session.
  const auto st0 = cli.status();
  util::Histogram latency_us;
  std::uint64_t writes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto x = static_cast<causal::VarId>(rng.below(q));
    const auto op0 = std::chrono::steady_clock::now();
    if (rng.chance(write_rate)) {
      std::string value(value_bytes, 'a');
      cli.put(x, std::move(value));
      ++writes;
    } else {
      (void)cli.get(x);
    }
    latency_us.add(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - op0)
                       .count());
  }
  const auto dt = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0);
  const auto st1 = cli.status();

  const double ops_per_s = static_cast<double>(ops) / dt.count();
  const std::uint64_t peer_msgs = (st1.peer_msgs_sent - st0.peer_msgs_sent) +
                                  (st1.peer_msgs_recv - st0.peer_msgs_recv);
  const double msgs_per_s = static_cast<double>(peer_msgs) / dt.count();
  if (json) {
    std::printf(
        "{\"ops\": %llu, \"writes\": %llu, \"elapsed_s\": %.6f, "
        "\"ops_per_s\": %.1f, \"peer_msgs\": %llu, \"msgs_per_s\": %.1f, "
        "\"latency_us\": {\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
        "\"mean\": %.1f, \"max\": %.1f}}\n",
        static_cast<unsigned long long>(ops),
        static_cast<unsigned long long>(writes), dt.count(), ops_per_s,
        static_cast<unsigned long long>(peer_msgs), msgs_per_s,
        latency_us.percentile(0.5), latency_us.percentile(0.9),
        latency_us.percentile(0.99), latency_us.mean(), latency_us.max());
  } else {
    std::printf(
        "ops=%llu writes=%llu elapsed=%.3fs throughput=%.0f ops/s "
        "peer_msgs=%llu (%.0f msgs/s)\n"
        "latency p50=%.1fus p90=%.1fus p99=%.1fus mean=%.1fus max=%.1fus\n",
        static_cast<unsigned long long>(ops),
        static_cast<unsigned long long>(writes), dt.count(), ops_per_s,
        static_cast<unsigned long long>(peer_msgs), msgs_per_s,
        latency_us.percentile(0.5), latency_us.percentile(0.9),
        latency_us.percentile(0.99), latency_us.mean(), latency_us.max());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  // The legal flag set spans several subcommands, each of which only reads
  // its own slice; declare the union up front so any typo dies here instead
  // of being silently ignored (a mistyped --write-rate used to run the
  // bench at the default rate).
  flags.note_known({"config", "site", "region", "data-dir",          // routing
                    "no-retry", "failover", "op-deadline-ms",        // retry
                    "ops", "write-rate", "value-bytes", "seed",      // bench
                    "json",                                          // bench
                    "drop", "delay", "rate", "partition"});          // chaos
  flags.exit_on_unknown("ccpr_client");
  const std::string config_path = flags.get_string("config", "");
  auto site_id = flags.get_int("site", -1);
  const std::string region = flags.get_string("region", "");
  const auto& args = flags.positional();
  // wal-stat reads the on-disk log directly — no cluster, no config.
  if (!args.empty() && args[0] == "wal-stat") return run_wal_stat(flags);
  if (config_path.empty() || (site_id < 0 && region.empty()) || args.empty()) {
    return usage();
  }

  std::string error;
  const auto config = server::ClusterConfig::load(config_path, &error);
  if (!config) {
    std::cerr << "ccpr_client: " << error << "\n";
    return 2;
  }

  try {
    if (site_id < 0) {
      site_id = static_cast<int>(client::Client::nearest_site(*config, region));
    }
    client::Client::Options copts;
    copts.retry.enabled = !flags.get_bool("no-retry", false);
    copts.retry.failover = flags.get_bool("failover", false);
    const auto deadline_ms = flags.get_int("op-deadline-ms", 0);
    if (deadline_ms > 0) {
      copts.retry.op_deadline = std::chrono::milliseconds(deadline_ms);
    }
    client::Client cli(*config, static_cast<causal::SiteId>(site_id), copts);
    const std::string& cmd = args[0];
    if (cmd == "ping") {
      cli.ping();
      std::printf("ok\n");
    } else if (cmd == "put") {
      if (args.size() != 3) return usage();
      const auto id = cli.put_key(args[1], args[2]);
      std::printf("ok write=(%u,%llu)\n", id.writer,
                  static_cast<unsigned long long>(id.seq));
    } else if (cmd == "get") {
      if (args.size() != 2) return usage();
      std::printf("%s\n", cli.get_key(args[1]).c_str());
    } else if (cmd == "snapshot") {
      if (args.size() < 2) return usage();
      std::vector<causal::VarId> xs;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (!cli.keys().contains(args[i])) {
          std::cerr << "ccpr_client: unknown key '" << args[i] << "'\n";
          return 2;
        }
        xs.push_back(cli.keys().intern(args[i]));
      }
      const auto values = cli.snapshot(xs);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        std::printf("%s=%s\n", cli.keys().name(xs[i]).c_str(),
                    values[i].data.c_str());
      }
    } else if (cmd == "status") {
      const auto st = cli.status();
      std::printf(
          "site=%u%s%s alg=%s writes=%llu reads=%llu pending=%llu "
          "peer_sent=%llu peer_recv=%llu peer_queued=%llu\n",
          st.site, st.region.empty() ? "" : " region=",
          st.region.c_str(), causal::algorithm_token(st.algorithm),
          static_cast<unsigned long long>(st.writes),
          static_cast<unsigned long long>(st.reads),
          static_cast<unsigned long long>(st.pending_updates),
          static_cast<unsigned long long>(st.peer_msgs_sent),
          static_cast<unsigned long long>(st.peer_msgs_recv),
          static_cast<unsigned long long>(st.peer_queued));
      for (const auto& rp : st.region_peers) {
        std::printf("region %s: peers=%llu connected=%llu\n",
                    rp.region.c_str(),
                    static_cast<unsigned long long>(rp.peers),
                    static_cast<unsigned long long>(rp.connected));
      }
      if (!st.suspected_peers.empty()) {
        std::printf("suspected:");
        for (const auto p : st.suspected_peers) std::printf(" %u", p);
        std::printf("\n");
      }
      if (st.shards.size() > 1) {
        for (std::size_t k = 0; k < st.shards.size(); ++k) {
          const auto& row = st.shards[k];
          std::printf(
              "shard %zu: writes=%llu reads=%llu pending=%llu "
              "qdepth=%llu/%llu parked_reads=%llu covered_waiters=%llu\n",
              k, static_cast<unsigned long long>(row.writes),
              static_cast<unsigned long long>(row.reads),
              static_cast<unsigned long long>(row.pending_updates),
              static_cast<unsigned long long>(row.queue_depth),
              static_cast<unsigned long long>(row.queue_capacity),
              static_cast<unsigned long long>(row.parked_reads),
              static_cast<unsigned long long>(row.covered_waiters));
        }
      }
    } else if (cmd == "metrics") {
      std::fputs(cli.metrics_text().c_str(), stdout);
    } else if (cmd == "store-stat") {
      const auto st = cli.store_stat();
      std::printf(
          "engine=%s keys=%llu resident_bytes=%llu index_slots=%llu "
          "mean_probe=%.2f\n"
          "spilled_keys=%llu spill_segment_bytes=%llu spill_reads=%llu "
          "spill_writes=%llu compactions=%llu\n",
          store::engine_kind_token(st.kind),
          static_cast<unsigned long long>(st.keys),
          static_cast<unsigned long long>(st.resident_bytes),
          static_cast<unsigned long long>(st.index_slots),
          st.mean_probe_length(),
          static_cast<unsigned long long>(st.spilled_keys),
          static_cast<unsigned long long>(st.spill_segment_bytes),
          static_cast<unsigned long long>(st.spill_reads),
          static_cast<unsigned long long>(st.spill_writes),
          static_cast<unsigned long long>(st.compactions));
    } else if (cmd == "engine-stat") {
      const auto st = cli.engine_stat();
      std::printf("shards=%zu parked_envelopes=%llu "
                  "malformed_envelopes=%llu\n",
                  st.shards.size(),
                  static_cast<unsigned long long>(st.parked_envelopes),
                  static_cast<unsigned long long>(st.malformed_envelopes));
      for (std::size_t k = 0; k < st.shards.size(); ++k) {
        const auto& row = st.shards[k];
        std::printf(
            "shard %zu: writes=%llu reads=%llu pending=%llu "
            "qdepth=%llu/%llu peak=%llu producer_waits=%llu "
            "parked_reads=%llu covered_waiters=%llu commands=%llu\n",
            k, static_cast<unsigned long long>(row.writes),
            static_cast<unsigned long long>(row.reads),
            static_cast<unsigned long long>(row.pending_updates),
            static_cast<unsigned long long>(row.queue_depth),
            static_cast<unsigned long long>(row.queue_capacity),
            static_cast<unsigned long long>(row.queue_peak_depth),
            static_cast<unsigned long long>(row.producer_waits),
            static_cast<unsigned long long>(row.parked_reads),
            static_cast<unsigned long long>(row.covered_waiters),
            static_cast<unsigned long long>(row.commands_total));
      }
    } else if (cmd == "bench") {
      return run_bench(cli, flags);
    } else if (cmd == "chaos") {
      return run_chaos(cli, args, flags);
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
