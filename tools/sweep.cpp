// ccpr sweep: run a declarative experiment matrix (bench binaries x
// parameter grid x seeds x ablations) from a JSON config, one run
// directory per cell, then aggregate per-bench snapshots with mean+/-std
// across seeds.
//
//   build/tools/sweep --config=bench/experiments/quick.json \
//       [--jobs=4] [--resume] [--out-root=sweep-out] [--bin-dir=build] \
//       [--dry-run] [--max-cells=N] [--list] [--aggregate-only] \
//       [--no-aggregate]
//
// Flags:
//   --config=<path>     experiment matrix (see bench/experiments/*.json)
//   --jobs=<n>          parallel cells (default: config "jobs", then 1)
//   --resume            skip cells whose run dir already holds a
//                       successful result.json; run only what is missing
//   --out-root=<dir>    override the config's out_root
//   --bin-dir=<dir>     override the config's bin_dir (bench binaries are
//                       resolved relative to this)
//   --dry-run           print the expanded cell plan, execute nothing
//   --max-cells=<n>     stop after the first n cells (tests use this to
//                       emulate an interrupted sweep)
//   --list              alias for --dry-run
//   --aggregate-only    skip execution, just rebuild BENCH_*.json from the
//                       run directories already on disk
//   --no-aggregate      run cells but skip the aggregation step
//
// Layout under <out_root>/<name>/:
//   runs/<cell_id>/meta.json    git sha, host, command, exit code, wall time
//   runs/<cell_id>/result.json  the bench's --out snapshot
//   runs/<cell_id>/stdout.txt, stderr.txt
//   BENCH_<bench>.json          aggregate across seeds (deterministic bytes)
#include <iostream>
#include <string>

#include "sweep/sweep.hpp"
#include "util/flags.hpp"

using namespace ccpr;

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  const std::string config_path = flags.get_string("config", "");
  const int jobs_flag = static_cast<int>(flags.get_int("jobs", 0));
  const bool resume = flags.get_bool("resume", false);
  const std::string out_root = flags.get_string("out-root", "");
  const std::string bin_dir = flags.get_string("bin-dir", "");
  const bool dry_run =
      flags.get_bool("dry-run", false) || flags.get_bool("list", false);
  const auto max_cells =
      static_cast<std::size_t>(flags.get_int("max-cells", 0));
  const bool aggregate_only = flags.get_bool("aggregate-only", false);
  const bool no_aggregate = flags.get_bool("no-aggregate", false);
  flags.exit_on_unknown("sweep");

  if (config_path.empty()) {
    std::cerr << "usage: sweep --config=<path> [--jobs=N] [--resume] "
                 "[--dry-run] [--max-cells=N] [--aggregate-only]\n";
    return 2;
  }

  std::string error;
  auto config = sweep::SweepConfig::load(config_path, &error);
  if (!config) {
    std::cerr << "sweep: " << config_path << ": " << error << "\n";
    return 2;
  }
  if (!out_root.empty()) config->out_root = out_root;
  if (!bin_dir.empty()) config->bin_dir = bin_dir;

  const auto cells = sweep::expand_cells(*config);
  std::cout << "sweep " << config->name << ": " << cells.size()
            << " cells -> " << sweep::experiment_dir(*config) << "\n";

  if (!aggregate_only) {
    sweep::RunnerOptions opts;
    opts.jobs = jobs_flag > 0 ? jobs_flag : std::max(1, config->jobs);
    opts.resume = resume;
    opts.dry_run = dry_run;
    opts.max_cells = max_cells;
    const auto summary = sweep::run_cells(*config, cells, opts, std::cout);
    if (dry_run) return 0;
    std::cout << "sweep " << config->name << ": " << summary.ran << " ran, "
              << summary.resumed << " resumed, " << summary.failed
              << " failed\n";
    if (!summary.ok()) return 1;
    if (max_cells > 0 && max_cells < cells.size()) {
      std::cout << "sweep: stopped after " << max_cells
                << " cells (--max-cells); rerun with --resume to finish\n";
      return 0;  // partial by request; aggregation would fail on the gap
    }
  }

  if (no_aggregate) return 0;
  if (!sweep::aggregate(*config, &error, std::cout)) {
    std::cerr << "sweep: aggregate: " << error << "\n";
    return 1;
  }
  return 0;
}
