// ccpr sweep: run a (w_rate x algorithm) grid over several seeds and report
// mean +/- stddev for the headline metrics — the statistical companion to
// run_experiment for EXPERIMENTS.md-style claims.
//
//   build/tools/sweep --n=10 --q=100 --p=3 --ops=500 --seeds=5 \
//       --algs=full-track,opt-track --rates=0.1,0.3,0.5,0.7,0.9 [--csv]
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "causal/sim_cluster.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

using namespace ccpr;

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, sep)) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

causal::Algorithm parse_alg(const std::string& name) {
  if (const auto alg = causal::algorithm_from_token(name)) return *alg;
  std::cerr << "unknown algorithm: " << name << "\n";
  std::exit(2);
}

struct CellStats {
  util::RunningStats messages, ctrl_bytes, read_p99, apply_p99;
};

std::string mean_std(const util::RunningStats& s, int precision = 0) {
  return util::format_double(s.mean(), precision) + "±" +
         util::format_double(s.stddev(), precision);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  const auto n = static_cast<std::uint32_t>(flags.get_int("n", 10));
  const auto q = static_cast<std::uint32_t>(flags.get_int("q", 100));
  const auto p = static_cast<std::uint32_t>(flags.get_int("p", 3));
  const auto ops = static_cast<std::uint64_t>(flags.get_int("ops", 500));
  const auto seeds = static_cast<std::uint64_t>(flags.get_int("seeds", 5));
  const bool csv = flags.get_bool("csv", false);

  std::vector<causal::Algorithm> algs;
  for (const auto& name :
       split(flags.get_string("algs", "opt-track"), ',')) {
    algs.push_back(parse_alg(name));
  }
  std::vector<double> rates;
  for (const auto& r :
       split(flags.get_string("rates", "0.1,0.3,0.5,0.7,0.9"), ',')) {
    rates.push_back(std::stod(r));
  }

  if (csv) {
    std::cout << "alg,w_rate,seeds,messages_mean,messages_std,"
                 "ctrl_bytes_mean,read_p99_mean,apply_p99_mean\n";
  }

  util::Table table({"alg", "w_rate", "messages (μ±σ)", "ctrl KB (μ±σ)",
                     "read p99 ms", "apply p99 ms"});
  for (const auto alg : algs) {
    for (const double rate : rates) {
      CellStats cell;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        workload::WorkloadSpec spec;
        spec.ops_per_site = ops;
        spec.write_rate = rate;
        spec.seed = seed * 7919;
        const auto rmap = causal::ReplicaMap::even(n, q, p);
        const auto program = workload::generate_program(spec, rmap);

        causal::SimCluster::Options opts;
        opts.latency =
            std::make_unique<sim::UniformLatency>(10'000, 50'000);
        opts.latency_seed = seed * 104'729;
        opts.record_history = false;
        causal::SimCluster cluster(alg, causal::ReplicaMap::even(n, q, p),
                                   std::move(opts));
        cluster.run_program(program);
        const auto m = cluster.metrics();
        cell.messages.add(static_cast<double>(m.messages_total()));
        cell.ctrl_bytes.add(static_cast<double>(m.control_bytes));
        cell.read_p99.add(m.read_latency_us.percentile(0.99));
        cell.apply_p99.add(m.apply_delay_us.percentile(0.99));
      }
      if (csv) {
        std::cout << causal::algorithm_name(alg) << ',' << rate << ','
                  << seeds << ',' << cell.messages.mean() << ','
                  << cell.messages.stddev() << ','
                  << cell.ctrl_bytes.mean() << ','
                  << cell.read_p99.mean() << ','
                  << cell.apply_p99.mean() << "\n";
      } else {
        table.row();
        table.cell(causal::algorithm_name(alg));
        table.cell(rate, 2);
        table.cell(mean_std(cell.messages));
        table.cell(mean_std(cell.ctrl_bytes, 0));
        table.cell(cell.read_p99.mean() / 1000.0, 1);
        table.cell(cell.apply_p99.mean() / 1000.0, 1);
      }
    }
  }
  if (!csv) table.print(std::cout);
  return 0;
}
