// ccpr_server: host one site of a real-network cluster.
//
//   build/tools/ccpr_server --config=cluster.conf --site=0
//
// Flags:
//   --config=<path>    cluster config file (see docs/RUNTIMES.md)
//   --site=<id>        which site of the config this process hosts
//   --data-dir=<path>  write-ahead log directory; omit for no persistence
//   --wal-sync=always|batch
//                      fsync every append (power-loss safe) or only at
//                      checkpoints/anti-entropy rounds (kill-safe)
//   --store-engine=map|compact
//                      value-store engine override; omit to use the
//                      config's `store-engine` line (default map)
//   --engine-shards=<n>
//                      protocol-engine shard override (1..256); omit to
//                      use the config's `engine-shards` line (default 1).
//                      Every site of a cluster must agree
//   --print-config     echo the parsed config and exit
//   --check-config     parse + validate, print the resolved topology and
//                      exit 0; any config error exits non-zero (CI lints
//                      every examples/*.conf with this)
//
// The process serves until SIGINT/SIGTERM, then shuts down gracefully
// (drains client requests, flushes outbound peer queues). On startup it
// prints one line with the bound ports, so scripts driving port-0 configs
// can discover them.
#include <csignal>
#include <cstdio>
#include <iostream>

#include "server/site_server.hpp"
#include "util/flags.hpp"

using namespace ccpr;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  // Early-return branches below skip some accessors, so declare the full
  // legal set up front and reject typos before doing any work.
  flags.note_known({"config", "site", "data-dir", "wal-sync", "store-engine",
                    "engine-shards", "print-config", "check-config"});
  flags.exit_on_unknown("ccpr_server");
  const std::string config_path = flags.get_string("config", "");
  if (config_path.empty()) {
    std::cerr << "usage: ccpr_server --config=<path> --site=<id>\n";
    return 2;
  }
  std::string error;
  const auto config = server::ClusterConfig::load(config_path, &error);
  if (!config) {
    std::cerr << "ccpr_server: " << error << "\n";
    return 2;
  }
  if (flags.get_bool("print-config", false)) {
    std::cout << config->to_text();
    return 0;
  }
  if (flags.get_bool("check-config", false)) {
    // load() already ran parse() + validate(); print what was resolved.
    std::printf("%s: OK (%u sites, %u vars, replicas %u, placement %s)\n",
                config_path.c_str(), config->site_count(), config->vars,
                config->replicas_per_var,
                server::placement_token(config->placement));
    const auto& topo = config->topology;
    if (topo.empty()) {
      std::printf("flat cluster (no regions)\n");
      return 0;
    }
    for (std::uint32_t r = 0; r < topo.region_count(); ++r) {
      std::printf("region %s: intra %uus, sites", topo.region_names[r].c_str(),
                  topo.intra_us[r]);
      for (const auto s : topo.sites_in_region(r)) std::printf(" %u", s);
      std::printf("\n");
    }
    for (std::uint32_t a = 0; a < topo.region_count(); ++a) {
      for (std::uint32_t b = a + 1; b < topo.region_count(); ++b) {
        std::printf("link %s-%s: %uus\n", topo.region_names[a].c_str(),
                    topo.region_names[b].c_str(), topo.link_us(a, b));
      }
    }
    return 0;
  }
  const auto site_id = flags.get_int("site", -1);
  if (site_id < 0 || static_cast<std::uint32_t>(site_id) >= config->site_count()) {
    std::cerr << "ccpr_server: --site must be in [0, "
              << config->site_count() << ")\n";
    return 2;
  }
  const auto site = static_cast<causal::SiteId>(site_id);

  server::SiteServer::Options sopts;
  sopts.data_dir = flags.get_string("data-dir", "");
  const std::string wal_sync = flags.get_string("wal-sync", "always");
  if (wal_sync == "always") {
    sopts.wal_sync = server::Wal::Sync::kAlways;
  } else if (wal_sync == "batch") {
    sopts.wal_sync = server::Wal::Sync::kBatch;
  } else {
    std::cerr << "ccpr_server: --wal-sync must be 'always' or 'batch'\n";
    return 2;
  }
  const std::string engine = flags.get_string("store-engine", "");
  if (!engine.empty()) {
    store::EngineKind kind;
    if (!store::parse_engine_kind(engine, &kind)) {
      std::cerr << "ccpr_server: --store-engine must be 'map' or 'compact'\n";
      return 2;
    }
    sopts.store_engine = kind;
  }
  const auto shards = flags.get_int("engine-shards", 0);
  if (shards != 0) {
    if (shards < 1 || shards > 256) {
      std::cerr << "ccpr_server: --engine-shards must be in 1..256\n";
      return 2;
    }
    sopts.engine_shards = static_cast<std::uint32_t>(shards);
  }

  // Block the shutdown signals before starting so none can slip into the
  // window between the g_stop check and sigsuspend below.
  sigset_t stop_set;
  sigemptyset(&stop_set);
  sigaddset(&stop_set, SIGINT);
  sigaddset(&stop_set, SIGTERM);
  sigset_t old_set;
  sigprocmask(SIG_BLOCK, &stop_set, &old_set);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  server::SiteServer srv(*config, site, sopts);
  if (!srv.start()) {
    std::cerr << "ccpr_server: site " << site
              << ": cannot start (ports or WAL recovery)\n";
    return 1;
  }
  std::printf("ccpr_server site=%u alg=%s peer_port=%u client_port=%u\n",
              site, causal::algorithm_token(config->algorithm),
              srv.peer_port(), srv.client_port());
  std::fflush(stdout);

  sigset_t wait_set = old_set;
  sigdelset(&wait_set, SIGINT);
  sigdelset(&wait_set, SIGTERM);
  while (g_stop == 0) sigsuspend(&wait_set);

  srv.stop();
  const auto m = srv.metrics();
  std::printf(
      "ccpr_server site=%u stopped writes=%llu reads=%llu msgs_sent=%llu\n",
      site, static_cast<unsigned long long>(m.writes),
      static_cast<unsigned long long>(m.reads),
      static_cast<unsigned long long>(m.update_msgs + m.fetch_req_msgs +
                                      m.fetch_resp_msgs));
  return 0;
}
