// ccpr experiment runner: one simulated run of any algorithm on a
// parameterized workload, with a human table or a CSV row as output.
//
//   build/tools/run_experiment --alg=opt-track --n=10 --q=100 --p=3 \
//       --ops=1000 --write-rate=0.4 --latency=lognormal:20000:0.7 \
//       --seed=7 --check --csv
//
// Flags (defaults in brackets):
//   --alg=full-track|opt-track|opt-track-crp|optp|ahamad|eventual [opt-track]
//   --n=<sites> [10]  --q=<vars> [100]  --p=<replication> [3]
//   --ops=<per site> [1000]
//   --write-rate=<0..1> [0.3]  --dist=uniform|zipf [uniform]
//   --zipf=<theta> [0.99]      --locality=<0..1> [0]
//   --ycsb=a|b|c|d|f           (overrides write-rate/dist)
//   --value-bytes=<n> [64]     --seed=<n> [1]
//   --latency=constant:<us> | uniform:<lo>:<hi> |
//             lognormal:<median_us>:<sigma> | geo2:<intra>:<inter>:<regions>
//             [uniform:10000:50000]
//   --drop-rate=<0..1> [0]     --dup-rate=<0..1> [0]
//   --convergent               causal+ LWW mode
//   --fetch-timeout=<us>       §V failover: retry fetches after this delay
//   --no-gating                paper-faithful RemoteFetch (may be stale!)
//   --aggressive-merge         paper-verbatim MERGE (unsound; see DESIGN.md)
//   --check                    run the offline causal checker afterwards
//   --csv                      emit one CSV row (+ header with --csv-header)
//   --out=<path>               also write the metrics as one JSON snapshot
//                              (same shape as the bench --out files), so the
//                              sweep harness can drive sim experiments
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "causal/sim_cluster.hpp"
#include "checker/causal_checker.hpp"
#include "checker/convergence.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"
#include "workload/ycsb.hpp"

using namespace ccpr;

namespace {

causal::Algorithm parse_alg(const std::string& name) {
  if (const auto alg = causal::algorithm_from_token(name)) return *alg;
  std::cerr << "unknown --alg=" << name << "\n";
  std::exit(2);
}

std::unique_ptr<sim::LatencyModel> parse_latency(const std::string& spec,
                                                 std::uint32_t n) {
  std::stringstream ss(spec);
  std::string kind;
  std::getline(ss, kind, ':');
  auto next = [&ss]() {
    std::string tok;
    std::getline(ss, tok, ':');
    return tok;
  };
  if (kind == "constant") {
    return std::make_unique<sim::ConstantLatency>(std::stoll(next()));
  }
  if (kind == "uniform") {
    const auto lo = std::stoll(next());
    const auto hi = std::stoll(next());
    return std::make_unique<sim::UniformLatency>(lo, hi);
  }
  if (kind == "lognormal") {
    const double median = std::stod(next());
    const double sigma = std::stod(next());
    return std::make_unique<sim::LogNormalLatency>(median, sigma);
  }
  if (kind == "geo2") {
    const auto intra = std::stoll(next());
    const auto inter = std::stoll(next());
    const std::string regions_tok = next();
    const auto regions = static_cast<std::uint32_t>(
        regions_tok.empty() ? 2 : std::stoul(regions_tok));
    std::vector<std::uint32_t> region_of(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      region_of[s] = s % regions;
    }
    return sim::GeoLatency::two_tier(region_of, intra, inter, 0.1);
  }
  std::cerr << "unknown --latency=" << spec << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);

  const std::string alg_token = flags.get_string("alg", "opt-track");
  const auto n = static_cast<std::uint32_t>(flags.get_int("n", 10));
  const bool do_check = flags.get_bool("check", false);
  const bool csv = flags.get_bool("csv", false);
  const bool csv_header = flags.get_bool("csv-header", false);
  const std::string out_path = flags.get_string("out", "");
  // Everything below re-reads flags already noted above or reads the rest;
  // by the end of the block every legal flag is known, so typos die here.
  const auto alg = parse_alg(alg_token);
  const auto q = static_cast<std::uint32_t>(flags.get_int("q", 100));
  const auto p = static_cast<std::uint32_t>(flags.get_int("p", 3));

  workload::WorkloadSpec spec;
  spec.ops_per_site =
      static_cast<std::uint64_t>(flags.get_int("ops", 1000));
  spec.write_rate = flags.get_double("write-rate", 0.3);
  spec.dist = flags.get_string("dist", "uniform") == "zipf"
                  ? workload::WorkloadSpec::KeyDist::kZipf
                  : workload::WorkloadSpec::KeyDist::kUniform;
  spec.zipf_theta = flags.get_double("zipf", 0.99);
  spec.locality = flags.get_double("locality", 0.0);
  spec.value_bytes =
      static_cast<std::uint32_t>(flags.get_int("value-bytes", 64));
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const auto rmap = causal::ReplicaMap::even(n, q, p);
  causal::Program program;
  std::string mix_name = "custom";
  if (flags.has("ycsb")) {
    const std::string m = flags.get_string("ycsb", "a");
    const workload::YcsbMix mix =
        m == "a"   ? workload::YcsbMix::kA
        : m == "b" ? workload::YcsbMix::kB
        : m == "c" ? workload::YcsbMix::kC
        : m == "d" ? workload::YcsbMix::kD
                   : workload::YcsbMix::kF;
    mix_name = workload::ycsb_name(mix);
    program = workload::generate_ycsb(mix, spec, rmap);
  } else {
    program = workload::generate_program(spec, rmap);
  }

  causal::SimCluster::Options opts;
  opts.latency =
      parse_latency(flags.get_string("latency", "uniform:10000:50000"), n);
  opts.latency_seed = spec.seed * 31 + 7;
  opts.record_history = do_check;
  opts.drop_rate = flags.get_double("drop-rate", 0.0);
  opts.duplicate_rate = flags.get_double("dup-rate", 0.0);
  opts.protocol.convergent = flags.get_bool("convergent", false);
  opts.protocol.fetch_timeout_us =
      static_cast<sim::SimTime>(flags.get_int("fetch-timeout", 0));
  opts.protocol.fetch_gating = !flags.get_bool("no-gating", false);
  opts.protocol.aggressive_merge = flags.get_bool("aggressive-merge", false);
  flags.exit_on_unknown("run_experiment");

  causal::SimCluster cluster(alg, causal::ReplicaMap::even(n, q, p),
                             std::move(opts));
  cluster.run_program(program);
  const auto m = cluster.metrics();

  std::string verdict = "-";
  if (do_check) {
    const auto result = checker::check_causal_consistency(
        cluster.history(), cluster.replica_map());
    verdict = result.ok ? "causal" : "VIOLATED";
    if (!result.ok) {
      for (const auto& v : result.violations) std::cerr << v << "\n";
    }
  }

  if (!out_path.empty()) {
    util::Json doc = util::Json::object();
    doc["bench"] = "run_experiment";
    doc["quick"] = false;
    doc["seed"] = spec.seed;
    util::Json::Object row{
        {"alg", causal::algorithm_token(alg)},
        {"mix", mix_name},
        {"n", n},
        {"q", q},
        {"p", p},
        {"write_rate", spec.write_rate},
        {"messages", m.messages_total()},
        {"update_msgs", m.update_msgs},
        {"fetch_req_msgs", m.fetch_req_msgs},
        {"ctrl_bytes", m.control_bytes},
        {"payload_bytes", m.payload_bytes},
        {"ctrl_bytes_per_msg", m.control_bytes_per_message()},
        {"remote_reads", m.remote_reads},
        {"apply_p50_us", m.apply_delay_us.percentile(0.5)},
        {"apply_p99_us", m.apply_delay_us.percentile(0.99)},
        {"read_p50_us", m.read_latency_us.percentile(0.5)},
        {"read_p99_us", m.read_latency_us.percentile(0.99)},
        {"log_peak", m.log_entries.peak()},
        {"space_peak_bytes", m.meta_state_bytes.peak()},
        {"retransmits", cluster.retransmissions()},
        {"checker", verdict}};
    doc["results"] = util::Json::Array{util::Json(std::move(row))};
    if (!doc.save_file(out_path)) {
      std::cerr << "run_experiment: cannot write " << out_path << "\n";
      return 1;
    }
  }

  if (csv) {
    if (csv_header) {
      std::cout << "alg,mix,n,q,p,write_rate,seed,messages,updates,"
                   "fetches,ctrl_bytes,payload_bytes,remote_reads,"
                   "apply_p99_us,read_p99_us,log_peak,space_peak,"
                   "retransmits,verdict\n";
    }
    std::cout << causal::algorithm_name(alg) << ',' << mix_name << ',' << n
              << ',' << q << ',' << p << ',' << spec.write_rate << ','
              << spec.seed << ',' << m.messages_total() << ','
              << m.update_msgs << ',' << m.fetch_req_msgs << ','
              << m.control_bytes << ',' << m.payload_bytes << ','
              << m.remote_reads << ',' << m.apply_delay_us.percentile(0.99)
              << ',' << m.read_latency_us.percentile(0.99) << ','
              << m.log_entries.peak() << ',' << m.meta_state_bytes.peak()
              << ',' << cluster.retransmissions() << ',' << verdict << "\n";
    return verdict == "VIOLATED" ? 1 : 0;
  }

  util::Table table({"metric", "value"});
  table.row().cell("algorithm").cell(causal::algorithm_name(alg));
  table.row().cell("workload").cell(mix_name);
  table.row().cell("messages").cell(m.messages_total());
  table.row().cell("  updates").cell(m.update_msgs);
  table.row().cell("  fetch req/resp").cell(
      std::to_string(m.fetch_req_msgs) + "/" +
      std::to_string(m.fetch_resp_msgs));
  table.row().cell("control bytes").cell(m.control_bytes);
  table.row().cell("payload bytes").cell(m.payload_bytes);
  table.row().cell("ctrl bytes/msg").cell(m.control_bytes_per_message(), 1);
  table.row().cell("writes/reads").cell(std::to_string(m.writes) + "/" +
                                        std::to_string(m.reads));
  table.row().cell("remote reads").cell(m.remote_reads);
  table.row().cell("apply delay p50/p99 us")
      .cell(util::format_double(m.apply_delay_us.percentile(0.5), 0) + "/" +
            util::format_double(m.apply_delay_us.percentile(0.99), 0));
  table.row().cell("read latency p50/p99 us")
      .cell(util::format_double(m.read_latency_us.percentile(0.5), 0) + "/" +
            util::format_double(m.read_latency_us.percentile(0.99), 0));
  table.row().cell("log entries mean/peak")
      .cell(util::format_double(m.log_entries.samples().mean(), 1) + "/" +
            std::to_string(m.log_entries.peak()));
  table.row().cell("meta state peak B").cell(m.meta_state_bytes.peak());
  table.row().cell("dropped/retransmitted")
      .cell(std::to_string(cluster.messages_dropped()) + "/" +
            std::to_string(cluster.retransmissions()));
  table.row().cell("sim duration (s)")
      .cell(static_cast<double>(cluster.scheduler().now()) / 1e6, 2);
  table.row().cell("checker").cell(verdict);
  table.print(std::cout);
  return verdict == "VIOLATED" ? 1 : 0;
}
