#!/usr/bin/env python3
"""Validate and compare BENCH_*.json snapshots.

Two modes:

  validate <snapshot.json>...
      Structural checks: every snapshot must carry a non-empty results
      list, and per-bench rules (store_engine, shard_scale, ...) assert the
      invariants CI used to check with inline python. Accepts both shapes:
      a single bench run ({"bench", "results": [...]}) and a sweep
      aggregate ({"bench", "groups": [{"results": [...]}]}).

  compare --baseline=<dir> --current=<dir> [--rules=tools/perf_gate.json]
          [--skip-timing]
      Regression gate: for every bench named in the rules file, match rows
      between the baseline and current BENCH_<name>.json by the rule's key
      fields and fail (exit 1) when a gated metric regressed by more than
      its threshold. Metrics marked "timing" measure wall-clock on the
      host that ran the bench; --skip-timing downgrades their failures to
      warnings for comparisons across unlike machines (deterministic
      metrics — message counts, bytes, space — are always enforced).

Exit codes: 0 ok, 1 check failed, 2 usage/malformed input.
"""

import argparse
import json
import os
import sys


def fail(msg):
    print(f"validate_bench: {msg}", file=sys.stderr)
    sys.exit(2)


def scalar(value):
    """Resolve a sweep-aggregated field ({"mean", "std"}) to its mean."""
    if isinstance(value, dict) and "mean" in value:
        return value["mean"]
    return value


def iter_rows(doc):
    """Yield every result row of a snapshot, aggregate or single-run."""
    if "groups" in doc:
        for group in doc["groups"]:
            for row in group.get("results", []):
                yield {k: scalar(v) for k, v in row.items()}
    else:
        for row in doc.get("results", []):
            yield {k: scalar(v) for k, v in row.items()}


# ---------------------------------------------------------------- validate


def check_store_engine(rows):
    for c in rows:
        assert c["engine"] in ("map", "compact"), c
        assert c["resident_bytes_per_key"] > 0, c
        # Honest sub-microsecond latency: the old microsecond-quantized
        # histogram pinned every percentile at exactly 1.0; require real
        # sub-us resolution and p50 <= p99.
        assert 0 < c["get_p50_us"] <= c["get_p99_us"], c
    p50s = {c["get_p50_us"] for c in rows}
    assert len(p50s) > 1, f"degenerate get_p50_us across all cells: {p50s}"


def check_shard_scale(rows):
    by_shards = {}
    for c in rows:
        assert c["put_ops_per_s"] > 0, c
        assert len(c["shard_writes"]) == c["shards"], c
        assert sum(scalar(w) for w in c["shard_writes"]) == c["puts"], c
        assert c["malformed_envelopes"] == 0, c
        by_shards[c["shards"]] = c
    sharded = by_shards[max(by_shards)]
    assert min(scalar(w) for w in sharded["shard_writes"]) > 0, (
        "collapsed ShardMap: a shard saw zero writes: %r" % (sharded,))


def check_fig4(rows):
    for c in rows:
        assert c["messages"] > 0 and c["predicted"] > 0, c


BENCH_CHECKS = {
    "store_engine": check_store_engine,
    "shard_scale": check_shard_scale,
    "fig4_message_count": check_fig4,
}


def cmd_validate(paths):
    ok = True
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path}: {e}")
        bench = doc.get("bench")
        if not isinstance(bench, str) or not bench:
            fail(f"{path}: missing \"bench\" name")
        rows = list(iter_rows(doc))
        if not rows:
            fail(f"{path}: no bench cells recorded")
        check = BENCH_CHECKS.get(bench)
        try:
            if check:
                check(rows)
        except AssertionError as e:
            print(f"validate_bench: {path}: FAILED: {e}", file=sys.stderr)
            ok = False
            continue
        suffix = "" if check else " (generic checks only)"
        print(f"{path} ok: {len(rows)} cells{suffix}")
    return 0 if ok else 1


# ----------------------------------------------------------------- compare


def row_key(row, key_fields):
    return tuple(json.dumps(row.get(k), sort_keys=True) for k in key_fields)


def index_rows(doc, key_fields):
    out = {}
    if "groups" in doc:
        for group in doc["groups"]:
            gkey = (group.get("ablation"),
                    json.dumps(group.get("params", {}), sort_keys=True))
            for row in group.get("results", []):
                row = {k: scalar(v) for k, v in row.items()}
                out[(gkey, row_key(row, key_fields))] = row
    else:
        for row in doc.get("results", []):
            row = {k: scalar(v) for k, v in row.items()}
            out[(None, row_key(row, key_fields))] = row
    return out


def cmd_compare(args):
    try:
        with open(args.rules) as f:
            rules = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.rules}: {e}")

    failures, warnings, compared = [], [], 0
    for bench_rule in rules["benches"]:
        bench = bench_rule["bench"]
        name = f"BENCH_{bench}.json"
        base_path = os.path.join(args.baseline, name)
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(base_path):
            warnings.append(f"{bench}: no baseline at {base_path}, skipping")
            continue
        if not os.path.exists(cur_path):
            failures.append(f"{bench}: current snapshot {cur_path} missing")
            continue
        with open(base_path) as f:
            base = index_rows(json.load(f), bench_rule["key_fields"])
        with open(cur_path) as f:
            cur = index_rows(json.load(f), bench_rule["key_fields"])

        for key, base_row in base.items():
            cur_row = cur.get(key)
            if cur_row is None:
                failures.append(
                    f"{bench}: cell {key} present in baseline but missing "
                    f"from current run")
                continue
            for metric in bench_rule["metrics"]:
                mname = metric["name"]
                if mname not in base_row or mname not in cur_row:
                    continue
                b, c = base_row[mname], cur_row[mname]
                if not isinstance(b, (int, float)) or b == 0:
                    continue
                compared += 1
                higher_is_better = metric.get("higher_is_better", True)
                if higher_is_better:
                    regress_pct = (b - c) / abs(b) * 100.0
                else:
                    regress_pct = (c - b) / abs(b) * 100.0
                limit = metric["max_regress_pct"]
                if regress_pct <= limit:
                    continue
                msg = (f"{bench} {mname} {key}: baseline={b:.4g} "
                       f"current={c:.4g} regressed {regress_pct:.1f}% "
                       f"(limit {limit}%)")
                if metric.get("timing") and args.skip_timing:
                    warnings.append(msg + " [timing, not enforced]")
                else:
                    failures.append(msg)

    for w in warnings:
        print(f"WARN: {w}")
    for f_ in failures:
        print(f"FAIL: {f_}", file=sys.stderr)
    verdict = "FAILED" if failures else "ok"
    print(f"perf gate {verdict}: {compared} metric cells compared, "
          f"{len(failures)} over threshold, {len(warnings)} warnings")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(prog="validate_bench")
    sub = parser.add_subparsers(dest="mode", required=True)
    v = sub.add_parser("validate")
    v.add_argument("snapshots", nargs="+")
    c = sub.add_parser("compare")
    c.add_argument("--baseline", required=True)
    c.add_argument("--current", required=True)
    c.add_argument("--rules", default="tools/perf_gate.json")
    c.add_argument("--skip-timing", action="store_true")
    args = parser.parse_args()
    if args.mode == "validate":
        sys.exit(cmd_validate(args.snapshots))
    sys.exit(cmd_compare(args))


if __name__ == "__main__":
    main()
