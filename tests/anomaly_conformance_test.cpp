// Conformance against the classic causal-consistency anomalies from the
// literature. Each test scripts a named scenario and checks that the
// algorithms (a) PREVENT the anomalies causal consistency must prevent and
// (b) PERMIT the behaviours it deliberately allows — over-synchronizing
// would mean we built something stronger (and slower) than the paper.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::applies_at;
using ccpr::testing::expect_causal;
using ccpr::testing::index_of;
using ccpr::testing::matrix_latency;

class AnomalyConformance : public ::testing::TestWithParam<Algorithm> {};

// COPS / Lloyd et al.: the photo-ACL anomaly. Alice removes her boss from
// the ACL, *then* posts the party photo. No site may apply the photo before
// the ACL update, or the boss could see it.
TEST_P(AnomalyConformance, PhotoAclOrderPreserved) {
  // Site 2 is "far" from Alice's site 0; the photo message would overtake
  // the ACL update on a naive store.
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(3, 2), std::move(opts));
  const VarId acl = 0, photo = 1;
  c.write(0, acl, "friends-only");  // slow path to site 2
  c.write(0, photo, "party.jpg");   // same writer: program order binds them
  c.run();
  for (SiteId s = 1; s < 3; ++s) {
    const auto seq = applies_at(c.history(), s);
    EXPECT_LT(index_of(seq, WriteId{0, 1}), index_of(seq, WriteId{0, 2}))
        << "photo visible before ACL at site " << s;
  }
  expect_causal(c);
}

// The comment-reply anomaly: Bob replies to Alice's post from another
// site. Nobody may see the reply without the post.
TEST_P(AnomalyConformance, ReplyNeverPrecedesPost) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "post: lunch anyone?");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "post: lunch anyone?");
  c.write(1, 1, "reply: yes!");
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{0, 1}), index_of(seq, WriteId{1, 1}));
  expect_causal(c);
}

// Three-hop transitivity: a -> (read) -> b -> (read) -> c must be applied
// in order at a site that receives them reversed.
TEST_P(AnomalyConformance, TransitiveChainAcrossThreeWriters) {
  auto opts = matrix_latency(4, {0,      1000,   1000,   150'000,   //
                                 1000,   0,      1000,   100'000,   //
                                 1000,   1000,   0,      50'000,    //
                                 150'000, 100'000, 50'000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(4, 3), std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "a");
  c.write(1, 1, "b");
  c.run_until(10'000);
  ASSERT_EQ(c.read(2, 1).data, "b");
  c.write(2, 2, "c");
  c.run();
  const auto seq = applies_at(c.history(), 3);
  const auto ia = index_of(seq, WriteId{0, 1});
  const auto ib = index_of(seq, WriteId{1, 1});
  const auto ic = index_of(seq, WriteId{2, 1});
  EXPECT_LT(ia, ib);
  EXPECT_LT(ib, ic);
  expect_causal(c);
}

// PERMITTED behaviour 1: concurrent writes may be observed in different
// orders at different sites (causal, unlike sequential consistency, allows
// it). Over-synchronizing here would falsify the paper's cost model.
TEST_P(AnomalyConformance, ConcurrentWritesMayDisagreeAcrossSites) {
  auto opts = matrix_latency(2, {0, 30'000, 30'000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(2, 1), std::move(opts));
  c.write(0, 0, "zero");
  c.write(1, 0, "one");  // concurrent
  c.run();
  // Each site applied its own write first: final values differ.
  EXPECT_EQ(c.site(0).peek(0).data, "one");
  EXPECT_EQ(c.site(1).peek(0).data, "zero");
  expect_causal(c);  // ...and that is still causally consistent
}

// PERMITTED behaviour 2: the lost-update anomaly. Two sites read 0 and
// both write their increment; causal consistency does not serialize them.
TEST_P(AnomalyConformance, LostUpdateIsAllowed) {
  auto opts = matrix_latency(2, {0, 20'000, 20'000, 0});
  SimCluster c(GetParam(), ReplicaMap::full(2, 1), std::move(opts));
  ASSERT_TRUE(c.read(0, 0).id.is_initial());
  ASSERT_TRUE(c.read(1, 0).id.is_initial());
  c.write(0, 0, "counter=1 (from 0)");
  c.write(1, 0, "counter=1 (from 1)");  // both based on 0: one update lost
  c.run();
  expect_causal(c);  // legal under causal memory — by design
}

// PERMITTED behaviour 3: reading your own write immediately, before any
// remote site has seen it (low latency is the paper's whole point).
TEST_P(AnomalyConformance, LocalWriteVisibleImmediately) {
  SimCluster c(GetParam(), ReplicaMap::full(2, 1),
               ccpr::testing::constant_latency(1'000'000));  // 1s WAN
  c.write(0, 0, "instant");
  EXPECT_EQ(c.read(0, 0).data, "instant");  // no WAN round trip
  EXPECT_TRUE(c.site(1).peek(0).data.empty());
  c.run();
  expect_causal(c);
}

INSTANTIATE_TEST_SUITE_P(
    AllCausalAlgorithms, AnomalyConformance,
    ::testing::Values(Algorithm::kFullTrack, Algorithm::kOptTrack,
                      Algorithm::kOptTrackCRP, Algorithm::kOptP,
                      Algorithm::kAhamad),
    [](const ::testing::TestParamInfo<Algorithm>& param_info) {
      std::string name = algorithm_name(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ccpr::causal
