#include "causal/optp.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::applies_at;
using ccpr::testing::constant_latency;
using ccpr::testing::expect_causal;
using ccpr::testing::index_of;
using ccpr::testing::matrix_latency;

const OptP& op(const SimCluster& c, SiteId s) {
  return dynamic_cast<const OptP&>(c.site(s));
}

TEST(OptPTest, BasicReplication) {
  SimCluster c(Algorithm::kOptP, ReplicaMap::full(3, 2),
               constant_latency(100));
  c.write(0, 0, "hello");
  c.run();
  for (SiteId s = 0; s < 3; ++s) EXPECT_EQ(c.site(s).peek(0).data, "hello");
  expect_causal(c);
}

TEST(OptPTest, WriteClockMergesOnlyAtRead) {
  SimCluster c(Algorithm::kOptP, ReplicaMap::full(2, 2),
               constant_latency(10));
  c.write(0, 0, "a");
  c.run();
  EXPECT_EQ(op(c, 1).applied_from(0), 1u);
  EXPECT_EQ(op(c, 1).write_clock()[0], 0u);  // receipt does not merge
  ASSERT_EQ(c.read(1, 0).data, "a");
  EXPECT_EQ(op(c, 1).write_clock()[0], 1u);  // read does
  expect_causal(c);
}

TEST(OptPTest, CausalChainRespectedAcrossSlowChannel) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kOptP, ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  ASSERT_EQ(c.read(1, 0).data, "a");
  c.write(1, 1, "b");
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{0, 1}), index_of(seq, WriteId{1, 1}));
  expect_causal(c);
}

TEST(OptPTest, ConcurrentWritesNotDelayed) {
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kOptP, ReplicaMap::full(3, 2), std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  c.write(1, 1, "b");
  c.run();
  const auto seq = applies_at(c.history(), 2);
  EXPECT_LT(index_of(seq, WriteId{1, 1}), index_of(seq, WriteId{0, 1}));
  expect_causal(c);
}

TEST(OptPTest, ControlBytesScaleWithN) {
  // OptP ships an n-entry vector on every update: control bytes per message
  // grow linearly in n (vs Opt-Track-CRP's constants).
  auto run_one = [](std::uint32_t n) {
    SimCluster c(Algorithm::kOptP, ReplicaMap::full(n, 2),
                 constant_latency(100));
    c.write(0, 0, "x");
    c.run();
    return c.metrics().control_bytes_per_message();
  };
  const double at8 = run_one(8);
  const double at32 = run_one(32);
  EXPECT_GT(at32, at8 + 16.0);  // ~24 extra one-byte varints
}

TEST(OptPTest, RequiresFullReplication) {
  EXPECT_DEATH(
      {
        SimCluster c(Algorithm::kOptP, ReplicaMap::even(3, 3, 2),
                     constant_latency(10));
      },
      "Precondition");
}

TEST(OptPTest, PerWriterFifo) {
  SimCluster c(Algorithm::kOptP, ReplicaMap::full(2, 1),
               constant_latency(100));
  for (int i = 1; i <= 15; ++i) c.write(0, 0, "v" + std::to_string(i));
  c.run();
  const auto seq = applies_at(c.history(), 1);
  ASSERT_EQ(seq.size(), 15u);
  for (std::uint64_t i = 0; i < 15; ++i) EXPECT_EQ(seq[i].seq, i + 1);
  expect_causal(c);
}

}  // namespace
}  // namespace ccpr::causal
