#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include "workload/social.hpp"

namespace ccpr::workload {
namespace {

using causal::Operation;
using causal::ReplicaMap;

TEST(WorkloadTest, GeneratesRequestedShape) {
  const auto rmap = ReplicaMap::even(4, 10, 2);
  WorkloadSpec spec;
  spec.ops_per_site = 500;
  spec.write_rate = 0.25;
  spec.seed = 3;
  const auto program = generate_program(spec, rmap);
  ASSERT_EQ(program.size(), 4u);
  std::uint64_t writes = 0, total = 0;
  for (const auto& ops : program) {
    EXPECT_EQ(ops.size(), 500u);
    for (const auto& op : ops) {
      EXPECT_LT(op.var, 10u);
      total += 1;
      writes += op.kind == Operation::Kind::kWrite ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(total), 0.25,
              0.04);
}

TEST(WorkloadTest, DeterministicForSeed) {
  const auto rmap = ReplicaMap::even(3, 6, 2);
  WorkloadSpec spec;
  spec.ops_per_site = 100;
  spec.seed = 77;
  const auto a = generate_program(spec, rmap);
  const auto b = generate_program(spec, rmap);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size());
    for (std::size_t i = 0; i < a[s].size(); ++i) {
      EXPECT_EQ(a[s][i].kind, b[s][i].kind);
      EXPECT_EQ(a[s][i].var, b[s][i].var);
    }
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  const auto rmap = ReplicaMap::even(3, 6, 2);
  WorkloadSpec spec;
  spec.ops_per_site = 100;
  spec.seed = 1;
  const auto a = generate_program(spec, rmap);
  spec.seed = 2;
  const auto b = generate_program(spec, rmap);
  int diffs = 0;
  for (std::size_t i = 0; i < a[0].size(); ++i) {
    diffs += a[0][i].var != b[0][i].var ? 1 : 0;
  }
  EXPECT_GT(diffs, 10);
}

TEST(WorkloadTest, FullLocalityTargetsLocalVars) {
  const auto rmap = ReplicaMap::even(4, 16, 2);
  WorkloadSpec spec;
  spec.ops_per_site = 300;
  spec.locality = 1.0;
  spec.seed = 5;
  const auto program = generate_program(spec, rmap);
  for (causal::SiteId s = 0; s < 4; ++s) {
    for (const auto& op : program[s]) {
      EXPECT_TRUE(rmap.replicated_at(op.var, s));
    }
  }
}

TEST(WorkloadTest, ZipfSkewsTowardsHotKeys) {
  const auto rmap = ReplicaMap::even(2, 100, 1);
  WorkloadSpec spec;
  spec.ops_per_site = 5000;
  spec.dist = WorkloadSpec::KeyDist::kZipf;
  spec.zipf_theta = 0.99;
  spec.seed = 8;
  const auto program = generate_program(spec, rmap);
  std::vector<int> counts(100, 0);
  for (const auto& op : program[0]) ++counts[op.var];
  int head = counts[0] + counts[1] + counts[2];
  EXPECT_GT(head, 5000 / 5);
}

TEST(WorkloadTest, AnalyticFormulasMatchPaper) {
  // Fig. 4 anchor points for n = 10.
  EXPECT_DOUBLE_EQ(predicted_messages_full(10, 100), 1000.0);
  EXPECT_DOUBLE_EQ(predicted_messages_partial(10, 10, 100, 0), 1000.0);
  EXPECT_NEAR(crossover_write_rate(10), 2.0 / 12.0, 1e-12);
  // Below the crossover full replication wins, above it partial wins.
  const double n = 10, p = 3, ops = 1000;
  const double w_lo = 0.1 * ops, r_lo = 0.9 * ops;
  EXPECT_GT(predicted_messages_partial(n, p, w_lo, r_lo),
            predicted_messages_full(n, w_lo));
  const double w_hi = 0.3 * ops, r_hi = 0.7 * ops;
  EXPECT_LT(predicted_messages_partial(n, p, w_hi, r_hi),
            predicted_messages_full(n, w_hi));
}

TEST(SocialWorkloadTest, WallsPlacedInHomeRegion) {
  SocialSpec spec;
  spec.regions = 3;
  spec.sites_per_region = 2;
  spec.users = 60;
  spec.replicas_per_user = 2;
  spec.seed = 4;
  const auto sw = make_social_workload(spec);
  EXPECT_EQ(sw.rmap.sites(), 6u);
  EXPECT_EQ(sw.rmap.vars(), 60u);
  for (causal::VarId u = 0; u < 60; ++u) {
    for (const auto s : sw.rmap.replicas(u)) {
      EXPECT_EQ(sw.region_of_site[s], sw.home_region_of_user[u])
          << "wall " << u << " replicated outside its home region";
    }
  }
}

TEST(SocialWorkloadTest, WritesTargetLocalUsers) {
  SocialSpec spec;
  spec.regions = 2;
  spec.sites_per_region = 2;
  spec.users = 40;
  spec.ops_per_site = 400;
  spec.write_rate = 0.5;
  spec.seed = 6;
  const auto sw = make_social_workload(spec);
  for (causal::SiteId s = 0; s < sw.rmap.sites(); ++s) {
    for (const auto& op : sw.program[s]) {
      if (op.kind == Operation::Kind::kWrite) {
        EXPECT_EQ(sw.home_region_of_user[op.var], sw.region_of_site[s]);
      }
    }
  }
}

TEST(SocialWorkloadTest, MostReadsAreRegional) {
  SocialSpec spec;
  spec.regions = 2;
  spec.sites_per_region = 3;
  spec.users = 100;
  spec.ops_per_site = 1000;
  spec.write_rate = 0.1;
  spec.follow_local_prob = 0.9;
  spec.seed = 10;
  const auto sw = make_social_workload(spec);
  std::uint64_t reads = 0, local_reads = 0;
  for (causal::SiteId s = 0; s < sw.rmap.sites(); ++s) {
    for (const auto& op : sw.program[s]) {
      if (op.kind != Operation::Kind::kRead) continue;
      ++reads;
      local_reads +=
          sw.home_region_of_user[op.var] == sw.region_of_site[s] ? 1u : 0u;
    }
  }
  EXPECT_GT(static_cast<double>(local_reads) / static_cast<double>(reads),
            0.85);
}

TEST(SocialWorkloadTest, ReplicasClampedToRegionSize) {
  SocialSpec spec;
  spec.regions = 2;
  spec.sites_per_region = 2;
  spec.replicas_per_user = 5;  // bigger than a region
  spec.users = 10;
  spec.seed = 12;
  const auto sw = make_social_workload(spec);
  for (causal::VarId u = 0; u < 10; ++u) {
    EXPECT_LE(sw.rmap.replicas(u).size(), 2u);
  }
}

}  // namespace
}  // namespace ccpr::workload
