// Cluster config parser tests: the text format, derived replica map / key
// space, validation diagnostics, and text round-tripping.
#include "server/cluster_config.hpp"

#include <gtest/gtest.h>

namespace ccpr::server {
namespace {

constexpr const char* kBasic = R"(
# three sites, six vars, two replicas each
algorithm opt-track
vars 6
replicas 2
site 0 127.0.0.1 9000 9100
site 1 127.0.0.1 9001 9101
site 2 10.0.0.3 9002 9102   # a remote site
place 4 0,2
key 0 alpha
key 5 omega
fetch-timeout-us 250000
)";

TEST(ClusterConfigTest, ParsesBasicConfig) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->algorithm, causal::Algorithm::kOptTrack);
  EXPECT_EQ(cfg->vars, 6u);
  EXPECT_EQ(cfg->replicas_per_var, 2u);
  ASSERT_EQ(cfg->site_count(), 3u);
  EXPECT_EQ(cfg->sites[2].host, "10.0.0.3");
  EXPECT_EQ(cfg->sites[2].peer_port, 9002);
  EXPECT_EQ(cfg->sites[2].client_port, 9102);
  EXPECT_EQ(cfg->protocol.fetch_timeout_us, 250000u);
}

TEST(ClusterConfigTest, ReplicaMapUsesRingPlusOverrides) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto rmap = cfg->replica_map();
  EXPECT_EQ(rmap.sites(), 3u);
  EXPECT_EQ(rmap.vars(), 6u);
  // Ring placement: var x lives at sites x, x+1 (mod 3)...
  EXPECT_TRUE(rmap.replicated_at(0, 0));
  EXPECT_TRUE(rmap.replicated_at(0, 1));
  EXPECT_FALSE(rmap.replicated_at(0, 2));
  // ...except var 4, whose placement was overridden to {0, 2}.
  EXPECT_TRUE(rmap.replicated_at(4, 0));
  EXPECT_FALSE(rmap.replicated_at(4, 1));
  EXPECT_TRUE(rmap.replicated_at(4, 2));
}

TEST(ClusterConfigTest, KeySpaceMixesDefaultsAndOverrides) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto keys = cfg->key_space();
  EXPECT_EQ(keys.size(), 6u);
  EXPECT_EQ(keys.name(0), "alpha");
  EXPECT_EQ(keys.name(1), "key1");
  EXPECT_EQ(keys.name(5), "omega");
  EXPECT_EQ(keys.intern("alpha"), 0u);
}

TEST(ClusterConfigTest, TextRoundTrip) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->to_text(), cfg->to_text());
  EXPECT_EQ(again->vars, cfg->vars);
  EXPECT_EQ(again->sites.size(), cfg->sites.size());
  EXPECT_EQ(again->placement_overrides, cfg->placement_overrides);
}

TEST(ClusterConfigTest, IoTuningKeysParseAndRoundTrip) {
  const std::string text = std::string(kBasic) +
                           "sender-batch-bytes 131072\n"
                           "peer-queue-cap 8192\n"
                           "engine-queue-cap 512\n";
  std::string error;
  const auto cfg = ClusterConfig::parse(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->sender_batch_bytes, 131072u);
  EXPECT_EQ(cfg->peer_queue_cap, 8192u);
  EXPECT_EQ(cfg->engine_queue_cap, 512u);
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->sender_batch_bytes, 131072u);
  EXPECT_EQ(again->peer_queue_cap, 8192u);
  EXPECT_EQ(again->engine_queue_cap, 512u);
  EXPECT_EQ(again->to_text(), cfg->to_text());

  // Omitted keys mean "runtime default" and must not serialize.
  const auto base = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(base.has_value()) << error;
  EXPECT_EQ(base->sender_batch_bytes, 0u);
  EXPECT_EQ(base->peer_queue_cap, 0u);
  EXPECT_EQ(base->engine_queue_cap, 0u);
  EXPECT_EQ(base->to_text().find("sender-batch-bytes"), std::string::npos);
}

TEST(ClusterConfigTest, AllAlgorithmTokensParse) {
  for (const char* token :
       {"full-track", "opt-track", "opt-track-crp", "optp", "ahamad",
        "eventual"}) {
    const std::string text = std::string("algorithm ") + token +
                             "\nvars 2\nsite 0 127.0.0.1 1 2\n";
    std::string error;
    const auto cfg = ClusterConfig::parse(text, &error);
    ASSERT_TRUE(cfg.has_value()) << token << ": " << error;
    EXPECT_STREQ(causal::algorithm_token(cfg->algorithm), token);
  }
}

TEST(ClusterConfigTest, RejectsMalformedInput) {
  const std::pair<const char*, const char*> cases[] = {
      {"", "no 'site' lines"},
      {"vars 4\nsite 0 h 1 2\nsite 0 h 3 4\n", "duplicate"},
      {"vars 4\nsite 1 h 1 2\n", "dense"},
      {"vars 4\nsite 0 h 1 2\nbogus 1\n", "unknown keyword"},
      {"vars 4\nsite 0 h 1 2\nalgorithm nope\n", "unknown algorithm"},
      {"vars 0\nsite 0 h 1 2\n", "vars"},
      {"vars 4\nsite 0 h 1 2\nplace 9 0\n", "out of range"},
      {"vars 4\nsite 0 h 1 2\nplace 1 0,7\n", "out of range"},
      {"vars 4\nsite 0 h 1 2\nkey 9 x\n", "out of range"},
      {"vars 4\nsite 0 h 99999 2\n", "site"},
  };
  for (const auto& [text, needle] : cases) {
    std::string error;
    EXPECT_FALSE(ClusterConfig::parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error for {" << text << "} was: " << error;
  }
}

TEST(ClusterConfigTest, LoopbackHelper) {
  const auto cfg = ClusterConfig::loopback(4, 10, 2, 6200);
  EXPECT_EQ(cfg.site_count(), 4u);
  EXPECT_EQ(cfg.vars, 10u);
  EXPECT_EQ(cfg.sites[3].host, "127.0.0.1");
  EXPECT_EQ(cfg.sites[3].peer_port, 6203);
  EXPECT_EQ(cfg.sites[3].client_port, 6207);
  // base_port 0 = kernel-assigned everywhere.
  const auto anon = ClusterConfig::loopback(2, 4, 2, 0);
  EXPECT_EQ(anon.sites[1].peer_port, 0);
}

}  // namespace
}  // namespace ccpr::server
