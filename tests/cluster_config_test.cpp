// Cluster config parser tests: the text format, derived replica map / key
// space, validation diagnostics, and text round-tripping.
#include "server/cluster_config.hpp"

#include <gtest/gtest.h>

namespace ccpr::server {
namespace {

constexpr const char* kBasic = R"(
# three sites, six vars, two replicas each
algorithm opt-track
vars 6
replicas 2
site 0 127.0.0.1 9000 9100
site 1 127.0.0.1 9001 9101
site 2 10.0.0.3 9002 9102   # a remote site
place 4 0,2
key 0 alpha
key 5 omega
fetch-timeout-us 250000
)";

TEST(ClusterConfigTest, ParsesBasicConfig) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->algorithm, causal::Algorithm::kOptTrack);
  EXPECT_EQ(cfg->vars, 6u);
  EXPECT_EQ(cfg->replicas_per_var, 2u);
  ASSERT_EQ(cfg->site_count(), 3u);
  EXPECT_EQ(cfg->sites[2].host, "10.0.0.3");
  EXPECT_EQ(cfg->sites[2].peer_port, 9002);
  EXPECT_EQ(cfg->sites[2].client_port, 9102);
  EXPECT_EQ(cfg->protocol.fetch_timeout_us, 250000u);
}

TEST(ClusterConfigTest, ReplicaMapUsesRingPlusOverrides) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto rmap = cfg->replica_map();
  EXPECT_EQ(rmap.sites(), 3u);
  EXPECT_EQ(rmap.vars(), 6u);
  // Ring placement: var x lives at sites x, x+1 (mod 3)...
  EXPECT_TRUE(rmap.replicated_at(0, 0));
  EXPECT_TRUE(rmap.replicated_at(0, 1));
  EXPECT_FALSE(rmap.replicated_at(0, 2));
  // ...except var 4, whose placement was overridden to {0, 2}.
  EXPECT_TRUE(rmap.replicated_at(4, 0));
  EXPECT_FALSE(rmap.replicated_at(4, 1));
  EXPECT_TRUE(rmap.replicated_at(4, 2));
}

TEST(ClusterConfigTest, KeySpaceMixesDefaultsAndOverrides) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto keys = cfg->key_space();
  EXPECT_EQ(keys.size(), 6u);
  EXPECT_EQ(keys.name(0), "alpha");
  EXPECT_EQ(keys.name(1), "key1");
  EXPECT_EQ(keys.name(5), "omega");
  EXPECT_EQ(keys.intern("alpha"), 0u);
}

TEST(ClusterConfigTest, TextRoundTrip) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->to_text(), cfg->to_text());
  EXPECT_EQ(again->vars, cfg->vars);
  EXPECT_EQ(again->sites.size(), cfg->sites.size());
  EXPECT_EQ(again->placement_overrides, cfg->placement_overrides);
}

TEST(ClusterConfigTest, IoTuningKeysParseAndRoundTrip) {
  const std::string text = std::string(kBasic) +
                           "sender-batch-bytes 131072\n"
                           "peer-queue-cap 8192\n"
                           "engine-queue-cap 512\n";
  std::string error;
  const auto cfg = ClusterConfig::parse(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->sender_batch_bytes, 131072u);
  EXPECT_EQ(cfg->peer_queue_cap, 8192u);
  EXPECT_EQ(cfg->engine_queue_cap, 512u);
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->sender_batch_bytes, 131072u);
  EXPECT_EQ(again->peer_queue_cap, 8192u);
  EXPECT_EQ(again->engine_queue_cap, 512u);
  EXPECT_EQ(again->to_text(), cfg->to_text());

  // Omitted keys mean "runtime default" and must not serialize.
  const auto base = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(base.has_value()) << error;
  EXPECT_EQ(base->sender_batch_bytes, 0u);
  EXPECT_EQ(base->peer_queue_cap, 0u);
  EXPECT_EQ(base->engine_queue_cap, 0u);
  EXPECT_EQ(base->to_text().find("sender-batch-bytes"), std::string::npos);
}

TEST(ClusterConfigTest, AllAlgorithmTokensParse) {
  for (const char* token :
       {"full-track", "opt-track", "opt-track-crp", "optp", "ahamad",
        "eventual"}) {
    const std::string text = std::string("algorithm ") + token +
                             "\nvars 2\nsite 0 127.0.0.1 1 2\n";
    std::string error;
    const auto cfg = ClusterConfig::parse(text, &error);
    ASSERT_TRUE(cfg.has_value()) << token << ": " << error;
    EXPECT_STREQ(causal::algorithm_token(cfg->algorithm), token);
  }
}

TEST(ClusterConfigTest, RejectsMalformedInput) {
  const std::pair<const char*, const char*> cases[] = {
      {"", "no 'site' lines"},
      {"vars 4\nsite 0 h 1 2\nsite 0 h 3 4\n", "duplicate"},
      {"vars 4\nsite 1 h 1 2\n", "dense"},
      {"vars 4\nsite 0 h 1 2\nbogus 1\n", "unknown keyword"},
      {"vars 4\nsite 0 h 1 2\nalgorithm nope\n", "unknown algorithm"},
      {"vars 0\nsite 0 h 1 2\n", "vars"},
      {"vars 4\nsite 0 h 1 2\nplace 9 0\n", "out of range"},
      {"vars 4\nsite 0 h 1 2\nplace 1 0,7\n", "out of range"},
      {"vars 4\nsite 0 h 1 2\nkey 9 x\n", "out of range"},
      {"vars 4\nsite 0 h 99999 2\n", "site"},
  };
  for (const auto& [text, needle] : cases) {
    std::string error;
    EXPECT_FALSE(ClusterConfig::parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error for {" << text << "} was: " << error;
  }
}

TEST(ClusterConfigTest, NumbersAreParsedStrictly) {
  // "80x80" used to parse as 80 via std::stoul's prefix rule; the strict
  // parser rejects trailing garbage, signs, and empty fields, and the
  // diagnostic names the offending line.
  const char* bad_numbers[] = {
      "vars 4\nsite 0 h 80x80 2\n",
      "vars 4\nsite 0 h 1 2x\n",
      "vars 4x\nsite 0 h 1 2\n",
      "vars +4\nsite 0 h 1 2\n",
      "vars -4\nsite 0 h 1 2\n",
      "vars 99999999999999999999\nsite 0 h 1 2\n",
      "vars 4\nsite 0 h 1 2\nfetch-timeout-us 250000us\n",
  };
  for (const char* text : bad_numbers) {
    std::string error;
    EXPECT_FALSE(ClusterConfig::parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find("line "), std::string::npos)
        << "error for {" << text << "} lacks a line number: " << error;
  }
  // Exact values still parse, including the extremes.
  std::string error;
  const auto cfg =
      ClusterConfig::parse("vars 4294967295\nsite 0 h 65535 1\n", &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->vars, 4294967295u);
  EXPECT_EQ(cfg->sites[0].peer_port, 65535);
}

TEST(ClusterConfigTest, PlacementRejectsDuplicateSites) {
  std::string error;
  EXPECT_FALSE(
      ClusterConfig::parse(
          "vars 4\nsite 0 h 1 2\nsite 1 h 3 4\nplace 1 0,1,0\n", &error)
          .has_value());
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;

  // The same rule guards programmatic configs through validate().
  auto cfg = ClusterConfig::loopback(3, 6, 2, 0);
  cfg.placement_overrides.emplace_back(
      1, std::vector<causal::SiteId>{2, 2});
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("twice"), std::string::npos) << error;

  cfg.placement_overrides.back().second = {2, 0};
  EXPECT_TRUE(cfg.validate(&error)) << error;
}

TEST(ClusterConfigTest, ValidateCatchesBadProgrammaticConfigs) {
  std::string error;
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    EXPECT_TRUE(cfg.validate(&error)) << error;
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.vars = 0;
    EXPECT_FALSE(cfg.validate(&error));
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.replicas_per_var = 0;
    EXPECT_FALSE(cfg.validate(&error));
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.placement_overrides.emplace_back(
        9, std::vector<causal::SiteId>{0});  // var out of range
    EXPECT_FALSE(cfg.validate(&error));
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.placement_overrides.emplace_back(
        1, std::vector<causal::SiteId>{5});  // site out of range
    EXPECT_FALSE(cfg.validate(&error));
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.key_names.emplace_back(9, "ghost");  // var out of range
    EXPECT_FALSE(cfg.validate(&error));
  }
}

TEST(ClusterConfigTest, DurabilityKeysParseAndRoundTrip) {
  const std::string text = std::string(kBasic) +
                           "catchup-retain 1024\n"
                           "catchup-interval-ms 250\n"
                           "catchup-timeout-ms 5000\n"
                           "checkpoint-every 2048\n";
  std::string error;
  const auto cfg = ClusterConfig::parse(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->catchup_retain, 1024u);
  EXPECT_EQ(cfg->catchup_interval_ms, 250u);
  EXPECT_EQ(cfg->catchup_timeout_ms, 5000u);
  EXPECT_EQ(cfg->checkpoint_every, 2048u);
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->to_text(), cfg->to_text());
  EXPECT_EQ(again->checkpoint_every, 2048u);

  // Omitted keys mean "runtime default" and must not serialize.
  const auto base = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(base.has_value()) << error;
  EXPECT_EQ(base->catchup_retain, 0u);
  EXPECT_EQ(base->to_text().find("catchup-"), std::string::npos);
}

TEST(ClusterConfigTest, LoopbackHelper) {
  const auto cfg = ClusterConfig::loopback(4, 10, 2, 6200);
  EXPECT_EQ(cfg.site_count(), 4u);
  EXPECT_EQ(cfg.vars, 10u);
  EXPECT_EQ(cfg.sites[3].host, "127.0.0.1");
  EXPECT_EQ(cfg.sites[3].peer_port, 6203);
  EXPECT_EQ(cfg.sites[3].client_port, 6207);
  // base_port 0 = kernel-assigned everywhere.
  const auto anon = ClusterConfig::loopback(2, 4, 2, 0);
  EXPECT_EQ(anon.sites[1].peer_port, 0);
}

}  // namespace
}  // namespace ccpr::server
