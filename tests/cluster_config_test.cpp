// Cluster config parser tests: the text format, derived replica map / key
// space, validation diagnostics, and text round-tripping.
#include "server/cluster_config.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ccpr::server {
namespace {

constexpr const char* kBasic = R"(
# three sites, six vars, two replicas each
algorithm opt-track
vars 6
replicas 2
site 0 127.0.0.1 9000 9100
site 1 127.0.0.1 9001 9101
site 2 10.0.0.3 9002 9102   # a remote site
place 4 0,2
key 0 alpha
key 5 omega
fetch-timeout-us 250000
)";

TEST(ClusterConfigTest, ParsesBasicConfig) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->algorithm, causal::Algorithm::kOptTrack);
  EXPECT_EQ(cfg->vars, 6u);
  EXPECT_EQ(cfg->replicas_per_var, 2u);
  ASSERT_EQ(cfg->site_count(), 3u);
  EXPECT_EQ(cfg->sites[2].host, "10.0.0.3");
  EXPECT_EQ(cfg->sites[2].peer_port, 9002);
  EXPECT_EQ(cfg->sites[2].client_port, 9102);
  EXPECT_EQ(cfg->protocol.fetch_timeout_us, 250000u);
}

TEST(ClusterConfigTest, ReplicaMapUsesRingPlusOverrides) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto rmap = cfg->replica_map();
  EXPECT_EQ(rmap.sites(), 3u);
  EXPECT_EQ(rmap.vars(), 6u);
  // Ring placement: var x lives at sites x, x+1 (mod 3)...
  EXPECT_TRUE(rmap.replicated_at(0, 0));
  EXPECT_TRUE(rmap.replicated_at(0, 1));
  EXPECT_FALSE(rmap.replicated_at(0, 2));
  // ...except var 4, whose placement was overridden to {0, 2}.
  EXPECT_TRUE(rmap.replicated_at(4, 0));
  EXPECT_FALSE(rmap.replicated_at(4, 1));
  EXPECT_TRUE(rmap.replicated_at(4, 2));
}

TEST(ClusterConfigTest, KeySpaceMixesDefaultsAndOverrides) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto keys = cfg->key_space();
  EXPECT_EQ(keys.size(), 6u);
  EXPECT_EQ(keys.name(0), "alpha");
  EXPECT_EQ(keys.name(1), "key1");
  EXPECT_EQ(keys.name(5), "omega");
  EXPECT_EQ(keys.intern("alpha"), 0u);
}

TEST(ClusterConfigTest, TextRoundTrip) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->to_text(), cfg->to_text());
  EXPECT_EQ(again->vars, cfg->vars);
  EXPECT_EQ(again->sites.size(), cfg->sites.size());
  EXPECT_EQ(again->placement_overrides, cfg->placement_overrides);
}

TEST(ClusterConfigTest, IoTuningKeysParseAndRoundTrip) {
  const std::string text = std::string(kBasic) +
                           "sender-batch-bytes 131072\n"
                           "peer-queue-cap 8192\n"
                           "engine-queue-cap 512\n";
  std::string error;
  const auto cfg = ClusterConfig::parse(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->sender_batch_bytes, 131072u);
  EXPECT_EQ(cfg->peer_queue_cap, 8192u);
  EXPECT_EQ(cfg->engine_queue_cap, 512u);
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->sender_batch_bytes, 131072u);
  EXPECT_EQ(again->peer_queue_cap, 8192u);
  EXPECT_EQ(again->engine_queue_cap, 512u);
  EXPECT_EQ(again->to_text(), cfg->to_text());

  // Omitted keys mean "runtime default" and must not serialize.
  const auto base = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(base.has_value()) << error;
  EXPECT_EQ(base->sender_batch_bytes, 0u);
  EXPECT_EQ(base->peer_queue_cap, 0u);
  EXPECT_EQ(base->engine_queue_cap, 0u);
  EXPECT_EQ(base->to_text().find("sender-batch-bytes"), std::string::npos);
}

TEST(ClusterConfigTest, AllAlgorithmTokensParse) {
  for (const char* token :
       {"full-track", "opt-track", "opt-track-crp", "optp", "ahamad",
        "eventual"}) {
    const std::string text = std::string("algorithm ") + token +
                             "\nvars 2\nsite 0 127.0.0.1 1 2\n";
    std::string error;
    const auto cfg = ClusterConfig::parse(text, &error);
    ASSERT_TRUE(cfg.has_value()) << token << ": " << error;
    EXPECT_STREQ(causal::algorithm_token(cfg->algorithm), token);
  }
}

TEST(ClusterConfigTest, RejectsMalformedInput) {
  const std::pair<const char*, const char*> cases[] = {
      {"", "no 'site' lines"},
      {"vars 4\nsite 0 h 1 2\nsite 0 h 3 4\n", "duplicate"},
      {"vars 4\nsite 1 h 1 2\n", "dense"},
      {"vars 4\nsite 0 h 1 2\nbogus 1\n", "unknown keyword"},
      {"vars 4\nsite 0 h 1 2\nalgorithm nope\n", "unknown algorithm"},
      {"vars 0\nsite 0 h 1 2\n", "vars"},
      {"vars 4\nsite 0 h 1 2\nplace 9 0\n", "out of range"},
      {"vars 4\nsite 0 h 1 2\nplace 1 0,7\n", "out of range"},
      {"vars 4\nsite 0 h 1 2\nkey 9 x\n", "out of range"},
      {"vars 4\nsite 0 h 99999 2\n", "site"},
  };
  for (const auto& [text, needle] : cases) {
    std::string error;
    EXPECT_FALSE(ClusterConfig::parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error for {" << text << "} was: " << error;
  }
}

TEST(ClusterConfigTest, NumbersAreParsedStrictly) {
  // "80x80" used to parse as 80 via std::stoul's prefix rule; the strict
  // parser rejects trailing garbage, signs, and empty fields, and the
  // diagnostic names the offending line.
  const char* bad_numbers[] = {
      "vars 4\nsite 0 h 80x80 2\n",
      "vars 4\nsite 0 h 1 2x\n",
      "vars 4x\nsite 0 h 1 2\n",
      "vars +4\nsite 0 h 1 2\n",
      "vars -4\nsite 0 h 1 2\n",
      "vars 99999999999999999999\nsite 0 h 1 2\n",
      "vars 4\nsite 0 h 1 2\nfetch-timeout-us 250000us\n",
  };
  for (const char* text : bad_numbers) {
    std::string error;
    EXPECT_FALSE(ClusterConfig::parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find("line "), std::string::npos)
        << "error for {" << text << "} lacks a line number: " << error;
  }
  // Exact values still parse, including the extremes.
  std::string error;
  const auto cfg =
      ClusterConfig::parse("vars 4294967295\nsite 0 h 65535 1\n", &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->vars, 4294967295u);
  EXPECT_EQ(cfg->sites[0].peer_port, 65535);
}

TEST(ClusterConfigTest, PlacementRejectsDuplicateSites) {
  std::string error;
  EXPECT_FALSE(
      ClusterConfig::parse(
          "vars 4\nsite 0 h 1 2\nsite 1 h 3 4\nplace 1 0,1,0\n", &error)
          .has_value());
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;

  // The same rule guards programmatic configs through validate().
  auto cfg = ClusterConfig::loopback(3, 6, 2, 0);
  cfg.placement_overrides.emplace_back(
      1, std::vector<causal::SiteId>{2, 2});
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("twice"), std::string::npos) << error;

  cfg.placement_overrides.back().second = {2, 0};
  EXPECT_TRUE(cfg.validate(&error)) << error;
}

TEST(ClusterConfigTest, ValidateCatchesBadProgrammaticConfigs) {
  std::string error;
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    EXPECT_TRUE(cfg.validate(&error)) << error;
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.vars = 0;
    EXPECT_FALSE(cfg.validate(&error));
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.replicas_per_var = 0;
    EXPECT_FALSE(cfg.validate(&error));
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.placement_overrides.emplace_back(
        9, std::vector<causal::SiteId>{0});  // var out of range
    EXPECT_FALSE(cfg.validate(&error));
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.placement_overrides.emplace_back(
        1, std::vector<causal::SiteId>{5});  // site out of range
    EXPECT_FALSE(cfg.validate(&error));
  }
  {
    auto cfg = ClusterConfig::loopback(2, 4, 2, 0);
    cfg.key_names.emplace_back(9, "ghost");  // var out of range
    EXPECT_FALSE(cfg.validate(&error));
  }
}

TEST(ClusterConfigTest, DurabilityKeysParseAndRoundTrip) {
  const std::string text = std::string(kBasic) +
                           "catchup-retain 1024\n"
                           "catchup-interval-ms 250\n"
                           "catchup-timeout-ms 5000\n"
                           "checkpoint-every 2048\n";
  std::string error;
  const auto cfg = ClusterConfig::parse(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->catchup_retain, 1024u);
  EXPECT_EQ(cfg->catchup_interval_ms, 250u);
  EXPECT_EQ(cfg->catchup_timeout_ms, 5000u);
  EXPECT_EQ(cfg->checkpoint_every, 2048u);
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->to_text(), cfg->to_text());
  EXPECT_EQ(again->checkpoint_every, 2048u);

  // Omitted keys mean "runtime default" and must not serialize.
  const auto base = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(base.has_value()) << error;
  EXPECT_EQ(base->catchup_retain, 0u);
  EXPECT_EQ(base->to_text().find("catchup-"), std::string::npos);
}

TEST(ClusterConfigTest, StoreEngineKeysParseAndRoundTrip) {
  const std::string text = std::string(kBasic) +
                           "store-engine compact\n"
                           "store-shards 16\n"
                           "store-inline-max 128\n"
                           "store-spill-budget-bytes 67108864\n";
  std::string error;
  const auto cfg = ClusterConfig::parse(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto& eng = cfg->protocol.store_engine;
  EXPECT_EQ(eng.kind, store::EngineKind::kCompact);
  EXPECT_EQ(eng.shards, 16u);
  EXPECT_EQ(eng.inline_max, 128u);
  EXPECT_EQ(eng.spill_budget_bytes, 67108864u);
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->to_text(), cfg->to_text());
  EXPECT_EQ(again->protocol.store_engine.kind, store::EngineKind::kCompact);

  // The default engine is implicit: no store-* keys in serialized output.
  const auto base = ClusterConfig::parse(kBasic, &error);
  ASSERT_TRUE(base.has_value()) << error;
  EXPECT_EQ(base->protocol.store_engine.kind, store::EngineKind::kMap);
  EXPECT_EQ(base->to_text().find("store-"), std::string::npos);

  // Malformed values are rejected with the offending keyword named.
  const char* bad[] = {
      "store-engine lsm\n",
      "store-shards 0\n",
      "store-inline-max many\n",
      "store-spill-budget-bytes -1\n",
  };
  for (const auto* line : bad) {
    EXPECT_FALSE(
        ClusterConfig::parse(std::string(kBasic) + line, &error).has_value())
        << line;
  }
}

constexpr const char* kGeo = R"(
algorithm opt-track
vars 6
replicas 2
placement region
region eu 2ms
region us            # default intra latency
link eu us 80ms
site 0 127.0.0.1 9000 9100 eu
site 1 127.0.0.1 9001 9101 eu
site 2 127.0.0.1 9002 9102 us
site 3 127.0.0.1 9003 9103 us
)";

TEST(ClusterConfigTest, ParsesGeoTopology) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kGeo, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->placement, PlacementPolicy::kRegion);
  const auto& topo = cfg->topology;
  ASSERT_EQ(topo.region_count(), 2u);
  EXPECT_EQ(topo.region_names[0], "eu");
  EXPECT_EQ(topo.region_names[1], "us");
  EXPECT_EQ(topo.intra_us[0], 2'000u);
  EXPECT_EQ(topo.intra_us[1], Topology::kDefaultIntraUs);
  ASSERT_EQ(topo.region_of_site.size(), 4u);
  EXPECT_EQ(topo.region_name_of(0), "eu");
  EXPECT_EQ(topo.region_name_of(3), "us");
  EXPECT_EQ(topo.link_us(0, 1), 80'000u);
  EXPECT_EQ(topo.link_us(1, 0), 80'000u);  // symmetric
  EXPECT_EQ(topo.site_distance_us(0, 1), 2'000u);
  EXPECT_EQ(topo.site_distance_us(0, 0), 0u);
  EXPECT_EQ(topo.site_distance_us(1, 2), 80'000u);
}

TEST(ClusterConfigTest, GeoTopologyRoundTrips) {
  std::string error;
  const auto cfg = ClusterConfig::parse(kGeo, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto again = ClusterConfig::parse(cfg->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->topology, cfg->topology);
  EXPECT_EQ(again->placement, cfg->placement);
  EXPECT_EQ(again->to_text(), cfg->to_text());
}

TEST(ClusterConfigTest, DurationTokensParse) {
  const std::pair<const char*, std::uint32_t> cases[] = {
      {"750us", 750u}, {"80ms", 80'000u}, {"1s", 1'000'000u}, {"0us", 0u},
  };
  for (const auto& [tok, us] : cases) {
    const std::string text = std::string("vars 1\nregion eu ") + tok +
                             "\nsite 0 h 1 2 eu\n";
    std::string error;
    const auto cfg = ClusterConfig::parse(text, &error);
    ASSERT_TRUE(cfg.has_value()) << tok << ": " << error;
    EXPECT_EQ(cfg->topology.intra_us[0], us) << tok;
  }
}

TEST(ClusterConfigTest, RejectsMalformedGeoInput) {
  const std::pair<const char*, const char*> cases[] = {
      // Unit-less or garbage latency classes.
      {"vars 1\nregion eu 80\nsite 0 h 1 2 eu\n", "region"},
      {"vars 1\nregion eu 80m\nsite 0 h 1 2 eu\n", "region"},
      {"vars 1\nregion eu 2ms\nregion eu 3ms\nsite 0 h 1 2 eu\n",
       "duplicate region"},
      // A site naming an undeclared region.
      {"vars 1\nsite 0 h 1 2 mars\n", "unknown region"},
      // Regions declared but a site left unassigned.
      {"vars 1\nregion eu\nsite 0 h 1 2\n", "missing region"},
      // Links: unknown region, intra link, duplicate (either order).
      {"vars 1\nregion eu\nlink eu mars 80ms\nsite 0 h 1 2 eu\n",
       "unknown region"},
      {"vars 1\nregion eu\nlink eu eu 80ms\nsite 0 h 1 2 eu\n",
       "intra-region"},
      {"vars 1\nregion eu\nregion us\nlink eu us 80ms\nlink us eu 90ms\n"
       "site 0 h 1 2 eu\nsite 1 h 3 4 us\n",
       "duplicate link"},
      // Placement: unknown policy, seed on the wrong policy, region
      // placement without regions.
      {"vars 1\nsite 0 h 1 2\nplacement zigzag\n", "unknown placement"},
      {"vars 1\nsite 0 h 1 2\nplacement ring 7\n", "seed"},
      {"vars 1\nsite 0 h 1 2\nplacement region\n", "requires"},
      {"vars 1\nregion eu\nlink eu us 80ms\nsite 0 h 1 2 eu\n",
       "unknown region"},
  };
  for (const auto& [text, needle] : cases) {
    std::string error;
    EXPECT_FALSE(ClusterConfig::parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error for {" << text << "} was: " << error;
  }
}

/// Random valid config touching EVERY serializable field; to_text() must
/// parse back to an identical config (and identical re-serialization).
ClusterConfig random_config(util::Rng& rng) {
  ClusterConfig cfg;
  const char* algs[] = {"full-track", "opt-track", "opt-track-crp",
                        "optp",       "ahamad",    "eventual"};
  cfg.algorithm = *causal::algorithm_from_token(
      algs[rng.below(std::size(algs))]);
  const auto n = static_cast<std::uint32_t>(1 + rng.below(6));
  cfg.vars = static_cast<std::uint32_t>(1 + rng.below(12));
  cfg.replicas_per_var = static_cast<std::uint32_t>(1 + rng.below(n + 2));
  cfg.sites.resize(n);
  const char* hosts[] = {"127.0.0.1", "10.1.2.3", "node.example.com",
                         "host-7"};
  for (auto& site : cfg.sites) {
    site.host = hosts[rng.below(std::size(hosts))];
    site.peer_port = static_cast<std::uint16_t>(1 + rng.below(65535));
    site.client_port = static_cast<std::uint16_t>(1 + rng.below(65535));
  }
  const bool geo = rng.chance(0.7);
  if (geo) {
    const auto regions = static_cast<std::uint32_t>(1 + rng.below(3));
    const char* names[] = {"eu", "us-east", "ap1"};
    for (std::uint32_t r = 0; r < regions; ++r) {
      cfg.topology.region_names.push_back(names[r]);
      cfg.topology.intra_us.push_back(
          static_cast<std::uint32_t>(rng.below(5'000'000)));
    }
    for (std::uint32_t s = 0; s < n; ++s) {
      cfg.topology.region_of_site.push_back(
          static_cast<std::uint32_t>(rng.below(regions)));
    }
    for (std::uint32_t a = 0; a < regions; ++a) {
      for (std::uint32_t b = a + 1; b < regions; ++b) {
        if (rng.chance(0.5)) {
          cfg.topology.links.push_back(Topology::Link{
              a, b, static_cast<std::uint32_t>(rng.below(500'000'000))});
        }
      }
    }
  }
  const auto policy = rng.below(geo ? 3 : 2);
  cfg.placement = static_cast<PlacementPolicy>(policy);
  if (cfg.placement == PlacementPolicy::kHash && rng.chance(0.7)) {
    cfg.placement_seed = static_cast<std::uint32_t>(1 + rng.below(1u << 30));
  }
  if (rng.chance(0.5)) {
    const auto x = static_cast<causal::VarId>(rng.below(cfg.vars));
    std::vector<causal::SiteId> sites_of_x;
    for (causal::SiteId s = 0; s < n; ++s) {
      if (sites_of_x.empty() || rng.chance(0.4)) sites_of_x.push_back(s);
    }
    cfg.placement_overrides.emplace_back(x, std::move(sites_of_x));
  }
  if (rng.chance(0.5)) {
    const auto x = static_cast<causal::VarId>(rng.below(cfg.vars));
    cfg.key_names.emplace_back(x, "name" + std::to_string(x));
  }
  cfg.protocol.convergent = rng.chance(0.5);
  cfg.protocol.fetch_gating = !rng.chance(0.3);
  const auto opt_u32 = [&rng](double p) {
    return rng.chance(p) ? static_cast<std::uint32_t>(1 + rng.below(1u << 24))
                         : 0u;
  };
  cfg.protocol.fetch_timeout_us = opt_u32(0.5);
  cfg.max_frame_bytes = opt_u32(0.5);
  cfg.sender_batch_bytes = opt_u32(0.5);
  cfg.peer_queue_cap = opt_u32(0.5);
  cfg.engine_queue_cap = opt_u32(0.5);
  cfg.catchup_retain = opt_u32(0.5);
  cfg.catchup_interval_ms = opt_u32(0.5);
  cfg.catchup_timeout_ms = opt_u32(0.5);
  cfg.checkpoint_every = opt_u32(0.5);
  if (rng.chance(0.5)) {
    cfg.protocol.store_engine.kind = store::EngineKind::kCompact;
  }
  if (rng.chance(0.4)) {
    cfg.protocol.store_engine.shards =
        static_cast<std::uint32_t>(1 + rng.below(64));
  }
  if (rng.chance(0.4)) {
    cfg.protocol.store_engine.inline_max =
        static_cast<std::uint32_t>(rng.below(4096));
  }
  if (rng.chance(0.4)) {
    cfg.protocol.store_engine.spill_budget_bytes = 1 + rng.below(1u << 28);
  }
  return cfg;
}

TEST(ClusterConfigTest, EveryFieldRoundTripsProperty) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Rng rng(seed);
    const auto cfg = random_config(rng);
    std::string error;
    ASSERT_TRUE(cfg.validate(&error)) << "seed " << seed << ": " << error;
    const auto text = cfg.to_text();
    const auto back = ClusterConfig::parse(text, &error);
    ASSERT_TRUE(back.has_value())
        << "seed " << seed << ": " << error << "\n" << text;
    EXPECT_EQ(back->algorithm, cfg.algorithm) << text;
    EXPECT_EQ(back->vars, cfg.vars) << text;
    EXPECT_EQ(back->replicas_per_var, cfg.replicas_per_var) << text;
    EXPECT_EQ(back->placement, cfg.placement) << text;
    EXPECT_EQ(back->placement_seed, cfg.placement_seed) << text;
    ASSERT_EQ(back->sites.size(), cfg.sites.size()) << text;
    for (std::size_t s = 0; s < cfg.sites.size(); ++s) {
      EXPECT_EQ(back->sites[s].host, cfg.sites[s].host) << text;
      EXPECT_EQ(back->sites[s].peer_port, cfg.sites[s].peer_port) << text;
      EXPECT_EQ(back->sites[s].client_port, cfg.sites[s].client_port)
          << text;
    }
    EXPECT_EQ(back->topology, cfg.topology) << text;
    EXPECT_EQ(back->placement_overrides, cfg.placement_overrides) << text;
    EXPECT_EQ(back->key_names, cfg.key_names) << text;
    EXPECT_EQ(back->protocol.convergent, cfg.protocol.convergent) << text;
    EXPECT_EQ(back->protocol.fetch_gating, cfg.protocol.fetch_gating)
        << text;
    EXPECT_EQ(back->protocol.fetch_timeout_us, cfg.protocol.fetch_timeout_us)
        << text;
    EXPECT_EQ(back->max_frame_bytes, cfg.max_frame_bytes) << text;
    EXPECT_EQ(back->sender_batch_bytes, cfg.sender_batch_bytes) << text;
    EXPECT_EQ(back->peer_queue_cap, cfg.peer_queue_cap) << text;
    EXPECT_EQ(back->engine_queue_cap, cfg.engine_queue_cap) << text;
    EXPECT_EQ(back->catchup_retain, cfg.catchup_retain) << text;
    EXPECT_EQ(back->catchup_interval_ms, cfg.catchup_interval_ms) << text;
    EXPECT_EQ(back->catchup_timeout_ms, cfg.catchup_timeout_ms) << text;
    EXPECT_EQ(back->checkpoint_every, cfg.checkpoint_every) << text;
    EXPECT_EQ(back->protocol.store_engine.kind,
              cfg.protocol.store_engine.kind)
        << text;
    EXPECT_EQ(back->protocol.store_engine.shards,
              cfg.protocol.store_engine.shards)
        << text;
    EXPECT_EQ(back->protocol.store_engine.inline_max,
              cfg.protocol.store_engine.inline_max)
        << text;
    EXPECT_EQ(back->protocol.store_engine.spill_budget_bytes,
              cfg.protocol.store_engine.spill_budget_bytes)
        << text;
    // And serialization is a fixed point.
    EXPECT_EQ(back->to_text(), text);
  }
}

TEST(ClusterConfigTest, LoopbackHelper) {
  const auto cfg = ClusterConfig::loopback(4, 10, 2, 6200);
  EXPECT_EQ(cfg.site_count(), 4u);
  EXPECT_EQ(cfg.vars, 10u);
  EXPECT_EQ(cfg.sites[3].host, "127.0.0.1");
  EXPECT_EQ(cfg.sites[3].peer_port, 6203);
  EXPECT_EQ(cfg.sites[3].client_port, 6207);
  // base_port 0 = kernel-assigned everywhere.
  const auto anon = ClusterConfig::loopback(2, 4, 2, 0);
  EXPECT_EQ(anon.sites[1].peer_port, 0);
}

}  // namespace
}  // namespace ccpr::server
