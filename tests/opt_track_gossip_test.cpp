// The Apply-vector gossip + discharge machinery that keeps the *sound*
// Opt-Track merge as compact as the paper's unsound rule (DESIGN.md §6.1).
#include <gtest/gtest.h>

#include "causal/opt_track.hpp"
#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::constant_latency;
using ccpr::testing::expect_causal;

const OptTrack& ot(const SimCluster& c, SiteId s) {
  return dynamic_cast<const OptTrack&>(c.site(s));
}

TEST(OptTrackGossipTest, UpdatesCarryApplyVectors) {
  // Control bytes grow by ~n varints per update in gossip mode.
  auto with = constant_latency(100);
  auto without = constant_latency(100);
  without.protocol.aggressive_merge = true;  // paper mode: gossip off
  SimCluster g(Algorithm::kOptTrack, ReplicaMap::even(6, 6, 3),
               std::move(with));
  SimCluster p(Algorithm::kOptTrack, ReplicaMap::even(6, 6, 3),
               std::move(without));
  g.write(0, 0, "x");
  p.write(0, 0, "x");
  g.run();
  p.run();
  EXPECT_GT(g.metrics().control_bytes, p.metrics().control_bytes);
  EXPECT_LE(g.metrics().control_bytes,
            p.metrics().control_bytes + 2u * 6u * 9u);
}

TEST(OptTrackGossipTest, DischargeDropsProvenDestinations) {
  // s0 writes x (replicas {0,1}). s1 applies and later *writes* y, whose
  // update gossips Apply_1 back to s0; after a local read re-merges the
  // log, the obligation "write 1 still destined to s1" must be discharged
  // by that fact rather than carried forever.
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::custom(2, {{0, 1}, {0, 1}}),
               constant_latency(100));
  c.write(0, 0, "x");
  c.run();  // s1 applied write 1
  {
    // Before any gossip from s1 arrives, s0 still carries the obligation.
    bool has_obligation = false;
    for (const LogEntry& e : ot(c, 0).log()) {
      has_obligation |= e.sender == 0 && e.clock == 1 && e.dests.contains(1);
    }
    EXPECT_TRUE(has_obligation);
  }
  c.write(1, 1, "y");  // gossips Apply_1 = {1 applied from s0}
  c.run();
  ASSERT_EQ(c.read(0, 1).data, "y");  // merge + discharge at s0
  for (const LogEntry& e : ot(c, 0).log()) {
    EXPECT_FALSE(e.sender == 0 && e.clock == 1 && e.dests.contains(1))
        << "obligation survived although s1's apply was gossiped";
  }
  expect_causal(c);
}

TEST(OptTrackGossipTest, FetchResponsesGossipToo) {
  // Var 1 lives only at s1. s0's remote read must learn Apply_1 from the
  // fetch response and discharge its own-write obligation toward s1.
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::custom(2, {{0, 1}, {1}}),
               constant_latency(100));
  c.write(0, 0, "x");  // destined to s1 as well
  c.run();
  ASSERT_TRUE(c.read(0, 1).id.is_initial());  // fetch from s1
  for (const LogEntry& e : ot(c, 0).log()) {
    EXPECT_FALSE(e.dests.contains(1))
        << "fetch response's Apply vector should have discharged s1";
  }
  expect_causal(c);
}

TEST(OptTrackGossipTest, SoundMergeNotFatterThanPaperOnSteadyState) {
  // The headline of the fix: on a steady mixed workload the sound mode's
  // per-message metadata stays within ~2x of the (unsound) paper mode.
  auto run_mode = [](bool aggressive) {
    auto opts = constant_latency(2'000);
    opts.protocol.aggressive_merge = aggressive;
    SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(6, 18, 3),
                 std::move(opts));
    for (int round = 0; round < 40; ++round) {
      for (SiteId s = 0; s < 6; ++s) {
        const auto r = static_cast<VarId>(round);
        c.write(s, (s + r) % 18, "v");
        c.read(s, (s * 3 + r) % 18);
      }
      c.run();
    }
    return c.metrics().control_bytes_per_message();
  };
  const double sound = run_mode(false);
  const double paper = run_mode(true);
  EXPECT_LT(sound, paper * 2.0);
}

}  // namespace
}  // namespace ccpr::causal
