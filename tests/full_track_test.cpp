#include "causal/full_track.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::applies_at;
using ccpr::testing::constant_latency;
using ccpr::testing::expect_causal;
using ccpr::testing::index_of;
using ccpr::testing::matrix_latency;

const FullTrack& ft(const SimCluster& c, SiteId s) {
  return dynamic_cast<const FullTrack&>(c.site(s));
}

TEST(FullTrackTest, LocalWriteAppliesImmediately) {
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::full(2, 4),
               constant_latency(1000));
  c.write(0, 0, "a");
  EXPECT_EQ(c.site(0).peek(0).data, "a");
  EXPECT_TRUE(c.site(1).peek(0).data.empty());  // not yet delivered
  c.run();
  EXPECT_EQ(c.site(1).peek(0).data, "a");
  expect_causal(c);
}

TEST(FullTrackTest, WriteClockCountsPerDestination) {
  // even(3, q, 2): var 0 lives at {0,1}; var 2 lives at {2,0}.
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::even(3, 6, 2),
               constant_latency(100));
  c.write(0, 0, "a");  // destined to sites 0 and 1
  const auto& w = ft(c, 0).write_clock();
  EXPECT_EQ(w.at(0, 0), 1u);
  EXPECT_EQ(w.at(0, 1), 1u);
  EXPECT_EQ(w.at(0, 2), 0u);
  c.write(0, 2, "b");  // var 2 destined to sites 0 and 2
  EXPECT_EQ(ft(c, 0).write_clock().at(0, 2), 1u);
  EXPECT_EQ(ft(c, 0).write_clock().at(0, 0), 2u);
  c.run();
  expect_causal(c);
}

TEST(FullTrackTest, PiggybackedClockMergedOnlyAtRead) {
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::full(2, 2),
               constant_latency(10));
  c.write(0, 0, "a");
  c.run();  // update applied at site 1
  EXPECT_EQ(ft(c, 1).applied_from(0), 1u);
  // Receipt alone must not advance site 1's Write clock (->co, not ->).
  EXPECT_EQ(ft(c, 1).write_clock().at(0, 0), 0u);
  const Value v = c.read(1, 0);
  EXPECT_EQ(v.data, "a");
  EXPECT_EQ(ft(c, 1).write_clock().at(0, 0), 1u);
  expect_causal(c);
}

TEST(FullTrackTest, CausalChainRespectedAcrossSlowChannel) {
  // s0 -> s2 is slow; s0 -> s1 and s1 -> s2 are fast. s1 reads s0's write
  // then writes; s2 must apply the writes in causal order even though they
  // arrive reversed.
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);  // a reached s1 but not s2
  EXPECT_EQ(c.site(1).peek(0).data, "a");
  EXPECT_TRUE(c.site(2).peek(0).data.empty());
  const Value v = c.read(1, 0);
  ASSERT_EQ(v.data, "a");
  c.write(1, 1, "b");  // causally after w(x)a via the read
  c.run();
  const auto seq = applies_at(c.history(), 2);
  const auto ia = index_of(seq, WriteId{0, 1});
  const auto ib = index_of(seq, WriteId{1, 1});
  ASSERT_GE(ia, 0);
  ASSERT_GE(ib, 0);
  EXPECT_LT(ia, ib);  // a applied before b at s2
  expect_causal(c);
}

TEST(FullTrackTest, NoFalseCausalityWithoutRead) {
  // Same topology, but s1 writes WITHOUT reading s0's value: the writes are
  // concurrent under ->co, so s2 may (and here, will) apply b first. This is
  // exactly the false causality that A_OPT eliminates and A_ORG would not.
  auto opts = matrix_latency(3, {0, 1000, 90'000,    //
                                 1000, 0, 1000,      //
                                 90'000, 1000, 0});
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::full(3, 2),
               std::move(opts));
  c.write(0, 0, "a");
  c.run_until(5'000);
  c.write(1, 1, "b");  // concurrent with a: s1 never read it
  c.run();
  const auto seq = applies_at(c.history(), 2);
  const auto ia = index_of(seq, WriteId{0, 1});
  const auto ib = index_of(seq, WriteId{1, 1});
  ASSERT_GE(ia, 0);
  ASSERT_GE(ib, 0);
  EXPECT_LT(ib, ia);  // b did NOT wait for a
  expect_causal(c);
}

TEST(FullTrackTest, RemoteReadFetchesFromReplica) {
  // even(3, 3, 1): var 2 lives only at site 2.
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::even(3, 3, 1),
               constant_latency(500));
  c.write(2, 2, "z");
  c.run();
  const Value v = c.read(0, 2);
  EXPECT_EQ(v.data, "z");
  EXPECT_EQ(v.id, (WriteId{2, 1}));
  const auto m = c.metrics();
  EXPECT_EQ(m.remote_reads, 1u);
  EXPECT_EQ(m.fetch_req_msgs, 1u);
  EXPECT_EQ(m.fetch_resp_msgs, 1u);
  expect_causal(c);
}

TEST(FullTrackTest, ReadOfUnwrittenVariableReturnsInitial) {
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::full(2, 2),
               constant_latency(10));
  const Value v = c.read(0, 1);
  EXPECT_TRUE(v.id.is_initial());
  EXPECT_TRUE(v.data.empty());
}

TEST(FullTrackTest, PerWriterFifoAtRemoteSite) {
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::full(2, 1),
               constant_latency(100));
  for (int i = 1; i <= 20; ++i) {
    c.write(0, 0, "v" + std::to_string(i));
  }
  c.run();
  const auto seq = applies_at(c.history(), 1);
  ASSERT_EQ(seq.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(seq[i], (WriteId{0, i + 1}));
  }
  EXPECT_EQ(c.site(1).peek(0).data, "v20");
  expect_causal(c);
}

TEST(FullTrackTest, UpdateCountsMatchReplication) {
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::even(5, 5, 3),
               constant_latency(10));
  c.write(0, 0, "a");  // var 0 at {0,1,2}: 2 remote updates
  c.run();
  EXPECT_EQ(c.metrics().update_msgs, 2u);
  EXPECT_EQ(c.pending_updates(), 0u);
}

TEST(FullTrackTest, MetaStateBytesGrowWithWrites) {
  SimCluster c(Algorithm::kFullTrack, ReplicaMap::full(3, 8),
               constant_latency(10));
  const auto before = c.site(0).meta_state_bytes();
  c.write(0, 0, "a");
  c.write(0, 1, "b");
  EXPECT_GT(c.site(0).meta_state_bytes(), before);
  EXPECT_EQ(c.site(0).log_entry_count(), (1u + 2u) * 9u);
  c.run();
}

}  // namespace
}  // namespace ccpr::causal
