// Unit + differential tests for the value-store engines.
//
// MapEngine is the oracle: CompactEngine must be observationally identical
// under any sequence of put/get/snapshot(for_each)/restart(serialize+
// restore)/maintain, including with the cold-value spill active.
#include "store/engine/value_engine.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "causal/value_codec.hpp"
#include "store/engine/compact_engine.hpp"
#include "store/engine/map_engine.hpp"
#include "util/rng.hpp"

namespace ccpr::store {
namespace {

namespace fs = std::filesystem;
using causal::Value;
using causal::VarId;
using causal::WriteId;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("ccpr_engine_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

Value make_value(std::uint32_t writer, std::uint64_t seq,
                 std::uint64_t lamport, std::string data) {
  Value v;
  v.id = WriteId{writer, seq};
  v.lamport = lamport;
  v.data = std::move(data);
  return v;
}

EngineOptions compact_opts() {
  EngineOptions o;
  o.kind = EngineKind::kCompact;
  o.shards = 4;
  o.inline_max = 64;
  return o;
}

TEST(EngineKindTest, TokensRoundTrip) {
  for (const EngineKind k : {EngineKind::kMap, EngineKind::kCompact}) {
    EngineKind parsed;
    ASSERT_TRUE(parse_engine_kind(engine_kind_token(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  EngineKind parsed;
  EXPECT_FALSE(parse_engine_kind("rocksdb", &parsed));
}

TEST(CompactEngineTest, PutFindOverwrite) {
  CompactEngine e(compact_opts());
  EXPECT_EQ(e.find(7), nullptr);
  e.put(7, make_value(1, 1, 10, "hello"));
  const Value* v = e.find(7);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->data, "hello");
  EXPECT_EQ(v->id.writer, 1u);
  EXPECT_EQ(v->id.seq, 1u);
  EXPECT_EQ(v->lamport, 10u);
  e.put(7, make_value(2, 5, 20, "world"));
  v = e.find(7);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->data, "world");
  EXPECT_EQ(e.size(), 1u);
}

TEST(CompactEngineTest, InitialWriterIdSurvives) {
  // kNoSite (the initial/unwritten writer id) must round-trip through the
  // varint writer+1 encoding.
  CompactEngine e(compact_opts());
  e.put(3, make_value(causal::kNoSite, 0, 0, ""));
  const Value* v = e.find(3);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->id.writer, causal::kNoSite);
}

TEST(CompactEngineTest, LargeValuesGoOutOfLine) {
  CompactEngine e(compact_opts());
  const std::string big(4096, 'x');
  e.put(1, make_value(0, 1, 1, big));
  e.put(2, make_value(0, 2, 2, "small"));
  const Value* v1 = e.find(1);
  const Value* v2 = e.find(2);
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);
  // Out-of-line values have stable addresses: v1 must still be intact
  // after the (scratch-materialized) small read.
  EXPECT_EQ(v1->data, big);
  EXPECT_EQ(v2->data, "small");
}

TEST(CompactEngineTest, GrowsPastInitialCapacityAndCountsProbes) {
  CompactEngine e(compact_opts());
  constexpr std::uint32_t kN = 100000;
  for (VarId x = 0; x < kN; ++x) {
    e.put(x, make_value(0, x + 1, x + 1, "v" + std::to_string(x)));
  }
  EXPECT_EQ(e.size(), kN);
  for (VarId x = 0; x < kN; x += 97) {
    const Value* v = e.find(x);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->data, "v" + std::to_string(x));
  }
  const EngineStats st = e.stats();
  EXPECT_EQ(st.keys, kN);
  EXPECT_GT(st.lookups, 0u);
  // Load is capped at 70%, so linear probing stays short on average.
  EXPECT_LT(st.mean_probe_length(), 3.0);
  EXPECT_GT(st.resident_bytes, 0u);
}

TEST(CompactEngineTest, OverwriteChurnTriggersCompaction) {
  CompactEngine e(compact_opts());
  const std::string payload(60, 'p');
  for (int round = 0; round < 50; ++round) {
    for (VarId x = 0; x < 2000; ++x) {
      e.put(x, make_value(0, static_cast<std::uint64_t>(round) + 1, 1,
                          payload));
    }
    e.maintain();
  }
  const EngineStats st = e.stats();
  EXPECT_GT(st.compactions, 0u);
  // ~2000 live records of <100 bytes: dead space must not accumulate
  // without bound.
  EXPECT_LT(st.resident_bytes, 4u << 20);
  for (VarId x = 0; x < 2000; x += 131) {
    const Value* v = e.find(x);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->data, payload);
  }
}

TEST(CompactEngineTest, SpillsColdValuesAndPromotesOnRead) {
  TempDir dir;
  EngineOptions o = compact_opts();
  o.spill_budget_bytes = 1;  // force everything cold
  o.spill_dir = dir.str();
  CompactEngine e(o);
  const std::string payload(50, 's');
  for (VarId x = 0; x < 500; ++x) {
    e.put(x, make_value(0, x + 1, x + 1, payload));
  }
  // First maintain clears referenced bits, second spills.
  e.maintain();
  e.maintain();
  EngineStats st = e.stats();
  EXPECT_GT(st.spilled_keys, 0u);
  EXPECT_GT(st.spill_writes, 0u);
  EXPECT_GT(st.spill_segment_bytes, 0u);
  const std::uint64_t spilled_before = st.spilled_keys;
  // Every value still reads back correctly (promote-on-read).
  for (VarId x = 0; x < 500; ++x) {
    const Value* v = e.find(x);
    ASSERT_NE(v, nullptr) << "var " << x;
    EXPECT_EQ(v->data, payload);
    EXPECT_EQ(v->id.seq, x + 1);
  }
  st = e.stats();
  EXPECT_GT(st.spill_reads, 0u);
  EXPECT_LT(st.spilled_keys, spilled_before);
}

TEST(CompactEngineTest, CheckpointRotatesSpillSegment) {
  TempDir dir;
  EngineOptions o = compact_opts();
  o.spill_budget_bytes = 1;
  o.spill_dir = dir.str();
  CompactEngine e(o);
  for (VarId x = 0; x < 300; ++x) {
    e.put(x, make_value(0, x + 1, 1, std::string(40, 'a')));
  }
  e.maintain();
  e.maintain();
  // Touch half the keys so their spill bytes die (promote-on-read)...
  for (VarId x = 0; x < 150; ++x) (void)e.find(x);
  const std::uint64_t seg_before = e.stats().spill_segment_bytes;
  // ...then a checkpoint compacts the segment into a new generation file.
  e.on_checkpoint(42);
  const EngineStats st = e.stats();
  EXPECT_LT(st.spill_segment_bytes, seg_before);
  bool found_gen_file = false;
  for (const auto& entry : fs::directory_iterator(dir.str())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("spill-g42-", 0) == 0) found_gen_file = true;
  }
  EXPECT_TRUE(found_gen_file);
  // Values remain readable after rotation.
  for (VarId x = 0; x < 300; ++x) {
    const Value* v = e.find(x);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->id.seq, x + 1);
  }
}

TEST(CompactEngineTest, ConstructorDeletesStaleSegments) {
  TempDir dir;
  {
    std::ofstream((fs::path(dir.str()) / "spill-g1-0.seg").string())
        << "stale";
  }
  EngineOptions o = compact_opts();
  o.spill_budget_bytes = 1;
  o.spill_dir = dir.str();
  CompactEngine e(o);
  EXPECT_FALSE(fs::exists(fs::path(dir.str()) / "spill-g1-0.seg"));
}

TEST(CompactEngineTest, ClearResetsEverything) {
  TempDir dir;
  EngineOptions o = compact_opts();
  o.spill_budget_bytes = 1;
  o.spill_dir = dir.str();
  CompactEngine e(o);
  for (VarId x = 0; x < 200; ++x) {
    e.put(x, make_value(0, x + 1, 1, std::string(30, 'c')));
  }
  e.maintain();
  e.maintain();
  e.clear();
  EXPECT_EQ(e.size(), 0u);
  EXPECT_EQ(e.find(5), nullptr);
  const EngineStats st = e.stats();
  EXPECT_EQ(st.keys, 0u);
  EXPECT_EQ(st.spilled_keys, 0u);
  EXPECT_EQ(st.spill_segment_bytes, 0u);
  e.put(5, make_value(0, 9, 9, "fresh"));
  ASSERT_NE(e.find(5), nullptr);
  EXPECT_EQ(e.find(5)->data, "fresh");
}

// ---------------------------------------------------------------------
// Differential property test: CompactEngine vs the MapEngine oracle.
// ---------------------------------------------------------------------

void expect_same_value(const Value& a, const Value& b, VarId x) {
  EXPECT_EQ(a.id.writer, b.id.writer) << "var " << x;
  EXPECT_EQ(a.id.seq, b.id.seq) << "var " << x;
  EXPECT_EQ(a.lamport, b.lamport) << "var " << x;
  EXPECT_EQ(a.data, b.data) << "var " << x;
}

void expect_same_contents(ValueEngine& oracle, ValueEngine& subject) {
  std::map<VarId, Value> a, b;
  oracle.for_each([&a](VarId x, const Value& v) { a[x] = v; });
  subject.for_each([&b](VarId x, const Value& v) { b[x] = v; });
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [x, v] : a) {
    auto it = b.find(x);
    ASSERT_NE(it, b.end()) << "var " << x << " missing from subject";
    expect_same_value(v, it->second, x);
  }
}

// Serialize through the same codec the WAL checkpoint uses and restore
// into a fresh engine — the engine-level model of a kill+restart.
std::unique_ptr<ValueEngine> restart(ValueEngine& e,
                                     const EngineOptions& opts) {
  net::Encoder enc;
  enc.varint(e.size());
  e.for_each([&enc](VarId x, const Value& v) {
    enc.varint(x);
    causal::encode_value(enc, v);
  });
  auto fresh = make_engine(opts);
  net::Decoder dec(enc.buffer());
  const std::uint64_t n = dec.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto x = static_cast<VarId>(dec.varint());
    fresh->put(x, causal::decode_value(dec));
  }
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.exhausted());
  fresh->maintain();
  return fresh;
}

TEST(EngineDifferentialTest, RandomOpsMatchOracle) {
  TempDir dir;
  EngineOptions mopts;  // oracle
  EngineOptions copts = compact_opts();
  copts.inline_max = 48;
  copts.spill_budget_bytes = 4096;  // tiny: constant spill pressure
  copts.spill_dir = dir.str();

  auto oracle = make_engine(mopts);
  auto subject = make_engine(copts);
  util::Rng rng(0xd1ffe7);
  constexpr VarId kVars = 2048;
  std::uint64_t seq = 0;
  std::uint64_t checkpoint_gen = 0;

  for (int op = 0; op < 30000; ++op) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 45) {  // put
      const auto x = static_cast<VarId>(rng.below(kVars));
      // Mix of sizes: inline, boundary, out-of-line, empty.
      const std::uint64_t len = rng.below(4) == 0 ? rng.below(400)
                                                  : rng.below(60);
      std::string data(len, static_cast<char>('a' + (seq % 26)));
      Value v = make_value(static_cast<std::uint32_t>(rng.below(4)), ++seq,
                           seq, std::move(data));
      oracle->put(x, v);
      subject->put(x, std::move(v));
    } else if (dice < 85) {  // get
      const auto x = static_cast<VarId>(rng.below(kVars));
      const Value* a = oracle->find(x);
      const Value* b = subject->find(x);
      ASSERT_EQ(a == nullptr, b == nullptr) << "op " << op << " var " << x;
      if (a != nullptr) expect_same_value(*a, *b, x);
    } else if (dice < 93) {  // maintain (spill/compaction pressure)
      oracle->maintain();
      subject->maintain();
    } else if (dice < 97) {  // snapshot
      expect_same_contents(*oracle, *subject);
    } else if (dice < 99) {  // checkpoint (spill rotation)
      oracle->on_checkpoint(++checkpoint_gen);
      subject->on_checkpoint(checkpoint_gen);
    } else {  // restart
      oracle = restart(*oracle, mopts);
      subject = restart(*subject, copts);
      expect_same_contents(*oracle, *subject);
    }
  }
  expect_same_contents(*oracle, *subject);
  // The tiny budget must actually have exercised the spill path.
  EXPECT_GT(subject->stats().spill_writes, 0u);
  EXPECT_GT(subject->stats().spill_reads, 0u);
}

TEST(EngineDifferentialTest, RestartPreservesSpilledValues) {
  TempDir dir;
  EngineOptions copts = compact_opts();
  copts.spill_budget_bytes = 1;
  copts.spill_dir = dir.str();
  auto subject = make_engine(copts);
  auto oracle = make_engine(EngineOptions{});
  for (VarId x = 0; x < 400; ++x) {
    Value v = make_value(1, x + 1, x + 1, "payload" + std::to_string(x));
    oracle->put(x, v);
    subject->put(x, std::move(v));
  }
  subject->maintain();
  subject->maintain();
  ASSERT_GT(subject->stats().spilled_keys, 0u);
  // Checkpoint-style serialization must capture spilled values too, so a
  // restart into a fresh engine (with an empty spill dir) loses nothing.
  auto reborn = restart(*subject, copts);
  expect_same_contents(*oracle, *reborn);
}

}  // namespace
}  // namespace ccpr::store
