#include "causal/value_codec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ccpr::causal {
namespace {

TEST(ValueCodecTest, RoundTripOrdinaryValue) {
  Value v{{3, 42}, 99, "hello world"};
  net::Encoder enc;
  encode_value(enc, v);
  net::Decoder dec(enc.buffer());
  const Value out = decode_value(dec);
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(out.id, v.id);
  EXPECT_EQ(out.lamport, 99u);
  EXPECT_EQ(out.data, "hello world");
}

TEST(ValueCodecTest, RoundTripInitialValue) {
  Value v{};  // writer kNoSite, seq 0
  net::Encoder enc;
  encode_value(enc, v);
  net::Decoder dec(enc.buffer());
  const Value out = decode_value(dec);
  EXPECT_TRUE(out.id.is_initial());
  EXPECT_EQ(out.id.writer, kNoSite);
  EXPECT_TRUE(out.data.empty());
}

TEST(ValueCodecTest, WriterZeroIsDistinctFromNoWriter) {
  Value v{{0, 1}, 1, "x"};
  net::Encoder enc;
  encode_value(enc, v);
  net::Decoder dec(enc.buffer());
  const Value out = decode_value(dec);
  EXPECT_EQ(out.id.writer, 0u);
  EXPECT_FALSE(out.id.is_initial());
}

TEST(ValueCodecTest, BinaryPayloadSurvives) {
  std::string blob;
  for (int i = 0; i < 256; ++i) blob.push_back(static_cast<char>(i));
  Value v{{1, 2}, 3, blob};
  net::Encoder enc;
  encode_value(enc, v);
  net::Decoder dec(enc.buffer());
  EXPECT_EQ(decode_value(dec).data, blob);
}

TEST(ValueCodecTest, ControlOverheadIsSmall) {
  Value v{{7, 1000}, 2000, std::string(4096, 'p')};
  net::Encoder enc;
  encode_value(enc, v);
  // identity (<=4B) + lamport (<=2B) + length prefix (2B) + payload.
  EXPECT_LE(enc.size(), 4096u + 10u);
}

TEST(ValueCodecTest, RandomRoundTrips) {
  util::Rng rng(0x5a1e);
  for (int i = 0; i < 500; ++i) {
    Value v;
    v.id.writer = static_cast<SiteId>(rng.below(64));
    v.id.seq = rng.below(1u << 30);
    v.lamport = rng.below(1u << 30);
    v.data.assign(rng.below(64), static_cast<char>('a' + rng.below(26)));
    net::Encoder enc;
    encode_value(enc, v);
    net::Decoder dec(enc.buffer());
    const Value out = decode_value(dec);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(out.id, v.id);
    EXPECT_EQ(out.lamport, v.lamport);
    EXPECT_EQ(out.data, v.data);
  }
}

TEST(ValueCodecTest, TruncationFailsCleanly) {
  Value v{{1, 2}, 3, "payload"};
  net::Encoder enc;
  encode_value(enc, v);
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    net::Decoder dec(enc.buffer().data(), cut);
    (void)decode_value(dec);
    EXPECT_FALSE(dec.ok() && dec.exhausted() && cut < enc.size());
  }
}

}  // namespace
}  // namespace ccpr::causal
