// Durability end-to-end test: forks a 3-site loopback cluster of real
// ccpr_server processes with --data-dir, SIGKILLs one site while writes
// continue at the survivors, restarts it against the same WAL, and then
// proves four things:
//
//   1. restart amnesia is gone — a value written at the site before the
//      kill is readable there after the restart (recovered from the WAL,
//      not re-learned from peers, since the var lives only on disk + the
//      killed site's replica peers);
//   2. the anti-entropy catch-up handshake ran — the restarted site's
//      ccpr_catchup_updates_total metric is > 0;
//   3. the recorded client history passes the offline causal checker;
//   4. all replicas converge once traffic stops (convergent LWW mode).
//
// A second test SIGKILLs a single-site cluster running --wal-sync=batch:
// a process kill must lose nothing even without per-append fsync, because
// the write() syscall reaches the kernel before the client sees the ack.
//
// The server binary path is injected by CMake as CCPR_SERVER_BIN.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/causal_checker.hpp"
#include "checker/convergence.hpp"
#include "checker/recorder.hpp"
#include "client/client.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "server/durability.hpp"
#include "store/engine/value_engine.hpp"
#include "util/rng.hpp"

namespace ccpr {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint16_t> pick_ports(std::size_t n) {
  std::vector<net::Socket> held;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t port = 0;
    held.push_back(net::tcp_listen("127.0.0.1", 0, &port));
    EXPECT_TRUE(held.back().valid());
    ports.push_back(port);
  }
  return ports;
}

/// One forked ccpr_server process, optionally with extra flags
/// (--data-dir, --wal-sync).
class ServerProcess {
 public:
  ServerProcess() = default;
  ~ServerProcess() { terminate(); }

  void spawn(const std::string& config_path, causal::SiteId site,
             const std::vector<std::string>& extra_flags = {}) {
    ASSERT_EQ(pid_, -1);
    std::vector<std::string> argv_strs = {
        CCPR_SERVER_BIN, "--config=" + config_path,
        "--site=" + std::to_string(site)};
    for (const auto& f : extra_flags) argv_strs.push_back(f);
    std::vector<char*> argv;
    for (auto& s : argv_strs) argv.push_back(s.data());
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::execv(CCPR_SERVER_BIN, argv.data());
      ::_exit(127);  // exec failed
    }
    pid_ = pid;
  }

  void kill_hard() {
    if (pid_ < 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  void terminate() {
    if (pid_ < 0) return;
    ::kill(pid_, SIGTERM);
    int status = 0;
    for (int i = 0; i < 500; ++i) {
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return;
      }
      std::this_thread::sleep_for(10ms);
    }
    kill_hard();
  }

  bool running() const { return pid_ >= 0; }

 private:
  pid_t pid_ = -1;
};

/// RAII temp directory for the cluster's --data-dir.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/ccpr_persist_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p) path_ = p;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// `ops` mixed put/get operations from one recorded session at `site`.
/// Sessions touch only vars [0, n_vars); the test reserves vars above
/// that as sentinels no workload session ever overwrites.
void run_session(const server::ClusterConfig& cfg, causal::SiteId site,
                 checker::HistoryRecorder* rec, std::uint64_t seed,
                 std::size_t ops, double write_rate, std::uint32_t n_vars) {
  client::Client::Options copts;
  copts.recorder = rec;
  client::Client cli(cfg, site, copts);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto x = static_cast<causal::VarId>(rng.below(n_vars));
    if (rng.chance(write_rate)) {
      cli.put(x, "s" + std::to_string(site) + "-" + std::to_string(i));
    } else {
      (void)cli.get(x);
    }
  }
}

// The whole durability path must be engine-independent: each test runs
// once per value-store engine. The compact runs use deliberately hostile
// tuning — tiny shards, a 1-byte spill budget (every cold value spills)
// and frequent checkpoints — so kill/restart recovery exercises the WAL
// and the spill segment together.
class TcpPersistenceTest : public ::testing::TestWithParam<store::EngineKind> {
 protected:
  void apply_engine(server::ClusterConfig& cfg) const {
    cfg.protocol.store_engine.kind = GetParam();
    if (GetParam() == store::EngineKind::kCompact) {
      cfg.protocol.store_engine.shards = 2;
      cfg.protocol.store_engine.inline_max = 32;
      cfg.protocol.store_engine.spill_budget_bytes = 1;
      cfg.checkpoint_every = 64;  // frequent spill-segment rotations
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Engines, TcpPersistenceTest,
                         ::testing::Values(store::EngineKind::kMap,
                                           store::EngineKind::kCompact),
                         [](const auto& info) {
                           return std::string(
                               store::engine_kind_token(info.param));
                         });

/// Value of a counter/gauge sample (`name{labels} value`) in Prometheus
/// exposition text, or -1 when absent.
double parse_metric(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  const std::string needle = name + "{";
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (text.compare(pos, needle.size(), needle) == 0) {
      const std::size_t close = text.find("} ", pos);
      if (close != std::string::npos && close < eol) {
        return std::stod(text.substr(close + 2, eol - close - 2));
      }
    }
    pos = eol + 1;
  }
  return -1.0;
}

TEST_P(TcpPersistenceTest, KillRestartCatchesUpAndConverges) {
  const auto ports = pick_ports(6);
  // 13 vars, but workload sessions write only vars [0, 12): var 12 is a
  // sentinel reserved for the pre-kill durability probe, placed at the
  // to-be-killed site (and one peer) by an explicit override.
  auto cfg = server::ClusterConfig::loopback(3, 13, 2, 0);
  const std::uint32_t kWorkloadVars = 12;
  const causal::VarId kSentinelVar = 12;
  cfg.placement_overrides.emplace_back(kSentinelVar,
                                       std::vector<causal::SiteId>{2, 0});
  for (std::uint32_t s = 0; s < 3; ++s) {
    cfg.sites[s].peer_port = ports[s];
    cfg.sites[s].client_port = ports[3 + s];
  }
  cfg.algorithm = causal::Algorithm::kOptTrack;
  cfg.protocol.fetch_timeout_us = 150000;
  // Convergent LWW mode so the end-of-test convergence audit can demand
  // full replica agreement, not just causal legality.
  cfg.protocol.convergent = true;
  // Tight catch-up cadence so the restarted site recovers within the
  // startup gate rather than on the background tick.
  cfg.catchup_interval_ms = 100;
  // Small per-peer queues: the burst of writes issued while site 2 is down
  // overflows the survivors' outbound queues toward it (drop-oldest), so
  // the reconnect cannot replay everything from the queue — the WAL-backed
  // catch-up retention is the only recovery path for the dropped prefix,
  // making the ccpr_catchup_updates_total assertion below deterministic
  // instead of a race between queue drain and the catch-up response.
  // Client-paced live traffic keeps queue depth near 1, so the cap never
  // binds while all sites are up.
  cfg.peer_queue_cap = 32;
  apply_engine(cfg);

  char path[] = "/tmp/ccpr_persist_cfg_XXXXXX";
  const int cfd = ::mkstemp(path);
  ASSERT_GE(cfd, 0);
  ::close(cfd);
  {
    std::ofstream out(path);
    out << cfg.to_text();
  }

  TempDir data_dir;
  const std::vector<std::string> wal_flags = {"--data-dir=" + data_dir.path(),
                                              "--wal-sync=always"};

  ServerProcess servers[3];
  for (causal::SiteId s = 0; s < 3; ++s) {
    servers[s].spawn(path, s, wal_flags);
    ASSERT_TRUE(servers[s].running());
  }

  checker::HistoryRecorder recorder;

  // Phase 1: three concurrent recorded sessions, one per site.
  {
    std::vector<std::thread> sessions;
    for (causal::SiteId s = 0; s < 3; ++s) {
      sessions.emplace_back(
          [&, s] { run_session(cfg, s, &recorder, 100 + s, 40, 0.4, kWorkloadVars); });
    }
    for (auto& t : sessions) t.join();
  }

  // A sentinel written at site 2 right before the kill. With the WAL it
  // must survive the SIGKILL *at site 2 itself*, not merely at the peer
  // replica. The sentinel var is outside the workload range, so no later
  // session can legitimately overwrite it — any other value after the
  // restart means amnesia. Recorded: later recorded sessions may read it,
  // and the checker's read-integrity pass requires every observed write
  // to exist in the history.
  const auto rmap = cfg.replica_map();
  ASSERT_TRUE(rmap.replicated_at(kSentinelVar, 2));
  {
    client::Client::Options copts;
    copts.recorder = &recorder;
    client::Client probe(cfg, 2, copts);
    probe.put(kSentinelVar, "pre-kill-durable");
    ASSERT_EQ(probe.get(kSentinelVar).data, "pre-kill-durable");
  }

  // SIGKILL site 2: no shutdown hooks, no flush beyond what each acked
  // operation already forced through the WAL.
  servers[2].kill_hard();

  // Phase 2: writes continue at the survivors while site 2 is down — a
  // burst heavy enough that each survivor's outbound queue toward site 2
  // overflows past the cap above. These are the updates the catch-up
  // handshake must replay after the restart.
  {
    std::vector<std::thread> sessions;
    for (causal::SiteId s = 0; s < 2; ++s) {
      sessions.emplace_back(
          [&, s] { run_session(cfg, s, &recorder, 200 + s, 80, 0.8, kWorkloadVars); });
    }
    for (auto& t : sessions) t.join();
  }

  // Restart site 2 against the same data dir.
  servers[2].spawn(path, 2, wal_flags);
  ASSERT_TRUE(servers[2].running());

  // 1) Restart amnesia is fixed: the pre-kill sentinel is readable at the
  //    restarted site. Reads are served locally, so this can only succeed
  //    if WAL recovery rebuilt the store.
  {
    client::Client probe(cfg, 2);
    EXPECT_EQ(probe.get(kSentinelVar).data, "pre-kill-durable");

    // 2) The catch-up handshake actually ran and delivered missed updates.
    const auto deadline = std::chrono::steady_clock::now() + 20s;
    double caught_up = 0.0;
    while (true) {
      caught_up = parse_metric(probe.metrics_text(),
                               "ccpr_catchup_updates_total");
      if (caught_up > 0.0) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "restarted site never applied catch-up updates "
             "(ccpr_catchup_updates_total stayed at "
          << caught_up << ")";
      std::this_thread::sleep_for(50ms);
    }
    EXPECT_GT(caught_up, 0.0);
    EXPECT_EQ(parse_metric(probe.metrics_text(), "ccpr_wal_enabled"), 1.0);

    // The kStoreStat admin op reflects the configured engine, and WAL
    // recovery repopulated it. Under the 1-byte spill budget the compact
    // engine must have demoted recovered values to its spill segment.
    const auto st = probe.store_stat();
    EXPECT_EQ(st.kind, GetParam());
    EXPECT_GT(st.keys, 0u);
    if (GetParam() == store::EngineKind::kCompact) {
      EXPECT_GT(st.spill_writes, 0u);
    }
  }

  // Phase 3: all three sites take recorded traffic again — including the
  // restarted one, whose write sequence numbers continue from the WAL
  // instead of colliding with its pre-kill incarnation.
  {
    std::vector<std::thread> sessions;
    for (causal::SiteId s = 0; s < 3; ++s) {
      sessions.emplace_back(
          [&, s] { run_session(cfg, s, &recorder, 300 + s, 20, 0.4, kWorkloadVars); });
    }
    for (auto& t : sessions) t.join();
  }

  // 4) Convergence: after traffic stops, every replica pair must agree.
  // Propagation is asynchronous, so poll the audit until it settles.
  {
    std::vector<std::unique_ptr<client::Client>> peekers;
    for (causal::SiteId s = 0; s < 3; ++s) {
      peekers.push_back(std::make_unique<client::Client>(cfg, s));
    }
    const auto peek = [&](causal::SiteId s, causal::VarId x) {
      return peekers[s]->get(x);
    };
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    checker::ConvergenceReport report;
    while (true) {
      report = checker::audit_convergence(rmap, peek);
      if (report.converged()) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "replicas still divergent on " << report.divergent_vars
          << " vars after quiescence";
      std::this_thread::sleep_for(100ms);
    }
    EXPECT_EQ(report.vars_checked, cfg.vars);
    EXPECT_TRUE(report.converged());
  }

  for (auto& srv : servers) srv.terminate();
  ::unlink(path);

  // 3) Offline causal check over the recorded client history. Applies are
  // not recorded, so delivery completeness is out of scope; read legality
  // and read integrity are fully checked.
  checker::CheckOptions opts;
  opts.require_complete_delivery = false;
  const auto result =
      checker::check_causal_consistency(recorder, rmap, opts);
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
  EXPECT_GT(result.ops_checked, 0u);

  // Bonus: the offline wal-stat path reads the dead cluster's logs.
  std::string text;
  std::string error;
  ASSERT_TRUE(
      server::Durability::describe_wal(data_dir.path(), 2, &text, &error))
      << error;
  EXPECT_NE(text.find("records"), std::string::npos);
}

TEST_P(TcpPersistenceTest, BatchSyncSurvivesSigkill) {
  const auto ports = pick_ports(2);
  auto cfg = server::ClusterConfig::loopback(1, 4, 1, 0);
  cfg.sites[0].peer_port = ports[0];
  cfg.sites[0].client_port = ports[1];
  cfg.algorithm = causal::Algorithm::kOptTrack;
  apply_engine(cfg);

  char path[] = "/tmp/ccpr_persist_cfg_XXXXXX";
  const int cfd = ::mkstemp(path);
  ASSERT_GE(cfd, 0);
  ::close(cfd);
  {
    std::ofstream out(path);
    out << cfg.to_text();
  }

  TempDir data_dir;
  const std::vector<std::string> wal_flags = {"--data-dir=" + data_dir.path(),
                                              "--wal-sync=batch"};

  ServerProcess server;
  server.spawn(path, 0, wal_flags);
  ASSERT_TRUE(server.running());

  {
    client::Client cli(cfg, 0);
    for (int i = 0; i < 25; ++i) {
      cli.put(static_cast<causal::VarId>(i % 4), "v" + std::to_string(i));
    }
  }

  // SIGKILL with --wal-sync=batch: the un-fsynced tail is still in the
  // kernel page cache, and a process kill (unlike power loss) cannot
  // revoke it. Every acked write must come back.
  server.kill_hard();
  server.spawn(path, 0, wal_flags);
  ASSERT_TRUE(server.running());

  {
    client::Client cli(cfg, 0);
    EXPECT_EQ(cli.get(0).data, "v24");
    EXPECT_EQ(cli.get(1).data, "v21");
    EXPECT_EQ(cli.get(2).data, "v22");
    EXPECT_EQ(cli.get(3).data, "v23");
  }

  server.terminate();
  ::unlink(path);
}

}  // namespace
}  // namespace ccpr
