#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ccpr::util {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("a").cell(std::int64_t{1});
  t.row().cell("long-name").cell(std::int64_t{12345});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name      | value"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 12345 |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TableTest, DoubleFormattingRespectsPrecision) {
  Table t({"x"});
  t.row().cell(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table t({"k", "v"});
  t.row().cell("a,b").cell("say \"hi\"");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, CsvPlainValuesUnquoted) {
  Table t({"k"});
  t.row().cell("plain");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "k\nplain\n");
}

TEST(TableTest, RowCountTracksRows) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, FormatDoubleHelper) {
  EXPECT_EQ(format_double(1.5, 1), "1.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.125, 3), "-0.125");
}

}  // namespace
}  // namespace ccpr::util
