// Property-based integration sweep: every algorithm × replication ×
// workload-shape × seed combination runs a generated workload on the
// simulator, and the offline checker machine-verifies causal consistency of
// the full history. This is the load-bearing correctness evidence for the
// reproduction.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr::causal {
namespace {

struct Config {
  Algorithm alg;
  std::uint32_t n;
  std::uint32_t q;
  std::uint32_t p;  // replication factor
  double write_rate;
  workload::WorkloadSpec::KeyDist dist;
  double locality;
  std::uint64_t seed;
  bool lognormal_latency;
  double drop_rate = 0.0;     // >0 stacks the reliable-channel layer
  bool convergent = false;    // causal+ LWW mode
  sim::SimTime fetch_timeout_us = 0;  // §V failover timers armed
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::ostringstream os;
  os << algorithm_name(c.alg) << "_n" << c.n << "_p" << c.p << "_w"
     << static_cast<int>(c.write_rate * 100) << "_"
     << (c.dist == workload::WorkloadSpec::KeyDist::kZipf ? "zipf" : "uni")
     << "_loc" << static_cast<int>(c.locality * 100) << "_s" << c.seed
     << (c.lognormal_latency ? "_lognorm" : "_unif");
  if (c.drop_rate > 0) os << "_lossy";
  if (c.convergent) os << "_conv";
  if (c.fetch_timeout_us > 0) os << "_failover";
  std::string s = os.str();
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

std::vector<Config> make_configs() {
  std::vector<Config> out;
  const auto kZipf = workload::WorkloadSpec::KeyDist::kZipf;
  const auto kUni = workload::WorkloadSpec::KeyDist::kUniform;
  // Partial-replication capable algorithms across p and workload shapes.
  for (const Algorithm alg : {Algorithm::kFullTrack, Algorithm::kOptTrack}) {
    for (const std::uint32_t p : {1u, 2u, 5u}) {
      for (const double w : {0.15, 0.6}) {
        for (const std::uint64_t seed : {11ull, 23ull}) {
          out.push_back({alg, 5, 15, p, w, kUni, 0.0, seed, false});
        }
      }
    }
    out.push_back({alg, 5, 15, 2, 0.3, kZipf, 0.0, 7, true});
    out.push_back({alg, 5, 15, 2, 0.3, kUni, 0.8, 7, false});
    out.push_back({alg, 3, 9, 2, 0.5, kZipf, 0.5, 13, true});
    out.push_back({alg, 8, 24, 3, 0.4, kZipf, 0.3, 17, true});
    // Orthogonal feature axes on a common base config.
    out.push_back({alg, 5, 15, 2, 0.4, kUni, 0.0, 29, false,
                   /*drop=*/0.2});
    out.push_back({alg, 5, 15, 2, 0.4, kUni, 0.0, 29, false, 0.0,
                   /*convergent=*/true});
    out.push_back({alg, 5, 15, 2, 0.4, kUni, 0.0, 29, false, 0.0, false,
                   /*fetch_timeout_us=*/150'000});
    out.push_back({alg, 5, 15, 2, 0.4, kUni, 0.0, 29, false, 0.15, true,
                   150'000});
  }
  // Full-replication-only algorithms.
  for (const Algorithm alg :
       {Algorithm::kOptTrackCRP, Algorithm::kOptP, Algorithm::kAhamad}) {
    for (const double w : {0.15, 0.6}) {
      for (const std::uint64_t seed : {11ull, 23ull}) {
        out.push_back({alg, 5, 15, 5, w, kUni, 0.0, seed, false});
      }
    }
    out.push_back({alg, 4, 8, 4, 0.3, kZipf, 0.0, 7, true});
  }
  return out;
}

class IntegrationSweep : public ::testing::TestWithParam<Config> {};

TEST_P(IntegrationSweep, WorkloadIsCausallyConsistent) {
  const Config& cfg = GetParam();
  const auto rmap = ReplicaMap::even(cfg.n, cfg.q, cfg.p);

  workload::WorkloadSpec spec;
  spec.ops_per_site = 150;
  spec.write_rate = cfg.write_rate;
  spec.dist = cfg.dist;
  spec.locality = cfg.locality;
  spec.value_bytes = 32;
  spec.seed = cfg.seed;
  const Program program = workload::generate_program(spec, rmap);

  SimCluster::Options opts;
  if (cfg.lognormal_latency) {
    opts.latency = std::make_unique<sim::LogNormalLatency>(20'000.0, 0.7);
  } else {
    opts.latency = std::make_unique<sim::UniformLatency>(5'000, 60'000);
  }
  opts.latency_seed = cfg.seed * 31 + 1;
  opts.mean_think_us = 2'000;
  opts.drop_rate = cfg.drop_rate;
  opts.fault_seed = cfg.seed + 5;
  opts.protocol.convergent = cfg.convergent;
  opts.protocol.fetch_timeout_us = cfg.fetch_timeout_us;

  SimCluster cluster(cfg.alg, ReplicaMap::even(cfg.n, cfg.q, cfg.p),
                     std::move(opts));
  cluster.run_program(program);

  // Liveness: nothing stuck, nothing in flight.
  EXPECT_EQ(cluster.pending_updates(), 0u);

  // Operation accounting matches the program.
  std::uint64_t expect_writes = 0, expect_reads = 0, expect_updates = 0,
                expect_remote = 0;
  for (SiteId s = 0; s < cfg.n; ++s) {
    for (const Operation& op : program[s]) {
      if (op.kind == Operation::Kind::kWrite) {
        ++expect_writes;
        auto reps = rmap.replicas(op.var);
        expect_updates += reps.size();
        if (rmap.replicated_at(op.var, s)) --expect_updates;
      } else {
        ++expect_reads;
        if (!rmap.replicated_at(op.var, s)) ++expect_remote;
      }
    }
  }
  const auto m = cluster.metrics();
  EXPECT_EQ(m.writes, expect_writes);
  EXPECT_EQ(m.reads, expect_reads);
  EXPECT_EQ(m.remote_reads, expect_remote);
  if (cfg.drop_rate == 0.0 && cfg.fetch_timeout_us == 0) {
    // Exact transport accounting only holds without retransmissions,
    // acks, or failover probes.
    EXPECT_EQ(m.update_msgs, expect_updates);
    EXPECT_EQ(m.fetch_req_msgs, expect_remote);
    EXPECT_EQ(m.fetch_resp_msgs, expect_remote);
  } else {
    EXPECT_GE(m.update_msgs, expect_updates);
    EXPECT_GE(m.fetch_req_msgs, expect_remote);
  }

  // The core property: the recorded history is causal memory.
  ccpr::testing::expect_causal(cluster);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, IntegrationSweep,
                         ::testing::ValuesIn(make_configs()), config_name);

}  // namespace
}  // namespace ccpr::causal
