// One geo config file drives every runtime: examples/geo_3x3.conf (path
// baked in as CCPR_GEO_CONF) is loaded unchanged to (a) build the sim
// runtime's latency model and placement, (b) boot a full in-process TCP
// cluster whose status and Prometheus output carry region labels, and
// (c) verify proximity-aware fetch routing on the exact replica map the
// servers use.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "causal/sim_cluster.hpp"
#include "checker/causal_checker.hpp"
#include "client/client.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "server/site_server.hpp"
#include "store/placement.hpp"
#include "workload/workload.hpp"

namespace ccpr {
namespace {

server::ClusterConfig load_geo_conf() {
  std::string error;
  const auto cfg = server::ClusterConfig::load(CCPR_GEO_CONF, &error);
  EXPECT_TRUE(cfg.has_value()) << error;
  return cfg.value();
}

TEST(GeoClusterTest, ExampleConfResolves) {
  const auto cfg = load_geo_conf();
  EXPECT_EQ(cfg.placement, server::PlacementPolicy::kRegion);
  EXPECT_EQ(cfg.site_count(), 9u);
  EXPECT_EQ(cfg.vars, 18u);
  EXPECT_EQ(cfg.replicas_per_var, 3u);
  const auto& topo = cfg.topology;
  ASSERT_EQ(topo.region_count(), 3u);
  EXPECT_EQ(topo.region_names, (std::vector<std::string>{"eu", "us", "ap"}));
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(topo.sites_in_region(r).size(), 3u);
  }
  EXPECT_EQ(topo.link_us(0, 1), 40'000u);
  EXPECT_EQ(topo.link_us(0, 2), 90'000u);
  EXPECT_EQ(topo.link_us(1, 2), 70'000u);
}

TEST(GeoClusterTest, RegionPlacementKeepsReplicasHomeAndMatchesStore) {
  const auto cfg = load_geo_conf();
  const auto rmap = cfg.replica_map();
  const auto direct = store::region_placement(
      cfg.topology.region_of_site, cfg.topology.home_region_of_var(cfg.vars),
      cfg.replicas_per_var);
  for (causal::VarId x = 0; x < cfg.vars; ++x) {
    const auto reps = rmap.replicas(x);
    ASSERT_EQ(reps.size(), 3u);
    // 3 replicas fit the 3-site home region exactly: no spill.
    const auto home = cfg.topology.region_of(x % 9);
    for (const auto s : reps) EXPECT_EQ(cfg.topology.region_of(s), home);
    const auto want = direct.replicas(x);
    ASSERT_EQ(reps.size(), want.size());
    for (std::size_t i = 0; i < reps.size(); ++i) {
      EXPECT_EQ(reps[i], want[i]);
    }
  }
}

TEST(GeoClusterTest, FetchRoutingIntraVsCrossRegion) {
  const auto cfg = load_geo_conf();
  const auto rmap = cfg.replica_map();
  ASSERT_TRUE(rmap.has_site_distances());
  for (causal::VarId x = 0; x < cfg.vars; ++x) {
    const auto home = cfg.topology.region_of(x % 9);
    for (causal::SiteId reader = 0; reader < 9; ++reader) {
      const auto target = rmap.fetch_target(x, reader);
      EXPECT_TRUE(rmap.replicated_at(x, target));
      if (cfg.topology.region_of(reader) == home) {
        // Co-located reader: never routed cross-region.
        EXPECT_EQ(cfg.topology.region_of(target), home)
            << "var " << x << " reader " << reader;
      } else {
        // No replica in the reader's region: the fetch must cross into the
        // home region, and ranked fallback still reaches every replica.
        EXPECT_NE(cfg.topology.region_of(target),
                  cfg.topology.region_of(reader));
        std::set<causal::SiteId> seen;
        for (std::uint32_t rank = 0; rank < 3; ++rank) {
          seen.insert(rmap.fetch_target_ranked(x, reader, rank));
        }
        EXPECT_EQ(seen.size(), 3u);
      }
    }
  }
}

TEST(GeoClusterTest, OneConfigDrivesSimRuntime) {
  const auto cfg = load_geo_conf();
  workload::WorkloadSpec spec;
  spec.ops_per_site = 120;
  spec.write_rate = 0.4;
  spec.seed = 11;
  const auto program = workload::generate_program(spec, cfg.replica_map());

  causal::SimCluster::Options opts;
  opts.latency = cfg.topology.make_latency(0.1);
  opts.protocol = cfg.protocol;
  causal::SimCluster cluster(cfg.algorithm, cfg.replica_map(),
                             std::move(opts));
  cluster.run_program(program);

  const auto m = cluster.metrics();
  EXPECT_GT(m.writes, 0u);
  EXPECT_GT(m.remote_reads, 0u);  // partial replication forces fetches
  const auto result = checker::check_causal_consistency(cluster.history(),
                                                        cfg.replica_map());
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
}

std::vector<std::uint16_t> pick_ports(std::size_t n) {
  std::vector<net::Socket> held;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t port = 0;
    held.push_back(net::tcp_listen("127.0.0.1", 0, &port));
    EXPECT_TRUE(held.back().valid());
    ports.push_back(port);
  }
  return ports;
}

TEST(GeoClusterTest, TcpClusterReportsRegionsInStatusAndMetrics) {
  auto cfg = load_geo_conf();
  // The example's fixed ports are for humans; tests take kernel-assigned
  // ones so parallel ctest runs cannot collide.
  const auto ports = pick_ports(2 * cfg.site_count());
  for (std::uint32_t s = 0; s < cfg.site_count(); ++s) {
    cfg.sites[s].peer_port = ports[s];
    cfg.sites[s].client_port = ports[cfg.site_count() + s];
  }

  std::vector<std::unique_ptr<server::SiteServer>> servers;
  for (causal::SiteId s = 0; s < cfg.site_count(); ++s) {
    servers.push_back(std::make_unique<server::SiteServer>(cfg, s));
    ASSERT_TRUE(servers.back()->start()) << "site " << s << " failed to bind";
  }

  // Nearest-site selection: lowest-id site of the named region.
  EXPECT_EQ(client::Client::nearest_site(cfg, "eu"), 0u);
  EXPECT_EQ(client::Client::nearest_site(cfg, "ap"), 6u);
  EXPECT_THROW((void)client::Client::nearest_site(cfg, "mars"),
               std::runtime_error);

  {
    client::Client cli(cfg, client::Client::nearest_site(cfg, "eu"));
    // Var 0's home region is eu (site 0 anchors it): a co-located session
    // writes and reads it without leaving the region.
    cli.put(0, "bonjour");
    EXPECT_EQ(cli.get(0).data, "bonjour");

    auto st = cli.status();
    EXPECT_EQ(st.site, 0u);
    EXPECT_EQ(st.region, "eu");
    ASSERT_EQ(st.region_peers.size(), 3u);
    EXPECT_EQ(st.region_peers[0].region, "eu");
    EXPECT_EQ(st.region_peers[0].peers, 2u);  // self is not a peer
    EXPECT_EQ(st.region_peers[1].region, "us");
    EXPECT_EQ(st.region_peers[1].peers, 3u);
    EXPECT_EQ(st.region_peers[2].region, "ap");
    EXPECT_EQ(st.region_peers[2].peers, 3u);
    // The put propagated to the other eu replicas, so this site dials its
    // intra-region peers; the sender threads connect asynchronously.
    for (int i = 0; i < 250 && st.region_peers[0].connected < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      st = cli.status();
    }
    EXPECT_EQ(st.region_peers[0].connected, 2u);

    const auto text = cli.metrics_text();
    EXPECT_NE(text.find("ccpr_site_region{site=\"0\",region=\"eu\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("peer=\"1\",region=\"eu\""), std::string::npos);
    EXPECT_NE(text.find("peer=\"3\",region=\"us\""), std::string::npos);
    EXPECT_NE(text.find("peer=\"8\",region=\"ap\""), std::string::npos);
    EXPECT_NE(text.find("ccpr_peer_connected"), std::string::npos);
  }
  {
    // A session in another region still reads var 0 via RemoteFetch.
    client::Client cli(cfg, client::Client::nearest_site(cfg, "us"));
    EXPECT_EQ(cli.get(0).data, "bonjour");
    const auto st = cli.status();
    EXPECT_EQ(st.region, "us");
  }

  for (auto& srv : servers) srv->stop();
}

}  // namespace
}  // namespace ccpr
