// net/socket helper tests: option setters, the audited accept()
// classification (including fd exhaustion via RLIMIT_NOFILE), and the
// EINTR/partial-write behaviour of write_all / write_all_vec.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace ccpr {
namespace {

bool fd_nonblocking(int fd) {
  return (fcntl(fd, F_GETFL, 0) & O_NONBLOCK) != 0;
}

bool fd_nodelay(int fd) {
  int val = 0;
  socklen_t len = sizeof val;
  return getsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &val, &len) == 0 &&
         val != 0;
}

TEST(SocketTest, SetNonblockingtogglesBothWays) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::Socket a(sv[0]);
  net::Socket b(sv[1]);
  EXPECT_FALSE(fd_nonblocking(a.fd()));
  EXPECT_TRUE(net::set_nonblocking(a.fd()));
  EXPECT_TRUE(fd_nonblocking(a.fd()));
  // Idempotent: setting again must not flip anything off.
  EXPECT_TRUE(net::set_nonblocking(a.fd()));
  EXPECT_TRUE(fd_nonblocking(a.fd()));
  EXPECT_TRUE(net::set_nonblocking(a.fd(), false));
  EXPECT_FALSE(fd_nonblocking(a.fd()));
  // Bad fd reports failure instead of pretending.
  EXPECT_FALSE(net::set_nonblocking(-1));
}

TEST(SocketTest, ListenSetsReuseaddrAndDialAcceptSetNodelay) {
  std::uint16_t port = 0;
  net::Socket listener = net::tcp_listen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listener.valid());
  ASSERT_NE(port, 0);
  int reuse = 0;
  socklen_t len = sizeof reuse;
  ASSERT_EQ(getsockopt(listener.fd(), SOL_SOCKET, SO_REUSEADDR, &reuse, &len),
            0);
  EXPECT_NE(reuse, 0) << "tcp_listen must set SO_REUSEADDR";

  net::Socket client = net::tcp_dial("127.0.0.1", port);
  ASSERT_TRUE(client.valid());
  EXPECT_TRUE(fd_nodelay(client.fd())) << "tcp_dial must set TCP_NODELAY";

  net::Socket accepted;
  ASSERT_EQ(net::tcp_accept(listener.fd(), &accepted),
            net::AcceptResult::kOk);
  ASSERT_TRUE(accepted.valid());
  EXPECT_TRUE(fd_nodelay(accepted.fd()))
      << "tcp_accept must set TCP_NODELAY";
}

TEST(SocketTest, AcceptOnEmptyNonblockingListenerWouldBlock) {
  std::uint16_t port = 0;
  net::Socket listener = net::tcp_listen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listener.valid());
  ASSERT_TRUE(net::set_nonblocking(listener.fd()));
  net::Socket out;
  EXPECT_EQ(net::tcp_accept(listener.fd(), &out),
            net::AcceptResult::kWouldBlock);
  EXPECT_FALSE(out.valid());
}

TEST(SocketTest, AcceptOnBadFdIsFatal) {
  net::Socket out;
  EXPECT_EQ(net::tcp_accept(-1, &out), net::AcceptResult::kFatal);
  // A plain file is not a listener either (EINVAL/ENOTSOCK -> fatal).
  EXPECT_EQ(net::tcp_accept(STDIN_FILENO, &out), net::AcceptResult::kFatal);
}

TEST(SocketTest, AcceptClassifiesFdExhaustion) {
  std::uint16_t port = 0;
  net::Socket listener = net::tcp_listen("127.0.0.1", 0, &port);
  ASSERT_TRUE(listener.valid());
  ASSERT_TRUE(net::set_nonblocking(listener.fd()));
  // Park one connection in the accept queue, then clamp RLIMIT_NOFILE to
  // the highest fd currently open so the accept() itself cannot allocate.
  net::Socket client = net::tcp_dial("127.0.0.1", port);
  ASSERT_TRUE(client.valid());

  struct rlimit old_lim;
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &old_lim), 0);
  int probe = dup(0);  // first free fd number
  ASSERT_GE(probe, 0);
  ::close(probe);
  struct rlimit tight = old_lim;
  tight.rlim_cur = static_cast<rlim_t>(probe);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);

  net::Socket out;
  const auto r = net::tcp_accept(listener.fd(), &out);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &old_lim), 0);
  EXPECT_EQ(r, net::AcceptResult::kFdExhausted);
  EXPECT_FALSE(out.valid());

  // Once the limit is restored, the parked connection is still there and
  // accept succeeds — exhaustion never loses the connection.
  EXPECT_EQ(net::tcp_accept(listener.fd(), &out), net::AcceptResult::kOk);
  EXPECT_TRUE(out.valid());
}

TEST(SocketTest, WriteAllSurvivesPartialWrites) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::Socket w(sv[0]);
  net::Socket r(sv[1]);
  // Shrink both buffers so a large write must be split into many partial
  // writes interleaved with the reader draining.
  int small = 4096;
  setsockopt(w.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  setsockopt(r.fd(), SOL_SOCKET, SO_RCVBUF, &small, sizeof small);

  const std::size_t total = 1 << 20;
  std::vector<std::uint8_t> payload(total);
  for (std::size_t i = 0; i < total; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  std::vector<std::uint8_t> got(total);
  std::thread reader(
      [&] { ASSERT_TRUE(net::read_all(r.fd(), got.data(), got.size())); });
  EXPECT_TRUE(net::write_all(w.fd(), payload.data(), payload.size()));
  reader.join();
  EXPECT_EQ(got, payload);
}

TEST(SocketTest, WriteAllVecCoalescesManySpans) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::Socket w(sv[0]);
  net::Socket r(sv[1]);
  int small = 4096;
  setsockopt(w.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof small);

  // More spans than IOV_MAX, with mixed sizes including empty ones, so the
  // chunking + partial-write resume paths are both exercised.
  std::vector<std::vector<std::uint8_t>> chunks;
  std::vector<net::WriteSpan> spans;
  std::size_t total = 0;
  for (std::size_t i = 0; i < 3000; ++i) {
    chunks.emplace_back(i % 7 == 0 ? 0 : (i % 97) + 1,
                        static_cast<std::uint8_t>(i));
    total += chunks.back().size();
  }
  spans.reserve(chunks.size());
  for (const auto& c : chunks) spans.push_back({c.data(), c.size()});

  std::vector<std::uint8_t> got(total);
  std::thread reader(
      [&] { ASSERT_TRUE(net::read_all(r.fd(), got.data(), got.size())); });
  EXPECT_TRUE(net::write_all_vec(w.fd(), spans.data(), spans.size()));
  reader.join();

  std::vector<std::uint8_t> want;
  want.reserve(total);
  for (const auto& c : chunks) want.insert(want.end(), c.begin(), c.end());
  EXPECT_EQ(got, want);
}

TEST(SocketTest, WriteAllFailsOnClosedPeer) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::Socket w(sv[0]);
  { net::Socket r(sv[1]); }  // close the read side
  // socket.cpp only installs its SIGPIPE ignore on the listen/dial paths;
  // this test writes to a raw socketpair, so ignore it explicitly.
  std::signal(SIGPIPE, SIG_IGN);
  std::vector<std::uint8_t> payload(1 << 16, 0xab);
  EXPECT_FALSE(net::write_all(w.fd(), payload.data(), payload.size()));
}

}  // namespace
}  // namespace ccpr
