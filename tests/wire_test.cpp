#include "net/wire.hpp"

#include <gtest/gtest.h>

#include "net/message.hpp"

#include <limits>

namespace ccpr::net {
namespace {

TEST(WireTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.u8(0xab);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.u8(), 0xab);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.exhausted());
}

TEST(WireTest, VarintRoundTripEdgeValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xffffffffULL,
                                  std::numeric_limits<std::uint64_t>::max()};
  Encoder enc;
  for (const auto v : values) enc.varint(v);
  Decoder dec(enc.buffer());
  for (const auto v : values) EXPECT_EQ(dec.varint(), v);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.exhausted());
}

TEST(WireTest, VarintSizeIsCompact) {
  Encoder a;
  a.varint(5);
  EXPECT_EQ(a.size(), 1u);
  Encoder b;
  b.varint(300);
  EXPECT_EQ(b.size(), 2u);
}

TEST(WireTest, BytesRoundTrip) {
  Encoder enc;
  enc.bytes("hello");
  enc.bytes("");
  enc.bytes(std::string(1000, 'x'));
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.bytes(), "hello");
  EXPECT_EQ(dec.bytes(), "");
  EXPECT_EQ(dec.bytes(), std::string(1000, 'x'));
  EXPECT_TRUE(dec.ok());
}

TEST(WireTest, BytesWithEmbeddedNul) {
  Encoder enc;
  std::string s = "a";
  s.push_back('\0');
  s += "b";
  enc.bytes(s);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.bytes(), s);
}

TEST(WireTest, TruncatedFixedReadSetsError) {
  Encoder enc;
  enc.u8(1);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.u32(), 0u);
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, TruncatedVarintSetsError) {
  const std::uint8_t bad[] = {0x80, 0x80};  // continuation bits, no terminator
  Decoder dec(bad, sizeof bad);
  dec.varint();
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, OverlongVarintSetsError) {
  std::vector<std::uint8_t> bad(11, 0x80);
  Decoder dec(bad.data(), bad.size());
  dec.varint();
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, BytesLengthBeyondBufferSetsError) {
  Encoder enc;
  enc.varint(1000);  // claims 1000 bytes follow
  enc.u8('x');
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.bytes(), "");
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, ErrorIsSticky) {
  Encoder enc;
  enc.u8(1);
  Decoder dec(enc.buffer());
  dec.u64();  // fails
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.u8(), 0);  // still fails even though a byte exists
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, RawAppendAndRemaining) {
  Encoder enc;
  const char data[] = {1, 2, 3};
  enc.raw(data, 3);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.remaining(), 3u);
  dec.u8();
  EXPECT_EQ(dec.remaining(), 2u);
}

TEST(WireTest, TakeMovesBuffer) {
  Encoder enc;
  enc.u32(7);
  auto buf = enc.take();
  EXPECT_EQ(buf.size(), 4u);
}

TEST(WireTest, ReserveConstructor) {
  Encoder enc(128);
  EXPECT_EQ(enc.size(), 0u);
  enc.u8(1);
  EXPECT_EQ(enc.size(), 1u);
}

TEST(WireTest, MessageControlBytesSplit) {
  Message msg;
  msg.body = {1, 2, 3, 4, 5};
  msg.payload_bytes = 2;
  EXPECT_EQ(msg.control_bytes(), 3u);
  msg.payload_bytes = 5;
  EXPECT_EQ(msg.control_bytes(), 0u);
}

TEST(WireTest, MessageControlBytesGuardsUnderflow) {
  // payload_bytes > body.size() is a construction bug; regression for the
  // unguarded `body.size() - payload_bytes`, which underflowed to ~2^64 and
  // poisoned the byte metrics. Debug builds assert; release builds clamp.
  Message msg;
  msg.body = {1, 2, 3};
  msg.payload_bytes = 7;
#ifdef NDEBUG
  EXPECT_EQ(msg.control_bytes(), 0u);
#else
  EXPECT_DEATH((void)msg.control_bytes(), "payload_bytes");
#endif
}

}  // namespace
}  // namespace ccpr::net
