// WAL crash-recovery tests: append/reopen fidelity, torn-tail truncation,
// CRC corruption containment, checkpoint rotation and offline inspection.
#include "server/wal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace ccpr::server {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ccpr_wal_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::unique_ptr<Wal> open(causal::SiteId site, Wal::OpenResult* out,
                            Wal::Sync sync = Wal::Sync::kAlways) {
    Wal::Options opts;
    opts.dir = dir_;
    opts.site = site;
    opts.sync = sync;
    std::string err;
    auto wal = Wal::open(opts, out, &err);
    EXPECT_NE(wal, nullptr) << err;
    return wal;
  }

  std::string wal_file(causal::SiteId site) {
    Wal::InspectResult info;
    std::string err;
    EXPECT_TRUE(Wal::inspect(dir_, site, &info, &err)) << err;
    return info.file;
  }

  std::string dir_;
};

TEST_F(WalTest, Crc32KnownVector) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(wal_crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(wal_crc32(""), 0x00000000u);
}

TEST_F(WalTest, AppendThenRecover) {
  {
    Wal::OpenResult r;
    auto wal = open(0, &r);
    EXPECT_TRUE(r.created);
    EXPECT_TRUE(r.records.empty());
    EXPECT_TRUE(wal->append(Wal::kEpoch, "epoch-payload"));
    EXPECT_TRUE(wal->append(Wal::kLocalWrite, "write-1"));
    EXPECT_TRUE(wal->append(Wal::kPeerUpdate, std::string("bin\0ary", 7)));
    EXPECT_EQ(wal->stats().records_appended, 3u);
  }
  Wal::OpenResult r;
  auto wal = open(0, &r);
  EXPECT_FALSE(r.created);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].type, Wal::kEpoch);
  EXPECT_EQ(r.records[0].payload, "epoch-payload");
  EXPECT_EQ(r.records[1].type, Wal::kLocalWrite);
  EXPECT_EQ(r.records[1].payload, "write-1");
  EXPECT_EQ(r.records[2].payload, std::string("bin\0ary", 7));
  EXPECT_EQ(wal->stats().recovered_records, 3u);
  // Appending after recovery continues the same file.
  EXPECT_TRUE(wal->append(Wal::kLocalWrite, "write-2"));
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  {
    Wal::OpenResult r;
    auto wal = open(1, &r);
    wal->append(Wal::kEpoch, "e");
    wal->append(Wal::kLocalWrite, "kept");
    wal->append(Wal::kLocalWrite, "torn-away");
  }
  // Simulate a crash mid-append: chop the last record's frame in half.
  const std::string file = wal_file(1);
  const auto full = fs::file_size(file);
  fs::resize_file(file, full - 5);

  Wal::OpenResult r;
  auto wal = open(1, &r);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1].payload, "kept");
  EXPECT_GT(wal->stats().truncated_bytes, 0u);
  // The torn bytes are gone from disk too: a subsequent append must not
  // resurrect half a frame in front of it.
  wal->append(Wal::kLocalWrite, "after-recovery");
  Wal::OpenResult r2;
  wal.reset();
  auto wal2 = open(1, &r2);
  ASSERT_EQ(r2.records.size(), 3u);
  EXPECT_EQ(r2.records[2].payload, "after-recovery");
}

TEST_F(WalTest, CorruptCrcTruncatesFromBadFrame) {
  {
    Wal::OpenResult r;
    auto wal = open(2, &r);
    wal->append(Wal::kEpoch, "e");
    wal->append(Wal::kLocalWrite, "good");
    wal->append(Wal::kLocalWrite, "will-be-corrupted");
    wal->append(Wal::kLocalWrite, "after-corruption");
  }
  // Flip one payload byte of the third record; it and everything after it
  // must be discarded (the suffix is not trustworthy once framing breaks).
  const std::string file = wal_file(2);
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  const std::string needle = "will-be-corrupted";
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  const auto pos = contents.find(needle);
  ASSERT_NE(pos, std::string::npos);
  f.clear();
  f.seekp(static_cast<std::streamoff>(pos));
  f.put('X');
  f.close();

  Wal::OpenResult r;
  auto wal = open(2, &r);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1].payload, "good");
  EXPECT_GT(wal->stats().truncated_bytes, 0u);
}

TEST_F(WalTest, CheckpointRotatesAndBoundsReplay) {
  {
    Wal::OpenResult r;
    auto wal = open(3, &r);
    wal->append(Wal::kEpoch, "e");
    for (int i = 0; i < 10; ++i) wal->append(Wal::kLocalWrite, "old");
    EXPECT_TRUE(wal->checkpoint("checkpoint-state"));
    wal->append(Wal::kLocalWrite, "tail-1");
    wal->append(Wal::kLocalWrite, "tail-2");
    EXPECT_EQ(wal->stats().checkpoints, 1u);
  }
  Wal::OpenResult r;
  auto wal = open(3, &r);
  // Recovery reads exactly one generation: checkpoint + tail.
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].type, Wal::kCheckpoint);
  EXPECT_EQ(r.records[0].payload, "checkpoint-state");
  EXPECT_EQ(r.records[1].payload, "tail-1");
  EXPECT_EQ(r.records[2].payload, "tail-2");
  // Exactly one generation file (plus CURRENT) remains for this site.
  std::size_t wal_files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    const std::string name = e.path().filename().string();
    if (name.find("site-3.") == 0 && name.find(".wal") != std::string::npos) {
      ++wal_files;
    }
  }
  EXPECT_EQ(wal_files, 1u);
}

TEST_F(WalTest, SitesAreIsolated) {
  Wal::OpenResult ra;
  Wal::OpenResult rb;
  auto a = open(0, &ra);
  auto b = open(1, &rb);
  a->append(Wal::kLocalWrite, "from-a");
  b->append(Wal::kLocalWrite, "from-b");
  a.reset();
  b.reset();
  Wal::OpenResult r;
  auto again = open(0, &r);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, "from-a");
}

TEST_F(WalTest, BatchSyncStillPersistsOnClose) {
  {
    Wal::OpenResult r;
    auto wal = open(4, &r, Wal::Sync::kBatch);
    wal->append(Wal::kLocalWrite, "batched");
    // No explicit sync(): the write() syscall already reached the kernel,
    // and the destructor fsyncs.
  }
  Wal::OpenResult r;
  auto wal = open(4, &r, Wal::Sync::kBatch);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, "batched");
}

TEST_F(WalTest, InspectSummarizesWithoutOpening) {
  {
    Wal::OpenResult r;
    auto wal = open(5, &r);
    wal->append(Wal::kEpoch, "e");
    wal->append(Wal::kLocalWrite, "w");
    wal->checkpoint("ckpt");
    wal->append(Wal::kPeerUpdate, "u");
  }
  Wal::InspectResult info;
  std::string err;
  ASSERT_TRUE(Wal::inspect(dir_, 5, &info, &err)) << err;
  EXPECT_EQ(info.records, 2u);  // checkpoint + one tail record
  EXPECT_EQ(info.counts_by_type[Wal::kCheckpoint], 1u);
  EXPECT_EQ(info.counts_by_type[Wal::kPeerUpdate], 1u);
  EXPECT_EQ(info.checkpoint_payload, "ckpt");
  ASSERT_EQ(info.tail_after_checkpoint.size(), 1u);
  EXPECT_EQ(info.tail_after_checkpoint[0].payload, "u");
  EXPECT_EQ(info.generation, 1u);
}

TEST_F(WalTest, InspectMissingSiteFails) {
  Wal::InspectResult info;
  std::string err;
  EXPECT_FALSE(Wal::inspect(dir_, 42, &info, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace ccpr::server
