#include "causal/sim_cluster.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "workload/workload.hpp"

namespace ccpr::causal {
namespace {

using ccpr::testing::constant_latency;

TEST(SimClusterTest, ScriptedWriteIsVisibleAfterRun) {
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(3, 3, 2),
               constant_latency(1'000));
  c.write(0, 0, "hello");
  EXPECT_GT(c.scheduler().pending(), 0u);  // update in flight
  c.run();
  EXPECT_EQ(c.site(1).peek(0).data, "hello");
}

TEST(SimClusterTest, SyncReadDrivesSchedulerForRemoteFetch) {
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(3, 3, 1),
               constant_latency(2'000));
  c.write(1, 1, "remote-value");  // var 1 only at site 1
  c.run();
  const Value v = c.read(0, 1);
  EXPECT_EQ(v.data, "remote-value");
  EXPECT_GE(c.scheduler().now(), 4'000);  // at least one round trip
}

TEST(SimClusterTest, RunProgramExecutesEveryOperation) {
  const auto rmap = ReplicaMap::even(4, 8, 2);
  workload::WorkloadSpec spec;
  spec.ops_per_site = 50;
  spec.write_rate = 0.5;
  spec.seed = 5;
  const Program program = workload::generate_program(spec, rmap);
  SimCluster c(Algorithm::kOptTrack, ReplicaMap::even(4, 8, 2),
               constant_latency(3'000));
  c.run_program(program);
  const auto m = c.metrics();
  EXPECT_EQ(m.writes + m.reads, 4u * 50u);
}

TEST(SimClusterTest, MetricsMergeAcrossSitesAndTransport) {
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(3, 3),
               constant_latency(100));
  c.write(0, 0, "a");
  c.write(1, 1, "b");
  c.run();
  const auto m = c.metrics();
  EXPECT_EQ(m.writes, 2u);          // summed from per-site metrics
  EXPECT_EQ(m.update_msgs, 4u);     // counted at the transport
  EXPECT_GT(m.control_bytes, 0u);
  EXPECT_EQ(c.site_metrics(0).writes, 1u);
  EXPECT_EQ(c.site_metrics(2).writes, 0u);
}

TEST(SimClusterTest, MakePayloadShapesSize) {
  const std::string tiny = SimCluster::make_payload(1, 2, 0);
  EXPECT_EQ(tiny, "w1:2");
  const std::string padded = SimCluster::make_payload(1, 2, 32);
  EXPECT_EQ(padded.size(), 32u);
  EXPECT_EQ(padded.substr(0, 4), "w1:2");
}

TEST(SimClusterTest, ThinkTimeSpreadsOperations) {
  const auto rmap = ReplicaMap::full(2, 2);
  workload::WorkloadSpec spec;
  spec.ops_per_site = 20;
  spec.write_rate = 1.0;
  spec.seed = 5;
  const Program program = workload::generate_program(spec, rmap);

  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::ConstantLatency>(10);
  opts.mean_think_us = 10'000;
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(2, 2),
               std::move(opts));
  c.run_program(program);
  // 20 ops at ~10ms mean think time: virtual time far beyond the latency.
  EXPECT_GT(c.scheduler().now(), 50'000);
}

TEST(SimClusterTest, FaultInjectionCountersExposed) {
  SimCluster::Options opts;
  opts.latency = std::make_unique<sim::ConstantLatency>(1'000);
  opts.drop_rate = 0.3;
  opts.fault_seed = 42;
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(3, 2),
               std::move(opts));
  for (int i = 0; i < 20; ++i) c.write(0, 0, "v");
  c.run();
  EXPECT_GT(c.messages_dropped(), 0u);
  EXPECT_GT(c.retransmissions(), 0u);
  EXPECT_EQ(c.site(1).peek(0).data, "v");  // still delivered
  EXPECT_EQ(c.pending_updates(), 0u);
}

TEST(SimClusterTest, NoFaultsMeansNoReliabilityLayer) {
  SimCluster c(Algorithm::kOptTrackCRP, ReplicaMap::full(2, 2),
               constant_latency(100));
  c.write(0, 0, "v");
  c.run();
  EXPECT_EQ(c.messages_dropped(), 0u);
  EXPECT_EQ(c.retransmissions(), 0u);
  // Exactly one datagram: no ack/retransmit traffic on the wire.
  EXPECT_EQ(c.metrics().messages_total(), 1u);
}

}  // namespace
}  // namespace ccpr::causal
