#include "net/thread_transport.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <mutex>
#include <vector>

namespace ccpr::net {
namespace {

struct Collector final : IMessageSink {
  std::mutex mu;
  std::vector<Message> received;
  void deliver(Message msg) override {
    std::lock_guard lk(mu);
    received.push_back(std::move(msg));
  }
};

Message make(MsgKind kind, SiteId src, SiteId dst, std::uint8_t tag) {
  Message m;
  m.kind = kind;
  m.src = src;
  m.dst = dst;
  m.body = {tag};
  m.payload_bytes = 0;
  return m;
}

TEST(ThreadTransportTest, DeliversAndDrains) {
  metrics::Metrics metrics;
  ThreadTransport t(2, metrics);
  Collector c0, c1;
  t.connect(0, &c0);
  t.connect(1, &c1);
  t.start();
  for (std::uint8_t i = 0; i < 50; ++i) {
    t.send(make(MsgKind::kUpdate, 0, 1, i));
  }
  t.drain();
  {
    std::lock_guard lk(c1.mu);
    EXPECT_EQ(c1.received.size(), 50u);
  }
  t.stop();
  EXPECT_EQ(metrics.update_msgs, 50u);
}

TEST(ThreadTransportTest, ChannelFifoPreserved) {
  metrics::Metrics metrics;
  ThreadTransport t(2, metrics,
                    ThreadTransport::Options{.max_delay_us = 50,
                                             .delay_seed = 5});
  Collector c0, c1;
  t.connect(0, &c0);
  t.connect(1, &c1);
  t.start();
  for (std::uint8_t i = 0; i < 100; ++i) {
    t.send(make(MsgKind::kUpdate, 0, 1, i));
  }
  t.drain();
  t.stop();
  ASSERT_EQ(c1.received.size(), 100u);
  for (std::uint8_t i = 0; i < 100; ++i) {
    EXPECT_EQ(c1.received[i].body[0], i);
  }
}

TEST(ThreadTransportTest, HandlerMaySendMore) {
  // A ping-pong relay: site 1 echoes back until the tag reaches 10; drain()
  // must wait for the whole cascade.
  metrics::Metrics metrics;
  ThreadTransport t(2, metrics);
  struct Echo final : IMessageSink {
    ThreadTransport* tr = nullptr;
    std::atomic<int> last{0};
    void deliver(Message msg) override {
      last = msg.body[0];
      if (msg.body[0] < 10) {
        Message next = msg;
        std::swap(next.src, next.dst);
        ++next.body[0];
        tr->send(std::move(next));
      }
    }
  } e0, e1;
  e0.tr = &t;
  e1.tr = &t;
  t.connect(0, &e0);
  t.connect(1, &e1);
  t.start();
  t.send(make(MsgKind::kUpdate, 0, 1, 1));
  t.drain();
  t.stop();
  EXPECT_EQ(std::max(e0.last.load(), e1.last.load()), 10);
  EXPECT_EQ(metrics.update_msgs, 10u);
}

TEST(ThreadTransportTest, DrainOnEmptyNetworkReturnsImmediately) {
  metrics::Metrics metrics;
  ThreadTransport t(2, metrics);
  Collector c0, c1;
  t.connect(0, &c0);
  t.connect(1, &c1);
  t.start();
  t.drain();
  t.stop();
  SUCCEED();
}

TEST(ThreadTransportTest, StopIsIdempotent) {
  metrics::Metrics metrics;
  ThreadTransport t(1, metrics);
  Collector c0;
  t.connect(0, &c0);
  t.start();
  t.stop();
  t.stop();
  SUCCEED();
}

TEST(ThreadTransportTest, ManySendersOneReceiver) {
  metrics::Metrics metrics;
  ThreadTransport t(4, metrics);
  Collector sinks[4];
  for (SiteId s = 0; s < 4; ++s) t.connect(s, &sinks[s]);
  t.start();
  std::vector<std::thread> senders;
  for (SiteId s = 1; s < 4; ++s) {
    senders.emplace_back([&t, s] {
      for (std::uint8_t i = 0; i < 64; ++i) {
        t.send(make(MsgKind::kUpdate, s, 0, i));
      }
    });
  }
  for (auto& th : senders) th.join();
  t.drain();
  t.stop();
  EXPECT_EQ(sinks[0].received.size(), 3u * 64u);
}

}  // namespace
}  // namespace ccpr::net
