// End-to-end test of the real-network runtime: forks a 3-site loopback
// cluster of real ccpr_server processes, drives a seeded workload through
// the client library from three concurrent sessions, SIGKILLs one site
// mid-run and restarts it, then feeds the client-side recorded history to
// the offline causal checker.
//
// The server binary path is injected by CMake as CCPR_SERVER_BIN.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/causal_checker.hpp"
#include "checker/recorder.hpp"
#include "client/client.hpp"
#include "net/socket.hpp"
#include "server/cluster_config.hpp"
#include "util/rng.hpp"

namespace ccpr {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint16_t> pick_ports(std::size_t n) {
  std::vector<net::Socket> held;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t port = 0;
    held.push_back(net::tcp_listen("127.0.0.1", 0, &port));
    EXPECT_TRUE(held.back().valid());
    ports.push_back(port);
  }
  return ports;
}

/// One forked ccpr_server process.
class ServerProcess {
 public:
  ServerProcess() = default;
  ~ServerProcess() { terminate(); }

  void spawn(const std::string& config_path, causal::SiteId site) {
    ASSERT_EQ(pid_, -1);
    const std::string config_flag = "--config=" + config_path;
    const std::string site_flag = "--site=" + std::to_string(site);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::execl(CCPR_SERVER_BIN, CCPR_SERVER_BIN, config_flag.c_str(),
              site_flag.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    pid_ = pid;
  }

  void kill_hard() {
    if (pid_ < 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  void terminate() {
    if (pid_ < 0) return;
    ::kill(pid_, SIGTERM);
    int status = 0;
    // Bounded wait, then escalate so a hung server cannot hang the test.
    for (int i = 0; i < 500; ++i) {
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return;
      }
      std::this_thread::sleep_for(10ms);
    }
    kill_hard();
  }

  bool running() const { return pid_ >= 0; }

 private:
  pid_t pid_ = -1;
};

/// `ops` mixed put/get operations from one recorded session at `site`.
void run_session(const server::ClusterConfig& cfg, causal::SiteId site,
                 checker::HistoryRecorder* rec, std::uint64_t seed,
                 std::size_t ops, double write_rate) {
  client::Client::Options copts;
  copts.recorder = rec;
  client::Client cli(cfg, site, copts);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto x = static_cast<causal::VarId>(rng.below(cfg.vars));
    if (rng.chance(write_rate)) {
      cli.put(x, "s" + std::to_string(site) + "-" + std::to_string(i));
    } else {
      (void)cli.get(x);
    }
  }
}

TEST(TcpClusterTest, KillAndRestartSurvivesCausalCheck) {
  const auto ports = pick_ports(6);
  auto cfg = server::ClusterConfig::loopback(3, 12, 2, 0);
  for (std::uint32_t s = 0; s < 3; ++s) {
    cfg.sites[s].peer_port = ports[s];
    cfg.sites[s].client_port = ports[3 + s];
  }
  cfg.algorithm = causal::Algorithm::kOptTrack;
  // §V failover: a fetch aimed at the killed site retries the next-ranked
  // replica after this timeout instead of blocking forever.
  cfg.protocol.fetch_timeout_us = 150000;

  char path[] = "/tmp/ccpr_cluster_XXXXXX";
  const int cfd = ::mkstemp(path);
  ASSERT_GE(cfd, 0);
  ::close(cfd);
  {
    std::ofstream out(path);
    out << cfg.to_text();
  }

  ServerProcess servers[3];
  for (causal::SiteId s = 0; s < 3; ++s) {
    servers[s].spawn(path, s);
    ASSERT_TRUE(servers[s].running());
  }

  checker::HistoryRecorder recorder;

  // Phase 1: three concurrent sessions, one per site, all recorded.
  {
    std::vector<std::thread> sessions;
    for (causal::SiteId s = 0; s < 3; ++s) {
      sessions.emplace_back(
          [&, s] { run_session(cfg, s, &recorder, 100 + s, 60, 0.4); });
    }
    for (auto& t : sessions) t.join();
  }

  // Kill site 2 without warning: its in-memory protocol state is gone, and
  // updates queued toward it must survive in the peers' sender queues.
  servers[2].kill_hard();

  // Phase 2: sites 0 and 1 keep operating against the degraded cluster
  // (every var still has a live replica at p=2, n=3).
  {
    std::vector<std::thread> sessions;
    for (causal::SiteId s = 0; s < 2; ++s) {
      sessions.emplace_back(
          [&, s] { run_session(cfg, s, &recorder, 200 + s, 20, 0.5); });
    }
    for (auto& t : sessions) t.join();
  }

  // Restart site 2 and prove the peers' backoff loops reconnect: the fresh
  // process must receive the traffic that queued while it was down.
  servers[2].spawn(path, 2);
  ASSERT_TRUE(servers[2].running());
  {
    client::Client probe(cfg, 2);
    const auto deadline = std::chrono::steady_clock::now() + 20s;
    while (true) {
      const auto st = probe.status();
      if (st.peer_msgs_recv > 0) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "restarted site never received the queued peer traffic";
      std::this_thread::sleep_for(20ms);
    }
  }

  // Phase 3: the healthy sites keep going with the revived peer in place.
  {
    std::vector<std::thread> sessions;
    for (causal::SiteId s = 0; s < 2; ++s) {
      sessions.emplace_back(
          [&, s] { run_session(cfg, s, &recorder, 300 + s, 20, 0.4); });
    }
    for (auto& t : sessions) t.join();
  }

  // The inbound probe above only proves peers can reach site 2. Also prove
  // the reverse: a write accepted by the restarted site must propagate, i.e.
  // the peers must accept site 2's fresh (seq-reset) outbound stream rather
  // than deduplicating it against the dead incarnation's watermark. Runs
  // after the recorded phases and unrecorded, because the restarted site's
  // write ids restart too and would collide with phase-1 recordings.
  {
    const auto rmap = cfg.replica_map();
    causal::VarId shared = cfg.vars;
    for (causal::VarId x = 0; x < cfg.vars; ++x) {
      if (rmap.replicated_at(x, 0) && rmap.replicated_at(x, 2)) {
        shared = x;
        break;
      }
    }
    ASSERT_LT(shared, cfg.vars) << "config has no var replicated at 0 and 2";
    client::Client writer(cfg, 2);
    writer.put(shared, "from-restarted-site");
    client::Client reader(cfg, 0);
    const auto deadline = std::chrono::steady_clock::now() + 20s;
    while (reader.get(shared).data != "from-restarted-site") {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "restarted site's outbound updates never reached site 0";
      std::this_thread::sleep_for(20ms);
    }
  }

  for (auto& srv : servers) srv.terminate();
  ::unlink(path);

  // Client-side history: per-session recording order is program order, and
  // each site hosted one session at a time, so the checker's per-process
  // sequences are exactly the sessions' op sequences. Applies were not
  // recorded (they died with the killed process), so delivery completeness
  // is out of scope; read legality and read integrity are fully checked.
  checker::CheckOptions opts;
  opts.require_complete_delivery = false;
  const auto result = checker::check_causal_consistency(
      recorder, cfg.replica_map(), opts);
  EXPECT_TRUE(result.ok);
  for (const auto& v : result.violations) ADD_FAILURE() << v;
  EXPECT_GT(result.ops_checked, 0u);
}

TEST(TcpClusterTest, MigrationPreservesReadYourWrites) {
  const auto ports = pick_ports(4);
  auto cfg = server::ClusterConfig::loopback(2, 4, 2, 0);
  for (std::uint32_t s = 0; s < 2; ++s) {
    cfg.sites[s].peer_port = ports[s];
    cfg.sites[s].client_port = ports[2 + s];
  }
  cfg.algorithm = causal::Algorithm::kOptTrack;

  char path[] = "/tmp/ccpr_cluster_XXXXXX";
  const int cfd = ::mkstemp(path);
  ASSERT_GE(cfd, 0);
  ::close(cfd);
  {
    std::ofstream out(path);
    out << cfg.to_text();
  }

  ServerProcess servers[2];
  for (causal::SiteId s = 0; s < 2; ++s) servers[s].spawn(path, s);

  {
    client::Client cli(cfg, 0);
    cli.put(0, "pre-migration");
    cli.migrate(1);
    EXPECT_EQ(cli.site(), 1u);
    // The coverage handshake guarantees the new site already applied the
    // session's causal past: the write must be visible immediately.
    EXPECT_EQ(cli.get(0).data, "pre-migration");
    cli.put(0, "post-migration");
    EXPECT_EQ(cli.get(0).data, "post-migration");
  }

  for (auto& srv : servers) srv.terminate();
  ::unlink(path);
}

}  // namespace
}  // namespace ccpr
