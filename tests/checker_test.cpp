// The checker is the oracle for every integration test, so it gets its own
// adversarial suite: hand-built histories with known verdicts.
#include "checker/causal_checker.hpp"

#include <gtest/gtest.h>

namespace ccpr::checker {
namespace {

using causal::ReplicaMap;
using causal::SiteId;
using causal::VarId;
using causal::WriteId;

constexpr WriteId kInitial{};

TEST(CheckerTest, EmptyHistoryIsConsistent) {
  HistoryRecorder h;
  const auto r = check_causal_consistency(h, ReplicaMap::full(2, 1));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.ops_checked, 0u);
}

TEST(CheckerTest, SimpleWriteReadIsConsistent) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 1);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  h.on_read(1, 0, {0, 1});
  const auto r = check_causal_consistency(h, rmap);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(CheckerTest, ReadBeforeAnyWriteMayReturnInitial) {
  HistoryRecorder h;
  h.on_read(0, 0, kInitial);
  h.on_write(1, {1, 1}, 0);
  h.on_apply(1, {1, 1}, 0);
  h.on_apply(0, {1, 1}, 0);
  const auto r = check_causal_consistency(h, ReplicaMap::full(2, 1));
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(CheckerTest, DetectsStaleInitialRead) {
  // Process 0 writes x then y; process 1 reads y (so w(x) is in its causal
  // past) and then reads x as initial — stale.
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 2);
  h.on_write(0, {0, 1}, 0);  // w(x)
  h.on_apply(0, {0, 1}, 0);
  h.on_write(0, {0, 2}, 1);  // w(y)
  h.on_apply(0, {0, 2}, 1);
  h.on_apply(1, {0, 1}, 0);
  h.on_apply(1, {0, 2}, 1);
  h.on_read(1, 1, {0, 2});   // reads y
  h.on_read(1, 0, kInitial);  // stale: x's write precedes causally
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("stale read"), std::string::npos);
}

TEST(CheckerTest, DetectsCausallyOverwrittenRead) {
  // w1(x)a -> read by p1 -> w2(x)b; p2 reads b then reads a again: stale.
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(3, 1);
  h.on_write(0, {0, 1}, 0);  // a
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  h.on_read(1, 0, {0, 1});
  h.on_write(1, {1, 1}, 0);  // b, causally after a
  h.on_apply(1, {1, 1}, 0);
  h.on_apply(0, {1, 1}, 0);
  h.on_apply(2, {0, 1}, 0);
  h.on_apply(2, {1, 1}, 0);
  h.on_read(2, 0, {1, 1});  // fine: reads b
  h.on_read(2, 0, {0, 1});  // stale: a was overwritten in causal past of b
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("stale read"), std::string::npos);
}

TEST(CheckerTest, ConcurrentWritesMayBeReadEitherWay) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(3, 1);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_write(1, {1, 1}, 0);  // concurrent with 0's write
  h.on_apply(1, {1, 1}, 0);
  h.on_apply(0, {1, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  h.on_apply(2, {0, 1}, 0);
  h.on_apply(2, {1, 1}, 0);
  h.on_read(2, 0, {1, 1});
  h.on_read(2, 0, {0, 1});  // legal: the two writes are concurrent
  const auto r = check_causal_consistency(h, rmap);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(CheckerTest, DetectsCausalApplyOrderViolation) {
  // w1 -> (read) -> w2, but site 2 applies w2 before w1.
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(3, 2);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  h.on_read(1, 0, {0, 1});
  h.on_write(1, {1, 1}, 1);
  h.on_apply(1, {1, 1}, 1);
  h.on_apply(0, {1, 1}, 1);
  h.on_apply(2, {1, 1}, 1);  // w2 first: violation
  h.on_apply(2, {0, 1}, 0);
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("causal apply violation"),
            std::string::npos);
}

TEST(CheckerTest, AllowsConcurrentAppliesInAnyOrder) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(3, 2);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_write(1, {1, 1}, 1);  // concurrent
  h.on_apply(1, {1, 1}, 1);
  h.on_apply(2, {1, 1}, 1);  // order differs from site 0's...
  h.on_apply(2, {0, 1}, 0);
  h.on_apply(0, {1, 1}, 1);
  h.on_apply(1, {0, 1}, 0);
  const auto r = check_causal_consistency(h, rmap);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(CheckerTest, DetectsPerWriterFifoViolation) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 1);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_write(0, {0, 2}, 0);
  h.on_apply(0, {0, 2}, 0);
  h.on_apply(1, {0, 2}, 0);  // second write first: FIFO violation
  h.on_apply(1, {0, 1}, 0);
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("apply order"), std::string::npos);
}

TEST(CheckerTest, DetectsLostUpdate) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 1);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  // never applied at site 1
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("lost update"), std::string::npos);
  CheckOptions lax;
  lax.require_complete_delivery = false;
  EXPECT_TRUE(check_causal_consistency(h, rmap, lax).ok);
}

TEST(CheckerTest, DetectsDuplicateApply) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 1);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);  // duplicate
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
}

TEST(CheckerTest, DetectsApplyAtNonReplica) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::even(3, 3, 1);  // var 0 only at site 0
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);  // site 1 is not a replica of var 0
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("non-replica"), std::string::npos);
}

TEST(CheckerTest, DetectsReadFromUnknownWrite) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 1);
  h.on_read(0, 0, {1, 42});  // nobody wrote this
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("unknown write"), std::string::npos);
}

TEST(CheckerTest, DetectsReadFromWrongVariable) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 2);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  h.on_read(1, 1, {0, 1});  // write was to var 0, read names var 1
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("read integrity"), std::string::npos);
}

TEST(CheckerTest, DetectsDuplicateWriteId) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 1);
  h.on_write(0, {0, 1}, 0);
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  h.on_write(0, {0, 1}, 0);  // same id again
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
}

TEST(CheckerTest, ViolationCapRespected) {
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 1);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    h.on_write(0, {0, i}, 0);
    h.on_apply(0, {0, i}, 0);
    // never applied at site 1 -> 100 lost updates... reported per (p, s).
  }
  CheckOptions opts;
  opts.max_violations = 4;
  const auto r = check_causal_consistency(h, rmap, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_LE(r.violations.size(), 4u);
}

TEST(CheckerTest, TransitiveCausalityThroughThirdProcess) {
  // w0 -> read by p1 -> w1 -> read by p2 -> r2 reading x must not be initial.
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(3, 3);
  h.on_write(0, {0, 1}, 0);  // x
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  h.on_read(1, 0, {0, 1});
  h.on_write(1, {1, 1}, 1);  // y
  h.on_apply(1, {1, 1}, 1);
  h.on_apply(2, {1, 1}, 1);
  h.on_read(2, 1, {1, 1});
  h.on_read(2, 0, kInitial);  // transitive stale read
  h.on_apply(2, {0, 1}, 0);
  h.on_apply(0, {1, 1}, 1);
  const auto r = check_causal_consistency(h, rmap);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("stale read"), std::string::npos);
}

TEST(CheckerTest, ReadRecordedBeforeItsCrossProcessWrite) {
  // A real-time recorder (e.g. concurrent TCP client sessions sharing one
  // recorder) can log a read *before* the cross-process write it returned:
  // the server applied the write and served the read while the writer's
  // session had not yet recorded its own put. The checker must treat the
  // log as per-process program orders joined by read-from, not as one
  // causally sorted sequence. Regression: this interleaving used to read a
  // not-yet-assigned vector timestamp out of bounds.
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 2);
  h.on_read(1, 0, {0, 1});   // recorded first...
  h.on_write(0, {0, 1}, 0);  // ...though the write of course happened first
  h.on_apply(0, {0, 1}, 0);
  h.on_apply(1, {0, 1}, 0);
  const auto r = check_causal_consistency(h, rmap);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(CheckerTest, TransitivityHoldsAcrossReorderedRecording) {
  // Same real-time-recorder caveat, plus a transitive chain: p1 reads w0,
  // then writes w1; p2 reads w1 then stale-reads x. The stale read must
  // still be detected even though w0's record appears last in the log.
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(3, 3);
  CheckOptions opts;
  opts.require_complete_delivery = false;
  h.on_read(1, 0, {0, 1});
  h.on_write(1, {1, 1}, 1);
  h.on_read(2, 1, {1, 1});
  h.on_read(2, 0, kInitial);  // stale: w0 is in p2's causal past
  h.on_write(0, {0, 1}, 0);
  const auto r = check_causal_consistency(h, rmap, opts);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("stale read"), std::string::npos);
}

TEST(CheckerTest, CorruptReadFromFutureOfOwnProcess) {
  // A read returning a write that program-order-follows it in the *same*
  // process is impossible in an honest recording; the checker must flag it
  // rather than loop or crash.
  HistoryRecorder h;
  const auto rmap = ReplicaMap::full(2, 2);
  h.on_read(0, 0, {0, 1});
  h.on_write(0, {0, 1}, 0);
  CheckOptions opts;
  opts.require_complete_delivery = false;
  const auto r = check_causal_consistency(h, rmap, opts);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("corrupt history"), std::string::npos);
}

}  // namespace
}  // namespace ccpr::checker
